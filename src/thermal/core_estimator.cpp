#include "thermal/core_estimator.h"

#include <algorithm>
#include <cmath>

#include "linalg/ordering.h"
#include "util/error.h"

namespace tecfan::thermal {

CoreEstimator::CoreEstimator(std::shared_ptr<const ChipThermalModel> model,
                             int core)
    : model_(std::move(model)), core_(core) {
  TECFAN_REQUIRE(model_ != nullptr, "CoreEstimator requires a model");
  TECFAN_REQUIRE(core >= 0 && core < model_->floorplan().core_count(),
                 "core out of range");
  const auto& m = *model_;

  // Local node set: this tile's die components and TEC faces.
  std::vector<std::size_t> raw_locals;
  for (std::size_t c : m.floorplan().components_of_core(core))
    raw_locals.push_back(m.die_node(c));
  const std::size_t dev_base = m.tec_base_of_tile(core);
  const auto devs = static_cast<std::size_t>(m.tec().devices_per_tile());
  for (std::size_t d = 0; d < devs; ++d) {
    raw_locals.push_back(m.tec_cold_node(dev_base + d));
    raw_locals.push_back(m.tec_hot_node(dev_base + d));
    dev_global_.push_back(dev_base + d);
  }

  // Extract the local sub-pattern of the base conductance matrix and order
  // it with reverse Cuthill–McKee for a tight band.
  const auto& g0 = m.base_conductance();
  std::vector<std::ptrdiff_t> raw_index(m.node_count(), -1);
  for (std::size_t i = 0; i < raw_locals.size(); ++i)
    raw_index[raw_locals[i]] = static_cast<std::ptrdiff_t>(i);

  const std::size_t n = raw_locals.size();
  std::vector<std::vector<std::size_t>> graph(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gi = raw_locals[i];
    for (std::size_t k = g0.row_offsets()[gi]; k < g0.row_offsets()[gi + 1];
         ++k) {
      const std::ptrdiff_t j = raw_index[g0.col_indices()[k]];
      if (j >= 0 && static_cast<std::size_t>(j) != i)
        graph[i].push_back(static_cast<std::size_t>(j));
    }
  }
  const std::vector<std::size_t> perm = linalg::reverse_cuthill_mckee(graph);
  bandwidth_ = linalg::bandwidth_under(graph, perm);

  locals_.resize(n);
  for (std::size_t i = 0; i < n; ++i) locals_[i] = raw_locals[perm[i]];
  global_to_local_.assign(m.node_count(), -1);
  for (std::size_t i = 0; i < n; ++i)
    global_to_local_[locals_[i]] = static_cast<std::ptrdiff_t>(i);

  comp_local_.resize(kComponentsPerTile);
  const auto comps = m.floorplan().components_of_core(core);
  for (int k = 0; k < kComponentsPerTile; ++k)
    comp_local_[static_cast<std::size_t>(k)] = static_cast<std::size_t>(
        global_to_local_[m.die_node(comps[static_cast<std::size_t>(k)])]);

  // Build the banded local matrix and the boundary coupling list. The
  // diagonal of G0 already contains the boundary conductances, so the
  // conditioned system is (G_local) T_local = q + sum g_ib T_b.
  base_band_ = linalg::BandMatrix(n, bandwidth_, bandwidth_);
  tau_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gi = locals_[i];
    for (std::size_t k = g0.row_offsets()[gi]; k < g0.row_offsets()[gi + 1];
         ++k) {
      const std::size_t gj = g0.col_indices()[k];
      const double v = g0.values()[k];
      const std::ptrdiff_t j = global_to_local_[gj];
      if (gj == gi) {
        base_band_.at(i, i) = v;
      } else if (j >= 0) {
        base_band_.at(i, static_cast<std::size_t>(j)) = v;
      } else {
        // Off-diagonal coupling to a boundary node: -g entry.
        boundary_.push_back({i, gj, -v});
      }
    }
    tau_[i] = model_->node_tau()[gi];
  }
}

std::size_t CoreEstimator::local_cold(int device) const {
  TECFAN_REQUIRE(device >= 0 &&
                     device < static_cast<int>(dev_global_.size()),
                 "device index out of range");
  return static_cast<std::size_t>(global_to_local_[model_->tec_cold_node(
      dev_global_[static_cast<std::size_t>(device)])]);
}

std::size_t CoreEstimator::local_hot(int device) const {
  TECFAN_REQUIRE(device >= 0 &&
                     device < static_cast<int>(dev_global_.size()),
                 "device index out of range");
  return static_cast<std::size_t>(global_to_local_[model_->tec_hot_node(
      dev_global_[static_cast<std::size_t>(device)])]);
}

std::size_t CoreEstimator::local_of_component(int local_component) const {
  TECFAN_REQUIRE(local_component >= 0 &&
                     local_component < kComponentsPerTile,
                 "component index out of range");
  return comp_local_[static_cast<std::size_t>(local_component)];
}

linalg::Vector CoreEstimator::steady(
    std::span<const double> comp_power, std::span<const std::uint8_t> tec_on,
    std::span<const double> boundary_temps) const {
  TECFAN_REQUIRE(comp_power.size() ==
                     static_cast<std::size_t>(kComponentsPerTile),
                 "need 18 component powers");
  TECFAN_REQUIRE(tec_on.size() == dev_global_.size(),
                 "need one state per device");
  TECFAN_REQUIRE(boundary_temps.size() == model_->node_count(),
                 "boundary temps must be the full node vector");

  linalg::BandMatrix a = base_band_;
  linalg::Vector q(locals_.size(), 0.0);

  for (int k = 0; k < kComponentsPerTile; ++k)
    q[comp_local_[static_cast<std::size_t>(k)]] =
        comp_power[static_cast<std::size_t>(k)];

  const double pump = model_->tec().pumping_w_per_k();
  const double joule = model_->tec().joule_per_face_w();
  for (std::size_t d = 0; d < dev_global_.size(); ++d) {
    if (!tec_on[d]) continue;
    const auto cold = static_cast<std::size_t>(
        global_to_local_[model_->tec_cold_node(dev_global_[d])]);
    const auto hot = static_cast<std::size_t>(
        global_to_local_[model_->tec_hot_node(dev_global_[d])]);
    a.at(cold, cold) += pump;
    a.at(hot, hot) -= pump;
    q[cold] += joule;
    q[hot] += joule;
  }

  for (const Boundary& b : boundary_)
    q[b.local] += b.g * boundary_temps[b.global];

  return linalg::BandLu(std::move(a)).solve(q);
}

linalg::Vector CoreEstimator::exponential(std::span<const double> steady_local,
                                          std::span<const double> prev_local,
                                          double dt_s) const {
  TECFAN_REQUIRE(steady_local.size() == locals_.size() &&
                     prev_local.size() == locals_.size(),
                 "local vector size mismatch");
  linalg::Vector out(locals_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double beta = std::exp(-dt_s / tau_[i]);
    out[i] = (1.0 - beta) * steady_local[i] + beta * prev_local[i];
  }
  return out;
}

}  // namespace tecfan::thermal
