#include "thermal/package.h"

#include <cmath>

#include "util/error.h"

namespace tecfan::thermal {

double PackageParameters::convection_g_total(double airflow_cfm) const {
  TECFAN_REQUIRE(airflow_cfm >= 0.0, "airflow must be non-negative");
  return convection_fixed_g_w_per_k +
         convection_cfm_coeff * std::pow(airflow_cfm, convection_exponent);
}

}  // namespace tecfan::thermal
