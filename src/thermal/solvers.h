// Steady-state and transient solvers over the chip thermal network.
//
// Both solvers factor the *base* system matrix once (G0 for steady state,
// C/dt + G0 for implicit-Euler transient) and absorb every knob change —
// TEC Peltier terms, fan convection — as a Woodbury diagonal update, so a
// control decision costs triangular solves instead of refactorizations.
//
// SteadyStateSolver implements Eq. (1): G(k) Ts(k) = P(k).
// TransientSolver is the plant ("ground truth", playing HotSpot's role):
// implicit Euler on C dT/dt = -G T + q, unconditionally stable for the stiff
// die/sink time-constant split (~ms vs ~30 s).
// ExponentialEstimator is the paper's Eq. (5): the per-node exponential
// interpolation toward steady state that the *controllers* use; its
// approximation error versus TransientSolver is what produces the small
// runtime temperature violations of Fig. 5(b).
#pragma once

#include <memory>
#include <span>

#include "linalg/lu.h"
#include "linalg/woodbury.h"
#include "thermal/network.h"

namespace tecfan::thermal {

class SteadyStateSolver {
 public:
  explicit SteadyStateSolver(std::shared_ptr<const ChipThermalModel> model);

  /// Node temperatures (kelvin) solving G T = q for the given component
  /// powers and cooling state.
  linalg::Vector solve(std::span<const double> comp_power_w,
                       const CoolingState& state);

  const ChipThermalModel& model() const { return *model_; }

 private:
  void refresh_updates(const CoolingState& state);

  std::shared_ptr<const ChipThermalModel> model_;
  linalg::DiagonalUpdateSolver updater_;
  CoolingState cached_state_;
  bool state_cached_ = false;
};

class TransientSolver {
 public:
  /// dt: integration substep length in seconds.
  TransientSolver(std::shared_ptr<const ChipThermalModel> model, double dt);

  double dt() const { return dt_; }

  /// One implicit-Euler step: returns T(t+dt) from T(t).
  linalg::Vector step(std::span<const double> temps_k,
                      std::span<const double> comp_power_w,
                      const CoolingState& state);

  /// Integrate over `duration` (must be a positive multiple of dt within
  /// rounding; the last partial step is folded in analytically by stepping
  /// ceil(duration/dt) equal substeps).
  linalg::Vector advance(linalg::Vector temps_k,
                         std::span<const double> comp_power_w,
                         const CoolingState& state, double duration_s);

 private:
  void refresh_updates(const CoolingState& state);

  std::shared_ptr<const ChipThermalModel> model_;
  double dt_;
  linalg::DiagonalUpdateSolver updater_;
  CoolingState cached_state_;
  bool state_cached_ = false;
};

/// Eq. (5): T(k) = (1 - beta) Ts + beta T(k-1), beta = exp(-dt / tau_i),
/// applied per node with the model's RC time constants.
linalg::Vector exponential_step(const ChipThermalModel& model,
                                std::span<const double> steady_k,
                                std::span<const double> prev_k, double dt_s);

}  // namespace tecfan::thermal
