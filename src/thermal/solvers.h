// Steady-state and transient solvers over the chip thermal network, built
// on the engine/workspace split.
//
// ThermalEngine owns the immutable, shareable state: the base factorization
// of G0 for steady state and (optionally) of C/dt + G0 for implicit-Euler
// transient stepping, with the A0^{-1} e_i columns for every node a knob
// can touch (TEC faces, sink nodes) pre-warmed at construction. One engine
// serves any number of threads.
//
// SteadyStateSolver and TransientSolver are light per-thread workspaces
// over a shared engine: each holds its own Woodbury update set and cooling
// state memo, so knob changes cost triangular solves plus a k x k
// factorization, never a base refactor — and constructing a solver costs
// microseconds, not an O(n^3) factorization.
//
// SteadyStateSolver implements Eq. (1): G(k) Ts(k) = P(k).
// TransientSolver is the plant ("ground truth", playing HotSpot's role):
// implicit Euler on C dT/dt = -G T + q, unconditionally stable for the stiff
// die/sink time-constant split (~ms vs ~30 s).
// exponential_step is the paper's Eq. (5): the per-node exponential
// interpolation toward steady state that the *controllers* use; its
// approximation error versus TransientSolver is what produces the small
// runtime temperature violations of Fig. 5(b).
#pragma once

#include <memory>
#include <span>

#include "linalg/woodbury.h"
#include "thermal/network.h"

namespace tecfan::thermal {

class ThermalEngine {
 public:
  /// Factor the base matrices for `model`. transient_dt_s > 0 additionally
  /// builds the implicit-Euler operator at that substep length; 0 builds a
  /// steady-only engine (enough for planning models). `backend` selects the
  /// base factorization: the default (kAuto) RCM-reorders the network and
  /// factors banded — O(n·b²) instead of O(n³), O(n·b) per solve — falling
  /// back to dense only if the reordered bandwidth is not worth it.
  explicit ThermalEngine(
      std::shared_ptr<const ChipThermalModel> model,
      double transient_dt_s = 0.0,
      linalg::SolveBackend backend = linalg::SolveBackend::kAuto);

  ThermalEngine(const ThermalEngine&) = delete;
  ThermalEngine& operator=(const ThermalEngine&) = delete;

  const ChipThermalModel& model() const { return *model_; }
  const std::shared_ptr<const ChipThermalModel>& model_ptr() const {
    return model_;
  }

  bool has_transient() const { return transient_ != nullptr; }
  double transient_dt_s() const { return transient_dt_s_; }

  const std::shared_ptr<const linalg::FactoredOperator>& steady_operator()
      const {
    return steady_;
  }
  const std::shared_ptr<const linalg::FactoredOperator>& transient_operator()
      const {
    return transient_;
  }

  /// True when the base operators use the RCM-permuted banded backend.
  bool banded() const { return steady_->banded(); }
  /// RCM half-bandwidth of the permuted network (0 on the dense backend).
  std::size_t bandwidth() const { return steady_->bandwidth(); }

  /// Rough resident footprint of the shared factored state.
  std::size_t memory_bytes() const;

 private:
  std::shared_ptr<const ChipThermalModel> model_;
  double transient_dt_s_ = 0.0;
  std::shared_ptr<const linalg::FactoredOperator> steady_;
  std::shared_ptr<const linalg::FactoredOperator> transient_;
};

/// Convenience factory: shared engine over `model`.
std::shared_ptr<const ThermalEngine> make_thermal_engine(
    std::shared_ptr<const ChipThermalModel> model, double transient_dt_s = 0.0,
    linalg::SolveBackend backend = linalg::SolveBackend::kAuto);

class SteadyStateSolver {
 public:
  explicit SteadyStateSolver(std::shared_ptr<const ThermalEngine> engine);

  /// Node temperatures (kelvin) solving G T = q for the given component
  /// powers and cooling state.
  linalg::Vector solve(std::span<const double> comp_power_w,
                       const CoolingState& state);

  const ChipThermalModel& model() const { return engine_->model(); }
  const ThermalEngine& engine() const { return *engine_; }

  /// Mutable per-thread footprint (Woodbury workspace).
  std::size_t workspace_bytes() const { return updater_.memory_bytes(); }

 private:
  void refresh_updates(const CoolingState& state);

  std::shared_ptr<const ThermalEngine> engine_;
  linalg::UpdateWorkspace updater_;
  CoolingState cached_state_;
  bool state_cached_ = false;
};

class TransientSolver {
 public:
  /// Requires an engine built with transient_dt_s > 0; the substep length
  /// is the engine's.
  explicit TransientSolver(std::shared_ptr<const ThermalEngine> engine);

  double dt() const { return engine_->transient_dt_s(); }

  /// One implicit-Euler step: returns T(t+dt) from T(t).
  linalg::Vector step(std::span<const double> temps_k,
                      std::span<const double> comp_power_w,
                      const CoolingState& state);

  /// Integrate over `duration` (must be a positive multiple of dt within
  /// rounding; the last partial step is folded in analytically by stepping
  /// ceil(duration/dt) equal substeps).
  linalg::Vector advance(linalg::Vector temps_k,
                         std::span<const double> comp_power_w,
                         const CoolingState& state, double duration_s);

  /// Mutable per-thread footprint (Woodbury workspace).
  std::size_t workspace_bytes() const { return updater_.memory_bytes(); }

 private:
  void refresh_updates(const CoolingState& state);

  std::shared_ptr<const ThermalEngine> engine_;
  linalg::UpdateWorkspace updater_;
  CoolingState cached_state_;
  bool state_cached_ = false;
};

/// Eq. (5): T(k) = (1 - beta) Ts + beta T(k-1), beta = exp(-dt / tau_i),
/// applied per node with the model's RC time constants.
linalg::Vector exponential_step(const ChipThermalModel& model,
                                std::span<const double> steady_k,
                                std::span<const double> prev_k, double dt_s);

}  // namespace tecfan::thermal
