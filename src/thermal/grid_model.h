// Uniform-grid RC discretization of the die — the cross-validation model.
//
// HotSpot offers both a block (per-component) model and a fine grid model;
// our runtime stack uses the block form (thermal/network.h). This module
// provides the grid form for the same package so the block model's spatial
// accuracy can be validated: the die is discretized into cols x rows cells
// with lateral silicon conduction and a vertical silicon+TIM path into the
// per-tile spreader/sink column (TECs passive; validation happens in the
// all-off state). The steady system is SPD and solved with conjugate
// gradients on the CSR form — the large-system path of linalg/iterative.h.
#pragma once

#include <memory>
#include <span>

#include "linalg/iterative.h"
#include "thermal/floorplan.h"
#include "thermal/package.h"

namespace tecfan::thermal {

class GridThermalModel {
 public:
  GridThermalModel(Floorplan floorplan, PackageParameters package, int cols,
                   int rows);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  std::size_t cell_count() const {
    return static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  }
  std::size_t node_count() const {
    return cell_count() + 2 * static_cast<std::size_t>(
                                  floorplan_.core_count());
  }

  const Floorplan& floorplan() const { return floorplan_; }

  /// Steady node temperatures for per-component powers (distributed onto
  /// cells by area overlap) at a given airflow.
  linalg::Vector steady(std::span<const double> comp_power_w,
                        double airflow_cfm) const;

  /// Area-weighted average temperature of each floorplan component, sampled
  /// from a grid solution.
  linalg::Vector component_temps(std::span<const double> node_temps) const;

  /// Peak die-cell temperature of a solution.
  double peak_die_temp(std::span<const double> node_temps) const;

 private:
  std::size_t cell_index(int c, int r) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c);
  }
  std::size_t spreader_node(int tile) const {
    return cell_count() + static_cast<std::size_t>(tile);
  }
  std::size_t sink_node(int tile) const {
    return cell_count() + static_cast<std::size_t>(floorplan_.core_count()) +
           static_cast<std::size_t>(tile);
  }
  Rect cell_rect(int c, int r) const;

  Floorplan floorplan_;
  PackageParameters package_;
  int cols_;
  int rows_;
  linalg::SparseMatrix g_;  // base conductance (no airflow term)
  // Per-component cell overlaps: (cell, fraction of component area).
  std::vector<std::vector<std::pair<std::size_t, double>>> comp_cells_;
};

}  // namespace tecfan::thermal
