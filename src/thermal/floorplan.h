// Chip floorplan: an Intel-SCC-like tile array with Alpha-21264-style
// component placement (Fig. 3 of the paper).
//
// The chip is a tiles_x x tiles_y array of identical core tiles
// (2.6 mm x 3.6 mm each; 10.4 mm x 14.4 mm for the 4x4 default). Each tile
// holds 18 components: 13 logic blocks in the upper-left region, an on-chip
// voltage regulator column, L1 i/d caches, a private L2, and a NoC router.
// All coordinates are metres, chip-global, with y growing downwards.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tecfan::thermal {

/// The 18 per-tile component kinds, in tile-local index order.
enum class ComponentKind : int {
  kFpMap = 0,
  kIntMap,
  kIntQ,
  kIntReg,
  kIntExec,
  kFpMul,
  kFpReg,
  kFpQ,
  kFpAdd,
  kLdStQ,
  kItb,
  kBpred,
  kDtb,
  kVoltReg,
  kICache,
  kDCache,
  kL2,
  kRouter,
};

inline constexpr int kComponentsPerTile = 18;

/// Human-readable component name ("FPMul", "L2", ...).
const char* component_name(ComponentKind kind);

/// True for the 13 out-of-order logic blocks (the region the TEC array
/// covers); false for VR, caches, L2, and router.
bool is_logic_block(ComponentKind kind);

/// Axis-aligned rectangle in metres.
struct Rect {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  double area() const { return w * h; }
  double x1() const { return x + w; }
  double y1() const { return y + h; }
};

/// Area of the intersection of two rectangles (0 when disjoint).
double intersection_area(const Rect& a, const Rect& b);

/// Length of the shared edge between two non-overlapping rectangles
/// (0 when they only touch at a corner or are apart).
double shared_edge_length(const Rect& a, const Rect& b);

struct Component {
  ComponentKind kind;
  int core = -1;  // owning tile index, row-major
  Rect rect;      // chip-global, metres

  std::string name() const;
};

class Floorplan {
 public:
  /// Build the SCC-style floorplan: tiles_x x tiles_y tiles of 18 components.
  static Floorplan scc(int tiles_x = 4, int tiles_y = 4);

  int tiles_x() const { return tiles_x_; }
  int tiles_y() const { return tiles_y_; }
  int core_count() const { return tiles_x_ * tiles_y_; }
  double tile_width() const { return tile_w_; }
  double tile_height() const { return tile_h_; }
  double chip_width() const { return tile_w_ * tiles_x_; }
  double chip_height() const { return tile_h_ * tiles_y_; }
  double chip_area() const { return chip_width() * chip_height(); }

  std::size_t component_count() const { return components_.size(); }
  const Component& component(std::size_t i) const { return components_[i]; }
  const std::vector<Component>& components() const { return components_; }

  /// Global component index for (core, kind).
  std::size_t index_of(int core, ComponentKind kind) const;

  /// Component indices belonging to one core tile (18 of them).
  std::vector<std::size_t> components_of_core(int core) const;

  /// Tile-local origin of a core tile.
  Rect tile_rect(int core) const;

  /// Pairs (i, j, shared_edge_length) for laterally adjacent components,
  /// i < j, across the whole chip (tile borders included).
  struct Adjacency {
    std::size_t a;
    std::size_t b;
    double edge_m;
  };
  const std::vector<Adjacency>& adjacency() const { return adjacency_; }

 private:
  int tiles_x_ = 0;
  int tiles_y_ = 0;
  double tile_w_ = 0.0;
  double tile_h_ = 0.0;
  std::vector<Component> components_;
  std::vector<Adjacency> adjacency_;
};

}  // namespace tecfan::thermal
