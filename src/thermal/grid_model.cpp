#include "thermal/grid_model.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tecfan::thermal {

Rect GridThermalModel::cell_rect(int c, int r) const {
  const double w = floorplan_.chip_width() / cols_;
  const double h = floorplan_.chip_height() / rows_;
  return {c * w, r * h, w, h};
}

GridThermalModel::GridThermalModel(Floorplan floorplan,
                                   PackageParameters package, int cols,
                                   int rows)
    : floorplan_(std::move(floorplan)),
      package_(package),
      cols_(cols),
      rows_(rows) {
  TECFAN_REQUIRE(cols > 0 && rows > 0, "grid dims must be positive");

  const double t_die = package_.die_thickness_m;
  const double k_si = package_.silicon_k_w_per_mk;
  const double cell_w = floorplan_.chip_width() / cols_;
  const double cell_h = floorplan_.chip_height() / rows_;
  const double cell_area = cell_w * cell_h;
  const int n_tiles = floorplan_.core_count();

  linalg::SparseBuilder builder(node_count(), node_count());

  // Lateral conduction between neighbouring cells.
  const double g_x = k_si * t_die * cell_h / cell_w;
  const double g_y = k_si * t_die * cell_w / cell_h;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (c + 1 < cols_)
        builder.add_conductance(cell_index(c, r), cell_index(c + 1, r), g_x);
      if (r + 1 < rows_)
        builder.add_conductance(cell_index(c, r), cell_index(c, r + 1), g_y);
    }
  }

  // Vertical path per cell: silicon half thickness in series with the TIM,
  // into the owning tile's spreader node.
  const double g_si = k_si * cell_area / (t_die / 2.0);
  const double g_tim =
      package_.tim_k_w_per_mk * cell_area / package_.tim_thickness_m;
  const double g_vert = g_si * g_tim / (g_si + g_tim);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const Rect rect = cell_rect(c, r);
      const double cx = rect.x + rect.w / 2;
      const double cy = rect.y + rect.h / 2;
      const int tx = std::min(floorplan_.tiles_x() - 1,
                              static_cast<int>(cx / floorplan_.tile_width()));
      const int ty = std::min(
          floorplan_.tiles_y() - 1,
          static_cast<int>(cy / floorplan_.tile_height()));
      const int tile = ty * floorplan_.tiles_x() + tx;
      builder.add_conductance(cell_index(c, r), spreader_node(tile), g_vert);
    }
  }

  // Spreader lateral / spreader->sink / sink lateral / fixed convection —
  // identical topology and parameters to the block model's package layers.
  const double t_spr = package_.spreader_thickness_m;
  const double k_spr = package_.spreader_k_w_per_mk;
  const double scale = package_.spreader_lateral_scale;
  const int tx_n = floorplan_.tiles_x();
  const int ty_n = floorplan_.tiles_y();
  for (int r = 0; r < ty_n; ++r) {
    for (int c = 0; c < tx_n; ++c) {
      const int tile = r * tx_n + c;
      if (c + 1 < tx_n) {
        builder.add_conductance(
            spreader_node(tile), spreader_node(tile + 1),
            scale * k_spr * t_spr * floorplan_.tile_height() /
                floorplan_.tile_width());
        builder.add_conductance(sink_node(tile), sink_node(tile + 1),
                                package_.sink_lateral_g_w_per_k);
      }
      if (r + 1 < ty_n) {
        builder.add_conductance(
            spreader_node(tile), spreader_node(tile + tx_n),
            scale * k_spr * t_spr * floorplan_.tile_width() /
                floorplan_.tile_height());
        builder.add_conductance(sink_node(tile), sink_node(tile + tx_n),
                                package_.sink_lateral_g_w_per_k);
      }
    }
  }
  for (int tile = 0; tile < n_tiles; ++tile) {
    builder.add_conductance(spreader_node(tile), sink_node(tile),
                            package_.spreader_to_sink_g_w_per_k);
    builder.add_to_diagonal(sink_node(tile),
                            package_.convection_fixed_g_w_per_k / n_tiles);
  }
  g_ = builder.build();

  // Component -> cell overlap fractions.
  comp_cells_.resize(floorplan_.component_count());
  for (std::size_t i = 0; i < floorplan_.component_count(); ++i) {
    const Rect& rect = floorplan_.component(i).rect;
    const int c0 = std::max(0, static_cast<int>(rect.x / cell_w));
    const int c1 =
        std::min(cols_ - 1, static_cast<int>(rect.x1() / cell_w));
    const int r0 = std::max(0, static_cast<int>(rect.y / cell_h));
    const int r1 =
        std::min(rows_ - 1, static_cast<int>(rect.y1() / cell_h));
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        const double ov = intersection_area(rect, cell_rect(c, r));
        if (ov > 0.0)
          comp_cells_[i].push_back({cell_index(c, r), ov / rect.area()});
      }
    }
    TECFAN_ASSERT(!comp_cells_[i].empty(), "component covers no cell");
  }
}

linalg::Vector GridThermalModel::steady(std::span<const double> comp_power_w,
                                        double airflow_cfm) const {
  TECFAN_REQUIRE(comp_power_w.size() == floorplan_.component_count(),
                 "component power size mismatch");
  // Assemble G with the airflow convection delta on the sink diagonals.
  linalg::SparseBuilder builder(node_count(), node_count());
  for (std::size_t r = 0; r < g_.rows(); ++r)
    for (std::size_t k = g_.row_offsets()[r]; k < g_.row_offsets()[r + 1];
         ++k)
      builder.add(r, g_.col_indices()[k], g_.values()[k]);
  const int n_tiles = floorplan_.core_count();
  const double extra = (package_.convection_g_total(airflow_cfm) -
                        package_.convection_fixed_g_w_per_k) /
                       n_tiles;
  for (int tile = 0; tile < n_tiles; ++tile)
    builder.add_to_diagonal(sink_node(tile), extra);
  const linalg::SparseMatrix a = builder.build();

  linalg::Vector q(node_count(), 0.0);
  for (std::size_t i = 0; i < floorplan_.component_count(); ++i)
    for (const auto& [cell, frac] : comp_cells_[i])
      q[cell] += comp_power_w[i] * frac;
  const double g_conv_per_tile =
      package_.convection_g_total(airflow_cfm) / n_tiles;
  for (int tile = 0; tile < n_tiles; ++tile)
    q[sink_node(tile)] += g_conv_per_tile * package_.ambient_k;

  linalg::IterativeOptions opts;
  opts.max_iterations = 20000;
  opts.tolerance = 1e-10;
  const linalg::IterativeResult res = linalg::conjugate_gradient(a, q, opts);
  TECFAN_ASSERT(res.converged, "grid CG failed to converge");
  return res.x;
}

linalg::Vector GridThermalModel::component_temps(
    std::span<const double> node_temps) const {
  TECFAN_REQUIRE(node_temps.size() == node_count(),
                 "node temps size mismatch");
  linalg::Vector out(floorplan_.component_count(), 0.0);
  for (std::size_t i = 0; i < floorplan_.component_count(); ++i) {
    double t = 0.0, w = 0.0;
    for (const auto& [cell, frac] : comp_cells_[i]) {
      t += node_temps[cell] * frac;
      w += frac;
    }
    out[i] = t / w;
  }
  return out;
}

double GridThermalModel::peak_die_temp(
    std::span<const double> node_temps) const {
  TECFAN_REQUIRE(node_temps.size() == node_count(),
                 "node temps size mismatch");
  double peak = 0.0;
  for (std::size_t i = 0; i < cell_count(); ++i)
    peak = std::max(peak, node_temps[i]);
  return peak;
}

}  // namespace tecfan::thermal
