// Thin-film thermoelectric cooler (TEC) device model.
//
// Per the paper (Sec. IV-C), each core tile carries a 3x3 array of
// 0.5 mm x 0.5 mm film TECs embedded in the TIM over the logic region,
// each switched on/off by a power transistor at a fixed drive current
// (6 A — the paper notes >8 A risks overheating). An active device pumps
// Peltier heat alpha*I*T from its cold (die-side) face to its hot
// (spreader-side) face, dissipates Joule heat I^2*r split between the faces,
// and always conducts kappa*(Th - Tc) passively. Electrical input power is
// Eq. (9): P = r I^2 + alpha I (Th - Tc).
#pragma once

#include <cstddef>

#include "thermal/floorplan.h"

namespace tecfan::thermal {

struct TecParameters {
  int grid = 3;                  // grid x grid devices per tile
  double device_w_m = 0.5e-3;    // film footprint (0.5 mm x 0.5 mm [10])
  double device_h_m = 0.5e-3;
  // Tile-local region the array covers (the logic blocks; "most core area").
  Rect coverage_region{0.0, 0.0, 1.5e-3, 2.0e-3};
  double seebeck_v_per_k = 7.5e-4;  // module Seebeck coefficient (alpha)
  double resistance_ohm = 1e-3;     // module electrical resistance (r)
  double conductance_w_per_k = 0.15;  // passive kappa through the film stack
  /// Hot-face -> spreader contact conductance [W/K]; the bottleneck that
  /// makes Peltier relief saturate (back-heating) after a few kelvin.
  double hot_contact_g_w_per_k = 0.045;
  double drive_current_a = 6.0;     // fixed switched drive (Sec. III)
  double engage_delay_s = 20e-6;    // Peltier engage time [9]
  double face_capacitance_j_per_k = 2e-5;  // thin-film faces: tiny C

  int devices_per_tile() const { return grid * grid; }

  /// Peltier heat absorbed at the cold face per kelvin of absolute cold-face
  /// temperature: alpha * I.
  double pumping_w_per_k() const { return seebeck_v_per_k * drive_current_a; }

  /// Joule heat deposited into EACH face when the device is on: I^2 r / 2.
  double joule_per_face_w() const {
    return 0.5 * drive_current_a * drive_current_a * resistance_ohm;
  }

  /// Electrical input power for a given face temperature difference
  /// delta_theta = Th - Tc (Eq. 9). Valid for an active device.
  double electrical_power_w(double delta_theta_k) const {
    return resistance_ohm * drive_current_a * drive_current_a +
           seebeck_v_per_k * drive_current_a * delta_theta_k;
  }

  /// Device footprint rectangle (chip-global) for device d of a tile whose
  /// rect is `tile`: devices sit on a grid x grid lattice centred in the
  /// coverage region.
  Rect device_rect(const Rect& tile, int d) const;
};

}  // namespace tecfan::thermal
