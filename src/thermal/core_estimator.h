// Per-core reduced thermal estimator — the Sec. III-E hardware path.
//
// "Since the inter-core thermal impact is limited in tile-structured
//  many-core architectures, we only evaluate the temperature of one core
//  each time."
//
// The estimator extracts one tile's sub-network from the full chip model
// (18 die components + 9 TEC cold faces + 9 hot faces = 36 nodes), holds
// every boundary node (neighbouring tiles' die components, the tile's
// spreader node) at its last observed/estimated temperature, and solves the
// conditioned steady-state system. Nodes are re-ordered with reverse
// Cuthill–McKee so the local conductance matrix is a genuine band matrix —
// the property the paper's systolic-array hardware estimate rests on — and
// factored with the banded LU.
//
// By construction the estimate is *exact* when the boundary temperatures
// equal the true global solution; in operation the boundary lag is one more
// (small) source of controller error.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "linalg/banded.h"
#include "thermal/network.h"

namespace tecfan::thermal {

class CoreEstimator {
 public:
  CoreEstimator(std::shared_ptr<const ChipThermalModel> model, int core);

  int core() const { return core_; }
  std::size_t local_node_count() const { return locals_.size(); }

  /// Half bandwidth of the RCM-ordered local conductance matrix (the K-ish
  /// quantity behind the paper's M x K multiplier count).
  std::size_t bandwidth() const { return bandwidth_; }

  /// Global node ids of the local nodes, in local order.
  const std::vector<std::size_t>& local_to_global() const { return locals_; }

  /// Local index of this core's component c (0..17), in the local vector
  /// returned by steady().
  std::size_t local_of_component(int local_component) const;

  /// Local indices of device d's (0..8) cold and hot faces.
  std::size_t local_cold(int device) const;
  std::size_t local_hot(int device) const;

  /// Conditioned steady solve. comp_power: power of this core's 18
  /// components (local component order); tec_on: this core's 9 devices;
  /// boundary_temps: the FULL global node temperature vector, of which only
  /// boundary entries are read.
  linalg::Vector steady(std::span<const double> comp_power,
                        std::span<const std::uint8_t> tec_on,
                        std::span<const double> boundary_temps) const;

  /// Eq. (5) exponential blend for the local nodes.
  linalg::Vector exponential(std::span<const double> steady_local,
                             std::span<const double> prev_local,
                             double dt_s) const;

 private:
  std::shared_ptr<const ChipThermalModel> model_;
  int core_;
  std::vector<std::size_t> locals_;           // local -> global
  std::vector<std::ptrdiff_t> global_to_local_;  // -1 when not local
  std::vector<std::size_t> comp_local_;       // component (0..17) -> local
  std::vector<std::size_t> dev_global_;       // device (0..8) -> global TEC id
  linalg::BandMatrix base_band_;              // RCM-ordered local G
  std::size_t bandwidth_ = 0;
  // Boundary couplings: (local index, global boundary node, conductance).
  struct Boundary {
    std::size_t local;
    std::size_t global;
    double g;
  };
  std::vector<Boundary> boundary_;
  std::vector<double> tau_;  // per local node
};

}  // namespace tecfan::thermal
