#include "thermal/network.h"

#include <cmath>

#include "util/error.h"

namespace tecfan::thermal {
namespace {

/// Series combination of two conductances (0 if either path is absent).
double series_g(double a, double b) {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return a * b / (a + b);
}

double center_distance(const Rect& a, const Rect& b) {
  const double dx = (a.x + a.w / 2) - (b.x + b.w / 2);
  const double dy = (a.y + a.h / 2) - (b.y + b.h / 2);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

ChipThermalModel::ChipThermalModel(Floorplan floorplan,
                                   PackageParameters package,
                                   TecParameters tec)
    : floorplan_(std::move(floorplan)),
      package_(package),
      tec_(tec) {
  tec_count_ = static_cast<std::size_t>(floorplan_.core_count()) *
               static_cast<std::size_t>(tec_.devices_per_tile());
  node_count_ = component_count() + 2 * tec_count_ + 2 * tile_count();
  build();
}

int ChipThermalModel::tec_tile(std::size_t t) const {
  TECFAN_REQUIRE(t < tec_count_, "TEC index out of range");
  return static_cast<int>(t / static_cast<std::size_t>(
                                  tec_.devices_per_tile()));
}

std::size_t ChipThermalModel::tec_base_of_tile(int tile) const {
  TECFAN_REQUIRE(tile >= 0 && tile < floorplan_.core_count(),
                 "tile out of range");
  return static_cast<std::size_t>(tile) *
         static_cast<std::size_t>(tec_.devices_per_tile());
}

const std::vector<std::pair<std::size_t, double>>&
ChipThermalModel::tec_footprint(std::size_t t) const {
  TECFAN_REQUIRE(t < tec_count_, "TEC index out of range");
  return footprints_[t];
}

const std::vector<std::size_t>& ChipThermalModel::tecs_over(
    std::size_t comp) const {
  TECFAN_REQUIRE(comp < component_count(), "component index out of range");
  return tecs_over_comp_[comp];
}

void ChipThermalModel::build() {
  const std::size_t n_comp = component_count();
  const std::size_t n_tiles = tile_count();
  const double t_die = package_.die_thickness_m;
  const double k_si = package_.silicon_k_w_per_mk;
  const double t_tim = package_.tim_thickness_m;
  const double k_tim = package_.tim_k_w_per_mk;

  // TEC footprints: overlap of each device rect with the die components.
  footprints_.assign(tec_count_, {});
  tecs_over_comp_.assign(n_comp, {});
  std::vector<double> covered_area(n_comp, 0.0);
  for (std::size_t t = 0; t < tec_count_; ++t) {
    const int tile = tec_tile(t);
    const int local = static_cast<int>(
        t - tec_base_of_tile(tile));
    const Rect dev = tec_.device_rect(floorplan_.tile_rect(tile), local);
    for (std::size_t c : floorplan_.components_of_core(tile)) {
      const double a = intersection_area(dev, floorplan_.component(c).rect);
      if (a <= 0.0) continue;
      footprints_[t].push_back({c, a});
      tecs_over_comp_[c].push_back(t);
      covered_area[c] += a;
    }
  }

  linalg::SparseBuilder builder(node_count_, node_count_);

  // 1. Die lateral conduction between adjacent components.
  for (const auto& adj : floorplan_.adjacency()) {
    const Rect& ra = floorplan_.component(adj.a).rect;
    const Rect& rb = floorplan_.component(adj.b).rect;
    const double dist = center_distance(ra, rb);
    if (dist <= 0.0) continue;
    const double g = k_si * t_die * adj.edge_m / dist;
    builder.add_conductance(adj.a, adj.b, g);
  }

  // 2. Die -> TEC cold faces (silicon half-thickness over the overlap).
  for (std::size_t t = 0; t < tec_count_; ++t) {
    for (const auto& [c, area] : footprints_[t]) {
      const double g = k_si * area / (t_die / 2.0);
      builder.add_conductance(die_node(c), tec_cold_node(t), g);
    }
  }

  // 3. Die -> spreader direct path over the TEC-free area of each component
  //    (silicon half-thickness in series with the TIM).
  for (std::size_t c = 0; c < n_comp; ++c) {
    const double area =
        floorplan_.component(c).rect.area() - covered_area[c];
    TECFAN_ASSERT(area >= -1e-12, "TEC coverage exceeds component area");
    if (area <= 0.0) continue;
    const double g_si = k_si * area / (t_die / 2.0);
    const double g_tim = k_tim * area / t_tim;
    const std::size_t spr =
        spreader_node(static_cast<std::size_t>(floorplan_.component(c).core));
    builder.add_conductance(die_node(c), spr, series_g(g_si, g_tim));
  }

  // 4. TEC internal conduction (cold <-> hot) and hot face -> spreader.
  const double g_hot_spr = tec_.hot_contact_g_w_per_k;
  for (std::size_t t = 0; t < tec_count_; ++t) {
    builder.add_conductance(tec_cold_node(t), tec_hot_node(t),
                            tec_.conductance_w_per_k);
    const std::size_t spr = spreader_node(
        static_cast<std::size_t>(tec_tile(t)));
    builder.add_conductance(tec_hot_node(t), spr, g_hot_spr);
  }

  // 5. Spreader lateral conduction between adjacent tile columns.
  const double tile_w = floorplan_.tile_width();
  const double tile_h = floorplan_.tile_height();
  const int tx = floorplan_.tiles_x();
  const int ty = floorplan_.tiles_y();
  const double t_spr = package_.spreader_thickness_m;
  const double k_spr = package_.spreader_k_w_per_mk;
  const double scale = package_.spreader_lateral_scale;
  for (int r = 0; r < ty; ++r) {
    for (int c = 0; c < tx; ++c) {
      const std::size_t tile = static_cast<std::size_t>(r * tx + c);
      if (c + 1 < tx) {
        const double g = scale * k_spr * t_spr * tile_h / tile_w;
        builder.add_conductance(spreader_node(tile), spreader_node(tile + 1),
                                g);
        builder.add_conductance(
            sink_node(tile), sink_node(tile + 1),
            package_.sink_lateral_g_w_per_k);
      }
      if (r + 1 < ty) {
        const std::size_t below = tile + static_cast<std::size_t>(tx);
        const double g = scale * k_spr * t_spr * tile_w / tile_h;
        builder.add_conductance(spreader_node(tile), spreader_node(below), g);
        builder.add_conductance(sink_node(tile), sink_node(below),
                                package_.sink_lateral_g_w_per_k);
      }
    }
  }

  // 6. Spreader -> sink, and the fixed part of sink -> ambient convection.
  const double g_conv_fixed =
      package_.convection_fixed_g_w_per_k / static_cast<double>(n_tiles);
  for (std::size_t tile = 0; tile < n_tiles; ++tile) {
    builder.add_conductance(spreader_node(tile), sink_node(tile),
                            package_.spreader_to_sink_g_w_per_k);
    builder.add_to_diagonal(sink_node(tile), g_conv_fixed);
  }

  g0_ = builder.build();

  // Capacitances.
  capacitance_.assign(node_count_, 0.0);
  for (std::size_t c = 0; c < n_comp; ++c) {
    capacitance_[die_node(c)] =
        package_.silicon_c_j_per_m3k * floorplan_.component(c).rect.area() *
        t_die;
  }
  for (std::size_t t = 0; t < tec_count_; ++t) {
    capacitance_[tec_cold_node(t)] = tec_.face_capacitance_j_per_k;
    capacitance_[tec_hot_node(t)] = tec_.face_capacitance_j_per_k;
  }
  const double tile_area = tile_w * tile_h;
  for (std::size_t tile = 0; tile < n_tiles; ++tile) {
    capacitance_[spreader_node(tile)] = package_.spreader_c_j_per_m3k *
                                        tile_area * t_spr *
                                        package_.spreader_area_scale;
    capacitance_[sink_node(tile)] =
        package_.sink_capacitance_total_j_per_k /
        static_cast<double>(n_tiles);
  }

  // Per-node time constants from the base matrix diagonal.
  tau_.assign(node_count_, 0.0);
  const linalg::Vector diag = g0_.diagonal();
  for (std::size_t i = 0; i < node_count_; ++i) {
    TECFAN_ASSERT(diag[i] > 0.0, "isolated thermal node");
    tau_[i] = capacitance_[i] / diag[i];
  }
}

std::vector<std::pair<std::size_t, double>>
ChipThermalModel::diagonal_updates(const CoolingState& state) const {
  TECFAN_REQUIRE(state.tec_on.size() == tec_count_,
                 "cooling state TEC vector size mismatch");
  std::vector<std::pair<std::size_t, double>> updates;
  const double pump = tec_.pumping_w_per_k();
  for (std::size_t t = 0; t < tec_count_; ++t) {
    if (!state.tec_on[t]) continue;
    updates.emplace_back(tec_cold_node(t), +pump);
    updates.emplace_back(tec_hot_node(t), -pump);
  }
  if (state.airflow_cfm > 0.0) {
    const double extra =
        (package_.convection_g_total(state.airflow_cfm) -
         package_.convection_fixed_g_w_per_k) /
        static_cast<double>(tile_count());
    for (std::size_t tile = 0; tile < tile_count(); ++tile)
      updates.emplace_back(sink_node(tile), extra);
  }
  return updates;
}

linalg::Vector ChipThermalModel::assemble_rhs(
    std::span<const double> comp_power_w, const CoolingState& state) const {
  TECFAN_REQUIRE(comp_power_w.size() == component_count(),
                 "component power vector size mismatch");
  TECFAN_REQUIRE(state.tec_on.size() == tec_count_,
                 "cooling state TEC vector size mismatch");
  linalg::Vector q(node_count_, 0.0);
  for (std::size_t c = 0; c < component_count(); ++c)
    q[die_node(c)] = comp_power_w[c];
  const double joule = tec_.joule_per_face_w();
  for (std::size_t t = 0; t < tec_count_; ++t) {
    if (!state.tec_on[t]) continue;
    q[tec_cold_node(t)] += joule;
    q[tec_hot_node(t)] += joule;
  }
  const double g_conv_per_tile =
      package_.convection_g_total(state.airflow_cfm) /
      static_cast<double>(tile_count());
  for (std::size_t tile = 0; tile < tile_count(); ++tile)
    q[sink_node(tile)] += g_conv_per_tile * package_.ambient_k;
  return q;
}

double ChipThermalModel::tec_electrical_power(std::span<const double> temps,
                                              std::size_t t, bool on) const {
  TECFAN_REQUIRE(temps.size() == node_count_, "temps vector size mismatch");
  TECFAN_REQUIRE(t < tec_count_, "TEC index out of range");
  if (!on) return 0.0;
  const double dtheta = temps[tec_hot_node(t)] - temps[tec_cold_node(t)];
  return tec_.electrical_power_w(dtheta);
}

double ChipThermalModel::total_tec_power(std::span<const double> temps,
                                         const CoolingState& state) const {
  TECFAN_REQUIRE(state.tec_on.size() == tec_count_,
                 "cooling state TEC vector size mismatch");
  double total = 0.0;
  for (std::size_t t = 0; t < tec_count_; ++t)
    if (state.tec_on[t])
      total += tec_electrical_power(temps, t, /*on=*/true);
  return total;
}

CoolingState ChipThermalModel::make_cooling_state(double airflow_cfm) const {
  CoolingState s;
  s.tec_on.assign(tec_count_, 0);
  s.airflow_cfm = airflow_cfm;
  return s;
}

}  // namespace tecfan::thermal
