#include "thermal/tec_device.h"

#include "util/error.h"

namespace tecfan::thermal {

Rect TecParameters::device_rect(const Rect& tile, int d) const {
  TECFAN_REQUIRE(d >= 0 && d < devices_per_tile(), "device index out of range");
  const int col = d % grid;
  const int row = d / grid;
  // Lattice of cell centres spread evenly over the coverage region.
  const double cell_w = coverage_region.w / grid;
  const double cell_h = coverage_region.h / grid;
  const double cx =
      tile.x + coverage_region.x + (col + 0.5) * cell_w;
  const double cy =
      tile.y + coverage_region.y + (row + 0.5) * cell_h;
  return {cx - device_w_m / 2.0, cy - device_h_m / 2.0, device_w_m,
          device_h_m};
}

}  // namespace tecfan::thermal
