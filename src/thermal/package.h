// Package stack parameters: die, TIM, heat spreader, heat sink, and the
// fan-driven convection boundary.
//
// Convection follows the standard forced-convection law: the sink-to-ambient
// conductance is G = G_fixed + c * CFM^0.8, where the fixed term models
// natural convection/case losses and the airflow term the fan. The fan speed
// table itself (RPM/CFM/W per level) lives in src/power/fan.h; the thermal
// layer only consumes an airflow value, keeping the dependency one-way.
#pragma once

namespace tecfan::thermal {

struct PackageParameters {
  // Die.
  double die_thickness_m = 0.2e-3;
  double silicon_k_w_per_mk = 120.0;
  double silicon_c_j_per_m3k = 1.75e6;

  // Thermal interface material (the layer the TECs are embedded in).
  double tim_thickness_m = 20e-6;
  double tim_k_w_per_mk = 2.2;
  double tim_c_j_per_m3k = 2.0e6;

  // Copper heat spreader. The spreader overhangs the die; area_scale
  // multiplies per-tile capacitance and spreader->sink conductance to
  // account for the overhang without modelling extra nodes.
  double spreader_thickness_m = 2e-3;
  double spreader_k_w_per_mk = 400.0;
  double spreader_c_j_per_m3k = 3.55e6;
  double spreader_area_scale = 2.5;
  /// Lateral spreading multiplier (decoupled from the capacitance overhang
  /// scale; calibrated against the 4-thread Table I hot-cluster cases).
  double spreader_lateral_scale = 0.35;

  // Spreader -> sink base contact + fin conduction, per tile column.
  double spreader_to_sink_g_w_per_k = 2.5;

  // Heat sink. Total capacitance follows the paper's "hundreds of J/K";
  // with the convection below this yields the 15-30 s sink time constant
  // of [4].
  double sink_capacitance_total_j_per_k = 200.0;
  double sink_lateral_g_w_per_k = 0.35;

  // Convection to ambient, chip totals: G = fixed + coeff * CFM^exponent.
  double convection_fixed_g_w_per_k = 3.2;
  double convection_cfm_coeff = 0.0756;
  double convection_exponent = 0.8;

  // Ambient (inside-case) temperature.
  double ambient_k = 318.15;  // 45 C

  /// Total sink->ambient conductance at a given airflow [W/K].
  double convection_g_total(double airflow_cfm) const;
};

}  // namespace tecfan::thermal
