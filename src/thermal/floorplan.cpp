#include "thermal/floorplan.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tecfan::thermal {
namespace {

constexpr double kMm = 1e-3;
constexpr double kTileW = 2.6 * kMm;
constexpr double kTileH = 3.6 * kMm;

struct LocalBlock {
  ComponentKind kind;
  double x, y, w, h;  // mm, tile-local
};

// Tile-local layout approximating Fig. 3: 13 logic blocks in the upper-left
// 1.5 x 2.0 mm region, the VR column on the right (2.2 mm^2 per Sec. IV-A),
// L1 caches, the private L2 and the router strip at the bottom.
constexpr LocalBlock kTileLayout[kComponentsPerTile] = {
    {ComponentKind::kFpMap, 0.00, 0.0, 0.50, 0.4},
    {ComponentKind::kIntMap, 0.50, 0.0, 0.50, 0.4},
    {ComponentKind::kIntQ, 1.00, 0.0, 0.50, 0.4},
    {ComponentKind::kIntReg, 0.00, 0.4, 0.75, 0.4},
    {ComponentKind::kIntExec, 0.75, 0.4, 0.75, 0.4},
    {ComponentKind::kFpMul, 0.00, 0.8, 0.50, 0.4},
    {ComponentKind::kFpReg, 0.50, 0.8, 0.50, 0.4},
    {ComponentKind::kFpQ, 1.00, 0.8, 0.50, 0.4},
    {ComponentKind::kFpAdd, 0.00, 1.2, 0.50, 0.4},
    {ComponentKind::kLdStQ, 0.50, 1.2, 0.50, 0.4},
    {ComponentKind::kItb, 1.00, 1.2, 0.50, 0.4},
    {ComponentKind::kBpred, 0.00, 1.6, 0.75, 0.4},
    {ComponentKind::kDtb, 0.75, 1.6, 0.75, 0.4},
    {ComponentKind::kVoltReg, 1.50, 0.0, 1.10, 2.0},
    {ComponentKind::kICache, 0.00, 2.0, 1.30, 0.5},
    {ComponentKind::kDCache, 1.30, 2.0, 1.30, 0.5},
    {ComponentKind::kL2, 0.00, 2.5, 2.60, 0.8},
    {ComponentKind::kRouter, 0.00, 3.3, 2.60, 0.3},
};

}  // namespace

const char* component_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kFpMap:
      return "FPMap";
    case ComponentKind::kIntMap:
      return "IntMap";
    case ComponentKind::kIntQ:
      return "Int_Q";
    case ComponentKind::kIntReg:
      return "IntReg";
    case ComponentKind::kIntExec:
      return "IntExec";
    case ComponentKind::kFpMul:
      return "FPMul";
    case ComponentKind::kFpReg:
      return "FPReg";
    case ComponentKind::kFpQ:
      return "FP_Q";
    case ComponentKind::kFpAdd:
      return "FPAdd";
    case ComponentKind::kLdStQ:
      return "LdSt_Q";
    case ComponentKind::kItb:
      return "ITB";
    case ComponentKind::kBpred:
      return "Bpred";
    case ComponentKind::kDtb:
      return "DTB";
    case ComponentKind::kVoltReg:
      return "VR";
    case ComponentKind::kICache:
      return "i-cache";
    case ComponentKind::kDCache:
      return "d-cache";
    case ComponentKind::kL2:
      return "L2";
    case ComponentKind::kRouter:
      return "Router";
  }
  return "?";
}

bool is_logic_block(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kVoltReg:
    case ComponentKind::kICache:
    case ComponentKind::kDCache:
    case ComponentKind::kL2:
    case ComponentKind::kRouter:
      return false;
    default:
      return true;
  }
}

double intersection_area(const Rect& a, const Rect& b) {
  const double w =
      std::min(a.x1(), b.x1()) - std::max(a.x, b.x);
  const double h =
      std::min(a.y1(), b.y1()) - std::max(a.y, b.y);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

double shared_edge_length(const Rect& a, const Rect& b) {
  constexpr double kTol = 1e-9;
  // Vertical shared edge: a's right touching b's left or vice versa.
  if (std::abs(a.x1() - b.x) < kTol || std::abs(b.x1() - a.x) < kTol) {
    const double overlap = std::min(a.y1(), b.y1()) - std::max(a.y, b.y);
    if (overlap > kTol) return overlap;
  }
  // Horizontal shared edge.
  if (std::abs(a.y1() - b.y) < kTol || std::abs(b.y1() - a.y) < kTol) {
    const double overlap = std::min(a.x1(), b.x1()) - std::max(a.x, b.x);
    if (overlap > kTol) return overlap;
  }
  return 0.0;
}

std::string Component::name() const {
  return std::string(component_name(kind)) + "@c" + std::to_string(core);
}

Floorplan Floorplan::scc(int tiles_x, int tiles_y) {
  TECFAN_REQUIRE(tiles_x > 0 && tiles_y > 0, "tile grid must be positive");
  Floorplan fp;
  fp.tiles_x_ = tiles_x;
  fp.tiles_y_ = tiles_y;
  fp.tile_w_ = kTileW;
  fp.tile_h_ = kTileH;
  fp.components_.reserve(static_cast<std::size_t>(tiles_x) * tiles_y *
                         kComponentsPerTile);
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const int core = ty * tiles_x + tx;
      const double ox = tx * kTileW;
      const double oy = ty * kTileH;
      for (const LocalBlock& b : kTileLayout) {
        Component c;
        c.kind = b.kind;
        c.core = core;
        c.rect = {ox + b.x * kMm, oy + b.y * kMm, b.w * kMm, b.h * kMm};
        fp.components_.push_back(c);
      }
    }
  }
  // Lateral adjacency across the whole chip, O(n^2) once at build time.
  for (std::size_t i = 0; i < fp.components_.size(); ++i) {
    for (std::size_t j = i + 1; j < fp.components_.size(); ++j) {
      const double edge = shared_edge_length(fp.components_[i].rect,
                                             fp.components_[j].rect);
      if (edge > 0.0) fp.adjacency_.push_back({i, j, edge});
    }
  }
  return fp;
}

std::size_t Floorplan::index_of(int core, ComponentKind kind) const {
  TECFAN_REQUIRE(core >= 0 && core < core_count(), "core out of range");
  return static_cast<std::size_t>(core) * kComponentsPerTile +
         static_cast<std::size_t>(kind);
}

std::vector<std::size_t> Floorplan::components_of_core(int core) const {
  TECFAN_REQUIRE(core >= 0 && core < core_count(), "core out of range");
  std::vector<std::size_t> idx(kComponentsPerTile);
  for (int k = 0; k < kComponentsPerTile; ++k)
    idx[static_cast<std::size_t>(k)] =
        static_cast<std::size_t>(core) * kComponentsPerTile +
        static_cast<std::size_t>(k);
  return idx;
}

Rect Floorplan::tile_rect(int core) const {
  TECFAN_REQUIRE(core >= 0 && core < core_count(), "core out of range");
  const int tx = core % tiles_x_;
  const int ty = core / tiles_x_;
  return {tx * tile_w_, ty * tile_h_, tile_w_, tile_h_};
}

}  // namespace tecfan::thermal
