#include "thermal/solvers.h"

#include <cmath>

#include "util/error.h"

namespace tecfan::thermal {
namespace {

/// Every node diagonal_updates() can ever touch: TEC cold/hot faces and the
/// sink convection nodes. Pre-warming exactly this set makes later
/// inverse_column() reads lock-free for all knob settings.
std::vector<std::size_t> updatable_nodes(const ChipThermalModel& model) {
  std::vector<std::size_t> nodes;
  nodes.reserve(2 * model.tec_count() + model.tile_count());
  for (std::size_t t = 0; t < model.tec_count(); ++t) {
    nodes.push_back(model.tec_cold_node(t));
    nodes.push_back(model.tec_hot_node(t));
  }
  for (std::size_t tile = 0; tile < model.tile_count(); ++tile)
    nodes.push_back(model.sink_node(tile));
  return nodes;
}

}  // namespace

ThermalEngine::ThermalEngine(std::shared_ptr<const ChipThermalModel> model,
                             double transient_dt_s,
                             linalg::SolveBackend backend)
    : model_(std::move(model)), transient_dt_s_(transient_dt_s) {
  TECFAN_REQUIRE(model_ != nullptr, "ThermalEngine requires a model");
  TECFAN_REQUIRE(transient_dt_s_ >= 0.0,
                 "ThermalEngine transient dt must be non-negative");
  const std::vector<std::size_t> warm = updatable_nodes(*model_);
  steady_ = std::make_shared<const linalg::FactoredOperator>(
      model_->base_conductance(), warm, backend);
  if (transient_dt_s_ > 0.0) {
    // The implicit-Euler operator G0 + C/dt differs from G0 only on the
    // diagonal, so it shares G0's sparsity (and RCM ordering quality).
    const linalg::SparseMatrix& g0 = model_->base_conductance();
    linalg::SparseBuilder builder(g0.rows(), g0.cols());
    const auto offsets = g0.row_offsets();
    const auto cols = g0.col_indices();
    const auto vals = g0.values();
    for (std::size_t r = 0; r < g0.rows(); ++r)
      for (std::size_t idx = offsets[r]; idx < offsets[r + 1]; ++idx)
        builder.add(r, cols[idx], vals[idx]);
    const auto& c = model_->capacitance();
    for (std::size_t i = 0; i < g0.rows(); ++i)
      builder.add_to_diagonal(i, c[i] / transient_dt_s_);
    transient_ = std::make_shared<const linalg::FactoredOperator>(
        builder.build(), warm, backend);
  }
}

std::size_t ThermalEngine::memory_bytes() const {
  std::size_t bytes = steady_->memory_bytes();
  if (transient_) bytes += transient_->memory_bytes();
  return bytes;
}

std::shared_ptr<const ThermalEngine> make_thermal_engine(
    std::shared_ptr<const ChipThermalModel> model, double transient_dt_s,
    linalg::SolveBackend backend) {
  return std::make_shared<const ThermalEngine>(std::move(model),
                                               transient_dt_s, backend);
}

SteadyStateSolver::SteadyStateSolver(
    std::shared_ptr<const ThermalEngine> engine)
    : engine_(std::move(engine)) {
  TECFAN_REQUIRE(engine_ != nullptr, "SteadyStateSolver requires an engine");
  updater_ = linalg::UpdateWorkspace(engine_->steady_operator());
}

void SteadyStateSolver::refresh_updates(const CoolingState& state) {
  if (state_cached_ && state == cached_state_) return;
  updater_.set_updates(engine_->model().diagonal_updates(state));
  cached_state_ = state;
  state_cached_ = true;
}

linalg::Vector SteadyStateSolver::solve(std::span<const double> comp_power_w,
                                        const CoolingState& state) {
  refresh_updates(state);
  return updater_.solve(engine_->model().assemble_rhs(comp_power_w, state));
}

TransientSolver::TransientSolver(std::shared_ptr<const ThermalEngine> engine)
    : engine_(std::move(engine)) {
  TECFAN_REQUIRE(engine_ != nullptr, "TransientSolver requires an engine");
  TECFAN_REQUIRE(engine_->has_transient(),
                 "TransientSolver requires an engine built with a transient "
                 "substep length");
  updater_ = linalg::UpdateWorkspace(engine_->transient_operator());
}

void TransientSolver::refresh_updates(const CoolingState& state) {
  if (state_cached_ && state == cached_state_) return;
  updater_.set_updates(engine_->model().diagonal_updates(state));
  cached_state_ = state;
  state_cached_ = true;
}

linalg::Vector TransientSolver::step(std::span<const double> temps_k,
                                     std::span<const double> comp_power_w,
                                     const CoolingState& state) {
  const ChipThermalModel& model = engine_->model();
  TECFAN_REQUIRE(temps_k.size() == model.node_count(),
                 "transient step temps size mismatch");
  refresh_updates(state);
  linalg::Vector rhs = model.assemble_rhs(comp_power_w, state);
  const auto& c = model.capacitance();
  const double dt = engine_->transient_dt_s();
  for (std::size_t i = 0; i < rhs.size(); ++i)
    rhs[i] += c[i] / dt * temps_k[i];
  return updater_.solve(rhs);
}

linalg::Vector TransientSolver::advance(linalg::Vector temps_k,
                                        std::span<const double> comp_power_w,
                                        const CoolingState& state,
                                        double duration_s) {
  TECFAN_REQUIRE(duration_s > 0.0, "advance duration must be positive");
  const auto steps =
      static_cast<std::size_t>(std::ceil(duration_s / dt() - 1e-9));
  for (std::size_t s = 0; s < steps; ++s)
    temps_k = step(temps_k, comp_power_w, state);
  return temps_k;
}

linalg::Vector exponential_step(const ChipThermalModel& model,
                                std::span<const double> steady_k,
                                std::span<const double> prev_k, double dt_s) {
  TECFAN_REQUIRE(steady_k.size() == model.node_count() &&
                     prev_k.size() == model.node_count(),
                 "exponential_step size mismatch");
  TECFAN_REQUIRE(dt_s >= 0.0, "dt must be non-negative");
  const auto& tau = model.node_tau();
  linalg::Vector out(steady_k.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double beta = std::exp(-dt_s / tau[i]);
    out[i] = (1.0 - beta) * steady_k[i] + beta * prev_k[i];
  }
  return out;
}

}  // namespace tecfan::thermal
