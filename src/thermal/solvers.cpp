#include "thermal/solvers.h"

#include <cmath>

#include "util/error.h"

namespace tecfan::thermal {
namespace {

std::shared_ptr<const linalg::LuFactorization> factor_base_g(
    const ChipThermalModel& model) {
  return std::make_shared<linalg::LuFactorization>(
      model.base_conductance().to_dense());
}

std::shared_ptr<const linalg::LuFactorization> factor_base_transient(
    const ChipThermalModel& model, double dt) {
  linalg::DenseMatrix a = model.base_conductance().to_dense();
  const auto& c = model.capacitance();
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += c[i] / dt;
  return std::make_shared<linalg::LuFactorization>(std::move(a));
}

}  // namespace

SteadyStateSolver::SteadyStateSolver(
    std::shared_ptr<const ChipThermalModel> model)
    : model_(std::move(model)) {
  TECFAN_REQUIRE(model_ != nullptr, "SteadyStateSolver requires a model");
  updater_ = linalg::DiagonalUpdateSolver(factor_base_g(*model_));
}

void SteadyStateSolver::refresh_updates(const CoolingState& state) {
  if (state_cached_ && state == cached_state_) return;
  updater_.set_updates(model_->diagonal_updates(state));
  cached_state_ = state;
  state_cached_ = true;
}

linalg::Vector SteadyStateSolver::solve(std::span<const double> comp_power_w,
                                        const CoolingState& state) {
  refresh_updates(state);
  return updater_.solve(model_->assemble_rhs(comp_power_w, state));
}

TransientSolver::TransientSolver(std::shared_ptr<const ChipThermalModel> model,
                                 double dt)
    : model_(std::move(model)), dt_(dt) {
  TECFAN_REQUIRE(model_ != nullptr, "TransientSolver requires a model");
  TECFAN_REQUIRE(dt_ > 0.0, "TransientSolver dt must be positive");
  updater_ = linalg::DiagonalUpdateSolver(factor_base_transient(*model_, dt_));
}

void TransientSolver::refresh_updates(const CoolingState& state) {
  if (state_cached_ && state == cached_state_) return;
  updater_.set_updates(model_->diagonal_updates(state));
  cached_state_ = state;
  state_cached_ = true;
}

linalg::Vector TransientSolver::step(std::span<const double> temps_k,
                                     std::span<const double> comp_power_w,
                                     const CoolingState& state) {
  TECFAN_REQUIRE(temps_k.size() == model_->node_count(),
                 "transient step temps size mismatch");
  refresh_updates(state);
  linalg::Vector rhs = model_->assemble_rhs(comp_power_w, state);
  const auto& c = model_->capacitance();
  for (std::size_t i = 0; i < rhs.size(); ++i)
    rhs[i] += c[i] / dt_ * temps_k[i];
  return updater_.solve(rhs);
}

linalg::Vector TransientSolver::advance(linalg::Vector temps_k,
                                        std::span<const double> comp_power_w,
                                        const CoolingState& state,
                                        double duration_s) {
  TECFAN_REQUIRE(duration_s > 0.0, "advance duration must be positive");
  const auto steps =
      static_cast<std::size_t>(std::ceil(duration_s / dt_ - 1e-9));
  for (std::size_t s = 0; s < steps; ++s)
    temps_k = step(temps_k, comp_power_w, state);
  return temps_k;
}

linalg::Vector exponential_step(const ChipThermalModel& model,
                                std::span<const double> steady_k,
                                std::span<const double> prev_k, double dt_s) {
  TECFAN_REQUIRE(steady_k.size() == model.node_count() &&
                     prev_k.size() == model.node_count(),
                 "exponential_step size mismatch");
  TECFAN_REQUIRE(dt_s >= 0.0, "dt must be non-negative");
  const auto& tau = model.node_tau();
  linalg::Vector out(steady_k.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double beta = std::exp(-dt_s / tau[i]);
    out[i] = (1.0 - beta) * steady_k[i] + beta * prev_k[i];
  }
  return out;
}

}  // namespace tecfan::thermal
