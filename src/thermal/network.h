// Full-chip RC thermal network (the HotSpot-equivalent substrate).
//
// Node layout (N = #components, T = #TEC devices, K = #tiles):
//   [0, N)                 die nodes, one per floorplan component
//   [N, N+T)               TEC cold faces (die side)
//   [N+T, N+2T)            TEC hot faces (spreader side)
//   [N+2T, N+2T+K)         heat-spreader nodes, one per tile column
//   [N+2T+K, N+2T+2K)      heat-sink nodes, one per tile column
//
// The *base* conductance matrix G0 has every TEC passive and zero fan
// airflow; every runtime knob is a pure diagonal perturbation of G0
// (Peltier terms +-alpha*I on the TEC faces, added convection on the sink
// nodes), which is what lets the solvers reuse one factorization through
// the Woodbury identity (see linalg/woodbury.h).
//
// Heat balance sign convention: G*T = q, where q collects component power,
// TEC Joule heating, and convection injection g_conv * T_ambient. All
// temperatures are kelvin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "linalg/sparse.h"
#include "thermal/floorplan.h"
#include "thermal/package.h"
#include "thermal/tec_device.h"

namespace tecfan::thermal {

/// The cooling knobs as the thermal layer sees them. (The mapping from fan
/// speed level to airflow lives in src/power/fan.h.)
struct CoolingState {
  std::vector<std::uint8_t> tec_on;  // per device; size == tec_count()
  double airflow_cfm = 0.0;

  bool operator==(const CoolingState&) const = default;
};

class ChipThermalModel {
 public:
  ChipThermalModel(Floorplan floorplan, PackageParameters package,
                   TecParameters tec);

  const Floorplan& floorplan() const { return floorplan_; }
  const PackageParameters& package() const { return package_; }
  const TecParameters& tec() const { return tec_; }

  std::size_t component_count() const {
    return floorplan_.component_count();
  }
  std::size_t tec_count() const { return tec_count_; }
  std::size_t tile_count() const {
    return static_cast<std::size_t>(floorplan_.core_count());
  }
  std::size_t node_count() const { return node_count_; }

  std::size_t die_node(std::size_t comp) const { return comp; }
  std::size_t tec_cold_node(std::size_t t) const {
    return component_count() + t;
  }
  std::size_t tec_hot_node(std::size_t t) const {
    return component_count() + tec_count_ + t;
  }
  std::size_t spreader_node(std::size_t tile) const {
    return component_count() + 2 * tec_count_ + tile;
  }
  std::size_t sink_node(std::size_t tile) const {
    return component_count() + 2 * tec_count_ + tile_count() + tile;
  }

  /// Tile owning TEC device t.
  int tec_tile(std::size_t t) const;
  /// First TEC device index of a tile.
  std::size_t tec_base_of_tile(int tile) const;
  /// (component, overlap area m^2) pairs under TEC device t.
  const std::vector<std::pair<std::size_t, double>>& tec_footprint(
      std::size_t t) const;
  /// TEC devices overlapping component c (empty for uncovered components).
  const std::vector<std::size_t>& tecs_over(std::size_t comp) const;

  /// Base conductance matrix (TECs passive, zero airflow).
  const linalg::SparseMatrix& base_conductance() const { return g0_; }

  /// Per-node heat capacitance [J/K].
  const std::vector<double>& capacitance() const { return capacitance_; }

  /// Per-node RC time constant C_i / G0_ii [s] — the tau used by the
  /// Eq. (5) exponential interpolation.
  const std::vector<double>& node_tau() const { return tau_; }

  /// Diagonal deltas of G for a cooling state (relative to the base).
  std::vector<std::pair<std::size_t, double>> diagonal_updates(
      const CoolingState& state) const;

  /// Heat injection vector q for per-component powers and a cooling state.
  linalg::Vector assemble_rhs(std::span<const double> comp_power_w,
                              const CoolingState& state) const;

  /// Electrical power drawn by TEC device t under node temperatures `temps`
  /// (Eq. 9); zero when the device is off.
  double tec_electrical_power(std::span<const double> temps, std::size_t t,
                              bool on) const;

  /// Sum of Eq. (9) over all active devices.
  double total_tec_power(std::span<const double> temps,
                         const CoolingState& state) const;

  double ambient_k() const { return package_.ambient_k; }

  /// An all-off cooling state of the right size.
  CoolingState make_cooling_state(double airflow_cfm = 0.0) const;

 private:
  void build();

  Floorplan floorplan_;
  PackageParameters package_;
  TecParameters tec_;
  std::size_t tec_count_ = 0;
  std::size_t node_count_ = 0;
  linalg::SparseMatrix g0_;
  std::vector<double> capacitance_;
  std::vector<double> tau_;
  std::vector<std::vector<std::pair<std::size_t, double>>> footprints_;
  std::vector<std::vector<std::size_t>> tecs_over_comp_;
};

}  // namespace tecfan::thermal
