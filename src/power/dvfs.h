// Per-core DVFS operating-point tables.
//
// Level 0 is the fastest point. Eq. (7) of the paper scales dynamic power by
// (F_new/F_old) * (V_new/V_old)^2 between consecutive intervals; dyn_scale()
// provides exactly that ratio. Two built-in tables: an Intel-SCC-style
// 1.0 GHz table for the 16-core study, and a Core i7-3770K-style table for
// the 4-core server study of Sec. V-E.
#pragma once

#include <cstddef>
#include <vector>

namespace tecfan::power {

struct DvfsLevel {
  double freq_hz = 0.0;
  double vdd = 0.0;
};

class DvfsTable {
 public:
  /// Intel SCC-style: 6 levels, 1.0 GHz / 1.1 V down to 0.533 GHz / 0.85 V.
  static DvfsTable scc();

  /// Core i7-3770K-style: 4 levels, 3.5 GHz / 1.25 V down to 2.0 GHz /
  /// 0.95 V (kept to 4 levels so the exhaustive Oracle/OFTEC baselines stay
  /// tractable, matching the paper's reduced 4-core setup).
  static DvfsTable core_i7();

  explicit DvfsTable(std::vector<DvfsLevel> levels);

  int level_count() const { return static_cast<int>(levels_.size()); }
  const DvfsLevel& level(int lvl) const;
  int slowest_level() const { return level_count() - 1; }

  double frequency_hz(int lvl) const { return level(lvl).freq_hz; }

  /// Eq. (7) dynamic power ratio when moving `from` -> `to`.
  double dyn_scale(int from, int to) const;

  /// Eq. (11) frequency (performance) ratio when moving `from` -> `to`.
  double freq_scale(int from, int to) const;

 private:
  std::vector<DvfsLevel> levels_;
};

}  // namespace tecfan::power
