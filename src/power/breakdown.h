// Power accounting buckets (Eq. 8): core dynamic + leakage constitute chip
// power; TEC and fan constitute cooling power.
#pragma once

namespace tecfan::power {

struct PowerBreakdown {
  double dynamic_w = 0.0;
  double leakage_w = 0.0;
  double tec_w = 0.0;
  double fan_w = 0.0;

  double chip_w() const { return dynamic_w + leakage_w; }
  double cooling_w() const { return tec_w + fan_w; }
  double total_w() const { return chip_w() + cooling_w(); }

  PowerBreakdown& operator+=(const PowerBreakdown& o) {
    dynamic_w += o.dynamic_w;
    leakage_w += o.leakage_w;
    tec_w += o.tec_w;
    fan_w += o.fan_w;
    return *this;
  }
};

}  // namespace tecfan::power
