#include "power/fan.h"

#include <cmath>

#include "util/error.h"

namespace tecfan::power {

FanModel::FanModel(std::vector<FanLevel> levels) : levels_(std::move(levels)) {
  TECFAN_REQUIRE(!levels_.empty(), "fan model needs at least one level");
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    TECFAN_REQUIRE(levels_[i].rpm < levels_[i - 1].rpm,
                   "fan levels must be ordered fastest-first");
    TECFAN_REQUIRE(levels_[i].power_w <= levels_[i - 1].power_w,
                   "fan power must not increase at lower speed");
  }
  for (const FanLevel& l : levels_)
    TECFAN_REQUIRE(l.rpm > 0.0 && l.airflow_cfm >= 0.0 && l.power_w >= 0.0,
                   "fan level values must be non-negative");
}

FanModel FanModel::dynatron_r16() {
  // 8 speed levels; power = 14.4 W * (rpm/5000)^3 (cubic fan law, anchored at
  // the paper's 14.4 W level-1 / 3.8 W level-2 quote), airflow linear in RPM
  // with 60 CFM at full speed.
  const double rpms[] = {5000, 3200, 2800, 2400, 2000, 1600, 1200, 800};
  std::vector<FanLevel> levels;
  for (double rpm : rpms) {
    FanLevel l;
    l.rpm = rpm;
    l.airflow_cfm = 60.0 * rpm / 5000.0;
    l.power_w = 14.4 * std::pow(rpm / 5000.0, 3.0);
    levels.push_back(l);
  }
  return FanModel(std::move(levels));
}

const FanLevel& FanModel::level(int lvl) const {
  TECFAN_REQUIRE(lvl >= 0 && lvl < level_count(), "fan level out of range");
  return levels_[static_cast<std::size_t>(lvl)];
}

}  // namespace tecfan::power
