// Speed-adjustable cooling fan model (Dynatron R16-class, per the paper's
// Sec. IV-C and Fig. 4(c)).
//
// The fan exposes discrete speed levels, level 0 being the fastest. Power
// follows the cubic fan law anchored at the paper's quoted values: 14.4 W at
// the highest level and ~3.8 W at the second level; airflow is proportional
// to RPM. The thermal layer consumes airflow (CFM), the energy accounting
// consumes electrical power.
#pragma once

#include <cstddef>
#include <vector>

namespace tecfan::power {

struct FanLevel {
  double rpm = 0.0;
  double airflow_cfm = 0.0;
  double power_w = 0.0;
};

class FanModel {
 public:
  /// Datasheet-shaped table for a Dynatron R16-class 8-level fan.
  static FanModel dynatron_r16();

  /// Build from explicit levels (fastest first); validates ordering.
  explicit FanModel(std::vector<FanLevel> levels);

  int level_count() const { return static_cast<int>(levels_.size()); }
  const FanLevel& level(int lvl) const;
  double power_w(int lvl) const { return level(lvl).power_w; }
  double airflow_cfm(int lvl) const { return level(lvl).airflow_cfm; }
  int slowest_level() const { return level_count() - 1; }

 private:
  std::vector<FanLevel> levels_;
};

}  // namespace tecfan::power
