// Leakage power models.
//
// The controller-side model is the paper's Eq. (6): chip leakage at the TDP
// point plus a linear temperature term, distributed over components in
// proportion to area. The plant uses a second-order polynomial (the paper
// calibrates Wattch leakage to SCC measurements with a quadratic model
// [21]); the small linear-vs-quadratic mismatch is one realistic source of
// controller estimation error.
#pragma once

namespace tecfan::power {

/// Eq. (6): P_leak_m(k) = (P_TDPleak + alpha (T_m(k-1) - T_TDP)) * A_m/A_chip.
struct LinearLeakageModel {
  double p_tdp_leak_w = 18.0;   // chip-total leakage at the TDP temperature
  double t_tdp_k = 363.15;      // 90 C
  double alpha_w_per_k = 0.25;  // chip-total slope

  /// Leakage of a component with area fraction `area_frac` at temperature
  /// `temp_k` (clamped to non-negative).
  double component_leakage_w(double area_frac, double temp_k) const;

  /// Chip-total leakage at a uniform temperature.
  double chip_leakage_w(double temp_k) const {
    return component_leakage_w(1.0, temp_k);
  }
};

/// Plant-side quadratic model:
/// P(T) = p_ref + a (T - T_ref) + c (T - T_ref)^2, with T_ref at ambient.
/// matched_to() picks p_ref and a so that value and slope agree with a
/// LinearLeakageModel at its TDP point. Leakage is convex in temperature,
/// so the linear tangent underestimates the quadratic plant away from the
/// TDP point — a one-sided controller-vs-plant mismatch.
struct QuadraticLeakageModel {
  double t_ref_k = 318.15;  // 45 C
  double p_ref_w = 16.6;
  double a_w_per_k = 0.075;
  double c_w_per_k2 = 2.5e-3;

  /// Build a quadratic model tangent to `linear` at its TDP point with the
  /// given curvature.
  static QuadraticLeakageModel matched_to(const LinearLeakageModel& linear,
                                          double curvature_w_per_k2 = 2.5e-3,
                                          double t_ref_k = 318.15);

  double component_leakage_w(double area_frac, double temp_k) const;
  double chip_leakage_w(double temp_k) const {
    return component_leakage_w(1.0, temp_k);
  }
};

}  // namespace tecfan::power
