#include "power/leakage.h"

#include <algorithm>

#include "util/error.h"

namespace tecfan::power {

double LinearLeakageModel::component_leakage_w(double area_frac,
                                               double temp_k) const {
  TECFAN_REQUIRE(area_frac >= 0.0 && area_frac <= 1.0 + 1e-9,
                 "area fraction out of [0,1]");
  const double chip = p_tdp_leak_w + alpha_w_per_k * (temp_k - t_tdp_k);
  return std::max(0.0, chip) * area_frac;
}

QuadraticLeakageModel QuadraticLeakageModel::matched_to(
    const LinearLeakageModel& linear, double curvature_w_per_k2,
    double t_ref_k) {
  QuadraticLeakageModel q;
  q.t_ref_k = t_ref_k;
  q.c_w_per_k2 = curvature_w_per_k2;
  const double span = linear.t_tdp_k - t_ref_k;
  // Match value and slope at T_TDP:
  //   a + 2 c span = alpha;  p_ref + a span + c span^2 = P_TDPleak.
  q.a_w_per_k = linear.alpha_w_per_k - 2.0 * curvature_w_per_k2 * span;
  q.p_ref_w = linear.p_tdp_leak_w - q.a_w_per_k * span -
              curvature_w_per_k2 * span * span;
  return q;
}

double QuadraticLeakageModel::component_leakage_w(double area_frac,
                                                  double temp_k) const {
  TECFAN_REQUIRE(area_frac >= 0.0 && area_frac <= 1.0 + 1e-9,
                 "area fraction out of [0,1]");
  const double dt = temp_k - t_ref_k;
  const double chip = p_ref_w + a_w_per_k * dt + c_w_per_k2 * dt * dt;
  return std::max(0.0, chip) * area_frac;
}

}  // namespace tecfan::power
