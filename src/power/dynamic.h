// Activity-based dynamic power (the Wattch/CACTI-equivalent substrate).
//
// Each component kind has a peak power density (W/mm^2 at activity 1.0 and
// the top DVFS point); the plant computes per-component dynamic power as
//   P = density(kind) * area * activity * dvfs_scale * workload_scale,
// where dvfs_scale is the Eq. (7) f*V^2 ratio relative to the top level and
// workload_scale is the per-benchmark calibration factor that anchors total
// chip power to the paper's Table I (the paper calibrates Wattch to SCC
// measurements in the same way).
#pragma once

#include <array>

#include "thermal/floorplan.h"

namespace tecfan::power {

class DynamicPowerModel {
 public:
  /// Densities shaped after the SCC calibration: dense OoO logic blocks,
  /// moderate caches, regulator conversion loss, NoC router.
  static DynamicPowerModel scc_calibrated();

  double density_w_per_m2(thermal::ComponentKind kind) const;

  /// Dynamic power of one component.
  double component_power_w(const thermal::Component& comp, double activity,
                           double dvfs_scale, double workload_scale) const;

  /// Chip power at activity 1 and top DVFS for a floorplan — the
  /// normalization basis used when calibrating workload scales.
  double peak_chip_power_w(const thermal::Floorplan& fp) const;

  void set_density_w_per_m2(thermal::ComponentKind kind, double value);

 private:
  std::array<double, thermal::kComponentsPerTile> density_{};  // W/m^2
};

}  // namespace tecfan::power
