#include "power/dvfs.h"

#include "util/error.h"

namespace tecfan::power {

DvfsTable::DvfsTable(std::vector<DvfsLevel> levels)
    : levels_(std::move(levels)) {
  TECFAN_REQUIRE(!levels_.empty(), "DVFS table needs at least one level");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    TECFAN_REQUIRE(levels_[i].freq_hz > 0.0 && levels_[i].vdd > 0.0,
                   "DVFS level values must be positive");
    if (i > 0) {
      TECFAN_REQUIRE(levels_[i].freq_hz < levels_[i - 1].freq_hz,
                     "DVFS levels must be ordered fastest-first");
      TECFAN_REQUIRE(levels_[i].vdd <= levels_[i - 1].vdd,
                     "DVFS voltage must not increase at lower frequency");
    }
  }
}

DvfsTable DvfsTable::scc() {
  return DvfsTable({{1.0e9, 1.10},
                    {0.9e9, 1.05},
                    {0.8e9, 1.00},
                    {0.7e9, 0.95},
                    {0.6e9, 0.90},
                    {0.533e9, 0.85}});
}

DvfsTable DvfsTable::core_i7() {
  return DvfsTable({{3.5e9, 1.25}, {2.9e9, 1.10}, {2.3e9, 1.00},
                    {1.7e9, 0.90}});
}

const DvfsLevel& DvfsTable::level(int lvl) const {
  TECFAN_REQUIRE(lvl >= 0 && lvl < level_count(), "DVFS level out of range");
  return levels_[static_cast<std::size_t>(lvl)];
}

double DvfsTable::dyn_scale(int from, int to) const {
  const DvfsLevel& a = level(from);
  const DvfsLevel& b = level(to);
  const double v_ratio = b.vdd / a.vdd;
  return (b.freq_hz / a.freq_hz) * v_ratio * v_ratio;
}

double DvfsTable::freq_scale(int from, int to) const {
  return level(to).freq_hz / level(from).freq_hz;
}

}  // namespace tecfan::power
