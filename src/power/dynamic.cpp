#include "power/dynamic.h"

#include "util/error.h"

namespace tecfan::power {

using thermal::ComponentKind;

DynamicPowerModel DynamicPowerModel::scc_calibrated() {
  DynamicPowerModel m;
  // W/mm^2 at activity 1.0, top DVFS point (converted to W/m^2 below).
  auto set_mm2 = [&m](ComponentKind kind, double w_per_mm2) {
    m.set_density_w_per_m2(kind, w_per_mm2 * 1e6);
  };
  set_mm2(ComponentKind::kFpMap, 1.2);
  set_mm2(ComponentKind::kIntMap, 1.2);
  set_mm2(ComponentKind::kIntQ, 1.3);
  set_mm2(ComponentKind::kIntReg, 1.5);
  set_mm2(ComponentKind::kIntExec, 1.6);
  set_mm2(ComponentKind::kFpMul, 1.8);
  set_mm2(ComponentKind::kFpReg, 1.5);
  set_mm2(ComponentKind::kFpQ, 1.3);
  set_mm2(ComponentKind::kFpAdd, 1.7);
  set_mm2(ComponentKind::kLdStQ, 1.3);
  set_mm2(ComponentKind::kItb, 1.0);
  set_mm2(ComponentKind::kBpred, 1.1);
  set_mm2(ComponentKind::kDtb, 1.0);
  set_mm2(ComponentKind::kVoltReg, 0.35);
  set_mm2(ComponentKind::kICache, 0.80);
  set_mm2(ComponentKind::kDCache, 0.85);
  set_mm2(ComponentKind::kL2, 0.55);
  set_mm2(ComponentKind::kRouter, 0.70);
  return m;
}

double DynamicPowerModel::density_w_per_m2(ComponentKind kind) const {
  return density_[static_cast<std::size_t>(kind)];
}

void DynamicPowerModel::set_density_w_per_m2(ComponentKind kind,
                                             double value) {
  TECFAN_REQUIRE(value >= 0.0, "power density must be non-negative");
  density_[static_cast<std::size_t>(kind)] = value;
}

double DynamicPowerModel::component_power_w(const thermal::Component& comp,
                                            double activity,
                                            double dvfs_scale,
                                            double workload_scale) const {
  TECFAN_REQUIRE(activity >= 0.0 && activity <= 1.0 + 1e-9,
                 "activity out of [0,1]");
  TECFAN_REQUIRE(dvfs_scale >= 0.0, "dvfs scale must be non-negative");
  TECFAN_REQUIRE(workload_scale >= 0.0,
                 "workload scale must be non-negative");
  return density_w_per_m2(comp.kind) * comp.rect.area() * activity *
         dvfs_scale * workload_scale;
}

double DynamicPowerModel::peak_chip_power_w(
    const thermal::Floorplan& fp) const {
  double total = 0.0;
  for (const auto& comp : fp.components())
    total += density_w_per_m2(comp.kind) * comp.rect.area();
  return total;
}

}  // namespace tecfan::power
