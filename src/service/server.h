// tecfand front-end over one shared chip engine.
//
// The Server owns the expensive state once — a single const sim::ChipEngine
// (models, base factorizations, calibrated workloads) shared by every
// worker — plus the base-scenario threshold cache, the result cache, and
// the worker pool. Each compute constructs a throwaway per-thread
// ChipSimulator workspace over the engine (microseconds, no
// refactorization), so worker count scales without duplicating the
// ~600x600 factored systems and nothing stateful is ever shared between
// threads.
//
//   * handle() executes one request synchronously (used by worker threads,
//     tests and the micro-bench),
//   * serve_pipe() is the stdin/stdout daemon mode: one request line in,
//     one response line out, until `quit` or EOF,
//   * bind_listen()/serve() is the local TCP mode: one thread per accepted
//     connection, each running the same line protocol; compute requests go
//     through the bounded worker pool, so a saturated daemon answers `busy`
//     instead of queueing unboundedly.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/request.h"
#include "service/result_cache.h"
#include "service/worker_pool.h"
#include "sim/chip_engine.h"
#include "sim/chip_simulator.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tecfan::service {

/// Worker-pool size matched to the machine: hardware_concurrency clamped to
/// [2, 16] (0 — unknown — falls back to 2).
std::size_t default_worker_count();

struct ServerOptions {
  std::size_t workers = default_worker_count();
  std::size_t queue_capacity = 64;
  std::size_t cache_capacity = 4096;
  /// Tile grid of the served scenario (tests use small grids; the default
  /// is the calibrated 4x4 SCC chip).
  int tiles_x = 4;
  int tiles_y = 4;
  /// Simulated-time safety cap passed to runs and sweeps.
  double max_sim_time_s = 2.0;
  /// Deadline applied to requests that do not carry their own
  /// deadline_ms; 0 = none.
  double default_deadline_ms = 0.0;
  /// Operator-visible replica name reported by the `stats` verb (tecfand
  /// --name); empty = unnamed. The cluster health monitor and operators
  /// use it to tell fleet members apart.
  std::string instance_name;
  /// Head-of-trace sampling when this daemon is hit directly: 0 disables
  /// tracing, N >= 1 samples every Nth request line. Requests arriving
  /// with a `trace=` field (from the router) are always adopted, so a
  /// backend behind a sampling router needs no flag of its own.
  std::uint64_t trace_every = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Execute one request to completion on the calling thread (cache
  /// consulted first; control kinds answered inline).
  Response handle(const Request& request);

  /// Parse and execute one request line; returns the response line.
  /// Sets *quit when the line was a `quit` request.
  std::string handle_line(const std::string& line, bool* quit = nullptr);

  /// Pipe mode: serve request lines from `in`, one response line per
  /// request on `out`, until EOF or `quit`. Compute requests run on the
  /// worker pool (so deadlines and backpressure behave as in TCP mode).
  void serve_pipe(std::istream& in, std::ostream& out);

  /// Bind a loopback listening socket; port 0 picks an ephemeral port.
  /// Returns the bound port. Call before serve().
  std::uint16_t bind_listen(std::uint16_t port);

  /// Accept loop; returns after stop(). One thread per connection.
  void serve();

  /// Stop the accept loop and open connections, drain the worker pool.
  void stop();

  std::uint16_t bound_port() const { return bound_port_.load(); }

  struct Stats {
    std::uint64_t requests = 0;   // request lines accepted (any kind)
    std::uint64_t computes = 0;   // cache misses actually simulated
    std::uint64_t errors = 0;     // error responses produced (incl. failed
                                  // computes and expired deadlines)
    ResultCache::Stats cache;
    WorkerPool::Stats pool;
    double uptime_s = 0.0;
    /// Shared factored state (one copy regardless of worker count).
    std::size_t engine_bytes = 0;
    /// Largest per-compute workspace observed so far (per worker, not
    /// shared).
    std::size_t workspace_bytes = 0;
  };
  Stats stats() const;

  const ServerOptions& options() const { return options_; }
  const sim::ChipEngine& engine() const { return *engine_; }

  /// Per-stage serving-path telemetry. Histograms (all in microseconds):
  ///   parse       — request line to parsed request (handle_line)
  ///   cache_probe — canonical key build + result-cache lookup
  ///   queue_wait  — worker-pool submit to dequeue (measured by the pool)
  ///   compute     — workspace construction + simulation + response build
  ///   serialize   — response struct to wire line
  ///   e2e_hit     — whole handle_line span of ok cached compute requests
  ///   e2e_miss    — whole handle_line span of ok computed requests
  /// The `metrics` protocol verb dumps the same registry over the wire.
  const MetricsRegistry& metrics() const { return metrics_; }

  /// One coherent dump: refresh the runtime health gauges (worker-pool
  /// queue depth, per-shard cache occupancy, open trace spans) and then
  /// capture every instrument under a single registry lock hold. All dump
  /// paths — the `metrics` verb, `metrics prom`, and the periodic stderr
  /// logger — render from one of these, never from separate registry
  /// walks that could interleave.
  MetricsRegistry::Snapshot metrics_snapshot() const;

  /// Span recorder for this tier (tecfand); the `trace` verb dumps its
  /// completed traces.
  const Tracer& tracer() const { return tracer_; }
  Tracer& tracer() { return tracer_; }

 private:
  /// Dispatch a parsed compute request through the worker pool and wait
  /// for its response (busy / deadline answered without computing).
  Response dispatch(const Request& request);

  Response execute(const Request& request);  // cache-filling slow path
  Response do_equilibrium(sim::ChipSimulator& simulator,
                          const Request& request);
  Response do_run(sim::ChipSimulator& simulator, const Request& request);
  Response do_sweep(sim::ChipSimulator& simulator, const Request& request);
  Response do_table1(sim::ChipSimulator& simulator, const Request& request);
  Response stats_response() const;
  Response metrics_response() const;
  Response trace_response(int limit) const;
  std::string prom_exposition() const;

  /// Base-scenario anchor (Table I protocol) for a workload, memoized:
  /// peak temperature defines the run/sweep threshold.
  sim::RunResult base_scenario(sim::ChipSimulator& simulator,
                               const perf::Workload& wl);

  ServerOptions options_;
  sim::ChipEnginePtr engine_;
  ResultCache cache_;
  // Declared (and so initialized) before pool_: the pool records its
  // queue-wait span into a histogram owned by this registry.
  MetricsRegistry metrics_;
  LatencyHistogram* hist_parse_;
  LatencyHistogram* hist_cache_probe_;
  LatencyHistogram* hist_queue_wait_;
  LatencyHistogram* hist_compute_;
  LatencyHistogram* hist_serialize_;
  LatencyHistogram* hist_e2e_hit_;
  LatencyHistogram* hist_e2e_miss_;
  // Request/compute/error totals live in the registry so the `metrics`
  // verb and the Prometheus exposition see them; Counter::inc is the same
  // relaxed fetch_add the old bare atomics paid.
  Counter* counter_requests_;
  Counter* counter_computes_;
  Counter* counter_errors_;
  // Runtime health gauges, set at dump time from live stats (Gauge::set
  // through a stored pointer is const-safe, so const dump paths refresh
  // them).
  Gauge* gauge_pool_queue_depth_;
  Gauge* gauge_trace_open_spans_;
  std::vector<Gauge*> gauge_cache_shards_;
  Tracer tracer_{TraceTier::kServer};
  WorkerPool pool_;

  std::mutex base_mu_;
  std::map<std::string, sim::RunResult> base_results_;

  std::atomic<std::size_t> workspace_bytes_{0};  // max observed
  std::chrono::steady_clock::time_point started_at_;

  // TCP state. listen_fd_ is handed from bind_listen() to serve() and
  // reclaimed by stop(), which may run on a different thread; the
  // serve_running_ handshake keeps stop() from closing the socket while
  // the accept loop still uses it.
  std::atomic<int> listen_fd_{-1};
  std::atomic<std::uint16_t> bound_port_{0};
  std::atomic<bool> stopping_{false};
  std::mutex serve_mu_;
  std::condition_variable serve_cv_;
  bool serve_running_ = false;
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace tecfan::service
