#include "service/result_cache.h"

#include <functional>

#include "util/error.h"

namespace tecfan::service {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  TECFAN_REQUIRE(capacity > 0, "cache capacity must be positive");
  TECFAN_REQUIRE(shards > 0, "cache shard count must be positive");
  shards = std::min(shards, capacity);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::optional<std::string> ResultCache::get(const std::string& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::put(const std::string& key, std::string value) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  // The configured budget, not per_shard_capacity_ * shards: per-shard
  // rounding would over-report (e.g. 1000 over 16 shards as 1008).
  s.capacity = capacity_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.size += shard->lru.size();
  }
  return s;
}

std::vector<std::size_t> ResultCache::shard_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    sizes.push_back(shard->lru.size());
  }
  return sizes;
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace tecfan::service
