// Line-oriented request/response protocol for the tecfand service layer.
//
// A request is one text line: the request kind followed by space-separated
// key=value parameters, e.g.
//
//   equilibrium workload=cholesky threads=16 fan=2 dvfs=1 tec=on
//   run policy=tecfan workload=lu threads=16 fan=3
//   sweep policy=fan+dvfs workload=fmm threads=16
//   table1 workload=water threads=4
//   ping | stats | metrics | quit
//
// A response is one line: `ok key=value ...`, `busy`, or
// `error msg="..."`. Values containing spaces are double-quoted with
// backslash escapes.
//
// Compute kinds (equilibrium/run/sweep/table1) are deterministic, so a
// request has a *canonical key*: defaults filled in, names lower-cased,
// fields emitted in a fixed order, per-call options (deadline_ms) excluded.
// The canonical key doubles as the result-cache key and as the canonical
// wire serialization (parsing it reproduces the request).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/trace.h"

namespace tecfan::service {

enum class RequestKind {
  kPing,
  kStats,
  kMetrics,
  kQuit,
  kTrace,
  kEquilibrium,
  kRun,
  kSweep,
  kTable1,
};

/// Name of a kind as it appears on the wire.
std::string_view kind_name(RequestKind kind);

struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string workload = "cholesky";  // equilibrium/run/sweep/table1
  int threads = 16;                   // equilibrium/run/sweep/table1
  std::string policy = "tecfan";      // run/sweep
  int fan = 0;                        // equilibrium/run (fixed level)
  int dvfs = 0;                       // equilibrium (uniform level)
  bool tec_on = false;                // equilibrium (all devices)
  double deadline_ms = 0.0;           // any kind; 0 = no deadline
  int trace_limit = 16;               // trace verb: max traces returned
  std::string format;                 // metrics verb: "" (line) or "prom"
  /// Per-call trace context from an optional `trace=<id>-<parent>` field
  /// on compute kinds. Excluded from the canonical key (like
  /// deadline_ms): tracing never changes what is computed or cached.
  TraceContext trace;

  bool is_compute() const {
    return kind == RequestKind::kEquilibrium || kind == RequestKind::kRun ||
           kind == RequestKind::kSweep || kind == RequestKind::kTable1;
  }
};

/// Outcome of parsing one request line.
struct ParsedRequest {
  bool ok = false;
  Request request;
  std::string error;  // set when !ok

  static ParsedRequest success(Request r) { return {true, std::move(r), {}}; }
  static ParsedRequest failure(std::string msg) {
    return {false, {}, std::move(msg)};
  }
};

/// Parse one request line. Rejects unknown kinds, unknown keys for the
/// kind, malformed integers/booleans, and negative levels, with a
/// human-readable error message.
ParsedRequest parse_request(std::string_view line);

/// The canonical request line (fixed field order, defaults filled in,
/// lower-cased names, deadline excluded). Used as the cache key.
std::string canonical_key(const Request& request);

struct Response {
  enum class Status { kOk, kError, kBusy };

  Status status = Status::kOk;
  std::string error;  // when kError
  bool cached = false;
  /// Ordered result fields (insertion order is preserved on the wire).
  std::vector<std::pair<std::string, std::string>> fields;

  static Response make_error(std::string msg) {
    Response r;
    r.status = Status::kError;
    r.error = std::move(msg);
    return r;
  }
  static Response make_busy() {
    Response r;
    r.status = Status::kBusy;
    return r;
  }

  void add(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
  }
  void add(std::string key, double value);
  void add(std::string key, std::uint64_t value);

  /// First value for `key`, if present.
  std::optional<std::string> field(std::string_view key) const;
};

/// One response line (no trailing newline).
std::string serialize_response(const Response& response);

/// Parse a response line produced by serialize_response (used by loadgen
/// and the tests; malformed lines come back as kError with a message).
Response parse_response(std::string_view line);

/// The `metrics` verb's wire form of a registry: per-histogram
/// count/p50/p90/p99/p999/mean/max plus the non-empty buckets as
/// `upper_us:count` pairs, then counters and gauges. Shared by the tecfand
/// Server and the cluster Router so fleet tooling parses one format.
/// The Snapshot overload renders from one coherent registry walk; every
/// dump path (verb, periodic stderr log, prom exposition) should take a
/// single snapshot and render all of its output from it.
Response metrics_to_response(const MetricsRegistry::Snapshot& snapshot);
Response metrics_to_response(const MetricsRegistry& registry);

}  // namespace tecfan::service
