#include "service/task_queue.h"

#include "util/error.h"

namespace tecfan::service {

TaskQueue::TaskQueue(std::size_t capacity) : capacity_(capacity) {
  TECFAN_REQUIRE(capacity > 0, "task queue capacity must be positive");
}

bool TaskQueue::try_push(Task task) {
  TECFAN_REQUIRE(static_cast<bool>(task.run), "task must have work attached");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || tasks_.size() >= capacity_) return false;
    tasks_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Task> TaskQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return std::nullopt;  // closed and drained
  Task task = std::move(tasks_.front());
  tasks_.pop_front();
  return task;
}

void TaskQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

std::deque<Task> TaskQueue::drain() {
  std::deque<Task> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(tasks_);
  }
  return out;
}

std::size_t TaskQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

bool TaskQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace tecfan::service
