#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <istream>
#include <ostream>

#include "core/policy_factory.h"
#include "perf/splash2.h"
#include "service/framing.h"
#include "sim/experiment.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/units.h"

// Build identification for the `stats` verb (git describe at configure
// time; see src/service/CMakeLists.txt). Lets fleet operators and the
// cluster health monitor tell replicas apart.
#ifndef TECFAN_BUILD_INFO
#define TECFAN_BUILD_INFO "unknown"
#endif

namespace tecfan::service {
namespace {

void add_run_fields(Response& r, const sim::RunResult& run) {
  r.add("fan_level", static_cast<std::uint64_t>(run.fan_level));
  r.add("time_ms", run.exec_time_s * 1e3);
  r.add("energy_j", run.energy_j);
  r.add("edp_js", run.edp());
  r.add("avg_power_w", run.avg_total_power_w());
  r.add("peak_t_c", kelvin_to_celsius(run.peak_temp_k));
  r.add("mean_peak_t_c", kelvin_to_celsius(run.mean_peak_temp_k));
  r.add("violations_pct", 100.0 * run.violation_frac);
  r.add("avg_dvfs", run.avg_dvfs);
  r.add("completed", std::string(run.completed ? "1" : "0"));
}

}  // namespace

std::size_t default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 2;
  return std::clamp<std::size_t>(hw, 2, 16);
}

Server::Server(ServerOptions options)
    : options_(options),
      engine_(sim::make_chip_engine(options.tiles_x, options.tiles_y)),
      cache_(options.cache_capacity),
      hist_parse_(&metrics_.histogram("parse")),
      hist_cache_probe_(&metrics_.histogram("cache_probe")),
      hist_queue_wait_(&metrics_.histogram("queue_wait")),
      hist_compute_(&metrics_.histogram("compute")),
      hist_serialize_(&metrics_.histogram("serialize")),
      hist_e2e_hit_(&metrics_.histogram("e2e_hit")),
      hist_e2e_miss_(&metrics_.histogram("e2e_miss")),
      counter_requests_(&metrics_.counter("requests")),
      counter_computes_(&metrics_.counter("computes")),
      counter_errors_(&metrics_.counter("errors")),
      gauge_pool_queue_depth_(&metrics_.gauge("pool_queue_depth")),
      gauge_trace_open_spans_(&metrics_.gauge("trace_open_spans")),
      pool_(options.workers, options.queue_capacity, hist_queue_wait_),
      started_at_(std::chrono::steady_clock::now()) {
  tracer_.set_sample_every(options_.trace_every);
  gauge_cache_shards_.reserve(cache_.shard_count());
  for (std::size_t i = 0; i < cache_.shard_count(); ++i)
    gauge_cache_shards_.push_back(
        &metrics_.gauge("cache_shard" + std::to_string(i) + "_entries"));
}

Server::~Server() { stop(); }

Response Server::handle(const Request& request) {
  counter_requests_->inc();
  switch (request.kind) {
    case RequestKind::kPing: {
      Response r;
      r.add("pong", std::string("1"));
      return r;
    }
    case RequestKind::kQuit: {
      Response r;
      r.add("bye", std::string("1"));
      return r;
    }
    case RequestKind::kStats:
      return stats_response();
    case RequestKind::kMetrics:
      return metrics_response();
    case RequestKind::kTrace:
      return trace_response(request.trace_limit);
    default:
      break;
  }

  const auto probe_start = std::chrono::steady_clock::now();
  ScopedLatencyTimer probe(hist_cache_probe_, probe_start);
  const std::string key = canonical_key(request);
  if (auto hit = cache_.get(key)) {
    probe.stop();
    if (request.trace.sampled)
      tracer_.record(request.trace, SpanName::kCacheProbe, probe_start,
                     std::chrono::steady_clock::now());
    Response r = parse_response(*hit);
    r.cached = true;
    return r;
  }
  probe.stop();
  if (request.trace.sampled)
    tracer_.record(request.trace, SpanName::kCacheProbe, probe_start,
                   std::chrono::steady_clock::now());
  Response r = execute(request);
  if (r.status == Response::Status::kOk) {
    cache_.put(key, serialize_response(r));
  } else {
    counter_errors_->inc();
  }
  return r;
}

Response Server::dispatch(const Request& request) {
  // Serving fast path: answer cache hits on the session thread, without a
  // queue round-trip.
  counter_requests_->inc();
  const auto probe_start = std::chrono::steady_clock::now();
  ScopedLatencyTimer probe(hist_cache_probe_, probe_start);
  const std::string key = canonical_key(request);
  if (auto hit = cache_.get(key)) {
    probe.stop();
    if (request.trace.sampled)
      tracer_.record(request.trace, SpanName::kCacheProbe, probe_start,
                     std::chrono::steady_clock::now());
    Response r = parse_response(*hit);
    r.cached = true;
    return r;
  }
  probe.stop();
  if (request.trace.sampled)
    tracer_.record(request.trace, SpanName::kCacheProbe, probe_start,
                   std::chrono::steady_clock::now());

  auto deadline = std::chrono::steady_clock::time_point::max();
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0)
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(
                   static_cast<std::int64_t>(deadline_ms * 1e3));

  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  const auto submit_time = std::chrono::steady_clock::now();
  const bool accepted = pool_.submit(
      [this, request, promise, submit_time] {
        // Queue residency as a span: the pool records the same interval
        // into the queue_wait histogram; sampled requests additionally
        // pin it to their trace.
        if (request.trace.sampled)
          tracer_.record(request.trace, SpanName::kQueueWait, submit_time,
                         std::chrono::steady_clock::now());
        Response r = execute(request);
        if (r.status == Response::Status::kOk) {
          cache_.put(canonical_key(request), serialize_response(r));
        } else {
          counter_errors_->inc();
        }
        promise->set_value(std::move(r));
      },
      [this, promise] {
        counter_errors_->inc();
        promise->set_value(Response::make_error("deadline exceeded"));
      },
      deadline);
  if (!accepted) return Response::make_busy();
  return future.get();
}

Response Server::execute(const Request& request) {
  counter_computes_->inc();
  // The compute span covers workspace construction, the simulation itself
  // and response assembly — everything between dequeue and serialize.
  ScopedLatencyTimer span(hist_compute_);
  ScopedSpan trace_span(&tracer_, request.trace, SpanName::kCompute);
  try {
    // Per-compute workspace over the shared engine: microseconds to build,
    // nothing mutable crosses threads.
    sim::ChipSimulator simulator(engine_);
    Response r;
    switch (request.kind) {
      case RequestKind::kEquilibrium:
        r = do_equilibrium(simulator, request);
        break;
      case RequestKind::kRun:
        r = do_run(simulator, request);
        break;
      case RequestKind::kSweep:
        r = do_sweep(simulator, request);
        break;
      case RequestKind::kTable1:
        r = do_table1(simulator, request);
        break;
      default:
        return Response::make_error("not a compute request");
    }
    // Record the largest workspace any compute needed (stats/loadgen use
    // this as the per-worker marginal memory cost).
    std::size_t seen = workspace_bytes_.load(std::memory_order_relaxed);
    const std::size_t now = simulator.workspace_bytes();
    while (now > seen &&
           !workspace_bytes_.compare_exchange_weak(
               seen, now, std::memory_order_relaxed)) {
    }
    return r;
  } catch (const std::exception& e) {
    return Response::make_error(e.what());
  }
}

sim::RunResult Server::base_scenario(sim::ChipSimulator& simulator,
                                     const perf::Workload& wl) {
  const std::string key = std::string(wl.name()) + "/" +
                          std::to_string(wl.thread_count());
  {
    std::lock_guard<std::mutex> lock(base_mu_);
    auto it = base_results_.find(key);
    if (it != base_results_.end()) return it->second;
  }
  sim::RunResult base =
      sim::measure_base_scenario(simulator, wl, options_.max_sim_time_s);
  base.trace.clear();  // the anchor numbers are all we keep
  std::lock_guard<std::mutex> lock(base_mu_);
  return base_results_.emplace(key, std::move(base)).first->second;
}

Response Server::do_equilibrium(sim::ChipSimulator& simulator,
                                const Request& request) {
  const auto& models = engine_->models();
  if (request.fan >= models.fan.level_count())
    return Response::make_error("fan level out of range (0.." +
                                std::to_string(models.fan.level_count() - 1) +
                                ")");
  if (request.dvfs >= models.dvfs.level_count())
    return Response::make_error("dvfs level out of range (0.." +
                                std::to_string(models.dvfs.level_count() - 1) +
                                ")");
  auto wl = engine_->workload(request.workload, request.threads);
  const auto& thermal = *models.thermal;
  core::KnobState knobs = core::KnobState::initial(
      thermal.floorplan().core_count(), thermal.tec_count(), request.fan);
  for (int& d : knobs.dvfs) d = request.dvfs;
  for (auto& on : knobs.tec_on) on = request.tec_on ? 1 : 0;

  const linalg::Vector temps = simulator.equilibrium(*wl, knobs);
  double peak = 0.0;
  for (std::size_t c = 0; c < thermal.component_count(); ++c)
    peak = std::max(peak, temps[c]);

  Response r;
  r.add("peak_t_k", peak);
  r.add("peak_t_c", kelvin_to_celsius(peak));
  r.add("fan_w", models.fan.power_w(request.fan));
  return r;
}

Response Server::do_run(sim::ChipSimulator& simulator,
                        const Request& request) {
  const auto& models = engine_->models();
  if (request.fan >= models.fan.level_count())
    return Response::make_error("fan level out of range (0.." +
                                std::to_string(models.fan.level_count() - 1) +
                                ")");
  // Policies share the engine's ControlEngine: one thread's decide() only
  // mutates its own workspace, so run requests stay allocation-light and
  // safely concurrent across the worker pool.
  core::PolicyPtr policy =
      core::make_named_policy(request.policy, engine_->control());
  if (!policy)
    return Response::make_error("unknown policy '" + request.policy + "'");
  auto wl = engine_->workload(request.workload, request.threads);
  const sim::RunResult base = base_scenario(simulator, *wl);

  sim::RunConfig cfg;
  cfg.threshold_k = base.peak_temp_k;
  cfg.fan_level = request.fan;
  cfg.max_sim_time_s = options_.max_sim_time_s;
  cfg.record_trace = false;
  const sim::RunResult run = simulator.run(*policy, *wl, cfg);

  Response r;
  r.add("policy", std::string(run.policy));
  r.add("workload", std::string(run.workload));
  r.add("threshold_c", kelvin_to_celsius(base.peak_temp_k));
  add_run_fields(r, run);
  return r;
}

Response Server::do_sweep(sim::ChipSimulator& simulator,
                          const Request& request) {
  core::PolicyPtr probe =
      core::make_named_policy(request.policy, engine_->control());
  if (!probe)
    return Response::make_error("unknown policy '" + request.policy + "'");
  auto wl = engine_->workload(request.workload, request.threads);
  const sim::RunResult base = base_scenario(simulator, *wl);

  sim::SweepOptions opts;
  opts.threshold_k = base.peak_temp_k;
  opts.max_sim_time_s = options_.max_sim_time_s;
  opts.record_trace = false;
  // TECfan's sweep emulates its higher-level fan loop (see
  // sim/experiment.h): only marginal DVFS engagement qualifies a level.
  if (request.policy.rfind("tecfan", 0) == 0) opts.max_mean_dvfs = 0.5;

  // Like `equilibrium`, the sweep reuses the shared engine with throwaway
  // per-level workspaces; each level's policy shares the ControlEngine too.
  const std::string policy_name = request.policy;
  const core::ControlEnginePtr control = engine_->control();
  const sim::SweepResult sweep = sim::run_with_fan_sweep(
      simulator.engine_ptr(),
      [&policy_name, &control] {
        return core::make_named_policy(policy_name, control);
      },
      *wl, opts);

  Response r;
  r.add("policy", std::string(sweep.chosen.policy));
  r.add("workload", std::string(sweep.chosen.workload));
  r.add("threshold_c", kelvin_to_celsius(base.peak_temp_k));
  r.add("levels_tried", static_cast<std::uint64_t>(sweep.per_level.size()));
  add_run_fields(r, sweep.chosen);
  return r;
}

Response Server::do_table1(sim::ChipSimulator& simulator,
                           const Request& request) {
  const perf::Table1Case& paper =
      perf::table1_case(request.workload, request.threads);
  auto wl = engine_->workload(request.workload, request.threads);
  const sim::RunResult base = base_scenario(simulator, *wl);

  Response r;
  r.add("workload", paper.benchmark);
  r.add("threads", static_cast<std::uint64_t>(paper.threads));
  r.add("instructions", paper.instructions);
  r.add("paper_time_ms", paper.time_ms);
  r.add("meas_time_ms", base.exec_time_s * 1e3);
  r.add("paper_power_w", paper.power_w);
  r.add("meas_power_w", base.avg_power.chip_w());
  r.add("paper_peak_c", paper.peak_temp_c);
  r.add("meas_peak_c", kelvin_to_celsius(base.peak_temp_k));
  return r;
}

Response Server::stats_response() const {
  const Stats s = stats();
  Response r;
  // Replica identification first: name/pid/build/backend let the cluster
  // layer and operators tell otherwise-identical fleet members apart.
  r.add("name", options_.instance_name.empty() ? std::string("tecfand")
                                               : options_.instance_name);
  r.add("pid", static_cast<std::uint64_t>(::getpid()));
  r.add("build", std::string(TECFAN_BUILD_INFO));
  r.add("solve_backend",
        std::string(engine_->thermal()->banded() ? "banded" : "dense"));
  r.add("uptime_s", s.uptime_s);
  r.add("requests", s.requests);
  r.add("computes", s.computes);
  r.add("errors", s.errors);
  r.add("traces_sampled", tracer_.sampled_traces());
  r.add("traces_adopted", tracer_.adopted_traces());
  r.add("cache_hits", s.cache.hits);
  r.add("cache_misses", s.cache.misses);
  r.add("cache_evictions", s.cache.evictions);
  r.add("cache_size", static_cast<std::uint64_t>(s.cache.size));
  r.add("cache_hit_rate", s.cache.hit_rate());
  r.add("pool_submits", s.pool.submits);
  r.add("pool_executed", s.pool.executed);
  r.add("pool_failed", s.pool.failed);
  r.add("pool_expired", s.pool.expired);
  r.add("pool_rejected", s.pool.rejected);
  r.add("pool_queued", static_cast<std::uint64_t>(s.pool.queued));
  r.add("workers", static_cast<std::uint64_t>(s.pool.workers));
  r.add("engine_bytes", static_cast<std::uint64_t>(s.engine_bytes));
  r.add("workspace_bytes", static_cast<std::uint64_t>(s.workspace_bytes));
  return r;
}

MetricsRegistry::Snapshot Server::metrics_snapshot() const {
  gauge_pool_queue_depth_->set(static_cast<double>(pool_.stats().queued));
  gauge_trace_open_spans_->set(static_cast<double>(tracer_.open_spans()));
  const std::vector<std::size_t> shard_sizes = cache_.shard_sizes();
  for (std::size_t i = 0;
       i < shard_sizes.size() && i < gauge_cache_shards_.size(); ++i)
    gauge_cache_shards_[i]->set(static_cast<double>(shard_sizes[i]));
  return metrics_.snapshot();
}

Response Server::metrics_response() const {
  return metrics_to_response(metrics_snapshot());
}

Response Server::trace_response(int limit) const {
  const auto traces =
      tracer_.completed_traces(static_cast<std::size_t>(limit));
  Response r;
  r.add("traces", static_cast<std::uint64_t>(traces.size()));
  // One JSON object per trace in numbered fields; values are quoted on
  // the wire, so the response stays a single protocol line and tools
  // (tracecat) re-emit the objects as JSON lines.
  for (std::size_t i = 0; i < traces.size(); ++i)
    r.add("t" + std::to_string(i), trace_to_json(traces[i]));
  return r;
}

std::string Server::prom_exposition() const {
  std::string body = render_prometheus(metrics_snapshot());
  if (!body.empty() && body.back() == '\n') body.pop_back();
  return body;
}

Server::Stats Server::stats() const {
  Stats s;
  s.requests = counter_requests_->value();
  s.computes = counter_computes_->value();
  s.errors = counter_errors_->value();
  s.cache = cache_.stats();
  s.pool = pool_.stats();
  s.engine_bytes = engine_->memory_bytes();
  s.workspace_bytes = workspace_bytes_.load(std::memory_order_relaxed);
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started_at_)
                   .count();
  return s;
}

std::string Server::handle_line(const std::string& line, bool* quit) {
  // Adjacent spans share clock reads (line start doubles as the parse
  // start, the serialize end doubles as the end-to-end end) to keep the
  // per-line instrumentation cost down.
  const auto line_start = std::chrono::steady_clock::now();
  if (quit) *quit = false;
  ScopedLatencyTimer parse_span(hist_parse_, line_start);
  ParsedRequest parsed = parse_request(line);
  parse_span.stop();
  if (!parsed.ok) {
    counter_requests_->inc();
    counter_errors_->inc();
    return serialize_response(Response::make_error(parsed.error));
  }
  Request& request = parsed.request;
  if (request.kind == RequestKind::kQuit && quit) *quit = true;
  if (request.kind == RequestKind::kMetrics && request.format == "prom") {
    // The one multi-line response in the protocol: a raw Prometheus
    // exposition terminated by "# EOF". Answered inline so it never
    // crosses a backend pipe.
    counter_requests_->inc();
    return prom_exposition();
  }
  if (request.is_compute()) {
    // Head-of-trace decision (or adoption of the router's context); the
    // context rides the request into dispatch/execute so every stage can
    // pin its span. Unsampled requests carry an all-zero context and each
    // stage pays one branch.
    request.trace = request.trace.sampled ? tracer_.adopt(request.trace)
                                          : tracer_.start_trace();
  }
  Response response =
      request.is_compute() ? dispatch(request) : handle(request);
  if (request.trace.sampled && request.is_compute() &&
      response.status == Response::Status::kOk) {
    // Close this tier's root span, then echo the context and the recorded
    // spans on the reply so the router can fold them into its trace. The
    // fields are appended after the cache write, so cached payloads stay
    // trace-free and later hits do not replay stale spans.
    tracer_.record_root(request.trace, line_start,
                        std::chrono::steady_clock::now());
    const auto spans = tracer_.collect_trace(request.trace.trace_id);
    response.add("trace", request.trace.wire());
    response.add("spans",
                 encode_reply_spans(spans, tracer_.to_us(line_start)));
  }
  const auto serialize_start = std::chrono::steady_clock::now();
  std::string reply = serialize_response(response);
  const auto line_end = std::chrono::steady_clock::now();
  hist_serialize_->record(line_end - serialize_start);
  if (request.trace.sampled)
    tracer_.record(request.trace, SpanName::kSerialize, serialize_start,
                   line_end);
  // Hit/miss-split end-to-end span: only successful compute requests, so
  // busy/error outcomes (tracked by counters) cannot skew the latency
  // story.
  if (request.is_compute() && response.status == Response::Status::kOk) {
    (response.cached ? hist_e2e_hit_ : hist_e2e_miss_)
        ->record(line_end - line_start);
  }
  return reply;
}

void Server::serve_pipe(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    bool quit = false;
    out << handle_line(line, &quit) << '\n' << std::flush;
    if (quit) break;
  }
}

std::uint16_t Server::bind_listen(std::uint16_t port) {
  TECFAN_REQUIRE(listen_fd_.load() < 0, "already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TECFAN_REQUIRE(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw precondition_error(std::string("bind() failed: ") +
                             std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw precondition_error(std::string("listen() failed: ") +
                             std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_.store(fd);
  bound_port_.store(ntohs(addr.sin_port));
  return bound_port_.load();
}

void Server::serve() {
  const int listen_fd = listen_fd_.load();
  if (listen_fd < 0) {
    // stop() may win the race against a serve() thread that was just
    // launched; that is a clean no-op, not a programming error.
    TECFAN_REQUIRE(stopping_.load(), "call bind_listen() before serve()");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    if (stopping_.load()) return;  // stop() already reclaimed the socket
    serve_running_ = true;
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listening socket gone
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    // Small request/response lines: Nagle coalescing only adds latency.
    set_tcp_nodelay(fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] {
      // LineReader bounds the per-session buffer: a peer that streams
      // bytes with no '\n' is answered with one protocol error and cut
      // off instead of growing the accumulator without limit.
      LineReader reader(fd);
      bool quit = false;
      while (!quit && !stopping_.load()) {
        auto line = reader.read_line();
        if (!line) {
          if (reader.overflowed()) {
            counter_errors_->inc();
            std::string reply = serialize_response(
                Response::make_error("request line too long"));
            reply += '\n';
            send_all(fd, reply);
            // Drain before the close: unread flood bytes would raise
            // RST and discard the error reply client-side.
            shutdown_drain(fd, std::chrono::milliseconds(250));
          }
          break;
        }
        if (line->empty()) continue;
        std::string reply = handle_line(*line, &quit);
        reply += '\n';
        // MSG_NOSIGNAL via send_all: a client that closed mid-response
        // ends this session with EPIPE instead of killing the daemon
        // with SIGPIPE.
        if (!send_all(fd, reply)) break;
      }
      // Deregister before closing so stop() never shuts down a recycled
      // descriptor number. (stop() joins outside conns_mu_, so taking the
      // lock here cannot deadlock.)
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conn_fds_.erase(
            std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
            conn_fds_.end());
      }
      ::close(fd);
    });
  }
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    serve_running_ = false;
  }
  serve_cv_.notify_all();
}

void Server::stop() {
  int listen_fd;
  {
    // stopping_ flips under serve_mu_ so a serve() thread that has not
    // yet registered serve_running_ either sees the flag and returns or
    // registers first and is then woken by the shutdown() below.
    std::lock_guard<std::mutex> lock(serve_mu_);
    stopping_.store(true);
    listen_fd = listen_fd_.exchange(-1);
  }
  if (listen_fd >= 0) {
    // Wake the accept loop, wait for it to leave, then reclaim the fd
    // (closing while serve() is still inside accept() would race).
    ::shutdown(listen_fd, SHUT_RDWR);
    {
      std::unique_lock<std::mutex> lock(serve_mu_);
      serve_cv_.wait(lock, [this] { return !serve_running_; });
    }
    ::close(listen_fd);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_fds_.clear();
    threads.swap(conn_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  pool_.shutdown(true);
}

}  // namespace tecfan::service
