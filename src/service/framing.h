// Socket framing helpers for the line protocol, shared by the server-side
// session loops (service::Server), the cluster router and its backend
// clients (src/cluster/), and the tools (loadgen, tecrouter).
//
// Everything here is loopback-TCP plumbing for "one request line in, one
// response line out": connect, send a whole buffer, and incrementally
// split received bytes into lines. All writes use MSG_NOSIGNAL so a peer
// that disappears mid-response surfaces as an EPIPE error return instead
// of a process-killing SIGPIPE; daemon mains additionally call
// ignore_sigpipe() to cover any stray write paths.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tecfan::service {

/// Process-wide SIGPIPE -> SIG_IGN (idempotent). Call from daemon mains;
/// library code relies on MSG_NOSIGNAL instead so embedding processes keep
/// their own signal disposition.
void ignore_sigpipe();

/// Blocking connect to 127.0.0.1:port. Returns the connected fd, or -1.
int connect_loopback(std::uint16_t port);

/// Send the whole buffer (MSG_NOSIGNAL, EINTR-retrying). False when the
/// peer is gone or the socket errors; the caller owns closing the fd.
bool send_all(int fd, std::string_view data);

/// Incremental newline splitter over a socket: feeds recv() bytes into an
/// internal buffer and hands back one line at a time with the trailing
/// '\n' (and any '\r') stripped. The reader never owns the fd.
class LineReader {
 public:
  LineReader() = default;
  explicit LineReader(int fd) : fd_(fd) {}

  int fd() const { return fd_; }
  void reset(int fd) {
    fd_ = fd;
    acc_.clear();
  }

  /// True when a complete line is already buffered (no syscall needed).
  bool has_line() const;

  /// Next line, blocking until one arrives, the peer closes (nullopt), or
  /// `deadline` passes (nullopt; the connection should then be abandoned —
  /// a late reply would desynchronize request/response pairing).
  std::optional<std::string> read_line(
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

 private:
  int fd_ = -1;
  std::string acc_;
};

/// Wait until `fd` is readable or `deadline` passes; true when readable.
/// (poll()-based; EINTR-retrying.)
bool wait_readable(int fd,
                   std::chrono::steady_clock::time_point deadline);

}  // namespace tecfan::service
