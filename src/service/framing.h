// Socket framing helpers for the line protocol, shared by the server-side
// session loops (service::Server), the cluster router and its backend
// clients (src/cluster/), and the tools (loadgen, tecrouter).
//
// Everything here is loopback-TCP plumbing for "one request line in, one
// response line out": connect, send a whole buffer, and incrementally
// split received bytes into lines. All writes use MSG_NOSIGNAL so a peer
// that disappears mid-response surfaces as an EPIPE error return instead
// of a process-killing SIGPIPE; daemon mains additionally call
// ignore_sigpipe() to cover any stray write paths.
//
// Two usage styles coexist:
//
//   * Blocking (one request in flight per connection): connect_loopback +
//     send_all + LineReader::read_line. Used by the tools, the pooled
//     BackendClient, and the thread-per-session server loops.
//   * Nonblocking (event-driven state machines): set_nonblocking +
//     LineReader::append/pop_line to consume externally-recv()ed bytes,
//     and WriteQueue to coalesce small response writes into one writev()
//     per event-loop iteration. Used by the router's epoll data plane.
//
// Every connected socket gets TCP_NODELAY: the protocol is small
// request/response lines, so Nagle coalescing only adds latency — batching
// is done explicitly (WriteQueue) where it helps.
//
// All of the syscalls here route through the fault-injection hook
// (service/fault_injection.h): a no-op atomic-load-and-branch unless a
// chaos test installed an injector, which can then refuse dials, shorten
// or fail sends, dribble or cut recvs, and add latency deterministically.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace tecfan::service {

/// Process-wide SIGPIPE -> SIG_IGN (idempotent). Call from daemon mains;
/// library code relies on MSG_NOSIGNAL instead so embedding processes keep
/// their own signal disposition.
void ignore_sigpipe();

/// Best-effort TCP_NODELAY (no-op on failure, e.g. non-TCP fds).
void set_tcp_nodelay(int fd);

/// O_NONBLOCK on/off. Returns false when fcntl fails.
bool set_nonblocking(int fd, bool nonblocking = true);

/// Blocking connect to 127.0.0.1:port. Returns the connected fd (with
/// TCP_NODELAY set), or -1.
int connect_loopback(std::uint16_t port);

/// Like connect_loopback, but the dial itself is bounded: a nonblocking
/// connect() polled until `deadline`. A SYN-blackholed peer (listener gone
/// but packets silently dropped, or a full accept backlog) therefore costs
/// at most the deadline instead of the kernel's SYN-retry default. The
/// returned fd is switched back to blocking mode.
int connect_loopback(std::uint16_t port,
                     std::chrono::steady_clock::time_point deadline);

/// Send the whole buffer (MSG_NOSIGNAL, EINTR-retrying). False when the
/// peer is gone or the socket errors; the caller owns closing the fd.
bool send_all(int fd, std::string_view data);

/// Incremental newline splitter over a socket: feeds recv() bytes into an
/// internal buffer and hands back one line at a time with the trailing
/// '\n' (and any '\r') stripped. The reader never owns the fd.
///
/// Nonblocking users recv() themselves (until EAGAIN), append() the bytes,
/// and drain with pop_line(); blocking users call read_line(), which
/// recv()s internally.
///
/// Line length is bounded (kDefaultMaxLineBytes unless overridden): a
/// peer that streams bytes without ever sending '\n' — or whose one
/// "line" exceeds the cap — flips the reader into the overflowed() state
/// instead of growing the buffer without limit. An overflowed reader
/// stops producing lines (has_line() false, pop_line()/read_line()
/// nullopt); the caller must treat the connection as protocol-broken and
/// close or abandon it. The largest legitimate line in this protocol is
/// a `metrics` dump at a few KiB, so the 1 MiB default is pure headroom.
class LineReader {
 public:
  static constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;  // 1 MiB

  LineReader() = default;
  explicit LineReader(int fd) : fd_(fd) {}

  int fd() const { return fd_; }
  void reset(int fd) {
    fd_ = fd;
    acc_.clear();
    overflowed_ = false;
  }

  /// Cap on a single line's length (exclusive of the '\n'). Applies to
  /// bytes appended after the call.
  void set_max_line_bytes(std::size_t n) { max_line_ = n; }
  std::size_t max_line_bytes() const { return max_line_; }

  /// True once a line longer than the cap was seen. Latched until
  /// reset(); the fd is untouched (the caller owns closing it).
  bool overflowed() const { return overflowed_; }

  /// Bytes currently buffered (bounded by max_line_bytes() + one recv).
  std::size_t buffered_bytes() const { return acc_.size(); }

  /// True when a complete line is already buffered (no syscall needed).
  bool has_line() const;

  /// Feed externally-received bytes (nonblocking event-loop style).
  void append(std::string_view data) {
    acc_.append(data);
    check_overflow();
  }

  /// Next buffered line, or nullopt when no complete line is buffered.
  /// Never touches the fd.
  std::optional<std::string> pop_line();

  /// Next line, blocking until one arrives, the peer closes (nullopt), or
  /// `deadline` passes (nullopt; the connection should then be abandoned —
  /// a late reply would desynchronize request/response pairing). Also
  /// nullopt on overflow (check overflowed() to distinguish).
  std::optional<std::string> read_line(
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

 private:
  /// Latch overflowed_ when the buffered prefix before the first '\n'
  /// (or the whole buffer, if none) exceeds the cap.
  void check_overflow();

  int fd_ = -1;
  std::string acc_;
  std::size_t max_line_ = kDefaultMaxLineBytes;
  bool overflowed_ = false;
};

/// Per-socket pending-write queue for nonblocking connections. Small
/// response/forward lines accumulate as chunks and flush() coalesces them
/// into one gathered sendmsg() call (up to kMaxIov segments per syscall,
/// MSG_NOSIGNAL), so an event-loop iteration that produced N lines for a
/// socket pays one syscall, not N.
class WriteQueue {
 public:
  enum class FlushResult {
    kDrained,  // everything written, queue empty
    kBlocked,  // socket would block; re-flush on writability
    kError,    // peer gone / socket error; close the connection
  };

  void push(std::string chunk);
  bool empty() const { return chunks_.empty(); }
  std::size_t bytes() const { return bytes_; }

  /// Write as much as possible to the (nonblocking) fd with one gathered
  /// sendmsg() per kMaxIov chunks.
  FlushResult flush(int fd);

  void clear();

 private:
  static constexpr std::size_t kMaxIov = 64;

  std::deque<std::string> chunks_;
  std::size_t front_offset_ = 0;  // bytes of chunks_.front() already sent
  std::size_t bytes_ = 0;         // total unsent bytes
};

/// Wait until `fd` is readable or `deadline` passes; true when readable.
/// (poll()-based; EINTR-retrying.)
bool wait_readable(int fd,
                   std::chrono::steady_clock::time_point deadline);

/// Half-close the write side, then read-and-discard until the peer closes
/// or `budget` elapses. Use before close()ing a connection whose receive
/// buffer may still hold unread bytes (e.g. after booting a client for an
/// overlong line): closing with unread data raises RST, which can discard
/// the just-sent final reply before the peer reads it. The caller still
/// owns the final close().
void shutdown_drain(int fd, std::chrono::milliseconds budget);

}  // namespace tecfan::service
