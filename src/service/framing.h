// Socket framing helpers for the line protocol, shared by the server-side
// session loops (service::Server), the cluster router and its backend
// clients (src/cluster/), and the tools (loadgen, tecrouter).
//
// Everything here is loopback-TCP plumbing for "one request line in, one
// response line out": connect, send a whole buffer, and incrementally
// split received bytes into lines. All writes use MSG_NOSIGNAL so a peer
// that disappears mid-response surfaces as an EPIPE error return instead
// of a process-killing SIGPIPE; daemon mains additionally call
// ignore_sigpipe() to cover any stray write paths.
//
// Two usage styles coexist:
//
//   * Blocking (one request in flight per connection): connect_loopback +
//     send_all + LineReader::read_line. Used by the tools, the pooled
//     BackendClient, and the thread-per-session server loops.
//   * Nonblocking (event-driven state machines): set_nonblocking +
//     LineReader::append/pop_line to consume externally-recv()ed bytes,
//     and WriteQueue to coalesce small response writes into one writev()
//     per event-loop iteration. Used by the router's epoll data plane.
//
// Every connected socket gets TCP_NODELAY: the protocol is small
// request/response lines, so Nagle coalescing only adds latency — batching
// is done explicitly (WriteQueue) where it helps.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace tecfan::service {

/// Process-wide SIGPIPE -> SIG_IGN (idempotent). Call from daemon mains;
/// library code relies on MSG_NOSIGNAL instead so embedding processes keep
/// their own signal disposition.
void ignore_sigpipe();

/// Best-effort TCP_NODELAY (no-op on failure, e.g. non-TCP fds).
void set_tcp_nodelay(int fd);

/// O_NONBLOCK on/off. Returns false when fcntl fails.
bool set_nonblocking(int fd, bool nonblocking = true);

/// Blocking connect to 127.0.0.1:port. Returns the connected fd (with
/// TCP_NODELAY set), or -1.
int connect_loopback(std::uint16_t port);

/// Like connect_loopback, but the dial itself is bounded: a nonblocking
/// connect() polled until `deadline`. A SYN-blackholed peer (listener gone
/// but packets silently dropped, or a full accept backlog) therefore costs
/// at most the deadline instead of the kernel's SYN-retry default. The
/// returned fd is switched back to blocking mode.
int connect_loopback(std::uint16_t port,
                     std::chrono::steady_clock::time_point deadline);

/// Send the whole buffer (MSG_NOSIGNAL, EINTR-retrying). False when the
/// peer is gone or the socket errors; the caller owns closing the fd.
bool send_all(int fd, std::string_view data);

/// Incremental newline splitter over a socket: feeds recv() bytes into an
/// internal buffer and hands back one line at a time with the trailing
/// '\n' (and any '\r') stripped. The reader never owns the fd.
///
/// Nonblocking users recv() themselves (until EAGAIN), append() the bytes,
/// and drain with pop_line(); blocking users call read_line(), which
/// recv()s internally.
class LineReader {
 public:
  LineReader() = default;
  explicit LineReader(int fd) : fd_(fd) {}

  int fd() const { return fd_; }
  void reset(int fd) {
    fd_ = fd;
    acc_.clear();
  }

  /// True when a complete line is already buffered (no syscall needed).
  bool has_line() const;

  /// Feed externally-received bytes (nonblocking event-loop style).
  void append(std::string_view data) { acc_.append(data); }

  /// Next buffered line, or nullopt when no complete line is buffered.
  /// Never touches the fd.
  std::optional<std::string> pop_line();

  /// Next line, blocking until one arrives, the peer closes (nullopt), or
  /// `deadline` passes (nullopt; the connection should then be abandoned —
  /// a late reply would desynchronize request/response pairing).
  std::optional<std::string> read_line(
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

 private:
  int fd_ = -1;
  std::string acc_;
};

/// Per-socket pending-write queue for nonblocking connections. Small
/// response/forward lines accumulate as chunks and flush() coalesces them
/// into one gathered sendmsg() call (up to kMaxIov segments per syscall,
/// MSG_NOSIGNAL), so an event-loop iteration that produced N lines for a
/// socket pays one syscall, not N.
class WriteQueue {
 public:
  enum class FlushResult {
    kDrained,  // everything written, queue empty
    kBlocked,  // socket would block; re-flush on writability
    kError,    // peer gone / socket error; close the connection
  };

  void push(std::string chunk);
  bool empty() const { return chunks_.empty(); }
  std::size_t bytes() const { return bytes_; }

  /// Write as much as possible to the (nonblocking) fd with one gathered
  /// sendmsg() per kMaxIov chunks.
  FlushResult flush(int fd);

  void clear();

 private:
  static constexpr std::size_t kMaxIov = 64;

  std::deque<std::string> chunks_;
  std::size_t front_offset_ = 0;  // bytes of chunks_.front() already sent
  std::size_t bytes_ = 0;         // total unsent bytes
};

/// Wait until `fd` is readable or `deadline` passes; true when readable.
/// (poll()-based; EINTR-retrying.)
bool wait_readable(int fd,
                   std::chrono::steady_clock::time_point deadline);

}  // namespace tecfan::service
