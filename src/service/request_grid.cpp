#include "service/request_grid.h"

#include <cstddef>

namespace tecfan::service {

std::vector<GridRequest> request_grid(int keys) {
  const std::vector<std::string> workloads = {"cholesky", "lu", "fmm",
                                              "volrend"};
  // Reactive policies: cheap per-interval decisions, so run/sweep keys
  // measure the serving path rather than a model-predictive search.
  const std::vector<std::string> policies = {"fan-only", "fan+tec",
                                             "fan+dvfs", "dvfs+tec"};
  const auto wl = [&workloads](int i) {
    return workloads[static_cast<std::size_t>(i) % workloads.size()];
  };
  std::vector<GridRequest> out;
  out.reserve(static_cast<std::size_t>(keys));
  int eq = 0, run = 0, sweep = 0;
  for (int k = 0; k < keys; ++k) {
    if (k % 64 == 63) {
      const int s = sweep++;
      out.push_back({"sweep policy=" + policies[static_cast<std::size_t>(s) %
                                                policies.size()] +
                         " workload=" + wl(s / 4) + " threads=16",
                     GridKind::kSweep});
    } else if (k % 16 == 15) {
      const int r = run++;
      out.push_back({"run policy=" + policies[static_cast<std::size_t>(r) %
                                              policies.size()] +
                         " workload=" + wl(r / 4) +
                         " fan=" + std::to_string((r / 16) % 4) +
                         " threads=16",
                     GridKind::kRun});
    } else {
      const int e = eq++;
      const int fan = (e / static_cast<int>(workloads.size())) % 8;
      const int dvfs = (e / 32) % 4;
      const bool tec = (e / 128) % 2 != 0;
      const int threads = (e / 256) % 2 != 0 ? 8 : 16;
      out.push_back({"equilibrium workload=" + wl(e) +
                         " threads=" + std::to_string(threads) +
                         " fan=" + std::to_string(fan) +
                         " dvfs=" + std::to_string(dvfs) +
                         (tec ? " tec=on" : ""),
                     GridKind::kEquilibrium});
    }
  }
  return out;
}

}  // namespace tecfan::service
