// The deterministic repeated-key working set shared by loadgen and the
// cluster benchmark (both need the same corpus so routed-vs-direct numbers
// compare like for like).
//
// Mostly equilibrium points across the benchmark x fan-level x DVFS x TEC
// x thread-count grid (4 x 8 x 4 x 2 x 2 = 1024 distinct requests); every
// 16th key is a policy `run` (4 policies x 4 workloads x 4 fan levels) and
// every 64th a fan `sweep` (4 policies x 4 workloads), so a 1024-key set
// exercises all three compute kinds the daemon serves. Each kind advances
// through its own grid densely; small key counts (< 16) stay
// pure-equilibrium on the original benchmark x fan corner so historical
// BENCH_serving.json runs remain comparable.
#pragma once

#include <string>
#include <vector>

namespace tecfan::service {

/// Compute kinds in the working set (indexes into per-kind latency
/// buckets and loadgen's JSON kind_split).
enum class GridKind { kEquilibrium = 0, kRun = 1, kSweep = 2 };

struct GridRequest {
  std::string line;  // request wire line (no trailing '\n')
  GridKind kind = GridKind::kEquilibrium;
};

/// The first `keys` entries of the grid. Deterministic: the same `keys`
/// always yields the same lines in the same order.
std::vector<GridRequest> request_grid(int keys);

}  // namespace tecfan::service
