// Deterministic fault injection for the socket/pipe boundary.
//
// Every syscall the framing layer makes on behalf of the service and
// cluster code — connect_loopback() dials (and the epoll plane's raw
// nonblocking connects), send_all(), WriteQueue::flush()'s gathered
// sendmsg(), and the recv() loops behind LineReader::read_line() and the
// epoll plane's session/pipe readers — first consults a process-global
// FaultInjector hook. With no injector installed (the default, and the
// only supported production state) the hook is a single relaxed atomic
// load and a predictable branch; the chaos tests measure that cost at
// well under the 3% budget the acceptance criteria allow.
//
// An installed injector returns a FaultDecision per operation:
//
//   kNone   — proceed untouched
//   kFail   — fail the syscall with `error` (errno-style)
//   kEof    — recv paths: pretend the peer performed an orderly close
//   kShort  — cap the byte count (partial writes / dribbled reads)
//   kDelay  — sleep `delay_us`, then proceed (latency spike)
//
// ScheduledFaultInjector draws those decisions from a seeded xorshift
// stream keyed by a global operation counter, so a failing chaos run is
// replayed exactly by re-running with the same seed. Destructive fault
// classes (refusal, resets, EOF) can be scoped to a set of ports via the
// connect hook; send/recv faults apply to every socket in the process,
// so storms that use them must stick to semantically invisible classes
// (short writes, delays) unless the test owns every connection.
//
// Installation is not synchronized against in-flight operations: install
// before traffic starts, uninstall after it quiesces (the chaos harness
// does both). Library threads only ever read the pointer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <sys/types.h>
#include <vector>

namespace tecfan::service {

struct FaultDecision {
  enum class Kind : std::uint8_t { kNone, kFail, kEof, kShort, kDelay };
  Kind kind = Kind::kNone;
  int error = 0;             // kFail: errno to report
  std::size_t cap = 0;       // kShort: max bytes for this operation
  std::uint32_t delay_us = 0;  // kDelay: sleep before proceeding
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// About to connect() to 127.0.0.1:port (both blocking dials and the
  /// epoll plane's nonblocking pipe dials).
  virtual FaultDecision on_connect(std::uint16_t port) = 0;
  /// About to send()/sendmsg() `bytes` bytes on `fd`.
  virtual FaultDecision on_send(int fd, std::size_t bytes) = 0;
  /// About to recv() on `fd`.
  virtual FaultDecision on_recv(int fd) = 0;
};

/// Install a process-global injector (nullptr disarms). The injector is
/// borrowed, not owned — it must outlive every operation it can observe.
void install_fault_injector(FaultInjector* injector);

namespace detail {
extern std::atomic<FaultInjector*> g_fault_injector;
}  // namespace detail

/// The hot-path probe: one relaxed load, nullptr in production.
inline FaultInjector* active_fault_injector() {
  return detail::g_fault_injector.load(std::memory_order_acquire);
}

/// Sleep out a kDelay decision (no-op for every other kind); returns the
/// decision so call sites can chain on it.
FaultDecision settle_fault_delay(FaultDecision d);

/// recv() with the injector consulted first. Behaves exactly like recv()
/// when no injector is installed; used by the blocking LineReader path
/// and the epoll plane's session/pipe read loops.
ssize_t faulted_recv(int fd, void* buf, std::size_t len, int flags);

/// Deterministic seeded injector: each hook draws one number from a
/// splitmix64 stream indexed by a global atomic operation counter, so the
/// decision sequence depends only on the seed and the interleaving-free
/// count of operations — concurrent callers may swap draws, but the
/// multiset of injected faults per N operations is fixed.
class ScheduledFaultInjector final : public FaultInjector {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// connect(): refuse (ECONNREFUSED) with this probability. Only
    /// applied to ports listed in `connect_ports` (empty = every port).
    double connect_refuse_p = 0.0;
    std::vector<std::uint16_t> connect_ports;
    /// send()/sendmsg(): cap the operation at `send_short_cap` bytes.
    double send_short_p = 0.0;
    std::size_t send_short_cap = 1;
    /// send(): fail with `send_error` (default ECONNRESET).
    double send_fail_p = 0.0;
    int send_error = 0;
    /// send(): sleep `send_delay_us` first.
    double send_delay_p = 0.0;
    std::uint32_t send_delay_us = 200;
    /// recv(): cap at `recv_short_cap` bytes (slow-loris style dribble).
    double recv_short_p = 0.0;
    std::size_t recv_short_cap = 1;
    /// recv(): pretend the peer closed.
    double recv_eof_p = 0.0;
    /// recv(): fail with `recv_error` (default ECONNRESET).
    double recv_fail_p = 0.0;
    int recv_error = 0;
    /// recv(): sleep `recv_delay_us` first (latency spike).
    double recv_delay_p = 0.0;
    std::uint32_t recv_delay_us = 200;
  };

  struct Counts {
    std::uint64_t connects_refused = 0;
    std::uint64_t sends_shortened = 0;
    std::uint64_t sends_failed = 0;
    std::uint64_t sends_delayed = 0;
    std::uint64_t recvs_shortened = 0;
    std::uint64_t recvs_eof = 0;
    std::uint64_t recvs_failed = 0;
    std::uint64_t recvs_delayed = 0;
    std::uint64_t operations = 0;
    std::uint64_t total_injected() const {
      return connects_refused + sends_shortened + sends_failed +
             sends_delayed + recvs_shortened + recvs_eof + recvs_failed +
             recvs_delayed;
    }
  };

  explicit ScheduledFaultInjector(Options options);

  FaultDecision on_connect(std::uint16_t port) override;
  FaultDecision on_send(int fd, std::size_t bytes) override;
  FaultDecision on_recv(int fd) override;

  Counts counts() const;

 private:
  /// Uniform draw in [0, 1) from the seeded stream.
  double next_unit();

  Options options_;
  std::atomic<std::uint64_t> op_counter_{0};
  std::atomic<std::uint64_t> connects_refused_{0};
  std::atomic<std::uint64_t> sends_shortened_{0};
  std::atomic<std::uint64_t> sends_failed_{0};
  std::atomic<std::uint64_t> sends_delayed_{0};
  std::atomic<std::uint64_t> recvs_shortened_{0};
  std::atomic<std::uint64_t> recvs_eof_{0};
  std::atomic<std::uint64_t> recvs_failed_{0};
  std::atomic<std::uint64_t> recvs_delayed_{0};
};

/// RAII install/uninstall for tests: installs on construction, disarms on
/// destruction (only if still the active injector).
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector) : injector_(injector) {
    install_fault_injector(injector_);
  }
  ~ScopedFaultInjector() {
    if (active_fault_injector() == injector_) install_fault_injector(nullptr);
  }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* injector_;
};

}  // namespace tecfan::service
