// Bounded MPMC task queue with backpressure.
//
// The serving path must never queue unbounded work: when the queue is full
// try_push fails and the session front-end answers `busy` instead (the
// closed-loop clients of loadgen then retry at their own pace). Tasks carry
// an optional deadline and an `expire` continuation, so a task that waited
// past its deadline can still answer its caller (with a deadline error)
// instead of silently vanishing.
//
// This queue backs the persistent service worker pool; it is deliberately
// distinct from util/parallel.h, which remains the fork-join primitive for
// intra-run fan-level sweeps.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

namespace tecfan::service {

struct Task {
  /// The work itself; must not be empty for a pushed task.
  std::function<void()> run;
  /// Invoked *instead of* run when the deadline passed while queued, or
  /// when the queue is shut down without draining. May be empty.
  std::function<void()> expire;
  /// steady_clock deadline; time_point::max() means none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Stamped by WorkerPool::submit; dequeue-side telemetry measures the
  /// queue-wait span (submit to dequeue) from it.
  std::chrono::steady_clock::time_point enqueued_at{};

  bool expired(std::chrono::steady_clock::time_point now) const {
    return deadline < now;
  }
};

class TaskQueue {
 public:
  explicit TaskQueue(std::size_t capacity);

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueue; returns false (backpressure) when full or closed.
  bool try_push(Task task);

  /// Blocking dequeue. Returns nullopt once the queue is closed *and*
  /// drained; until then pending tasks keep being handed out so a graceful
  /// shutdown finishes accepted work.
  std::optional<Task> pop();

  /// Close the queue: subsequent try_push fails, blocked poppers drain the
  /// remaining tasks and then wake up empty-handed.
  void close();

  /// Remove and return every queued task (used by a drop shutdown, which
  /// then runs each task's expire continuation).
  std::deque<Task> drain();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<Task> tasks_;
  bool closed_ = false;
};

}  // namespace tecfan::service
