#include "service/fault_injection.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

namespace tecfan::service {

namespace detail {
std::atomic<FaultInjector*> g_fault_injector{nullptr};
}  // namespace detail

void install_fault_injector(FaultInjector* injector) {
  detail::g_fault_injector.store(injector, std::memory_order_release);
}

FaultDecision settle_fault_delay(FaultDecision d) {
  if (d.kind == FaultDecision::Kind::kDelay && d.delay_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
  return d;
}

ssize_t faulted_recv(int fd, void* buf, std::size_t len, int flags) {
  if (FaultInjector* fi = active_fault_injector()) {
    const FaultDecision d = settle_fault_delay(fi->on_recv(fd));
    switch (d.kind) {
      case FaultDecision::Kind::kFail:
        errno = d.error != 0 ? d.error : ECONNRESET;
        return -1;
      case FaultDecision::Kind::kEof:
        return 0;
      case FaultDecision::Kind::kShort:
        len = std::min(len, std::max<std::size_t>(d.cap, 1));
        break;
      case FaultDecision::Kind::kNone:
      case FaultDecision::Kind::kDelay:
        break;
    }
  }
  return ::recv(fd, buf, len, flags);
}

// ---------------------------------------------------------------------------
// ScheduledFaultInjector
// ---------------------------------------------------------------------------

namespace {

/// splitmix64: stateless per-index mixing so concurrent draws need only
/// one atomic counter, and the sequence for a seed is reproducible.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ScheduledFaultInjector::ScheduledFaultInjector(Options options)
    : options_(std::move(options)) {
  if (options_.send_error == 0) options_.send_error = ECONNRESET;
  if (options_.recv_error == 0) options_.recv_error = ECONNRESET;
}

double ScheduledFaultInjector::next_unit() {
  const std::uint64_t index =
      op_counter_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t mixed = splitmix64(options_.seed ^ (index + 1));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

FaultDecision ScheduledFaultInjector::on_connect(std::uint16_t port) {
  if (options_.connect_refuse_p <= 0) return {};
  if (!options_.connect_ports.empty() &&
      std::find(options_.connect_ports.begin(), options_.connect_ports.end(),
                port) == options_.connect_ports.end()) {
    return {};
  }
  if (next_unit() >= options_.connect_refuse_p) return {};
  connects_refused_.fetch_add(1, std::memory_order_relaxed);
  FaultDecision d;
  d.kind = FaultDecision::Kind::kFail;
  d.error = ECONNREFUSED;
  return d;
}

FaultDecision ScheduledFaultInjector::on_send(int, std::size_t bytes) {
  FaultDecision d;
  if (options_.send_fail_p > 0 && next_unit() < options_.send_fail_p) {
    sends_failed_.fetch_add(1, std::memory_order_relaxed);
    d.kind = FaultDecision::Kind::kFail;
    d.error = options_.send_error;
    return d;
  }
  if (options_.send_short_p > 0 && bytes > options_.send_short_cap &&
      next_unit() < options_.send_short_p) {
    sends_shortened_.fetch_add(1, std::memory_order_relaxed);
    d.kind = FaultDecision::Kind::kShort;
    d.cap = options_.send_short_cap;
    return d;
  }
  if (options_.send_delay_p > 0 && next_unit() < options_.send_delay_p) {
    sends_delayed_.fetch_add(1, std::memory_order_relaxed);
    d.kind = FaultDecision::Kind::kDelay;
    d.delay_us = options_.send_delay_us;
    return d;
  }
  return d;
}

FaultDecision ScheduledFaultInjector::on_recv(int) {
  FaultDecision d;
  if (options_.recv_fail_p > 0 && next_unit() < options_.recv_fail_p) {
    recvs_failed_.fetch_add(1, std::memory_order_relaxed);
    d.kind = FaultDecision::Kind::kFail;
    d.error = options_.recv_error;
    return d;
  }
  if (options_.recv_eof_p > 0 && next_unit() < options_.recv_eof_p) {
    recvs_eof_.fetch_add(1, std::memory_order_relaxed);
    d.kind = FaultDecision::Kind::kEof;
    return d;
  }
  if (options_.recv_short_p > 0 && next_unit() < options_.recv_short_p) {
    recvs_shortened_.fetch_add(1, std::memory_order_relaxed);
    d.kind = FaultDecision::Kind::kShort;
    d.cap = options_.recv_short_cap;
    return d;
  }
  if (options_.recv_delay_p > 0 && next_unit() < options_.recv_delay_p) {
    recvs_delayed_.fetch_add(1, std::memory_order_relaxed);
    d.kind = FaultDecision::Kind::kDelay;
    d.delay_us = options_.recv_delay_us;
    return d;
  }
  return d;
}

ScheduledFaultInjector::Counts ScheduledFaultInjector::counts() const {
  Counts c;
  c.connects_refused = connects_refused_.load(std::memory_order_relaxed);
  c.sends_shortened = sends_shortened_.load(std::memory_order_relaxed);
  c.sends_failed = sends_failed_.load(std::memory_order_relaxed);
  c.sends_delayed = sends_delayed_.load(std::memory_order_relaxed);
  c.recvs_shortened = recvs_shortened_.load(std::memory_order_relaxed);
  c.recvs_eof = recvs_eof_.load(std::memory_order_relaxed);
  c.recvs_failed = recvs_failed_.load(std::memory_order_relaxed);
  c.recvs_delayed = recvs_delayed_.load(std::memory_order_relaxed);
  c.operations = op_counter_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace tecfan::service
