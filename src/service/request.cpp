#include "service/request.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.h"
#include "util/metrics.h"

namespace tecfan::service {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  return v.find_first_of(" \t\"\\") != std::string_view::npos;
}

void append_quoted(std::string& out, std::string_view v) {
  out += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_value(std::string& out, std::string_view v) {
  if (needs_quoting(v)) {
    append_quoted(out, v);
  } else {
    out += v;
  }
}

/// Split a line into bare tokens and key=value pairs, honouring quotes.
/// Returns false (with `error` set) on unterminated quotes.
struct Token {
  std::string key;    // empty for a bare token
  std::string value;  // the bare token itself, or the value
};

bool tokenize(std::string_view line, std::vector<Token>& out,
              std::string& error) {
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= n) break;
    std::string word;
    std::string key;
    bool in_quotes = false;
    for (; i < n; ++i) {
      const char c = line[i];
      if (in_quotes) {
        if (c == '\\' && i + 1 < n) {
          word += line[++i];
        } else if (c == '"') {
          in_quotes = false;
        } else {
          word += c;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == '=' && key.empty() && !word.empty()) {
        key = word;
        word.clear();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        break;
      } else {
        word += c;
      }
    }
    if (in_quotes) {
      error = "unterminated quote";
      return false;
    }
    out.push_back({key, word});
  }
  return true;
}

bool parse_int(const std::string& value, int& out) {
  const char* first = value.data();
  const char* last = value.data() + value.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

// Locale-independent: std::stod honours LC_NUMERIC, so under e.g. a German
// locale "0.5" stops parsing at the '.' and deadline_ms misparses. The
// from_chars FP overload always uses the C locale's decimal point.
bool parse_double(const std::string& value, double& out) {
  const char* first = value.data();
  const char* last = value.data() + value.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_bool(const std::string& value, bool& out) {
  const std::string v = to_lower(value);
  if (v == "on" || v == "true" || v == "1") {
    out = true;
    return true;
  }
  if (v == "off" || v == "false" || v == "0") {
    out = false;
    return true;
  }
  return false;
}

std::optional<RequestKind> kind_from_name(std::string_view name) {
  const std::string n = to_lower(name);
  if (n == "ping") return RequestKind::kPing;
  if (n == "stats") return RequestKind::kStats;
  if (n == "metrics") return RequestKind::kMetrics;
  if (n == "quit") return RequestKind::kQuit;
  if (n == "trace") return RequestKind::kTrace;
  if (n == "equilibrium") return RequestKind::kEquilibrium;
  if (n == "run") return RequestKind::kRun;
  if (n == "sweep") return RequestKind::kSweep;
  if (n == "table1") return RequestKind::kTable1;
  return std::nullopt;
}

bool key_allowed(RequestKind kind, const std::string& key) {
  if (key == "deadline_ms") return true;
  switch (kind) {
    case RequestKind::kPing:
    case RequestKind::kStats:
    case RequestKind::kMetrics:
    case RequestKind::kQuit:
      return false;
    case RequestKind::kTrace:
      return key == "limit";
    case RequestKind::kEquilibrium:
      return key == "workload" || key == "threads" || key == "fan" ||
             key == "dvfs" || key == "tec" || key == "trace";
    case RequestKind::kRun:
      return key == "policy" || key == "workload" || key == "threads" ||
             key == "fan" || key == "trace";
    case RequestKind::kSweep:
      return key == "policy" || key == "workload" || key == "threads" ||
             key == "trace";
    case RequestKind::kTable1:
      return key == "workload" || key == "threads" || key == "trace";
  }
  return false;
}

std::string format_double_value(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace

std::string_view kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing:
      return "ping";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kMetrics:
      return "metrics";
    case RequestKind::kQuit:
      return "quit";
    case RequestKind::kTrace:
      return "trace";
    case RequestKind::kEquilibrium:
      return "equilibrium";
    case RequestKind::kRun:
      return "run";
    case RequestKind::kSweep:
      return "sweep";
    case RequestKind::kTable1:
      return "table1";
  }
  return "?";
}

ParsedRequest parse_request(std::string_view line) {
  std::vector<Token> tokens;
  std::string error;
  if (!tokenize(line, tokens, error)) return ParsedRequest::failure(error);
  if (tokens.empty()) return ParsedRequest::failure("empty request");
  if (!tokens.front().key.empty())
    return ParsedRequest::failure("request must start with a kind, got '" +
                                  tokens.front().key + "=...'");

  const auto kind = kind_from_name(tokens.front().value);
  if (!kind)
    return ParsedRequest::failure("unknown request kind '" +
                                  tokens.front().value + "'");

  Request req;
  req.kind = *kind;
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const auto& tok = tokens[t];
    if (tok.key.empty()) {
      // `metrics prom` selects the Prometheus exposition format; it is
      // the only bare token any kind accepts.
      if (req.kind == RequestKind::kMetrics && to_lower(tok.value) == "prom") {
        req.format = "prom";
        continue;
      }
      return ParsedRequest::failure("stray token '" + tok.value +
                                    "' (expected key=value)");
    }
    const std::string key = to_lower(tok.key);
    if (!key_allowed(req.kind, key))
      return ParsedRequest::failure(
          "key '" + key + "' not valid for kind '" +
          std::string(kind_name(req.kind)) + "'");
    if (key == "workload") {
      req.workload = to_lower(tok.value);
      if (req.workload.empty())
        return ParsedRequest::failure("workload must be non-empty");
    } else if (key == "policy") {
      req.policy = to_lower(tok.value);
      if (req.policy.empty())
        return ParsedRequest::failure("policy must be non-empty");
    } else if (key == "threads") {
      if (!parse_int(tok.value, req.threads) || req.threads <= 0)
        return ParsedRequest::failure("bad threads '" + tok.value +
                                      "' (want a positive integer)");
    } else if (key == "fan") {
      if (!parse_int(tok.value, req.fan) || req.fan < 0)
        return ParsedRequest::failure("bad fan level '" + tok.value +
                                      "' (want a non-negative integer)");
    } else if (key == "dvfs") {
      if (!parse_int(tok.value, req.dvfs) || req.dvfs < 0)
        return ParsedRequest::failure("bad dvfs level '" + tok.value +
                                      "' (want a non-negative integer)");
    } else if (key == "tec") {
      if (!parse_bool(tok.value, req.tec_on))
        return ParsedRequest::failure("bad tec value '" + tok.value +
                                      "' (want on|off)");
    } else if (key == "deadline_ms") {
      if (!parse_double(tok.value, req.deadline_ms) || req.deadline_ms < 0)
        return ParsedRequest::failure("bad deadline_ms '" + tok.value + "'");
    } else if (key == "trace") {
      const auto ctx = TraceContext::from_wire(tok.value);
      if (!ctx)
        return ParsedRequest::failure("bad trace context '" + tok.value +
                                      "' (want <id hex>-<parent hex>)");
      req.trace = *ctx;
    } else if (key == "limit") {
      if (!parse_int(tok.value, req.trace_limit) || req.trace_limit <= 0)
        return ParsedRequest::failure("bad limit '" + tok.value +
                                      "' (want a positive integer)");
    }
  }
  return ParsedRequest::success(std::move(req));
}

std::string canonical_key(const Request& request) {
  std::string key{kind_name(request.kind)};
  auto field = [&key](std::string_view k, std::string_view v) {
    key += ' ';
    key += k;
    key += '=';
    append_value(key, v);
  };
  switch (request.kind) {
    case RequestKind::kPing:
    case RequestKind::kStats:
    case RequestKind::kMetrics:
    case RequestKind::kQuit:
    case RequestKind::kTrace:
      break;
    case RequestKind::kEquilibrium:
      field("dvfs", std::to_string(request.dvfs));
      field("fan", std::to_string(request.fan));
      field("tec", request.tec_on ? "on" : "off");
      field("threads", std::to_string(request.threads));
      field("workload", to_lower(request.workload));
      break;
    case RequestKind::kRun:
      field("fan", std::to_string(request.fan));
      field("policy", to_lower(request.policy));
      field("threads", std::to_string(request.threads));
      field("workload", to_lower(request.workload));
      break;
    case RequestKind::kSweep:
      field("policy", to_lower(request.policy));
      field("threads", std::to_string(request.threads));
      field("workload", to_lower(request.workload));
      break;
    case RequestKind::kTable1:
      field("threads", std::to_string(request.threads));
      field("workload", to_lower(request.workload));
      break;
  }
  return key;
}

void Response::add(std::string key, double value) {
  add(std::move(key), format_double_value(value));
}

void Response::add(std::string key, std::uint64_t value) {
  add(std::move(key), std::to_string(value));
}

std::optional<std::string> Response::field(std::string_view key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return v;
  return std::nullopt;
}

std::string serialize_response(const Response& response) {
  switch (response.status) {
    case Response::Status::kBusy:
      return "busy";
    case Response::Status::kError: {
      std::string line = "error msg=";
      append_quoted(line, response.error);
      return line;
    }
    case Response::Status::kOk:
      break;
  }
  std::string line = "ok";
  if (response.cached) line += " cached=1";
  for (const auto& [k, v] : response.fields) {
    line += ' ';
    line += k;
    line += '=';
    append_value(line, v);
  }
  return line;
}

Response parse_response(std::string_view line) {
  std::vector<Token> tokens;
  std::string error;
  if (!tokenize(line, tokens, error)) return Response::make_error(error);
  if (tokens.empty() || !tokens.front().key.empty())
    return Response::make_error("malformed response line");

  const std::string& head = tokens.front().value;
  if (head == "busy") return Response::make_busy();
  if (head == "error") {
    for (std::size_t t = 1; t < tokens.size(); ++t)
      if (tokens[t].key == "msg") return Response::make_error(tokens[t].value);
    return Response::make_error("unknown error");
  }
  if (head != "ok")
    return Response::make_error("unknown response status '" + head + "'");

  Response r;
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const auto& tok = tokens[t];
    if (tok.key.empty())
      return Response::make_error("stray token '" + tok.value +
                                  "' in response");
    if (tok.key == "cached") {
      r.cached = tok.value == "1";
    } else {
      r.add(tok.key, tok.value);
    }
  }
  return r;
}

Response metrics_to_response(const MetricsRegistry::Snapshot& snapshot) {
  Response r;
  char buf[32];
  const auto fmt = [&buf](double v) -> std::string {
    if (std::isinf(v)) return "inf";
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
  };
  for (const auto& [name, snap] : snapshot.histograms) {
    r.add(name + "_count", snap.count);
    r.add(name + "_p50_us", snap.percentile(50.0));
    r.add(name + "_p90_us", snap.percentile(90.0));
    r.add(name + "_p99_us", snap.percentile(99.0));
    r.add(name + "_p999_us", snap.percentile(99.9));
    r.add(name + "_mean_us", snap.mean_us());
    r.add(name + "_max_us", snap.max_us);
    // Non-empty buckets as `upper_bound_us:count` pairs — the full
    // distribution, not just the extracted percentiles.
    std::string buckets;
    for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      if (snap.buckets[i] == 0) continue;
      if (!buckets.empty()) buckets += ',';
      buckets += fmt(LatencyHistogram::bucket_upper_us(i));
      buckets += ':';
      buckets += std::to_string(snap.buckets[i]);
    }
    r.add(name + "_buckets", buckets);
  }
  for (const auto& [name, value] : snapshot.counters) r.add(name, value);
  for (const auto& [name, value] : snapshot.gauges) r.add(name, value);
  return r;
}

Response metrics_to_response(const MetricsRegistry& registry) {
  return metrics_to_response(registry.snapshot());
}

}  // namespace tecfan::service
