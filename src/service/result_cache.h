// Sharded LRU cache for serialized responses.
//
// Every compute request (equilibrium / run / sweep / table1) is
// deterministic — same canonical key, same result — and costs milliseconds
// to seconds of simulation, so the serving path caches the serialized
// response payload keyed by the canonical request line. Sharding by key
// hash keeps lock hold times short when many session threads hit the cache
// at once; hit/miss/eviction counters feed the `stats` request and the
// loadgen report.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace tecfan::service {

class ResultCache {
 public:
  /// `capacity` is the total entry budget across all shards (minimum one
  /// entry per shard is enforced); `shards` must be positive.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Lookup; refreshes the entry's recency on hit.
  std::optional<std::string> get(const std::string& key);

  /// Insert or overwrite; evicts the shard's least recently used entry
  /// when the shard is at capacity.
  void put(const std::string& key, std::string value);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;      // current entries across shards
    std::size_t capacity = 0;  // total entry budget
    double hit_rate() const {
      const double total = static_cast<double>(hits + misses);
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };
  Stats stats() const;

  /// Current entry count per shard (index-aligned with the hash shards).
  /// Feeds the per-shard occupancy gauges: a hot-key hash imbalance shows
  /// up here long before the aggregate size does.
  std::vector<std::size_t> shard_sizes() const;

  void clear();

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used. Entries are (key, value).
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        index;
  };

  Shard& shard_for(const std::string& key);

  /// The capacity the caller asked for; stats() reports this, while
  /// eviction enforces the rounded-up per-shard budget.
  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace tecfan::service
