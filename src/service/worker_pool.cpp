#include "service/worker_pool.h"

#include <mutex>

#include "util/error.h"
#include "util/logging.h"

namespace tecfan::service {

WorkerPool::WorkerPool(std::size_t workers, std::size_t queue_capacity,
                       LatencyHistogram* queue_wait)
    : queue_(queue_capacity), queue_wait_(queue_wait) {
  TECFAN_REQUIRE(workers > 0, "worker pool needs at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() { shutdown(true); }

bool WorkerPool::submit(std::function<void()> run,
                        std::function<void()> on_expired,
                        std::chrono::steady_clock::time_point deadline) {
  submits_.fetch_add(1, std::memory_order_relaxed);
  Task task;
  task.run = std::move(run);
  task.expire = std::move(on_expired);
  task.deadline = deadline;
  task.enqueued_at = std::chrono::steady_clock::now();
  if (!queue_.try_push(std::move(task))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void WorkerPool::shutdown(bool drain) {
  if (shut_down_.exchange(true)) return;
  // Close before touching the backlog: once closed, no submit can be
  // accepted, so a drop shutdown cannot race a late push past the
  // cancellation sweep (it would have run silently after the drain).
  queue_.close();
  if (!drain) {
    for (Task& task : queue_.drain()) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      if (task.expire) task.expire();
    }
    // Queued tasks a worker popped between close() and drain() still run;
    // they were accepted before the shutdown and the in-flight guarantee
    // covers them.
  }
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

WorkerPool::Stats WorkerPool::stats() const {
  Stats s;
  s.submits = submits_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.queued = queue_.size();
  s.workers = threads_.size();
  return s;
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::optional<Task> task = queue_.pop();
    if (!task) return;  // closed and drained
    const auto now = std::chrono::steady_clock::now();
    if (queue_wait_) queue_wait_->record(now - task->enqueued_at);
    if (task->expired(now)) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      if (task->expire) task->expire();
      continue;
    }
    try {
      // Count before run(), like the expire path: run() fulfills the
      // reply the submitter is waiting on, and a stats read issued right
      // after that reply must already see the task accounted — counters
      // conserve at every observable point, not just eventually.
      executed_.fetch_add(1, std::memory_order_relaxed);
      task->run();
    } catch (const std::exception& e) {
      // Tasks are expected to capture their own failures into a response;
      // anything escaping here is a service-layer bug worth logging, but
      // must not take the worker down — and must not count as executed.
      executed_.fetch_sub(1, std::memory_order_relaxed);
      failed_.fetch_add(1, std::memory_order_relaxed);
      TECFAN_LOG_ERROR << "service task threw: " << e.what();
    } catch (...) {
      executed_.fetch_sub(1, std::memory_order_relaxed);
      failed_.fetch_add(1, std::memory_order_relaxed);
      TECFAN_LOG_ERROR << "service task threw a non-std exception";
    }
  }
}

}  // namespace tecfan::service
