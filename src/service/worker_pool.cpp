#include "service/worker_pool.h"

#include <mutex>

#include "util/error.h"
#include "util/logging.h"

namespace tecfan::service {

WorkerPool::WorkerPool(std::size_t workers, std::size_t queue_capacity)
    : queue_(queue_capacity) {
  TECFAN_REQUIRE(workers > 0, "worker pool needs at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() { shutdown(true); }

bool WorkerPool::submit(std::function<void()> run,
                        std::function<void()> on_expired,
                        std::chrono::steady_clock::time_point deadline) {
  Task task;
  task.run = std::move(run);
  task.expire = std::move(on_expired);
  task.deadline = deadline;
  if (!queue_.try_push(std::move(task))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void WorkerPool::shutdown(bool drain) {
  if (shut_down_.exchange(true)) return;
  if (!drain) {
    // Cancel the backlog first so poppers see an empty, closed queue.
    for (Task& task : queue_.drain()) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      if (task.expire) task.expire();
    }
  }
  queue_.close();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  if (drain) return;
  // Tasks that raced into the queue between drain() and close() still get
  // drained by the workers above (they run; acceptable for a drop shutdown).
}

WorkerPool::Stats WorkerPool::stats() const {
  Stats s;
  s.executed = executed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.queued = queue_.size();
  s.workers = threads_.size();
  return s;
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::optional<Task> task = queue_.pop();
    if (!task) return;  // closed and drained
    if (task->expired(std::chrono::steady_clock::now())) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      if (task->expire) task->expire();
      continue;
    }
    try {
      task->run();
    } catch (const std::exception& e) {
      // Tasks are expected to capture their own failures into a response;
      // anything escaping here is a service-layer bug worth logging, but
      // must not take the worker down.
      TECFAN_LOG_ERROR << "service task threw: " << e.what();
    } catch (...) {
      TECFAN_LOG_ERROR << "service task threw a non-std exception";
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace tecfan::service
