// Persistent worker pool for the serving path.
//
// A fixed set of threads started once at daemon boot pulls tasks from a
// bounded TaskQueue. submit() applies backpressure (returns false when the
// queue is full) rather than blocking the session thread, and tasks whose
// deadline expired while queued have their `expire` continuation run on a
// worker instead of the work itself. Shutdown is graceful by default:
// accepted tasks finish, then the threads join. A drop shutdown closes the
// queue first (so no late submit can slip past the cancellation) and then
// cancels the backlog by running each queued task's expire continuation.
//
// Counter discipline: every submit() ends in exactly one of
// executed / failed / expired / rejected, so
//   executed + failed + expired + rejected == total submits
// holds at quiescence (the conservation law the service tests pin).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "service/task_queue.h"
#include "util/metrics.h"

namespace tecfan::service {

class WorkerPool {
 public:
  /// `queue_wait` (optional) receives the submit-to-dequeue latency of
  /// every task a worker picks up, expired or not; it must outlive the
  /// pool.
  WorkerPool(std::size_t workers, std::size_t queue_capacity,
             LatencyHistogram* queue_wait = nullptr);
  /// Graceful shutdown (drain).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue work; `deadline` of time_point::max() means none. Returns
  /// false — and counts a rejection — when the pool is saturated or shut
  /// down; the caller is expected to answer `busy`.
  bool submit(std::function<void()> run, std::function<void()> on_expired = {},
              std::chrono::steady_clock::time_point deadline =
                  std::chrono::steady_clock::time_point::max());

  /// Stop accepting work and join the workers. With drain=true every
  /// accepted task still runs; with drain=false queued tasks are cancelled
  /// via their expire continuation (in-flight tasks always finish).
  /// Idempotent; called by the destructor with drain=true.
  void shutdown(bool drain = true);

  struct Stats {
    std::uint64_t submits = 0;   // submit() calls (accepted or rejected)
    std::uint64_t executed = 0;  // tasks whose run() returned normally
    std::uint64_t failed = 0;    // tasks whose run() threw
    std::uint64_t expired = 0;   // tasks expired (deadline or cancelled)
    std::uint64_t rejected = 0;  // submits refused by backpressure
    std::size_t queued = 0;      // tasks currently waiting
    std::size_t workers = 0;
  };
  Stats stats() const;

  std::size_t worker_count() const { return threads_.size(); }

 private:
  void worker_loop();

  TaskQueue queue_;
  LatencyHistogram* queue_wait_;  // may be null
  std::vector<std::thread> threads_;
  std::atomic<bool> shut_down_{false};
  std::atomic<std::uint64_t> submits_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace tecfan::service
