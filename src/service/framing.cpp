#include "service/framing.h"

#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tecfan::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds until `deadline` for poll(): -1 = no deadline,
/// 0 = already past (poll returns immediately).
int poll_timeout_ms(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto remaining = deadline - Clock::now();
  if (remaining <= Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
          .count();
  // Round up so a sub-millisecond remainder still waits one tick instead
  // of spinning.
  return static_cast<int>(ms) + 1;
}

}  // namespace

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool wait_readable(int fd, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;  // deadline
    if (errno != EINTR) return false;
  }
}

bool LineReader::has_line() const {
  return acc_.find('\n') != std::string::npos;
}

std::optional<std::string> LineReader::read_line(Clock::time_point deadline) {
  for (;;) {
    const std::size_t nl = acc_.find('\n');
    if (nl != std::string::npos) {
      std::string line = acc_.substr(0, nl);
      acc_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (fd_ < 0) return std::nullopt;
    if (!wait_readable(fd_, deadline)) return std::nullopt;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // peer closed
    acc_.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace tecfan::service
