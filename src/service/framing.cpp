#include "service/framing.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tecfan::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds until `deadline` for poll(): -1 = no deadline,
/// 0 = already past (poll returns immediately).
int poll_timeout_ms(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto remaining = deadline - Clock::now();
  if (remaining <= Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
          .count();
  // Round up so a sub-millisecond remainder still waits one tick instead
  // of spinning.
  return static_cast<int>(ms) + 1;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = nonblocking ? (flags | O_NONBLOCK)
                               : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  set_tcp_nodelay(fd);
  return fd;
}

int connect_loopback(std::uint16_t port, Clock::time_point deadline) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  const sockaddr_in addr = loopback_addr(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    // Wait for the three-way handshake (or a refusal) until the deadline.
    for (;;) {
      pollfd pfd{fd, POLLOUT, 0};
      const int prc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
      if (prc > 0) break;
      if (prc == 0 || errno != EINTR) {  // deadline or poll error
        ::close(fd);
        return -1;
      }
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  if (!set_nonblocking(fd, false)) {
    ::close(fd);
    return -1;
  }
  set_tcp_nodelay(fd);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool wait_readable(int fd, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;  // deadline
    if (errno != EINTR) return false;
  }
}

bool LineReader::has_line() const {
  return acc_.find('\n') != std::string::npos;
}

std::optional<std::string> LineReader::pop_line() {
  const std::size_t nl = acc_.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  std::string line = acc_.substr(0, nl);
  acc_.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

std::optional<std::string> LineReader::read_line(Clock::time_point deadline) {
  for (;;) {
    if (auto line = pop_line()) return line;
    if (fd_ < 0) return std::nullopt;
    if (!wait_readable(fd_, deadline)) return std::nullopt;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // peer closed
    acc_.append(buf, static_cast<std::size_t>(n));
  }
}

void WriteQueue::push(std::string chunk) {
  if (chunk.empty()) return;
  bytes_ += chunk.size();
  chunks_.push_back(std::move(chunk));
}

WriteQueue::FlushResult WriteQueue::flush(int fd) {
  while (!chunks_.empty()) {
    iovec iov[kMaxIov];
    std::size_t n = 0;
    for (auto it = chunks_.begin(); it != chunks_.end() && n < kMaxIov;
         ++it, ++n) {
      const std::size_t skip = n == 0 ? front_offset_ : 0;
      iov[n].iov_base = const_cast<char*>(it->data()) + skip;
      iov[n].iov_len = it->size() - skip;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n;
    ssize_t w;
    // sendmsg rather than writev: MSG_NOSIGNAL turns a peer that vanished
    // mid-flush into an error return instead of SIGPIPE.
    do {
      w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    } while (w < 0 && errno == EINTR);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushResult::kBlocked;
      return FlushResult::kError;
    }
    bytes_ -= static_cast<std::size_t>(w);
    std::size_t written = static_cast<std::size_t>(w);
    while (written > 0) {
      const std::size_t remaining = chunks_.front().size() - front_offset_;
      if (written >= remaining) {
        written -= remaining;
        front_offset_ = 0;
        chunks_.pop_front();
      } else {
        front_offset_ += written;
        written = 0;
      }
    }
  }
  return FlushResult::kDrained;
}

void WriteQueue::clear() {
  chunks_.clear();
  front_offset_ = 0;
  bytes_ = 0;
}

}  // namespace tecfan::service
