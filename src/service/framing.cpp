#include "service/framing.h"

#include "service/fault_injection.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace tecfan::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds until `deadline` for poll(): -1 = no deadline,
/// 0 = already past (poll returns immediately).
int poll_timeout_ms(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto remaining = deadline - Clock::now();
  if (remaining <= Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
          .count();
  // Round up so a sub-millisecond remainder still waits one tick instead
  // of spinning.
  return static_cast<int>(ms) + 1;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// Consult the injector before a dial. True = proceed; false = the dial
/// is refused (errno set).
bool connect_permitted(std::uint16_t port) {
  FaultInjector* fi = active_fault_injector();
  if (!fi) return true;
  const FaultDecision d = settle_fault_delay(fi->on_connect(port));
  if (d.kind == FaultDecision::Kind::kFail ||
      d.kind == FaultDecision::Kind::kEof) {
    errno = d.error != 0 ? d.error : ECONNREFUSED;
    return false;
  }
  return true;
}

}  // namespace

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = nonblocking ? (flags | O_NONBLOCK)
                               : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

int connect_loopback(std::uint16_t port) {
  if (!connect_permitted(port)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  set_tcp_nodelay(fd);
  return fd;
}

int connect_loopback(std::uint16_t port, Clock::time_point deadline) {
  if (!connect_permitted(port)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  const sockaddr_in addr = loopback_addr(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    // Wait for the three-way handshake (or a refusal) until the deadline.
    for (;;) {
      pollfd pfd{fd, POLLOUT, 0};
      const int prc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
      if (prc > 0) break;
      if (prc == 0 || errno != EINTR) {  // deadline or poll error
        ::close(fd);
        return -1;
      }
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  if (!set_nonblocking(fd, false)) {
    ::close(fd);
    return -1;
  }
  set_tcp_nodelay(fd);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    std::size_t attempt = data.size() - sent;
    if (FaultInjector* fi = active_fault_injector()) {
      const FaultDecision d = settle_fault_delay(fi->on_send(fd, attempt));
      if (d.kind == FaultDecision::Kind::kFail ||
          d.kind == FaultDecision::Kind::kEof) {
        errno = d.error != 0 ? d.error : ECONNRESET;
        return false;
      }
      if (d.kind == FaultDecision::Kind::kShort && d.cap > 0)
        attempt = std::min(attempt, d.cap);
    }
    const ssize_t w = ::send(fd, data.data() + sent, attempt, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool wait_readable(int fd, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;  // deadline
    if (errno != EINTR) return false;
  }
}

bool LineReader::has_line() const {
  return !overflowed_ && acc_.find('\n') != std::string::npos;
}

void LineReader::check_overflow() {
  if (overflowed_ || acc_.size() <= max_line_) return;
  const std::size_t nl = acc_.find('\n');
  if (nl == std::string::npos || nl > max_line_) overflowed_ = true;
}

std::optional<std::string> LineReader::pop_line() {
  if (overflowed_) return std::nullopt;
  const std::size_t nl = acc_.find('\n');
  if (nl == std::string::npos) {
    // An unterminated prefix past the cap can never become a legal line.
    if (acc_.size() > max_line_) overflowed_ = true;
    return std::nullopt;
  }
  if (nl > max_line_) {
    // A terminated line past the cap is just as over-long; refusing it
    // here (rather than only in append) catches lines that became the
    // buffer head after earlier pops.
    overflowed_ = true;
    return std::nullopt;
  }
  std::string line = acc_.substr(0, nl);
  acc_.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

std::optional<std::string> LineReader::read_line(Clock::time_point deadline) {
  for (;;) {
    if (auto line = pop_line()) return line;
    if (overflowed_) return std::nullopt;
    if (fd_ < 0) return std::nullopt;
    if (!wait_readable(fd_, deadline)) return std::nullopt;
    char buf[4096];
    const ssize_t n = faulted_recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // peer closed
    append({buf, static_cast<std::size_t>(n)});
  }
}

void shutdown_drain(int fd, std::chrono::milliseconds budget) {
  ::shutdown(fd, SHUT_WR);
  const auto deadline = Clock::now() + budget;
  char sink[4096];
  while (wait_readable(fd, deadline)) {
    const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed (or errored) — drained
  }
}

void WriteQueue::push(std::string chunk) {
  if (chunk.empty()) return;
  bytes_ += chunk.size();
  chunks_.push_back(std::move(chunk));
}

WriteQueue::FlushResult WriteQueue::flush(int fd) {
  while (!chunks_.empty()) {
    iovec iov[kMaxIov];
    std::size_t n = 0;
    std::size_t total = 0;
    for (auto it = chunks_.begin(); it != chunks_.end() && n < kMaxIov;
         ++it, ++n) {
      const std::size_t skip = n == 0 ? front_offset_ : 0;
      iov[n].iov_base = const_cast<char*>(it->data()) + skip;
      iov[n].iov_len = it->size() - skip;
      total += iov[n].iov_len;
    }
    if (FaultInjector* fi = active_fault_injector()) {
      const FaultDecision d = settle_fault_delay(fi->on_send(fd, total));
      if (d.kind == FaultDecision::Kind::kFail ||
          d.kind == FaultDecision::Kind::kEof) {
        return FlushResult::kError;
      }
      if (d.kind == FaultDecision::Kind::kShort && d.cap > 0 &&
          d.cap < total) {
        // Trim the gather list so the kernel sees at most `cap` bytes —
        // exactly the short-write shape a full socket buffer produces.
        std::size_t budget = d.cap;
        std::size_t m = 0;
        while (budget > 0) {
          if (iov[m].iov_len > budget) {
            iov[m].iov_len = budget;
            budget = 0;
          } else {
            budget -= iov[m].iov_len;
          }
          ++m;
        }
        n = m;
      }
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n;
    ssize_t w;
    // sendmsg rather than writev: MSG_NOSIGNAL turns a peer that vanished
    // mid-flush into an error return instead of SIGPIPE.
    do {
      w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    } while (w < 0 && errno == EINTR);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushResult::kBlocked;
      return FlushResult::kError;
    }
    // A zero-byte sendmsg on a nonempty gather list should be impossible
    // for TCP, but looping on it would spin forever; treat it as blocked.
    if (w == 0) return FlushResult::kBlocked;
    bytes_ -= static_cast<std::size_t>(w);
    std::size_t written = static_cast<std::size_t>(w);
    while (written > 0) {
      const std::size_t remaining = chunks_.front().size() - front_offset_;
      if (written >= remaining) {
        written -= remaining;
        front_offset_ = 0;
        chunks_.pop_front();
      } else {
        front_offset_ += written;
        written = 0;
      }
    }
  }
  return FlushResult::kDrained;
}

void WriteQueue::clear() {
  chunks_.clear();
  front_offset_ = 0;
  bytes_ = 0;
}

}  // namespace tecfan::service
