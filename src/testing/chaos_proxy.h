// Out-of-process fault injection: a chaos TCP proxy between the router
// and one tecfand backend.
//
// The in-process FaultInjector (service/fault_injection.h) perturbs the
// router's own syscalls; this proxy instead perturbs the *wire* between
// router and backend, which is the only place some fault classes exist at
// all: accept-then-close, accept-then-blackhole (the backend that dials
// fine but never answers), mid-stream disconnects, and reply-side
// corruption the backend itself would never produce.
//
// The proxy is line-aware on the reply leg only. Request bytes are pumped
// raw (optionally in short writes, with delays, or cut mid-stream) because
// corrupting a request would make the *backend* answer `error` — a
// legitimate, protocol-clean outcome that tests nothing. Reply lines are
// re-framed through a LineReader so corruption can be applied per response
// line: replace a line with garbage, truncate it and cut the connection,
// dribble it byte-at-a-time (slow-loris), or inject an unsolicited garbage
// line. Injected garbage deliberately never parses as a protocol status
// (`ok`/`error`/`busy`): an unsolicited line that *did* look like a valid
// reply would silently shift the router's in-order request/reply pairing —
// the line protocol carries no request ids, so that fault class is
// undetectable by design and is excluded from the fault model (see
// DESIGN.md, "Fault model").
//
// Determinism: every decision is drawn from a splitmix64 stream seeded by
// (options.seed, connection index, leg), so a failing run is replayed by
// re-running with the same seed — thread scheduling changes byte
// interleavings but never which faults a given connection suffers.
//
// One proxy fronts one backend; a fleet wants one proxy per backend (see
// chaos_fleet.h). `tools/chaosproxy` wraps this class in a CLI for manual
// poking at a live router.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace tecfan::testing {

struct ChaosProxyOptions {
  /// Backend to front (127.0.0.1). Required.
  std::uint16_t target_port = 0;
  /// Proxy listen port; 0 picks an ephemeral port (see ChaosProxy::port()).
  std::uint16_t listen_port = 0;
  std::uint64_t seed = 1;

  // --- Connection-level faults, decided once per accepted connection. ---
  /// Accept, then close immediately (the dial "succeeded" but the first
  /// use finds the peer gone). True ECONNREFUSED needs a dead port or the
  /// in-process injector; a proxy must accept to exist.
  double refuse_p = 0.0;
  /// Accept, read and discard forever, never dial the backend: the
  /// blackholed backend that takes forwards and never answers.
  double blackhole_p = 0.0;

  // --- Request leg (client -> backend), per pump iteration. ---
  /// 0 = off; otherwise forward in chunks of at most this many bytes per
  /// send() (exercises the backend-side partial-read paths).
  std::size_t short_write_cap = 0;
  double request_delay_p = 0.0;
  std::uint32_t request_delay_us = 200;
  /// Cut both legs mid-stream (the router loses the connection with its
  /// FIFO in flight).
  double request_disconnect_p = 0.0;

  // --- Reply leg (backend -> client), per reply line. ---
  /// Replace the reply line with garbage that is not a protocol status.
  double corrupt_p = 0.0;
  /// Forward a prefix of the line with no '\n', then cut both legs.
  double truncate_p = 0.0;
  /// Inject a garbage line before the real reply line.
  double unsolicited_p = 0.0;
  /// Dribble the line one byte per send(), sleeping between bytes.
  double slowloris_p = 0.0;
  std::uint32_t slowloris_delay_us = 100;
  double reply_delay_p = 0.0;
  std::uint32_t reply_delay_us = 200;
  /// Cut both legs instead of forwarding the line.
  double reply_disconnect_p = 0.0;
};

class ChaosProxy {
 public:
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t refused = 0;
    std::uint64_t blackholed = 0;
    std::uint64_t request_disconnects = 0;
    std::uint64_t reply_disconnects = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t truncated = 0;
    std::uint64_t unsolicited = 0;
    std::uint64_t slowloris_lines = 0;
    std::uint64_t delays = 0;
    std::uint64_t lines_forwarded = 0;
    std::uint64_t total_injected() const {
      return refused + blackholed + request_disconnects + reply_disconnects +
             corrupted + truncated + unsolicited + slowloris_lines + delays;
    }
  };

  /// Binds and starts the accept loop; throws via TECFAN_REQUIRE on bind
  /// failure or a zero target_port.
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// The bound listen port (the router's backend_ports entry).
  std::uint16_t port() const { return port_; }

  Stats stats() const;

  /// Stop accepting, cut every live connection, join all pump threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  /// Per-connection/per-leg deterministic RNG (splitmix64 stream).
  struct Rng {
    std::uint64_t state = 0;
    double next_unit();
  };

  void accept_loop();
  void serve_connection(int client_fd, std::uint64_t conn_index);
  void reply_pump(int backend_fd, int client_fd, std::uint64_t conn_index);
  /// Track a live fd so stop() can shut it down; returns false when the
  /// proxy is already stopping (caller must close the fd itself).
  bool track_fd(int fd);
  void shutdown_fd_pair(int a, int b);

  ChaosProxyOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::vector<int> live_fds_;          // under mu_
  std::vector<std::thread> threads_;   // under mu_ (accept thread excluded)
  std::thread accept_thread_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> blackholed_{0};
  std::atomic<std::uint64_t> request_disconnects_{0};
  std::atomic<std::uint64_t> reply_disconnects_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> truncated_{0};
  std::atomic<std::uint64_t> unsolicited_{0};
  std::atomic<std::uint64_t> slowloris_lines_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> lines_forwarded_{0};
};

}  // namespace tecfan::testing
