// A router + tecfand fleet wired for chaos: every backend optionally
// fronted by a ChaosProxy, plus a clean reference Server for oracle
// replies, plus a storm driver that pushes pipelined client load through
// the router and checks the invariants the chaos tests pin:
//
//   1. No client-visible protocol corruption — every reply line the
//      router delivers parses as `ok`/`error`/`busy`, whatever garbage
//      the proxies fed it.
//   2. Per-connection reply order — reply k on a client connection
//      answers that connection's k-th request. Checked by comparing each
//      `ok` reply against the reference server's reply for the matching
//      request line (the corpus lines are distinct, so any swap shows up
//      as a mismatch).
//   3. Counter conservation — at quiescence every backend reports
//      pool_submits == executed + failed + expired + rejected: no work
//      item is dropped or double-counted however its connection died.
//   4. No stuck requests — every request gets *some* reply before the
//      storm timeout, and the router's pending / backend_inflight leak
//      gauges return to zero afterwards (hedge losers and blackholed
//      FIFO entries were reclaimed).
//   5. Bounded memory — implied by 4 plus the LineReader line cap: no
//      per-connection buffer or FIFO survives quiescence.
//   6. Trace integrity (storms with router sampling on) — a sampled trace
//      id survives failover and hedging carrying only the winning
//      attempt's backend spans (at most one backend e2e root per trace),
//      and the span rings never leak slots: every tier's open-spans count
//      drains to zero at quiescence.
//
// StormReport::describe() prints the seed and per-class proxy injection
// counts, so a failing run is replayed by re-running with the seed it
// printed. Used by tests/chaos_test.cpp (fixed seeds, one fault class per
// test) and tools/chaos (longer randomized storms for bench.sh).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "service/server.h"
#include "testing/chaos_proxy.h"

namespace tecfan::testing {

/// ServerOptions matched to the cluster tests: tiny grid, fast computes,
/// a queue deep enough that pipelined storms don't trip `busy`.
service::ServerOptions chaos_server_options();

/// RouterOptions with fast health probing and bounded forwards, so
/// blackholed backends are reclaimed in test time (deadline 2 s, stall
/// watchdog 3 s). backend_ports is filled by the fleet.
cluster::RouterOptions chaos_router_options();

struct ChaosFleetOptions {
  std::size_t backends = 2;
  /// Front every backend with a ChaosProxy configured from `proxy`
  /// (target_port and seed are filled per backend; the per-backend seed
  /// mixes the proxy seed with the backend index).
  bool with_proxies = false;
  ChaosProxyOptions proxy;
  service::ServerOptions server = chaos_server_options();
  cluster::RouterOptions router = chaos_router_options();
};

class ChaosFleet {
 public:
  explicit ChaosFleet(ChaosFleetOptions options);
  ~ChaosFleet();

  ChaosFleet(const ChaosFleet&) = delete;
  ChaosFleet& operator=(const ChaosFleet&) = delete;

  std::uint16_t router_port() const { return router_port_; }
  /// Direct (proxy-bypassing) port of backend i — for stats queries.
  std::uint16_t backend_port(std::size_t i) const;
  std::size_t backend_count() const { return servers_.size(); }

  cluster::Router& router() { return *router_; }
  /// In-process handle on backend i — for tracer/leak-gauge queries that
  /// have no wire verb on the direct port.
  service::Server& backend(std::size_t i) { return *servers_[i].server; }
  /// nullptr when the fleet runs proxy-less.
  ChaosProxy* proxy(std::size_t i);
  /// Clean oracle: same ServerOptions as the fleet members, never bound,
  /// never proxied. Deterministic engines make its replies byte-identical
  /// to any backend's (modulo the cached= token).
  service::Server& reference() { return *reference_; }

  /// Stop router, proxies, and backends (destructor calls it).
  void stop();

 private:
  struct Backend {
    std::unique_ptr<service::Server> server;
    std::uint16_t port = 0;
    std::thread thread;
  };

  ChaosFleetOptions options_;
  std::vector<Backend> servers_;
  std::vector<std::unique_ptr<ChaosProxy>> proxies_;
  std::unique_ptr<service::Server> reference_;
  std::unique_ptr<cluster::Router> router_;
  std::uint16_t router_port_ = 0;
  std::thread router_thread_;
  bool stopped_ = false;
};

struct StormOptions {
  std::uint64_t seed = 1;
  std::size_t clients = 4;
  std::size_t requests_per_client = 32;
  /// Request lines sent per burst before reading the burst's replies.
  std::size_t pipeline_depth = 8;
  /// Per-reply read deadline; a miss records the request as stuck.
  double read_timeout_s = 30.0;
  /// Destructive storms (corruption, disconnects, blackholes) may
  /// legitimately exhaust the failover chain and answer
  /// `error no backend available`; nondestructive storms must not.
  bool allow_errors = false;
};

struct StormReport {
  std::uint64_t seed = 0;
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t ok_cached = 0;
  std::size_t errors = 0;      // error/busy replies (protocol-clean)
  std::size_t malformed = 0;   // invariant 1 violations
  std::size_t mismatched = 0;  // invariant 2 violations
  std::size_t missing = 0;     // invariant 4 violations (no reply in time)
  std::uint64_t pending_after = 0;
  std::uint64_t inflight_after = 0;
  /// Traces reassembled at the router (sampling storms; 0 otherwise).
  std::size_t traces_completed = 0;
  /// Sum of open-span gauges across tiers at quiescence; nonzero means a
  /// ScopedSpan leaked its slot.
  std::int64_t open_spans_after = 0;
  /// Human-readable invariant violations; empty == storm passed.
  std::vector<std::string> violations;

  bool passed() const { return violations.empty(); }
  /// Multi-line summary, always including the seed for replay.
  std::string describe() const;
};

/// Drive one storm through the fleet's router and check all invariants.
/// Blocks until every client finishes and the router quiesces.
StormReport run_storm(ChaosFleet& fleet, const StormOptions& options);

/// The distinct compute lines storms draw from (same grid the cluster
/// tests use; n <= 42 keeps every line inside the valid fan x dvfs
/// ranges — beyond that the backends answer `error`).
std::vector<std::string> storm_corpus(std::size_t n);

}  // namespace tecfan::testing
