#include "testing/chaos_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>

#include "service/framing.h"
#include "util/error.h"

namespace tecfan::testing {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void sleep_us(std::uint32_t us) {
  if (us) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Send the whole buffer in chunks of at most `cap` bytes (0 = no cap).
/// Plain blocking sends, MSG_NOSIGNAL; false when the peer is gone.
bool send_capped(int fd, std::string_view data, std::size_t cap) {
  while (!data.empty()) {
    const std::size_t n = cap ? std::min(cap, data.size()) : data.size();
    if (!service::send_all(fd, data.substr(0, n))) return false;
    data.remove_prefix(n);
  }
  return true;
}

// Deliberately not a protocol status line: the router must detect these
// as corruption, never deliver them. (An unsolicited line that *looked*
// valid would be undetectable — see the fault-model note in the header.)
constexpr const char* kGarbageLine = "@@chaos garbage not-a-protocol-line##";

}  // namespace

double ChaosProxy::Rng::next_unit() {
  state = splitmix64(state);
  return static_cast<double>(state >> 11) * 0x1.0p-53;
}

ChaosProxy::ChaosProxy(ChaosProxyOptions options) : options_(options) {
  TECFAN_REQUIRE(options_.target_port != 0, "ChaosProxy needs a target port");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  TECFAN_REQUIRE(listen_fd_ >= 0, "ChaosProxy socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.listen_port);
  TECFAN_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "ChaosProxy bind() failed");
  TECFAN_REQUIRE(::listen(listen_fd_, 64) == 0, "ChaosProxy listen() failed");
  socklen_t len = sizeof(addr);
  TECFAN_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0,
                 "ChaosProxy getsockname() failed");
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(threads_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : threads)
    if (t.joinable()) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : live_fds_) ::close(fd);
    live_fds_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

ChaosProxy::Stats ChaosProxy::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.refused = refused_.load(std::memory_order_relaxed);
  s.blackholed = blackholed_.load(std::memory_order_relaxed);
  s.request_disconnects = request_disconnects_.load(std::memory_order_relaxed);
  s.reply_disconnects = reply_disconnects_.load(std::memory_order_relaxed);
  s.corrupted = corrupted_.load(std::memory_order_relaxed);
  s.truncated = truncated_.load(std::memory_order_relaxed);
  s.unsolicited = unsolicited_.load(std::memory_order_relaxed);
  s.slowloris_lines = slowloris_lines_.load(std::memory_order_relaxed);
  s.delays = delays_.load(std::memory_order_relaxed);
  s.lines_forwarded = lines_forwarded_.load(std::memory_order_relaxed);
  return s;
}

bool ChaosProxy::track_fd(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) return false;
  live_fds_.push_back(fd);
  return true;
}

void ChaosProxy::shutdown_fd_pair(int a, int b) {
  if (a >= 0) ::shutdown(a, SHUT_RDWR);
  if (b >= 0) ::shutdown(b, SHUT_RDWR);
}

void ChaosProxy::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // listen socket shut down by stop()
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    const std::uint64_t conn_index =
        connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    live_fds_.push_back(fd);
    threads_.emplace_back(
        [this, fd, conn_index] { serve_connection(fd, conn_index); });
  }
}

void ChaosProxy::serve_connection(int client_fd, std::uint64_t conn_index) {
  service::set_tcp_nodelay(client_fd);
  // Accept-time decisions use a dedicated stream so the per-leg streams
  // stay aligned whether or not a connection-level fault fired.
  Rng accept_rng{splitmix64(options_.seed ^ (conn_index * 3 + 1))};
  if (accept_rng.next_unit() < options_.refuse_p) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    ::shutdown(client_fd, SHUT_RDWR);
    return;  // fd closed by stop(); tracked in accept_loop
  }
  if (accept_rng.next_unit() < options_.blackhole_p) {
    blackholed_.fetch_add(1, std::memory_order_relaxed);
    char sink[4096];
    while (::recv(client_fd, sink, sizeof(sink), 0) > 0) {
    }
    return;
  }

  const int backend_fd = service::connect_loopback(options_.target_port);
  if (backend_fd < 0) {
    ::shutdown(client_fd, SHUT_RDWR);
    return;
  }
  if (!track_fd(backend_fd)) {
    ::close(backend_fd);
    ::shutdown(client_fd, SHUT_RDWR);
    return;
  }

  std::thread pump([this, backend_fd, client_fd, conn_index] {
    reply_pump(backend_fd, client_fd, conn_index);
  });

  // Request leg: raw byte pump client -> backend.
  Rng rng{splitmix64(options_.seed ^ (conn_index * 3 + 2))};
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    if (options_.request_delay_p > 0.0 &&
        rng.next_unit() < options_.request_delay_p) {
      delays_.fetch_add(1, std::memory_order_relaxed);
      sleep_us(options_.request_delay_us);
    }
    if (options_.request_disconnect_p > 0.0 &&
        rng.next_unit() < options_.request_disconnect_p) {
      request_disconnects_.fetch_add(1, std::memory_order_relaxed);
      shutdown_fd_pair(client_fd, backend_fd);
      break;
    }
    if (!send_capped(backend_fd, std::string_view(buf, std::size_t(n)),
                     options_.short_write_cap))
      break;
  }
  // Client side is done sending: let the backend see EOF so in-flight
  // replies still drain through the pump, then wait for it.
  ::shutdown(backend_fd, SHUT_WR);
  pump.join();
  shutdown_fd_pair(client_fd, backend_fd);
}

void ChaosProxy::reply_pump(int backend_fd, int client_fd,
                            std::uint64_t conn_index) {
  Rng rng{splitmix64(options_.seed ^ (conn_index * 3 + 3))};
  service::LineReader reader(backend_fd);
  while (auto line = reader.read_line()) {
    if (options_.reply_delay_p > 0.0 &&
        rng.next_unit() < options_.reply_delay_p) {
      delays_.fetch_add(1, std::memory_order_relaxed);
      sleep_us(options_.reply_delay_us);
    }
    if (options_.reply_disconnect_p > 0.0 &&
        rng.next_unit() < options_.reply_disconnect_p) {
      reply_disconnects_.fetch_add(1, std::memory_order_relaxed);
      shutdown_fd_pair(client_fd, backend_fd);
      return;
    }
    if (options_.unsolicited_p > 0.0 &&
        rng.next_unit() < options_.unsolicited_p) {
      unsolicited_.fetch_add(1, std::memory_order_relaxed);
      if (!service::send_all(client_fd, std::string(kGarbageLine) + "\n"))
        return;
    }
    if (options_.corrupt_p > 0.0 && rng.next_unit() < options_.corrupt_p) {
      corrupted_.fetch_add(1, std::memory_order_relaxed);
      if (!service::send_all(client_fd, std::string(kGarbageLine) + "\n"))
        return;
      continue;  // the real line is dropped: the pairing is already broken
    }
    if (options_.truncate_p > 0.0 && rng.next_unit() < options_.truncate_p) {
      truncated_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t keep = std::max<std::size_t>(1, line->size() / 2);
      service::send_all(client_fd, std::string_view(*line).substr(0, keep));
      shutdown_fd_pair(client_fd, backend_fd);
      return;
    }
    if (options_.slowloris_p > 0.0 &&
        rng.next_unit() < options_.slowloris_p) {
      slowloris_lines_.fetch_add(1, std::memory_order_relaxed);
      const std::string wire = *line + "\n";
      for (const char c : wire) {
        if (!service::send_all(client_fd, std::string_view(&c, 1))) return;
        sleep_us(options_.slowloris_delay_us);
      }
      lines_forwarded_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!service::send_all(client_fd, *line + "\n")) return;
    lines_forwarded_.fetch_add(1, std::memory_order_relaxed);
  }
  // Backend EOF (or an over-long line): nothing more to forward; make the
  // client see EOF too so the router tears the pipe down.
  ::shutdown(client_fd, SHUT_RDWR);
}

}  // namespace tecfan::testing
