#include "testing/chaos_fleet.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <sstream>

#include "service/framing.h"
#include "service/request.h"
#include "util/error.h"
#include "util/trace.h"

namespace tecfan::testing {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Erase one ` key=value` field (bare or quoted value) from a reply line.
void strip_field(std::string& line, const std::string& marker) {
  const auto pos = line.find(marker);
  if (pos == std::string::npos) return;
  std::size_t end = pos + marker.size();
  if (end < line.size() && line[end] == '"') {
    end = line.find('"', end + 1);
    end = end == std::string::npos ? line.size() : end + 1;
  } else {
    end = line.find(' ', end);
    if (end == std::string::npos) end = line.size();
  }
  line.erase(pos, end - pos);
}

/// Replies are byte-identical across fleet members except for the
/// `cached=1` marker, which depends on which backend's cache saw the key
/// first, and — in sampling storms — the `trace=`/`spans=` fields, whose
/// ids and durations are per-request; drop all three before comparing
/// against the (never-sampled) reference reply.
std::string strip_cached(std::string line) {
  const auto pos = line.find(" cached=1");
  if (pos != std::string::npos) line.erase(pos, 9);
  strip_field(line, " trace=");
  strip_field(line, " spans=");
  return line;
}

bool is_protocol_line(const std::string& line) {
  return line == "ok" || line.rfind("ok ", 0) == 0 || line == "busy" ||
         line.rfind("error ", 0) == 0;
}

std::optional<std::uint64_t> stat_field(const service::Response& r,
                                        const std::string& key) {
  const auto v = r.field(key);
  if (!v) return std::nullopt;
  return std::stoull(*v);
}

}  // namespace

service::ServerOptions chaos_server_options() {
  service::ServerOptions o;
  o.tiles_x = 2;
  o.tiles_y = 2;
  o.workers = 2;
  // Deep enough that clients * pipeline_depth (plus hedges) never trips
  // `busy` on a healthy fleet — storms assert zero errors in the
  // nondestructive classes.
  o.queue_capacity = 128;
  o.cache_capacity = 256;
  o.max_sim_time_s = 0.05;
  return o;
}

cluster::RouterOptions chaos_router_options() {
  cluster::RouterOptions o;
  o.health.interval_s = 0.05;
  o.health.ping_timeout_ms = 250.0;
  // Bound every forward so blackholed backends resolve in test time: the
  // deadline answers the client, deadline + grace reclaims the pipe.
  o.backend_deadline_ms = 2000.0;
  o.dial_timeout_ms = 250.0;
  o.pipe_stall_ms = 3000.0;
  o.stall_grace_ms = 250.0;
  return o;
}

ChaosFleet::ChaosFleet(ChaosFleetOptions options)
    : options_(std::move(options)) {
  TECFAN_REQUIRE(options_.backends >= 1, "ChaosFleet needs backends");
  servers_.reserve(options_.backends);
  for (std::size_t i = 0; i < options_.backends; ++i) {
    Backend b;
    b.server = std::make_unique<service::Server>(options_.server);
    b.port = b.server->bind_listen(0);
    b.thread = std::thread([srv = b.server.get()] { srv->serve(); });
    servers_.push_back(std::move(b));
  }
  reference_ = std::make_unique<service::Server>(options_.server);

  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (options_.with_proxies) {
      ChaosProxyOptions po = options_.proxy;
      po.target_port = servers_[i].port;
      po.listen_port = 0;
      po.seed = splitmix64(options_.proxy.seed ^ (i + 1));
      proxies_.push_back(std::make_unique<ChaosProxy>(po));
      ports.push_back(proxies_.back()->port());
    } else {
      ports.push_back(servers_[i].port);
    }
  }

  cluster::RouterOptions ro = options_.router;
  ro.backend_ports = ports;
  router_ = std::make_unique<cluster::Router>(std::move(ro));
  router_port_ = router_->bind_listen(0);
  router_thread_ = std::thread([this] { router_->serve(); });
}

ChaosFleet::~ChaosFleet() { stop(); }

void ChaosFleet::stop() {
  if (stopped_) return;
  stopped_ = true;
  router_->stop();
  if (router_thread_.joinable()) router_thread_.join();
  for (auto& p : proxies_) p->stop();
  for (auto& b : servers_) {
    b.server->stop();
    if (b.thread.joinable()) b.thread.join();
  }
}

std::uint16_t ChaosFleet::backend_port(std::size_t i) const {
  return servers_[i].port;
}

ChaosProxy* ChaosFleet::proxy(std::size_t i) {
  return i < proxies_.size() ? proxies_[i].get() : nullptr;
}

std::vector<std::string> storm_corpus(std::size_t n) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < n; ++i)
    lines.push_back("equilibrium workload=water threads=4 fan=" +
                    std::to_string(i % 7) + " dvfs=" + std::to_string(i / 7));
  return lines;
}

std::string StormReport::describe() const {
  std::ostringstream os;
  os << "storm seed=" << seed << " requests=" << requests << " ok=" << ok
     << " (cached=" << ok_cached << ") errors=" << errors
     << " malformed=" << malformed << " mismatched=" << mismatched
     << " missing=" << missing << " pending_after=" << pending_after
     << " inflight_after=" << inflight_after
     << " traces=" << traces_completed
     << " open_spans_after=" << open_spans_after;
  if (violations.empty()) {
    os << "\n  PASS";
  } else {
    for (const auto& v : violations)
      os << "\n  VIOLATION: " << v << " (replay with seed=" << seed << ")";
  }
  return os.str();
}

StormReport run_storm(ChaosFleet& fleet, const StormOptions& options) {
  StormReport report;
  report.seed = options.seed;

  // 42 = every fan x dvfs combination in range; more would cross into
  // lines the backends reject (dvfs > 5), polluting error-free storms.
  const auto corpus = storm_corpus(42);
  std::vector<std::string> expected;
  expected.reserve(corpus.size());
  for (const auto& line : corpus)
    expected.push_back(strip_cached(fleet.reference().handle_line(line)));

  std::mutex mu;  // guards report during the client phase
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      StormReport local;
      std::vector<std::string> local_violations;
      std::uint64_t rng = splitmix64(options.seed ^ (c + 1));
      const int fd = service::connect_loopback(fleet.router_port());
      if (fd < 0) {
        std::lock_guard<std::mutex> lock(mu);
        report.violations.push_back("client " + std::to_string(c) +
                                    " could not connect to the router");
        return;
      }
      service::LineReader reader(fd);
      std::size_t sent = 0;
      while (sent < options.requests_per_client) {
        const std::size_t burst =
            std::min(options.pipeline_depth,
                     options.requests_per_client - sent);
        std::vector<std::size_t> picks;
        std::string wire;
        for (std::size_t k = 0; k < burst; ++k) {
          rng = splitmix64(rng);
          picks.push_back(rng % corpus.size());
          wire += corpus[picks.back()] + "\n";
        }
        if (!service::send_all(fd, wire)) {
          local.missing += options.requests_per_client - sent;
          local_violations.push_back(
              "client " + std::to_string(c) + " send failed mid-storm");
          break;
        }
        sent += burst;
        bool dead = false;
        for (std::size_t k = 0; k < burst; ++k) {
          const auto read_start = Clock::now();
          const auto deadline =
              read_start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options.read_timeout_s));
          const auto reply = reader.read_line(deadline);
          if (!reply) {
            const double waited =
                std::chrono::duration<double>(Clock::now() - read_start)
                    .count();
            local.missing += burst - k;
            local_violations.push_back(
                "client " + std::to_string(c) + " got no reply for '" +
                corpus[picks[k]] +
                (waited < options.read_timeout_s * 0.5
                     ? "' (connection closed after " +
                           std::to_string(waited) + "s)"
                     : "' (timed out after " + std::to_string(waited) +
                           "s)"));
            dead = true;
            break;
          }
          ++local.requests;
          if (!is_protocol_line(*reply)) {
            ++local.malformed;
            local_violations.push_back(
                "client " + std::to_string(c) +
                " received a non-protocol line: '" + reply->substr(0, 80) +
                "'");
            continue;
          }
          if (reply->rfind("ok", 0) == 0) {
            ++local.ok;
            if (reply->find(" cached=1") != std::string::npos)
              ++local.ok_cached;
            if (strip_cached(*reply) != expected[picks[k]]) {
              ++local.mismatched;
              local_violations.push_back(
                  "client " + std::to_string(c) + " reply for '" +
                  corpus[picks[k]] + "' does not match the reference (" +
                  "got '" + reply->substr(0, 80) + "')");
            }
          } else {
            ++local.errors;
            if (!options.allow_errors && local_violations.size() < 8)
              local_violations.push_back(
                  "client " + std::to_string(c) + " error reply for '" +
                  corpus[picks[k]] + "': '" + reply->substr(0, 120) + "'");
          }
        }
        if (dead) break;
      }
      ::close(fd);
      std::lock_guard<std::mutex> lock(mu);
      report.requests += local.requests;
      report.ok += local.ok;
      report.ok_cached += local.ok_cached;
      report.errors += local.errors;
      report.malformed += local.malformed;
      report.mismatched += local.mismatched;
      report.missing += local.missing;
      // Cap stored violations: a bad run can produce thousands.
      for (auto& v : local_violations) {
        if (report.violations.size() >= 32) break;
        report.violations.push_back(std::move(v));
      }
    });
  }
  for (auto& t : clients) t.join();

  if (!options.allow_errors && report.errors > 0)
    report.violations.push_back(
        std::to_string(report.errors) +
        " error/busy replies in a storm that allows none");

  // Invariant 4: the router's leak gauges must return to zero once the
  // clients are gone (hedge losers reclaimed, blackholed FIFOs failed
  // over by the stall watchdog).
  const auto quiesce_deadline = Clock::now() + std::chrono::seconds(15);
  cluster::Router::Stats rs;
  for (;;) {
    rs = fleet.router().stats();
    if ((rs.pending == 0 && rs.backend_inflight == 0) ||
        Clock::now() >= quiesce_deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  report.pending_after = rs.pending;
  report.inflight_after = rs.backend_inflight;
  if (rs.pending != 0 || rs.backend_inflight != 0)
    report.violations.push_back(
        "router did not quiesce: pending=" + std::to_string(rs.pending) +
        " backend_inflight=" + std::to_string(rs.backend_inflight));

  // Invariant 6: trace integrity. Failover and hedging retry the same
  // wire line — same trace context — against replicas, but completion
  // erases the request, so only the winning attempt's backend spans may
  // land in the router's rings: more than one backend e2e root under a
  // single trace id means a loser's reply leaked through. And every
  // span opened anywhere must have been recorded (or dropped) by
  // quiescence — a nonzero open-spans count is a leaked ring slot.
  const Tracer& tracer = fleet.router().tracer();
  if (tracer.sampled_traces() > 0) {
    const auto traces = tracer.completed_traces(512);
    report.traces_completed = traces.size();
    for (const auto& t : traces) {
      std::size_t backend_roots = 0;
      for (const Span& s : t.spans) {
        if (s.trace_id != t.trace_id) {
          report.violations.push_back(
              "trace reassembly mixed ids: span of trace " +
              std::to_string(s.trace_id) + " filed under " +
              std::to_string(t.trace_id));
          break;
        }
        if (s.tier == TraceTier::kServer && s.name == SpanName::kE2e)
          ++backend_roots;
      }
      if (backend_roots > 1 && report.violations.size() < 32)
        report.violations.push_back(
            "trace " + std::to_string(t.trace_id) + " carries " +
            std::to_string(backend_roots) +
            " backend e2e roots (a losing attempt's spans leaked in)");
    }
  }
  std::int64_t open_spans = tracer.open_spans();
  for (std::size_t b = 0; b < fleet.backend_count(); ++b)
    open_spans += fleet.backend(b).tracer().open_spans();
  report.open_spans_after = open_spans;
  if (open_spans != 0)
    report.violations.push_back("span rings leaked " +
                                std::to_string(open_spans) +
                                " open spans past quiescence");

  // Invariant 3: per-backend worker-pool counter conservation, queried
  // over the wire on the direct (proxy-bypassing) port. Executed counts
  // land after the worker finishes, so poll briefly for the books to
  // balance.
  for (std::size_t b = 0; b < fleet.backend_count(); ++b) {
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    std::string last = "unreachable";
    bool conserved = false;
    while (!conserved && Clock::now() < deadline) {
      const int fd = service::connect_loopback(fleet.backend_port(b));
      if (fd < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      service::LineReader reader(fd);
      if (service::send_all(fd, "stats\n")) {
        const auto line =
            reader.read_line(Clock::now() + std::chrono::seconds(5));
        if (line) {
          const auto r = service::parse_response(*line);
          const auto submits = stat_field(r, "pool_submits");
          const auto executed = stat_field(r, "pool_executed");
          const auto failed = stat_field(r, "pool_failed");
          const auto expired = stat_field(r, "pool_expired");
          const auto rejected = stat_field(r, "pool_rejected");
          if (submits && executed && failed && expired && rejected) {
            const std::uint64_t settled =
                *executed + *failed + *expired + *rejected;
            conserved = settled == *submits;
            last = "submits=" + std::to_string(*submits) +
                   " executed=" + std::to_string(*executed) +
                   " failed=" + std::to_string(*failed) +
                   " expired=" + std::to_string(*expired) +
                   " rejected=" + std::to_string(*rejected);
          } else {
            last = "stats reply missing pool counters";
          }
        }
      }
      ::close(fd);
      if (!conserved)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!conserved)
      report.violations.push_back("backend " + std::to_string(b) +
                                  " counters not conserved: " + last);
  }

  return report;
}

}  // namespace tecfan::testing
