#include "perf/splash2.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace tecfan::perf {

using thermal::ComponentKind;
using thermal::kComponentsPerTile;

namespace {

// Program-phase periods (seconds). Two incommensurate sinusoids give
// non-repeating interval-to-interval power variation at the 2 ms control
// scale — the prediction error Eq. (7) has to live with.
constexpr double kPhasePeriod1 = 9.1e-3;
constexpr double kPhasePeriod2 = 2.37e-3;
constexpr double kPhaseAmp1 = 0.10;
constexpr double kPhaseAmp2 = 0.06;
constexpr double kIpsAmp = 0.08;

// Spatial profiles: relative activity per component kind at the benchmark's
// steady phase. Chosen to express each benchmark's published character:
// cholesky/lu concentrate power in the FP cluster (strong local hot spots),
// volrend is integer/cache heavy and spatially uniform, fmm and water are
// moderate with more memory traffic.
struct ProfileSpec {
  const char* name;
  double by_kind[kComponentsPerTile];
};

// Kind order matches ComponentKind:
//  FPMap IntMap Int_Q IntReg IntExec FPMul FPReg FP_Q FPAdd LdSt_Q ITB
//  Bpred DTB VR i-cache d-cache L2 Router
constexpr ProfileSpec kProfiles[] = {
    {"cholesky",
     {0.75, 0.35, 0.35, 0.45, 0.40, 1.00, 0.95, 0.85, 1.00, 0.60, 0.30,
      0.25, 0.30, 0.45, 0.40, 0.45, 0.30, 0.25}},
    {"fmm",
     {0.50, 0.40, 0.40, 0.45, 0.45, 0.62, 0.55, 0.50, 0.60, 0.55, 0.45,
      0.40, 0.45, 0.48, 0.50, 0.55, 0.60, 0.45}},
    {"volrend",
     {0.40, 0.66, 0.66, 0.70, 0.72, 0.38, 0.40, 0.40, 0.38, 0.68, 0.62,
      0.64, 0.62, 0.62, 0.70, 0.72, 0.66, 0.60}},
    {"water",
     {0.48, 0.44, 0.44, 0.50, 0.52, 0.62, 0.56, 0.52, 0.60, 0.52, 0.44,
      0.42, 0.44, 0.50, 0.50, 0.54, 0.48, 0.40}},
    {"lu",
     {0.70, 0.40, 0.40, 0.50, 0.48, 0.96, 0.88, 0.78, 0.94, 0.65, 0.35,
      0.30, 0.35, 0.48, 0.44, 0.50, 0.36, 0.30}},
    // Extended (estimated) profiles beyond Table I:
    // barnes: FP tree-walk with heavy branching and cache traffic.
    {"barnes",
     {0.55, 0.50, 0.48, 0.52, 0.55, 0.80, 0.70, 0.62, 0.76, 0.60, 0.48,
      0.58, 0.50, 0.52, 0.58, 0.62, 0.52, 0.42}},
    // ocean: memory-bound stencil — caches/NoC dominate, modest FP.
    {"ocean",
     {0.42, 0.45, 0.45, 0.50, 0.50, 0.55, 0.50, 0.46, 0.52, 0.62, 0.52,
      0.44, 0.54, 0.55, 0.66, 0.72, 0.78, 0.66}},
    // radix: integer sort — no FP at all, high cache/router activity.
    {"radix",
     {0.20, 0.70, 0.70, 0.76, 0.80, 0.10, 0.12, 0.12, 0.10, 0.74, 0.62,
      0.60, 0.64, 0.60, 0.70, 0.76, 0.70, 0.66}},
};

const ProfileSpec& find_profile(const std::string& name) {
  for (const auto& p : kProfiles)
    if (name == p.name) return p;
  throw precondition_error("unknown SPLASH-2 benchmark: " + name);
}

// Average die temperature is below the reported *peak*; this offset feeds
// the leakage estimate used during power-scale calibration. A few kelvin of
// error here moves total power by < 1%.
constexpr double kPeakToAvgOffsetK = 8.0;

}  // namespace

const std::vector<Table1Case>& table1_cases() {
  static const std::vector<Table1Case> kCases = {
      {"cholesky", 16, 1e9, 48.0, 125.9, 90.07},
      {"cholesky", 4, 250e6, 57.2, 42.0, 74.8},
      {"fmm", 16, 1e9, 59.68, 74.9, 69.69},
      {"fmm", 4, 250e6, 72.66, 32.5, 62.15},
      {"volrend", 16, 800e6, 41.42, 85.4, 71.79},
      {"water", 4, 250e6, 38.1, 43.7, 68.7},
      {"lu", 16, 400e6, 20.34, 109.9, 84.49},
      {"lu", 4, 100e6, 19.6, 42.1, 70.75},
  };
  return kCases;
}

const std::vector<Table1Case>& extended_cases() {
  // Anchors estimated from the Table I cases (same chip, comparable IPC
  // ranges); clearly not paper-reported numbers.
  static const std::vector<Table1Case> kCases = {
      {"barnes", 16, 800e6, 42.0, 95.0, 76.0},
      {"ocean", 16, 600e6, 45.0, 88.0, 74.0},
      {"radix", 16, 500e6, 24.0, 92.0, 73.0},
  };
  return kCases;
}

const Table1Case& table1_case(const std::string& benchmark, int threads) {
  for (const auto& c : table1_cases())
    if (c.benchmark == benchmark && c.threads == threads) return c;
  for (const auto& c : extended_cases())
    if (c.benchmark == benchmark && c.threads == threads) return c;
  throw precondition_error("no Table I (or extended) case for " + benchmark +
                           "/" + std::to_string(threads));
}

SyntheticSplash::SyntheticSplash(const Table1Case& spec,
                                 const thermal::Floorplan& fp,
                                 const power::DynamicPowerModel& dyn,
                                 const power::QuadraticLeakageModel& leak,
                                 std::uint64_t seed)
    : spec_(spec),
      name_(spec.benchmark + "/" + std::to_string(spec.threads) + "t"),
      tiles_x_(fp.tiles_x()),
      tiles_y_(fp.tiles_y()),
      core_count_(fp.core_count()) {
  TECFAN_REQUIRE(spec_.threads >= 1 && spec_.threads <= core_count_,
                 "thread count exceeds core count");
  TECFAN_REQUIRE(spec_.instructions > 0 && spec_.time_ms > 0,
                 "Table I case must have positive work");

  // Thread-to-core mapping: all cores for a full run; the centre tile
  // cluster for partial runs (hot-cluster placement).
  if (spec_.threads == core_count_) {
    for (int c = 0; c < core_count_; ++c) active_cores_.push_back(c);
  } else {
    // Walk tiles by distance from the chip centre and take the closest.
    std::vector<std::pair<double, int>> order;
    for (int c = 0; c < core_count_; ++c) {
      const auto r = fp.tile_rect(c);
      const double dx = (r.x + r.w / 2) - fp.chip_width() / 2;
      const double dy = (r.y + r.h / 2) - fp.chip_height() / 2;
      order.push_back({dx * dx + dy * dy, c});
    }
    std::sort(order.begin(), order.end());
    for (int i = 0; i < spec_.threads; ++i)
      active_cores_.push_back(order[static_cast<std::size_t>(i)].second);
    std::sort(active_cores_.begin(), active_cores_.end());
  }

  const ProfileSpec& prof = find_profile(spec_.benchmark);
  profile_.assign(prof.by_kind, prof.by_kind + kComponentsPerTile);

  // Deterministic per-(core, kind) phases.
  Rng rng(seed ^ std::hash<std::string>{}(name_));
  phases_.resize(static_cast<std::size_t>(core_count_) * kComponentsPerTile);
  for (auto& ph : phases_) {
    ph.p1 = rng.uniform(0.0, 2.0 * M_PI);
    ph.p2 = rng.uniform(0.0, 2.0 * M_PI);
  }
  ips_phase_.resize(static_cast<std::size_t>(core_count_));
  for (auto& p : ips_phase_) p = rng.uniform(0.0, 2.0 * M_PI);

  // Performance anchors from Table I.
  inst_per_core_ = spec_.instructions / spec_.threads;
  base_ips_ = inst_per_core_ / (spec_.time_ms * 1e-3);

  // Power-scale calibration: dynamic target = Table I power minus the
  // leakage estimate near the reported peak temperature. Mean activity uses
  // the spatial profile (temporal modulation has zero mean).
  const double t_avg_k = spec_.peak_temp_c + 273.15 - kPeakToAvgOffsetK;
  const double leak_est = leak.chip_leakage_w(t_avg_k);
  double mean_dyn = 0.0;
  for (const auto& comp : fp.components()) {
    const double act = core_active(comp.core)
                           ? profile_[static_cast<std::size_t>(comp.kind)]
                           : profile_[static_cast<std::size_t>(comp.kind)] *
                                 kIdleActivity;
    mean_dyn += dyn.density_w_per_m2(comp.kind) * comp.rect.area() * act;
  }
  TECFAN_ASSERT(mean_dyn > 0.0, "zero mean dynamic power");
  const double dyn_target = spec_.power_w - leak_est;
  TECFAN_REQUIRE(dyn_target > 0.0,
                 "Table I power below the leakage estimate — check models");
  power_scale_ = dyn_target / mean_dyn;
}

bool SyntheticSplash::core_active(int core) const {
  TECFAN_REQUIRE(core >= 0 && core < core_count_, "core out of range");
  return std::binary_search(active_cores_.begin(), active_cores_.end(), core);
}

double SyntheticSplash::profile(ComponentKind kind) const {
  return profile_[static_cast<std::size_t>(kind)];
}

double SyntheticSplash::activity(int core, ComponentKind kind,
                                 double time_s) const {
  TECFAN_REQUIRE(core >= 0 && core < core_count_, "core out of range");
  const double base = profile_[static_cast<std::size_t>(kind)];
  if (!core_active(core)) return std::clamp(base * kIdleActivity, 0.0, 1.0);
  const Phase& ph =
      phases_[static_cast<std::size_t>(core) * kComponentsPerTile +
              static_cast<std::size_t>(kind)];
  const double mod =
      1.0 + kPhaseAmp1 * std::sin(2.0 * M_PI * time_s / kPhasePeriod1 + ph.p1) +
      kPhaseAmp2 * std::sin(2.0 * M_PI * time_s / kPhasePeriod2 + ph.p2);
  return std::clamp(base * mod, 0.0, 1.0);
}

double SyntheticSplash::ips_factor(int core, double time_s) const {
  TECFAN_REQUIRE(core >= 0 && core < core_count_, "core out of range");
  if (!core_active(core)) return 0.0;
  const double phase = ips_phase_[static_cast<std::size_t>(core)];
  return 1.0 +
         kIpsAmp * std::sin(2.0 * M_PI * time_s / kPhasePeriod1 + phase);
}

WorkloadPtr make_splash_workload(const std::string& benchmark, int threads,
                                 const thermal::Floorplan& fp,
                                 const power::DynamicPowerModel& dyn,
                                 const power::QuadraticLeakageModel& leak,
                                 std::uint64_t seed) {
  return std::make_shared<SyntheticSplash>(table1_case(benchmark, threads),
                                           fp, dyn, leak, seed);
}

}  // namespace tecfan::perf
