// Synthetic Wikipedia HTTP-service demand trace (Sec. IV-B / V-E).
//
// The paper drives its 4-core comparison against OFTEC/Oracle with a 7-day
// Wikipedia request trace [33], scaled by 1.5x because the raw utilization
// is too low to exercise the TECs, and cuts the first 40 minutes into four
// 10-minute segments, one per core (average CPU utilization 48.6%). The
// original trace is not redistributable, so this generator produces the
// statistically equivalent signal: a diurnal base load, a weekly modulation,
// and a smooth Ornstein–Uhlenbeck noise component at one-minute resolution,
// deterministic in the seed. The trace is normalized at construction so the
// 40-minute window's mean demand is exactly the paper's 48.6%.
#pragma once

#include <cstdint>
#include <vector>

namespace tecfan::perf {

class WikipediaTrace {
 public:
  static constexpr double kSecondsPerDay = 86400.0;
  static constexpr double kDays = 7.0;
  static constexpr double kSegmentSeconds = 600.0;  // 10 minutes per core
  static constexpr int kSegments = 4;

  explicit WikipediaTrace(double scale = 1.5, std::uint64_t seed = 2016,
                          double target_40min_mean = 0.486);

  /// Normalized CPU demand at absolute trace time t in [0, 7 days); values
  /// may exceed 1.0 transiently (offered load beyond one core's capacity).
  double demand(double time_s) const;

  /// Sec. V-E mapping: demand seen by `core` at time `t` within a 10-minute
  /// run — segment `core` of the first 40 minutes.
  double core_demand(int core, double time_s) const;

  /// Mean demand over the first 40 minutes (== target by construction).
  double mean_demand_40min() const;

  double scale() const { return scale_; }

 private:
  double raw(double time_s) const;

  double scale_;
  double norm_ = 1.0;
  std::vector<double> noise_;  // per-minute OU samples over 7 days
};

}  // namespace tecfan::perf
