#include "perf/server_model.h"

#include <algorithm>

#include "util/error.h"

namespace tecfan::perf {

double ServerCoreModel::relative_capacity(const power::DvfsTable& table,
                                          int lvl) const {
  const double x = table.frequency_hz(lvl) / table.frequency_hz(0);
  return (1.0 + quad_coeff) * x - quad_coeff * x * x;
}

double ServerCoreModel::utilization(const power::DvfsTable& table, int lvl,
                                    double demand) const {
  TECFAN_REQUIRE(demand >= 0.0, "demand must be non-negative");
  const double cap = relative_capacity(table, lvl);
  TECFAN_ASSERT(cap > 0.0, "non-positive capacity");
  return demand / cap;
}

double ServerCoreModel::power_w(const power::DvfsTable& table, int lvl,
                                double u) const {
  const double busy = busy_power_top_w * table.dyn_scale(0, lvl);
  const double uc = std::clamp(u, 0.0, 1.0);
  return idle_power_w + (busy - idle_power_w) * uc;
}

double ServerCoreModel::served(const power::DvfsTable& table, int lvl,
                               double demand) const {
  const double cap = relative_capacity(table, lvl);
  return std::min(demand, cap);
}

}  // namespace tecfan::perf
