// Synthetic SPLASH-2 workloads calibrated to the paper's Table I.
//
// The paper drives its 16-core SCC model with SESC running SPLASH-2
// (cholesky, fmm, volrend, water, lu). SESC is not reproducible here, so
// each benchmark is modelled as a phased per-component activity trace with
// the benchmark's measured character:
//   * a spatial profile (relative activity per component kind — cholesky/lu
//     are FP-cluster-hot, volrend is high and uniform, fmm/water moderate),
//   * a temporal modulation (two incommensurate program-phase sinusoids per
//     (core, kind), deterministic from the seed),
//   * a power scale computed at construction so the base-scenario chip
//     power matches Table I, and an IPS anchored to Table I's
//     instructions/time,
//   * a thread-to-core mapping (16 threads -> all cores; 4 threads -> the
//     four centre tiles, matching the hot-cluster behaviour in the paper).
#pragma once

#include <string>
#include <vector>

#include "perf/workload.h"
#include "power/dynamic.h"
#include "power/leakage.h"

namespace tecfan::perf {

/// One Table I row.
struct Table1Case {
  std::string benchmark;   // "cholesky", "fmm", "volrend", "water", "lu"
  int threads = 16;        // 16 or 4
  double instructions = 0; // total retired instructions
  double time_ms = 0;      // base-scenario execution time
  double power_w = 0;      // base-scenario chip power
  double peak_temp_c = 0;  // base-scenario peak temperature
};

/// The eight rows of Table I the paper reports.
const std::vector<Table1Case>& table1_cases();

/// Additional SPLASH-2 benchmarks beyond Table I (barnes, ocean, radix),
/// with *estimated* anchors (not paper-reported): available for examples
/// and ablations, never used by the Table I / figure benches.
const std::vector<Table1Case>& extended_cases();

/// Look up a Table I row; throws if absent.
const Table1Case& table1_case(const std::string& benchmark, int threads);

class SyntheticSplash final : public Workload {
 public:
  /// Build a calibrated workload for a Table I row. The dynamic power model
  /// and leakage model are needed to compute the calibration scale; the same
  /// instances must be used by the simulator for the calibration to hold.
  SyntheticSplash(const Table1Case& spec, const thermal::Floorplan& fp,
                  const power::DynamicPowerModel& dyn,
                  const power::QuadraticLeakageModel& leak,
                  std::uint64_t seed = 1234);

  std::string_view name() const override { return name_; }
  int thread_count() const override { return spec_.threads; }
  bool core_active(int core) const override;
  double activity(int core, thermal::ComponentKind kind,
                  double time_s) const override;
  double base_ips_per_core() const override { return base_ips_; }
  double ips_factor(int core, double time_s) const override;
  double instructions_per_core() const override { return inst_per_core_; }
  double power_scale() const override { return power_scale_; }

  const Table1Case& spec() const { return spec_; }

  /// Spatial activity profile for this benchmark (by component kind).
  double profile(thermal::ComponentKind kind) const;

  /// Activity factor applied to inactive cores.
  static constexpr double kIdleActivity = 0.06;

 private:
  struct Phase {
    double p1 = 0.0;
    double p2 = 0.0;
  };

  Table1Case spec_;
  std::string name_;
  int tiles_x_ = 0;
  int tiles_y_ = 0;
  int core_count_ = 0;
  std::vector<int> active_cores_;
  std::vector<double> profile_;                // by kind
  std::vector<Phase> phases_;                  // per (core, kind)
  std::vector<double> ips_phase_;              // per core
  double base_ips_ = 0.0;
  double inst_per_core_ = 0.0;
  double power_scale_ = 1.0;
};

/// Convenience factory: build a workload on the default SCC floorplan
/// calibration models.
WorkloadPtr make_splash_workload(const std::string& benchmark, int threads,
                                 const thermal::Floorplan& fp,
                                 const power::DynamicPowerModel& dyn,
                                 const power::QuadraticLeakageModel& leak,
                                 std::uint64_t seed = 1234);

}  // namespace tecfan::perf
