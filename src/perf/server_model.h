// Utilization-based server performance/power model for the 4-core study
// (Sec. IV-B, Sec. V-E).
//
// Power follows the multi-mode server model of [34]: per-core power is
// idle power plus a utilization-proportional busy component, where the busy
// component scales with f*V^2 across DVFS points (Core i7-3770K-shaped
// parameters [35]). Performance follows [36]: a core's service capacity is
// a concave quadratic in frequency (memory-bound diminishing returns), so
// serving the same demand at a lower frequency raises utilization and,
// beyond saturation, queues work.
#pragma once

#include "power/dvfs.h"

namespace tecfan::perf {

struct ServerCoreModel {
  double busy_power_top_w = 15.0;  // per-core busy power at top DVFS
  double idle_power_w = 3.0;       // per-core idle (clock/uncore share)
  double quad_coeff = 0.35;        // q in rel(x) = (1+q)x - q x^2, x = f/fmax
  double peak_ips = 4.0e9;         // per-core capacity at top DVFS (for EPI)

  /// Relative service capacity at DVFS level `lvl` (1.0 at level 0).
  double relative_capacity(const power::DvfsTable& table, int lvl) const;

  /// Utilization needed to serve `demand` (normalized to top-level
  /// capacity) at level `lvl`; values above 1 mean saturation.
  double utilization(const power::DvfsTable& table, int lvl,
                     double demand) const;

  /// Dynamic (busy+idle) power at level `lvl` and utilization `u`
  /// (clamped to [0, 1] for the power computation).
  double power_w(const power::DvfsTable& table, int lvl, double u) const;

  /// Served work rate (normalized) for offered demand at level `lvl`.
  double served(const power::DvfsTable& table, int lvl, double demand) const;
};

}  // namespace tecfan::perf
