#include "perf/wikipedia_trace.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace tecfan::perf {
namespace {

constexpr double kTwoPi = 6.283185307179586;
// Diurnal shape: minimum around 04:00, peak around 15:00 UTC-ish — the
// double-humped Wikipedia profile approximated with two harmonics.
double diurnal(double day_frac) {
  return 0.27 + 0.085 * std::sin(kTwoPi * (day_frac - 0.40)) +
         0.03 * std::sin(2.0 * kTwoPi * (day_frac - 0.10));
}

double weekly(double week_frac) {
  // Weekends run ~8% lighter.
  return 1.0 - 0.04 * (1.0 + std::sin(kTwoPi * (week_frac - 0.25)));
}

}  // namespace

WikipediaTrace::WikipediaTrace(double scale, std::uint64_t seed,
                               double target_40min_mean)
    : scale_(scale) {
  TECFAN_REQUIRE(scale > 0.0, "trace scale must be positive");
  TECFAN_REQUIRE(target_40min_mean > 0.0 && target_40min_mean < 1.5,
                 "implausible target mean");
  // Ornstein–Uhlenbeck noise, one sample per minute over the whole trace.
  const std::size_t n =
      static_cast<std::size_t>(kDays * kSecondsPerDay / 60.0) + 2;
  noise_.resize(n);
  Rng rng(seed);
  const double theta = 0.08;  // mean reversion per minute
  const double sigma = 0.03;  // innovation std-dev per minute
  double x = 0.0;
  for (auto& v : noise_) {
    x += -theta * x + sigma * rng.normal();
    v = x;
  }
  // Normalize so the first-40-minute mean equals the paper's 48.6%.
  norm_ = 1.0;
  double sum = 0.0;
  const int samples = 2400;  // one per second over 40 minutes
  for (int i = 0; i < samples; ++i) sum += raw(i * 1.0) * scale_;
  const double mean = sum / samples;
  TECFAN_ASSERT(mean > 0.0, "degenerate trace");
  norm_ = target_40min_mean / mean;
}

double WikipediaTrace::raw(double time_s) const {
  const double t = std::clamp(time_s, 0.0, kDays * kSecondsPerDay - 1.0);
  const double day_frac = std::fmod(t, kSecondsPerDay) / kSecondsPerDay;
  const double week_frac = t / (kDays * kSecondsPerDay);
  const double minute = t / 60.0;
  const auto i = static_cast<std::size_t>(minute);
  const double frac = minute - static_cast<double>(i);
  const double noise =
      noise_[i] * (1.0 - frac) + noise_[std::min(i + 1, noise_.size() - 1)] *
                                     frac;
  return std::max(0.02, diurnal(day_frac) * weekly(week_frac) + noise);
}

double WikipediaTrace::demand(double time_s) const {
  return raw(time_s) * scale_ * norm_;
}

double WikipediaTrace::core_demand(int core, double time_s) const {
  TECFAN_REQUIRE(core >= 0 && core < kSegments, "core out of range");
  TECFAN_REQUIRE(time_s >= 0.0, "time must be non-negative");
  const double within =
      std::min(time_s, kSegmentSeconds - 1e-9);
  return demand(core * kSegmentSeconds + within);
}

double WikipediaTrace::mean_demand_40min() const {
  double sum = 0.0;
  const int samples = 2400;
  for (int i = 0; i < samples; ++i) sum += demand(i * 1.0);
  return sum / samples;
}

}  // namespace tecfan::perf
