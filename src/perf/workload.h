// Workload abstraction consumed by the chip simulator.
//
// A workload tells the plant, for any simulated instant, how active each
// component of each core is (which drives dynamic power) and how fast an
// active core retires instructions at the top DVFS point (which, scaled by
// Eq. (11), drives performance accounting). The run ends when every active
// core has retired its per-core instruction budget.
#pragma once

#include <memory>
#include <string_view>

#include "thermal/floorplan.h"

namespace tecfan::perf {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string_view name() const = 0;

  /// Number of software threads (one per active core).
  virtual int thread_count() const = 0;

  /// Whether a core runs a thread (inactive cores idle at low activity).
  virtual bool core_active(int core) const = 0;

  /// Component activity in [0, 1] at simulated time t (top-DVFS reference;
  /// the plant applies DVFS scaling on top).
  virtual double activity(int core, thermal::ComponentKind kind,
                          double time_s) const = 0;

  /// Instructions per second of an active core at the top DVFS level.
  virtual double base_ips_per_core() const = 0;

  /// Per-interval IPS modulation around base (program phases); mean ~1.
  virtual double ips_factor(int core, double time_s) const = 0;

  /// Instruction retire budget per active core; the run completes when all
  /// active cores reach it.
  virtual double instructions_per_core() const = 0;

  /// Per-benchmark dynamic-power calibration multiplier (see
  /// power::DynamicPowerModel).
  virtual double power_scale() const = 0;
};

using WorkloadPtr = std::shared_ptr<const Workload>;

}  // namespace tecfan::perf
