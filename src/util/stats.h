// Small statistics helpers used by metrics collection and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tecfan {

/// Streaming accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a span (0 for empty).
double mean(std::span<const double> xs);

/// Maximum of a span; throws on empty input.
double max_of(std::span<const double> xs);

/// Minimum of a span; throws on empty input.
double min_of(std::span<const double> xs);

/// Sum of a span.
double sum(std::span<const double> xs);

/// Linear-interpolation percentile, p in [0, 100]; throws on empty input.
double percentile(std::vector<double> xs, double p);

/// Root-mean-square error between two equally sized spans.
double rmse(std::span<const double> a, std::span<const double> b);

/// Maximum absolute difference between two equally sized spans.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

}  // namespace tecfan
