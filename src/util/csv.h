// CSV emission/parsing for experiment traces.
//
// Bench binaries write their raw series as CSV (one file per figure) so the
// plots can be regenerated outside C++; the writer quotes only when needed
// and the reader handles quoted fields, making round-trips lossless.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tecfan {

/// Incremental CSV writer over any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Write one row of already-formatted cells.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: header then rows of doubles with a label column.
  void write_header(const std::vector<std::string>& names) {
    write_row(names);
  }

  /// Quote a cell if it contains a comma, quote, or newline.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

/// Parse an entire CSV document into rows of cells.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Format a double with enough digits to round-trip compactly.
std::string format_double(double v, int precision = 6);

}  // namespace tecfan
