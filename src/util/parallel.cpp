#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace tecfan {
namespace {

std::atomic<std::size_t>& worker_override() {
  static std::atomic<std::size_t> n{0};
  return n;
}

}  // namespace

std::size_t parallel_workers() {
  const std::size_t forced = worker_override().load();
  if (forced > 0) return forced;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_parallel_workers(std::size_t n) { worker_override().store(n); }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = std::min(parallel_workers(), n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::atomic<std::size_t> next{0};

  auto run = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(run);
  run();
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tecfan
