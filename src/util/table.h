// ASCII table and heat-map rendering for bench/example output.
//
// Bench binaries reproduce the paper's tables/figures as aligned text tables
// on stdout; the heat map gives a quick spatial view of chip temperature in
// the examples.
#pragma once

#include <string>
#include <vector>

namespace tecfan {

/// Right-pads/aligns cells and draws a simple ruled ASCII table.
class TextTable {
 public:
  /// Set the header row (defines the column count).
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience for mixed label + numeric rows.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  /// Render the table to a string (with trailing newline).
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a matrix of values (row-major, `cols` wide) as an ASCII heat map
/// using a ramp of shading characters between lo and hi.
std::string render_heatmap(const std::vector<double>& values, int cols,
                           double lo, double hi);

}  // namespace tecfan
