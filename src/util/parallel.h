// Fork–join parallel loop over std::thread.
//
// The fan-level sweep protocol of Sec. IV-C runs many independent
// (policy, workload, fan level) simulations; parallel_for distributes them
// across hardware threads. Work is divided into contiguous chunks, one per
// worker, which is the right grain for our coarse tasks. The first exception
// thrown by any worker is rethrown on the calling thread after join.
#pragma once

#include <cstddef>
#include <functional>

namespace tecfan {

/// Number of workers parallel_for will use (>= 1).
///
/// Thread safety: the override is a single process-global atomic, so this
/// may be called concurrently with set_parallel_workers and with running
/// parallel_for calls from any thread (the tecfand service invokes
/// parallel_for from its pool workers). A parallel_for that already
/// started keeps the worker count it sampled.
std::size_t parallel_workers();

/// Override the worker count (0 restores the hardware default).
/// Safe to call concurrently with parallel_workers()/parallel_for(); only
/// loops that start afterwards observe the new value.
void set_parallel_workers(std::size_t n);

/// Invoke body(i) for i in [0, n), possibly concurrently.
/// body must be safe to call concurrently for distinct i.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace tecfan
