// Lock-cheap serving-path metrics: monotonic counters, gauges, and
// fixed-bucket log-scale latency histograms.
//
// Recording is wait-free on the hot path — a Counter::inc or
// LatencyHistogram::record_us touches a few relaxed atomics, so the
// serving layer can instrument every request without a lock and without
// per-thread aggregation machinery. The histogram is internally striped
// (kStripes cache-line-aligned copies, picked by a thread-local id) so
// concurrent session threads do not ping-pong the same bucket lines;
// reading merges the stripes into a point-in-time Snapshot that supports
// merging across histograms and percentile extraction by linear
// interpolation inside the matched bucket.
//
// Bucket layout: kBucketCount geometric buckets with four sub-buckets per
// octave (consecutive upper bounds differ by 2^(1/4) ≈ 1.19, so a
// percentile read is exact to within one bucket, < ~9% around the
// geometric midpoint). The first bucket catches everything at or below
// kFirstBoundUs = 0.1 us and the last bucket is an unbounded overflow
// whose percentile reads clamp to the recorded maximum; the finite range
// therefore spans 0.1 us .. ~19 s, covering sub-microsecond cache probes
// and multi-second sweep computes in one layout.
//
// The MetricsRegistry hands out get-or-create named instruments with
// stable addresses (registration takes a mutex once; the returned
// reference is then used lock-free), and dump-side accessors return
// name-sorted snapshots for the `metrics` protocol verb and periodic
// logging.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tecfan {

/// Monotonic event counter (wait-free, relaxed).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-scale latency histogram; see the file comment for the
/// bucket layout. Thread-safe for concurrent recorders and readers.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketCount = 112;
  static constexpr double kFirstBoundUs = 0.1;
  static constexpr std::size_t kStripes = 8;

  /// Inclusive upper bound of bucket `i` in microseconds; the last bucket
  /// returns +infinity.
  static double bucket_upper_us(std::size_t i);

  /// Index of the bucket a value lands in (values <= 0 land in bucket 0).
  static std::size_t bucket_index(double us);

  void record_us(double us);
  void record(std::chrono::steady_clock::duration elapsed) {
    record_us(std::chrono::duration<double, std::micro>(elapsed).count());
  }

  /// Point-in-time copy; mergeable and interrogable without touching the
  /// live histogram again.
  struct Snapshot {
    std::array<std::uint64_t, kBucketCount> buckets{};
    std::uint64_t count = 0;
    double sum_us = 0.0;
    double max_us = 0.0;

    void merge(const Snapshot& other);

    /// Linear-interpolation percentile, p in [0, 100]; 0 when empty. The
    /// overflow bucket clamps to the recorded maximum.
    double percentile(double p) const;
    double mean_us() const {
      return count ? sum_us / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const;

 private:
  // One stripe per recorder group: the bucket array plus the running
  // sum/max, aligned so two stripes never share a cache line. The count
  // is derived from the buckets at snapshot time (every record increments
  // exactly one bucket), saving an atomic RMW per record.
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
    std::atomic<double> sum_us{0.0};
    std::atomic<double> max_us{0.0};
  };
  static std::size_t stripe_index();

  std::array<Stripe, kStripes> stripes_{};
};

/// Records the elapsed time between construction and stop()/destruction
/// into a histogram (no-op on a null histogram).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  /// Starts from a caller-supplied timestamp so adjacent spans can share
  /// one clock read.
  ScopedLatencyTimer(LatencyHistogram* histogram,
                     std::chrono::steady_clock::time_point start)
      : histogram_(histogram), start_(start) {}
  ~ScopedLatencyTimer() { stop(); }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  void stop() {
    if (!histogram_) return;
    histogram_->record(std::chrono::steady_clock::now() - start_);
    histogram_ = nullptr;
  }

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Named instrument registry. counter()/gauge()/histogram() get-or-create
/// under a mutex and return references that stay valid for the registry's
/// lifetime; the dump accessors return name-sorted snapshots.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> histograms()
      const;

  /// Every instrument captured under ONE lock hold, so a dump renders
  /// from a single coherent walk instead of three racing ones.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> histograms;
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Prometheus text-format (0.0.4) exposition of a registry snapshot.
/// Counters become `<prefix>_<name>_total`, gauges `<prefix>_<name>`, and
/// each log-scale histogram a cumulative `_bucket{le="..."}`/`_sum`/
/// `_count` family named `<prefix>_<name>_latency_us` (bounds are the
/// existing 2^(1/4) bucket uppers; zero-count buckets are elided but the
/// mandatory `+Inf` bucket always appears and equals `_count`). Every
/// family gets `# HELP`/`# TYPE` headers and the body ends with a
/// `# EOF` line so scrapers of the line protocol know where the one
/// multi-line response stops.
std::string render_prometheus(const MetricsRegistry::Snapshot& snapshot,
                              const std::string& prefix = "tecfan");

}  // namespace tecfan
