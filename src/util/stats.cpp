#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tecfan {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double max_of(std::span<const double> xs) {
  TECFAN_REQUIRE(!xs.empty(), "max_of on empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double min_of(std::span<const double> xs) {
  TECFAN_REQUIRE(!xs.empty(), "min_of on empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double percentile(std::vector<double> xs, double p) {
  TECFAN_REQUIRE(!xs.empty(), "percentile on empty vector");
  TECFAN_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  TECFAN_REQUIRE(a.size() == b.size(), "rmse size mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  TECFAN_REQUIRE(a.size() == b.size(), "max_abs_diff size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace tecfan
