#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace tecfan {

namespace {

// Bucket upper bounds, computed once; bucket_index then needs no exp2 or
// log2 on the record path.
const std::array<double, LatencyHistogram::kBucketCount>& bucket_bounds() {
  static const auto table = [] {
    std::array<double, LatencyHistogram::kBucketCount> t{};
    for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i)
      t[i] = LatencyHistogram::kFirstBoundUs *
             std::exp2(static_cast<double>(i) / 4.0);
    t[LatencyHistogram::kBucketCount - 1] =
        std::numeric_limits<double>::infinity();
    return t;
  }();
  return table;
}

}  // namespace

double LatencyHistogram::bucket_upper_us(std::size_t i) {
  if (i >= kBucketCount) return std::numeric_limits<double>::infinity();
  return bucket_bounds()[i];
}

std::size_t LatencyHistogram::bucket_index(double us) {
  if (!(us > kFirstBoundUs)) return 0;  // also catches NaN and negatives
  // Smallest i with bound(i) >= us. bound(4e) = first * 2^e, so the
  // answer lies in [4e, 4e+4] for e = floor(log2(us / first)) — read e
  // straight off the exponent bits and walk at most four table entries.
  // (floor may land one octave high when the division rounds up across a
  // power of two; the octave below still starts strictly under `us`, so
  // the start index never overshoots the answer.)
  const double r = us / kFirstBoundUs;  // > 1, so normal (or +inf)
  std::uint64_t bits;
  std::memcpy(&bits, &r, sizeof bits);
  const auto e = static_cast<std::size_t>((bits >> 52) & 0x7ff) - 1023;
  std::size_t i = 4 * e;
  if (i >= kBucketCount - 1) return kBucketCount - 1;
  const auto& bounds = bucket_bounds();
  while (i + 1 < kBucketCount && bounds[i] < us) ++i;
  return i;
}

std::size_t LatencyHistogram::stripe_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id % kStripes;
}

void LatencyHistogram::record_us(double us) {
  if (us < 0.0 || std::isnan(us)) us = 0.0;
  Stripe& stripe = stripes_[stripe_index()];
  stripe.buckets[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
  stripe.sum_us.fetch_add(us, std::memory_order_relaxed);
  double seen = stripe.max_us.load(std::memory_order_relaxed);
  while (us > seen && !stripe.max_us.compare_exchange_weak(
                          seen, us, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  for (const Stripe& stripe : stripes_) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      const std::uint64_t n = stripe.buckets[i].load(std::memory_order_relaxed);
      s.buckets[i] += n;
      s.count += n;
    }
    s.sum_us += stripe.sum_us.load(std::memory_order_relaxed);
    s.max_us =
        std::max(s.max_us, stripe.max_us.load(std::memory_order_relaxed));
  }
  return s;
}

void LatencyHistogram::Snapshot::merge(const Snapshot& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i)
    buckets[i] += other.buckets[i];
  count += other.count;
  sum_us += other.sum_us;
  max_us = std::max(max_us, other.max_us);
}

double LatencyHistogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target =
      std::max(1.0, (p / 100.0) * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = i == 0 ? 0.0 : bucket_upper_us(i - 1);
    double hi = bucket_upper_us(i);
    // The overflow bucket (and any bucket the observed maximum falls
    // inside) clamps to the recorded max rather than the nominal bound.
    if (!(hi < max_us)) hi = std::max(lo, max_us);
    const double frac =
        (target - before) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * frac;
  }
  return max_us;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.emplace_back(name, h->snapshot());
  return out;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace_back(name, h->snapshot());
  return s;
}

namespace {

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prom_name(const std::string& prefix, const std::string& name,
                      const char* suffix) {
  std::string out = prefix;
  out += '_';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  out += suffix;
  return out;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

std::string render_prometheus(const MetricsRegistry::Snapshot& snapshot,
                              const std::string& prefix) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prom_name(prefix, name, "_total");
    out += "# HELP " + metric + " Monotonic event counter " + name + ".\n";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prom_name(prefix, name, "");
    out += "# HELP " + metric + " Instantaneous gauge " + name + ".\n";
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " ";
    append_double(out, value);
    out += '\n';
  }
  for (const auto& [name, snap] : snapshot.histograms) {
    const std::string metric = prom_name(prefix, name, "_latency_us");
    out += "# HELP " + metric + " Latency histogram " + name +
           " in microseconds.\n";
    out += "# TYPE " + metric + " histogram\n";
    // Cumulative buckets from the log-scale layout; zero-delta buckets
    // are elided (Prometheus permits sparse bucket sets) but +Inf is
    // mandatory and must equal _count.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
      if (snap.buckets[i] == 0) continue;
      cumulative += snap.buckets[i];
      out += metric + "_bucket{le=\"";
      append_double(out, LatencyHistogram::bucket_upper_us(i));
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) +
           "\n";
    out += metric + "_sum ";
    append_double(out, snap.sum_us);
    out += '\n';
    out += metric + "_count " + std::to_string(snap.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

}  // namespace tecfan
