#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace tecfan {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TECFAN_REQUIRE(lo <= hi, "uniform range must be ordered");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586;
  spare_ = mag * std::sin(kTwoPi * u2);
  has_spare_ = true;
  return mag * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) {
  TECFAN_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * normal();
}

std::uint64_t Rng::below(std::uint64_t n) {
  TECFAN_REQUIRE(n > 0, "below(n) requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix seed and tag through splitmix so that fork(a) and fork(b) are
  // independent even for adjacent tags.
  std::uint64_t x = seed_ ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(splitmix64(x));
}

}  // namespace tecfan
