#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace tecfan::log {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> storage{[] {
    if (const char* env = std::getenv("TECFAN_LOG"))
      return static_cast<int>(parse_level(env));
    return static_cast<int>(Level::kWarn);
  }()};
  return storage;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kError:
      return "ERROR";
    case Level::kWarn:
      return "WARN";
    case Level::kInfo:
      return "INFO";
    case Level::kDebug:
      return "DEBUG";
    case Level::kTrace:
      return "TRACE";
  }
  return "?";
}

}  // namespace

Level level() { return static_cast<Level>(level_storage().load()); }

void set_level(Level lvl) { level_storage().store(static_cast<int>(lvl)); }

Level parse_level(const std::string& name) {
  if (name == "error") return Level::kError;
  if (name == "warn") return Level::kWarn;
  if (name == "info") return Level::kInfo;
  if (name == "debug") return Level::kDebug;
  if (name == "trace") return Level::kTrace;
  return Level::kWarn;
}

void emit(Level lvl, const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[tecfan %s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace tecfan::log
