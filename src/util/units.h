// Physical unit helpers and constants.
//
// All thermal computation inside the library is done in SI units with
// absolute temperature (kelvin): the Peltier pumping term of a TEC is
// proportional to the absolute junction temperature, so celsius would be
// wrong by ~273/45x. Celsius appears only at API edges (configs, reports).
#pragma once

namespace tecfan {

inline constexpr double kCelsiusOffset = 273.15;

/// Convert a temperature from celsius to kelvin.
constexpr double celsius_to_kelvin(double c) { return c + kCelsiusOffset; }

/// Convert a temperature from kelvin to celsius.
constexpr double kelvin_to_celsius(double k) { return k - kCelsiusOffset; }

/// Millimetres to metres (floorplans are specified in mm).
constexpr double mm_to_m(double mm) { return mm * 1e-3; }

/// Square millimetres to square metres.
constexpr double mm2_to_m2(double mm2) { return mm2 * 1e-6; }

/// Cubic feet per minute to cubic metres per second (fan datasheets use CFM).
constexpr double cfm_to_m3s(double cfm) { return cfm * 4.719474e-4; }

namespace si {
/// Thermal conductivity of bulk silicon at ~350 K [W/(m K)].
inline constexpr double kSiliconConductivity = 120.0;
/// Volumetric heat capacity of silicon [J/(m^3 K)].
inline constexpr double kSiliconVolHeat = 1.75e6;
/// Thermal conductivity of copper [W/(m K)].
inline constexpr double kCopperConductivity = 400.0;
/// Volumetric heat capacity of copper [J/(m^3 K)].
inline constexpr double kCopperVolHeat = 3.55e6;
/// Thermal conductivity of aluminium [W/(m K)].
inline constexpr double kAluminiumConductivity = 237.0;
/// Volumetric heat capacity of aluminium [J/(m^3 K)].
inline constexpr double kAluminiumVolHeat = 2.42e6;
}  // namespace si

}  // namespace tecfan
