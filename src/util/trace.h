// Cross-tier request tracing: TraceContext propagation plus sampled span
// ring buffers.
//
// A TraceContext is a 64-bit trace id, the parent span id assigned by the
// upstream tier, this tier's own root span id, and a sampled flag. The
// router (or tecfand when hit directly) decides sampling once per request
// with a deterministic 1-in-N counter, so a fixed request count yields a
// fixed sampled count regardless of timing. The context rides the line
// protocol as an optional `trace=<id>-<parent>` field that old peers never
// see (the router only appends it for sampled requests) and new peers
// echo back on the reply together with their recorded spans.
//
// Spans land in a small set of striped fixed-size ring buffers
// (drop-oldest). Every slot field is an atomic: a writer claims a slot
// with one fetch_add on the stripe head, invalidates the slot's sequence
// stamp, stores the fields relaxed, and publishes by storing the claim
// index into the stamp with release order. Readers copy slots and keep
// only those whose stamp matches the claim index before AND after the
// field reads — a slot being overwritten mid-copy is simply skipped. No
// lock anywhere, and recording is wait-free. The unsampled path costs one
// branch on `ctx.sampled`; nothing else is touched.
//
// The `trace` protocol verb reassembles recent completed traces from the
// rings: spans are grouped by trace id, a trace is complete once its
// root-tier `e2e` span has landed, and each trace renders as one JSON
// object with per-span name/tier/thread/start/duration. Router-side span
// ingestion (Tracer::record_span with explicit times) lets tecrouter fold
// the backend's forwarded spans into its own rings, so a routed request's
// full tree comes back from the router alone.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tecfan {

/// Tier labels baked into every span so a reassembled trace says which
/// process recorded what.
enum class TraceTier : std::uint32_t {
  kRouter = 0,
  kServer = 1,
};
const char* trace_tier_name(TraceTier tier);

/// Stage names reuse the serving-path histogram names so a span maps
/// one-to-one onto the latency metric it explains.
enum class SpanName : std::uint32_t {
  kE2e = 0,        // per-tier root: request arrival to reply ready
  kRoute = 1,      // router: parse + backend chain selection
  kBackendWait = 2,  // router: winning attempt on the wire
  kCacheProbe = 3,   // tecfand: ResultCache lookup
  kQueueWait = 4,    // tecfand: WorkerPool queue residency
  kCompute = 5,      // tecfand: solver execution
  kSerialize = 6,    // tecfand: response serialization
};
const char* span_name(SpanName name);
std::optional<SpanName> span_name_from(std::string_view token);

/// Per-request trace identity. `span_id` is the root span id this tier
/// allocated for itself — children recorded by the same tier parent onto
/// it, and the id is propagated downstream as the next tier's parent.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t span_id = 0;
  bool sampled = false;

  /// Wire form carried on the `trace=` protocol field:
  /// "<trace_id hex>-<parent hex>" where parent is this tier's root span
  /// id (the downstream peer's parent). Only sampled contexts go on the
  /// wire.
  std::string wire() const;
  static std::optional<TraceContext> from_wire(std::string_view text);
};

/// One recorded span, as copied out of a ring.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  SpanName name = SpanName::kE2e;
  TraceTier tier = TraceTier::kServer;
  std::uint32_t thread = 0;
  std::uint64_t start_us = 0;  // microseconds since the tracer's epoch
  std::uint64_t duration_us = 0;
};

/// A reassembled trace: every collected span sharing one trace id, sorted
/// by start time.
struct CompletedTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t end_us = 0;  // latest span end, for recency ordering
  std::vector<Span> spans;
};

/// JSON object (single line, no embedded newlines) for one trace; span
/// starts are re-based so the earliest span starts at 0.
std::string trace_to_json(const CompletedTrace& trace);

/// Per-process span recorder for one tier.
class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kStripes = 4;
  static constexpr std::size_t kSlotsPerStripe = 512;

  explicit Tracer(TraceTier tier);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  TraceTier tier() const { return tier_; }

  /// 0 disables sampling; N >= 1 samples every Nth head request.
  void set_sample_every(std::uint64_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  std::uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  bool enabled() const { return sample_every() > 0; }

  /// Head-of-trace decision: deterministic 1-in-N over a process-local
  /// counter. A sampled context carries a fresh trace id and root span id;
  /// an unsampled one is all zeros.
  TraceContext start_trace();

  /// Adopt a context propagated from upstream: keep its trace id and
  /// parent, allocate this tier's root span id.
  TraceContext adopt(const TraceContext& incoming);

  std::uint64_t next_span_id() {
    return span_id_bits_ | next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Record a span with explicit wall-clock endpoints taken from this
  /// tracer's clock. `parent` defaults to the context's root span;
  /// recording the root itself passes ctx.parent_span_id explicitly.
  void record(const TraceContext& ctx, SpanName name, Clock::time_point start,
              Clock::time_point end);
  /// Record this tier's root `e2e` span under the context's own span id
  /// (children recorded via record() parent onto it).
  void record_root(const TraceContext& ctx, Clock::time_point start,
                   Clock::time_point end);
  /// Record with an explicit span/parent pair (root spans, ingested
  /// backend spans).
  void record_span(std::uint64_t trace_id, std::uint64_t span_id,
                   std::uint64_t parent_span_id, SpanName name, TraceTier tier,
                   std::uint32_t thread, std::uint64_t start_us,
                   std::uint64_t duration_us);

  std::uint64_t to_us(Clock::time_point t) const;
  Clock::time_point epoch() const { return epoch_; }

  /// Sampled head decisions made by this tracer (not adopted contexts).
  std::uint64_t sampled_traces() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  /// Contexts adopted from an upstream tier: participation in traces this
  /// tracer did not head-sample itself (a backend behind a sampling
  /// router). sampled_traces() + adopted_traces() is the tier's total
  /// traced-request count.
  std::uint64_t adopted_traces() const {
    return adopted_.load(std::memory_order_relaxed);
  }
  /// Spans started (ScopedSpan) but not yet recorded; drains to zero at
  /// quiescence — the chaos harness pins ring-slot leaks with this.
  std::int64_t open_spans() const {
    return open_spans_.load(std::memory_order_relaxed);
  }
  void note_span_open() { open_spans_.fetch_add(1, std::memory_order_relaxed); }
  void note_span_closed() {
    open_spans_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Copy every currently-published span out of the rings (unordered).
  std::vector<Span> collect() const;
  /// Spans belonging to one trace, sorted by start time.
  std::vector<Span> collect_trace(std::uint64_t trace_id) const;
  /// Recent completed traces (those whose lowest-tier `e2e` root span is
  /// present), most recent last, at most `limit`.
  std::vector<CompletedTrace> completed_traces(std::size_t limit) const;

 private:
  // All-atomic ring slot; `seq` holds claim_index + 1 once the fields are
  // published and 0 while a writer is mid-store.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::uint64_t> meta{0};  // name<<40 | tier<<32 | thread
    std::atomic<std::uint64_t> start_us{0};
    std::atomic<std::uint64_t> duration_us{0};
  };
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> head{0};
    std::array<Slot, kSlotsPerStripe> slots{};
  };
  static std::size_t stripe_index();
  static std::uint32_t thread_label();

  const TraceTier tier_;
  const std::uint64_t span_id_bits_;
  const Clock::time_point epoch_;
  std::atomic<std::uint64_t> sample_every_{0};
  std::atomic<std::uint64_t> head_counter_{0};
  std::atomic<std::uint64_t> next_span_{1};
  std::atomic<std::uint64_t> sampled_{0};
  std::atomic<std::uint64_t> adopted_{0};
  std::atomic<std::int64_t> open_spans_{0};
  std::vector<Stripe> stripes_;
};

/// Records one span between construction and stop()/destruction. The
/// whole object is a no-op when the context is unsampled — construction
/// is the single branch the hot path pays.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const TraceContext& ctx, SpanName name)
      : ScopedSpan(tracer, ctx, name,
                   (tracer && ctx.sampled) ? Tracer::Clock::now()
                                           : Tracer::Clock::time_point{}) {}
  ScopedSpan(Tracer* tracer, const TraceContext& ctx, SpanName name,
             Tracer::Clock::time_point start)
      : tracer_((tracer && ctx.sampled) ? tracer : nullptr),
        ctx_(&ctx),
        name_(name),
        start_(start) {
    if (tracer_) tracer_->note_span_open();
  }
  ~ScopedSpan() { stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void stop() {
    if (!tracer_) return;
    tracer_->record(*ctx_, name_, start_, Tracer::Clock::now());
    tracer_->note_span_closed();
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  const TraceContext* ctx_;
  SpanName name_;
  Tracer::Clock::time_point start_;
};

/// Compact reply-side span encoding carried on the `spans=` response
/// field: "name:thread:start_rel_us:dur_us;..." with starts relative to
/// the tier's root span start. Decoding tolerates unknown names by
/// skipping them.
std::string encode_reply_spans(const std::vector<Span>& spans,
                               std::uint64_t base_start_us);
struct ReplySpan {
  SpanName name;
  std::uint32_t thread;
  std::uint64_t start_rel_us;
  std::uint64_t duration_us;
};
std::vector<ReplySpan> decode_reply_spans(std::string_view text);

}  // namespace tecfan
