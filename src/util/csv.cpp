#include "util/csv.h"

#include <cstdio>

namespace tecfan {

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(row);
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_content || !cell.empty() || !row.empty()) end_row();
        break;
      default:
        cell += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !cell.empty() || !row.empty()) end_row();
  return rows;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

}  // namespace tecfan
