// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (workload phase noise, sensor
// noise, trace generation) draws from an explicitly seeded Rng so that runs
// are bit-reproducible across machines and parallel schedules. The generator
// is splitmix64 / xoshiro256** — tiny state, excellent statistical quality,
// and cheap enough to keep one per workload stream.
#pragma once

#include <cstdint>

namespace tecfan {

/// xoshiro256** seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached spare).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n) (n > 0).
  std::uint64_t below(std::uint64_t n);

  /// Derive an independent child stream (stable: depends only on seed+tag).
  Rng fork(std::uint64_t tag) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace tecfan
