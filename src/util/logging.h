// Minimal leveled logger.
//
// The simulator is a batch tool; logging goes to stderr so that bench output
// on stdout stays machine-parsable. Level is a process-global setting,
// controllable from code or via the TECFAN_LOG environment variable
// (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string>

namespace tecfan::log {

enum class Level { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Current global log level (default: kWarn, or TECFAN_LOG if set).
Level level();

/// Set the global log level.
void set_level(Level lvl);

/// Parse a level name; returns kWarn on unknown names.
Level parse_level(const std::string& name);

/// Emit one log line (thread-safe).
void emit(Level lvl, const std::string& msg);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level lvl) : lvl_(lvl) {}
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;
  ~LineStream() { emit(lvl_, os_.str()); }
  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace tecfan::log

#define TECFAN_LOG(lvl)                            \
  if (::tecfan::log::level() < (lvl)) {            \
  } else                                           \
    ::tecfan::log::detail::LineStream(lvl)

#define TECFAN_LOG_ERROR TECFAN_LOG(::tecfan::log::Level::kError)
#define TECFAN_LOG_WARN TECFAN_LOG(::tecfan::log::Level::kWarn)
#define TECFAN_LOG_INFO TECFAN_LOG(::tecfan::log::Level::kInfo)
#define TECFAN_LOG_DEBUG TECFAN_LOG(::tecfan::log::Level::kDebug)
#define TECFAN_LOG_TRACE TECFAN_LOG(::tecfan::log::Level::kTrace)
