#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.h"

namespace tecfan {

void TextTable::set_header(std::vector<std::string> header) {
  TECFAN_REQUIRE(!header.empty(), "header must be non-empty");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  TECFAN_REQUIRE(row.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    row.emplace_back(buf);
  }
  add_row(std::move(row));
}

std::string TextTable::render() const {
  TECFAN_REQUIRE(!header_.empty(), "render before set_header");
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  rule();
  emit_row(header_);
  rule();
  for (const auto& row : rows_) emit_row(row);
  rule();
  return os.str();
}

std::string render_heatmap(const std::vector<double>& values, int cols,
                           double lo, double hi) {
  TECFAN_REQUIRE(cols > 0, "cols must be positive");
  TECFAN_REQUIRE(values.size() % static_cast<std::size_t>(cols) == 0,
                 "values must tile into rows of `cols`");
  static const char* kRamp = " .:-=+*#%@";
  const int levels = 10;
  const double span = (hi > lo) ? (hi - lo) : 1.0;
  std::string out;
  const std::size_t n_rows = values.size() / static_cast<std::size_t>(cols);
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double v = values[r * static_cast<std::size_t>(cols) +
                              static_cast<std::size_t>(c)];
      int idx = static_cast<int>((v - lo) / span * levels);
      idx = std::clamp(idx, 0, levels - 1);
      out += kRamp[idx];
      out += kRamp[idx];  // double width: terminal cells are ~2:1
    }
    out += '\n';
  }
  return out;
}

}  // namespace tecfan
