// Error handling primitives shared across the library.
//
// We follow the C++ Core Guidelines (E.2): throw exceptions to signal that a
// function cannot perform its assigned task. TECFAN_REQUIRE is used for
// precondition checks on public API boundaries; internal invariant checks use
// TECFAN_ASSERT and are compiled out of release builds only if NDEBUG *and*
// TECFAN_UNCHECKED are both defined (thermal simulation bugs are subtle; we
// keep asserts on by default even in optimized builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tecfan {

/// Thrown when a public-API precondition is violated.
class precondition_error : public std::invalid_argument {
 public:
  explicit precondition_error(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Thrown when an internal invariant fails (a library bug, not a user error).
class invariant_error : public std::logic_error {
 public:
  explicit invariant_error(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a numerical routine fails to converge or hits a singularity.
class numerical_error : public std::runtime_error {
 public:
  explicit numerical_error(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* cond, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_invariant(const char* cond, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace tecfan

#define TECFAN_REQUIRE(cond, msg)                                          \
  do {                                                                     \
    if (!(cond))                                                           \
      ::tecfan::detail::throw_precondition(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#if defined(NDEBUG) && defined(TECFAN_UNCHECKED)
#define TECFAN_ASSERT(cond, msg) ((void)0)
#else
#define TECFAN_ASSERT(cond, msg)                                         \
  do {                                                                   \
    if (!(cond))                                                         \
      ::tecfan::detail::throw_invariant(#cond, __FILE__, __LINE__, msg); \
  } while (0)
#endif
