#include "util/trace.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace tecfan {

namespace {

// splitmix64: deterministic, well-mixed ids from a counter. Same choice
// as the chaos harness's seed expansion.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::optional<std::uint64_t> parse_hex_u64(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc() || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%" PRIx64, v);
  out += buf;
}

std::optional<std::uint64_t> parse_dec_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc() || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

}  // namespace

const char* trace_tier_name(TraceTier tier) {
  switch (tier) {
    case TraceTier::kRouter:
      return "router";
    case TraceTier::kServer:
      return "tecfand";
  }
  return "unknown";
}

const char* span_name(SpanName name) {
  switch (name) {
    case SpanName::kE2e:
      return "e2e";
    case SpanName::kRoute:
      return "route";
    case SpanName::kBackendWait:
      return "backend_wait";
    case SpanName::kCacheProbe:
      return "cache_probe";
    case SpanName::kQueueWait:
      return "queue_wait";
    case SpanName::kCompute:
      return "compute";
    case SpanName::kSerialize:
      return "serialize";
  }
  return "unknown";
}

std::optional<SpanName> span_name_from(std::string_view token) {
  for (const SpanName name :
       {SpanName::kE2e, SpanName::kRoute, SpanName::kBackendWait,
        SpanName::kCacheProbe, SpanName::kQueueWait, SpanName::kCompute,
        SpanName::kSerialize}) {
    if (token == span_name(name)) return name;
  }
  return std::nullopt;
}

std::string TraceContext::wire() const {
  std::string out;
  append_hex(out, trace_id);
  out += '-';
  append_hex(out, span_id);
  return out;
}

std::optional<TraceContext> TraceContext::from_wire(std::string_view text) {
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) return std::nullopt;
  const auto id = parse_hex_u64(text.substr(0, dash));
  const auto parent = parse_hex_u64(text.substr(dash + 1));
  if (!id || !parent || *id == 0) return std::nullopt;
  TraceContext ctx;
  ctx.trace_id = *id;
  ctx.parent_span_id = *parent;
  ctx.span_id = 0;  // the adopting tier allocates its own root id
  ctx.sampled = true;
  return ctx;
}

Tracer::Tracer(TraceTier tier)
    : tier_(tier),
      span_id_bits_(static_cast<std::uint64_t>(tier) << 56),
      epoch_(Clock::now()),
      stripes_(kStripes) {}

std::size_t Tracer::stripe_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id % kStripes;
}

std::uint32_t Tracer::thread_label() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

TraceContext Tracer::start_trace() {
  const std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return {};
  const std::uint64_t n = head_counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return {};
  sampled_.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  // Mix the tier into the stream so a router and a directly-hit backend
  // never mint colliding ids; splitmix64 never maps this stream to 0 in
  // practice, but guard anyway since 0 means "no trace" on the wire.
  ctx.trace_id = splitmix64(
      (n << 8) | (static_cast<std::uint64_t>(tier_) + 1));
  if (ctx.trace_id == 0) ctx.trace_id = 1;
  ctx.parent_span_id = 0;
  ctx.span_id = next_span_id();
  ctx.sampled = true;
  return ctx;
}

TraceContext Tracer::adopt(const TraceContext& incoming) {
  if (!incoming.sampled || incoming.trace_id == 0) return {};
  adopted_.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx = incoming;
  ctx.span_id = next_span_id();
  return ctx;
}

std::uint64_t Tracer::to_us(Clock::time_point t) const {
  if (t < epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
          .count());
}

void Tracer::record(const TraceContext& ctx, SpanName name,
                    Clock::time_point start, Clock::time_point end) {
  if (!ctx.sampled) return;
  if (end < start) end = start;
  record_span(ctx.trace_id, next_span_id(), ctx.span_id, name, tier_,
              thread_label(), to_us(start),
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                        start)
                      .count()));
}

void Tracer::record_root(const TraceContext& ctx, Clock::time_point start,
                         Clock::time_point end) {
  if (!ctx.sampled) return;
  if (end < start) end = start;
  record_span(ctx.trace_id, ctx.span_id, ctx.parent_span_id, SpanName::kE2e,
              tier_, thread_label(), to_us(start),
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                        start)
                      .count()));
}

void Tracer::record_span(std::uint64_t trace_id, std::uint64_t span_id,
                         std::uint64_t parent_span_id, SpanName name,
                         TraceTier tier, std::uint32_t thread,
                         std::uint64_t start_us, std::uint64_t duration_us) {
  if (trace_id == 0) return;
  Stripe& stripe = stripes_[stripe_index()];
  const std::uint64_t claim =
      stripe.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = stripe.slots[claim % kSlotsPerStripe];
  // Invalidate before mutating so a concurrent reader that saw the old
  // stamp re-checks and discards the torn copy.
  slot.seq.store(0, std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent.store(parent_span_id, std::memory_order_relaxed);
  slot.meta.store((static_cast<std::uint64_t>(name) << 40) |
                      (static_cast<std::uint64_t>(tier) << 32) | thread,
                  std::memory_order_relaxed);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.duration_us.store(duration_us, std::memory_order_relaxed);
  slot.seq.store(claim + 1, std::memory_order_release);
}

std::vector<Span> Tracer::collect() const {
  std::vector<Span> out;
  for (const Stripe& stripe : stripes_) {
    const std::uint64_t head = stripe.head.load(std::memory_order_acquire);
    const std::uint64_t live = std::min<std::uint64_t>(head, kSlotsPerStripe);
    for (std::uint64_t claim = head - live; claim < head; ++claim) {
      const Slot& slot = stripe.slots[claim % kSlotsPerStripe];
      if (slot.seq.load(std::memory_order_acquire) != claim + 1) continue;
      Span span;
      span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      span.span_id = slot.span_id.load(std::memory_order_relaxed);
      span.parent_span_id = slot.parent.load(std::memory_order_relaxed);
      const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      span.name = static_cast<SpanName>((meta >> 40) & 0xffffff);
      span.tier = static_cast<TraceTier>((meta >> 32) & 0xff);
      span.thread = static_cast<std::uint32_t>(meta & 0xffffffffULL);
      span.start_us = slot.start_us.load(std::memory_order_relaxed);
      span.duration_us = slot.duration_us.load(std::memory_order_relaxed);
      // A writer may have lapped us mid-copy; the stamp changes (to 0,
      // then to a claim one full ring later) before any field does, so a
      // stable stamp brackets a consistent copy.
      if (slot.seq.load(std::memory_order_acquire) != claim + 1) continue;
      out.push_back(span);
    }
  }
  return out;
}

std::vector<Span> Tracer::collect_trace(std::uint64_t trace_id) const {
  std::vector<Span> spans = collect();
  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [trace_id](const Span& s) {
                               return s.trace_id != trace_id;
                             }),
              spans.end());
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.start_us < b.start_us;
  });
  return spans;
}

std::vector<CompletedTrace> Tracer::completed_traces(std::size_t limit) const {
  std::map<std::uint64_t, CompletedTrace> by_id;
  for (const Span& span : collect()) {
    CompletedTrace& trace = by_id[span.trace_id];
    trace.trace_id = span.trace_id;
    trace.end_us = std::max(trace.end_us, span.start_us + span.duration_us);
    trace.spans.push_back(span);
  }
  std::vector<CompletedTrace> out;
  for (auto& [id, trace] : by_id) {
    // Complete means the lowest tier present recorded its e2e root; a
    // trace whose root slot was already overwritten is no longer
    // reassemblable and is skipped.
    const auto root_tier = std::min_element(
        trace.spans.begin(), trace.spans.end(),
        [](const Span& a, const Span& b) { return a.tier < b.tier; });
    const bool complete = std::any_of(
        trace.spans.begin(), trace.spans.end(), [&](const Span& s) {
          return s.name == SpanName::kE2e && s.tier == root_tier->tier;
        });
    if (!complete) continue;
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const Span& a, const Span& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                return a.span_id < b.span_id;
              });
    out.push_back(std::move(trace));
  }
  std::sort(out.begin(), out.end(),
            [](const CompletedTrace& a, const CompletedTrace& b) {
              if (a.end_us != b.end_us) return a.end_us < b.end_us;
              return a.trace_id < b.trace_id;
            });
  if (out.size() > limit)
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(limit));
  return out;
}

std::string trace_to_json(const CompletedTrace& trace) {
  std::uint64_t base = ~0ULL;
  for (const Span& span : trace.spans) base = std::min(base, span.start_us);
  if (trace.spans.empty()) base = 0;
  std::string out = "{\"trace_id\":\"";
  append_hex(out, trace.trace_id);
  out += "\",\"spans\":[";
  bool first = true;
  for (const Span& span : trace.spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += span_name(span.name);
    out += "\",\"tier\":\"";
    out += trace_tier_name(span.tier);
    out += "\",\"thread\":";
    out += std::to_string(span.thread);
    out += ",\"span\":\"";
    append_hex(out, span.span_id);
    out += "\",\"parent\":\"";
    append_hex(out, span.parent_span_id);
    out += "\",\"start_us\":";
    out += std::to_string(span.start_us - base);
    out += ",\"dur_us\":";
    out += std::to_string(span.duration_us);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string encode_reply_spans(const std::vector<Span>& spans,
                               std::uint64_t base_start_us) {
  std::string out;
  for (const Span& span : spans) {
    if (!out.empty()) out += ';';
    out += span_name(span.name);
    out += ':';
    out += std::to_string(span.thread);
    out += ':';
    out += std::to_string(span.start_us >= base_start_us
                              ? span.start_us - base_start_us
                              : 0);
    out += ':';
    out += std::to_string(span.duration_us);
  }
  return out;
}

std::vector<ReplySpan> decode_reply_spans(std::string_view text) {
  std::vector<ReplySpan> out;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    std::string_view entry = text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    // name:thread:start_rel:dur
    std::array<std::string_view, 4> parts{};
    std::size_t n = 0;
    while (n < 4) {
      const std::size_t colon = entry.find(':');
      parts[n++] = entry.substr(0, colon);
      if (colon == std::string_view::npos) break;
      entry = entry.substr(colon + 1);
    }
    if (n != 4) continue;
    const auto name = span_name_from(parts[0]);
    const auto thread = parse_dec_u64(parts[1]);
    const auto start = parse_dec_u64(parts[2]);
    const auto dur = parse_dec_u64(parts[3]);
    if (!name || !thread || !start || !dur) continue;
    out.push_back(ReplySpan{*name, static_cast<std::uint32_t>(*thread), *start,
                            *dur});
  }
  return out;
}

}  // namespace tecfan
