// Pooled, reconnecting line-protocol client for one tecfand backend.
//
// The router keeps one BackendClient per fleet member. Connections are
// pooled: a request leases an idle connection (or dials a new one when
// the pool is empty), does its send/receive, and releases the connection
// back to the pool on clean completion. Any error — dial failure, EPIPE
// on send, peer close, or a deadline expiring mid-read — abandons the
// connection instead of returning it, because a late reply arriving on a
// reused connection would answer the wrong request. Reconnection is
// therefore implicit: the next lease simply dials again.
//
// round_trip() is the common blocking path; the Lease type exposes the
// send / wait / read steps separately so the router can hedge (send on a
// second backend mid-wait and take whichever reply lands first).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/framing.h"

namespace tecfan::cluster {

class BackendClient {
 public:
  /// `port` is the backend's loopback TCP port; `max_idle` bounds the
  /// number of pooled (idle) connections kept for reuse. Dials are
  /// nonblocking connects bounded by `dial_timeout_ms` (and by the
  /// caller's deadline when one is passed), so a SYN-blackholed backend
  /// costs milliseconds instead of the kernel's SYN-retry default — this
  /// keeps one dead backend from stalling the HealthMonitor's probes of
  /// the others.
  explicit BackendClient(std::uint16_t port, std::size_t max_idle = 4,
                         double dial_timeout_ms = 250.0);
  ~BackendClient();

  BackendClient(const BackendClient&) = delete;
  BackendClient& operator=(const BackendClient&) = delete;

  std::uint16_t port() const { return port_; }

  /// One leased connection. Move-only; releases or abandons exactly once.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { abandon(); }  // unreleased leases are not safe to reuse

    /// False when the dial failed (no backend listening).
    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Send one request line ('\n' appended). False on connection error.
    bool send_line(const std::string& line);

    /// True when a reply line is buffered or the socket is readable.
    bool reply_ready(std::chrono::steady_clock::time_point deadline);

    /// Read one reply line, blocking until `deadline`. nullopt on error,
    /// peer close, or timeout (the lease is then only fit to abandon()).
    std::optional<std::string> read_line(
        std::chrono::steady_clock::time_point deadline);

    /// Return the connection to the pool. Only call after every sent
    /// request has had its reply read.
    void release();

    /// Close the connection (also the destructor's behavior).
    void abandon();

   private:
    friend class BackendClient;
    Lease(BackendClient* owner, int fd) : owner_(owner), fd_(fd) {
      reader_.reset(fd);
    }

    BackendClient* owner_ = nullptr;
    int fd_ = -1;
    service::LineReader reader_;
  };

  /// Lease an idle pooled connection or dial a new one. Check valid().
  /// The dial is bounded by dial_timeout_ms, further capped by `deadline`
  /// when given.
  Lease lease();
  Lease lease(std::chrono::steady_clock::time_point deadline);

  /// Send `line` and wait for the reply. nullopt on connection failure or
  /// when `deadline` passes first.
  std::optional<std::string> round_trip(
      const std::string& line,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

  struct Stats {
    std::uint64_t dials = 0;        // connections established
    std::uint64_t dial_failures = 0;
    std::uint64_t reuses = 0;       // leases served from the pool
    std::uint64_t abandons = 0;     // connections dropped on error/timeout
    std::size_t idle = 0;           // currently pooled connections
  };
  Stats stats() const;

  /// Close every pooled connection (in-flight leases are unaffected).
  void close_idle();

 private:
  struct PooledConn {
    int fd;
    service::LineReader reader;
  };

  void give_back(int fd, service::LineReader reader);

  const std::uint16_t port_;
  const std::size_t max_idle_;
  const double dial_timeout_ms_;
  mutable std::mutex mu_;
  std::vector<PooledConn> idle_;
  std::uint64_t dials_ = 0;
  std::uint64_t dial_failures_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t abandons_ = 0;
};

}  // namespace tecfan::cluster
