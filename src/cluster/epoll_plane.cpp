#include "cluster/epoll_plane.h"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "cluster/router.h"
#include "service/fault_injection.h"

namespace tecfan::cluster {
namespace {

using Clock = std::chrono::steady_clock;
using service::Response;

Clock::time_point deadline_from_ms(Clock::time_point start, double ms) {
  if (ms <= 0) return Clock::time_point::max();
  return start + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(ms));
}

/// Locale-independent %g formatting for the re-attached deadline_ms
/// parameter (the backend parses it with from_chars).
std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", ms);
  return buf;
}

/// A trustworthy backend response line starts with a protocol status
/// token. Anything else means the connection can no longer be paired
/// request-to-response and must be abandoned.
bool valid_response_line(const std::string& line) {
  const auto starts_with_word = [&line](std::string_view word) {
    return line.compare(0, word.size(), word) == 0 &&
           (line.size() == word.size() || line[word.size()] == ' ');
  };
  return starts_with_word("ok") || starts_with_word("error") ||
         starts_with_word("busy");
}

}  // namespace

EpollPlane::EpollPlane(Router& router, int listen_fd)
    : router_(router),
      listen_fd_(listen_fd),
      pipes_(router.options_.backend_ports.size()) {}

EpollPlane::~EpollPlane() = default;

void EpollPlane::run() {
  service::set_nonblocking(listen_fd_);
  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t events) { on_accept(events); });
  loop_.set_post_hook([this] { post_iteration_flush(); });
  loop_.set_stats(router_.hist_loop_iteration_,
                  router_.hist_loop_dispatch_batch_);
  loop_.run();

  // Teardown: the plane owns every session and pipe fd (the listen fd
  // stays with the Router). In-flight requests die with their sessions.
  loop_.remove_fd(listen_fd_);
  for (auto& [id, session] : sessions_) {
    loop_.remove_fd(session.fd);
    ::close(session.fd);
  }
  sessions_.clear();
  for (auto& pipe : pipes_) {
    if (pipe.fd >= 0) {
      loop_.remove_fd(pipe.fd);
      ::close(pipe.fd);
      pipe.fd = -1;
    }
    pipe.state = BackendPipe::State::kDown;
    pipe.inflight.clear();
    pipe.stall_timer = 0;
    pipe.dial_timer = 0;
  }
  pending_.clear();
  router_.pending_gauge_.store(0, std::memory_order_relaxed);
  router_.inflight_gauge_.store(0, std::memory_order_relaxed);
  for (Gauge* gauge : router_.gauge_backend_inflight_) gauge->set(0.0);
}

void EpollPlane::request_stop() { loop_.stop(); }

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

void EpollPlane::on_accept(std::uint32_t) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: batch drained. Anything else (listening socket shut down
      // by Router::stop()) is handled by the pending loop stop.
      return;
    }
    service::set_nonblocking(fd);
    service::set_tcp_nodelay(fd);
    const std::uint64_t id = next_session_id_++;
    Session& session = sessions_[id];
    session.fd = fd;
    session.id = id;
    session.reader.reset(fd);
    loop_.add_fd(fd, EPOLLIN, [this, id](std::uint32_t events) {
      on_session_event(id, events);
    });
  }
}

void EpollPlane::on_session_event(std::uint64_t id, std::uint32_t events) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  if (events & EPOLLOUT) {
    flush_session(id);
    it = sessions_.find(id);
    if (it == sessions_.end()) return;  // flush closed it
  }

  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0) return;
  if (session.quit || session.read_closed || session.paused) return;

  char buf[16384];
  for (;;) {
    const ssize_t n =
        service::faulted_recv(session.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      session.reader.append({buf, static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {
      session.read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    session.read_closed = true;  // connection reset; drain what we parsed
    break;
  }

  while (!session.quit) {
    auto line = session.reader.pop_line();
    if (!line) break;
    if (line->empty()) continue;
    dispatch_line(session, *line);
  }

  if (session.reader.overflowed() && !session.quit) {
    // Protocol error: one clean error reply in order behind anything
    // already pipelined, then the session stops reading (quit path) and
    // closes once its backlog drains.
    router_.counter_errors_->inc();
    const std::uint64_t seq = session.next_seq++;
    session.slots.emplace_back();
    session.quit = true;
    fill_slot(session, seq,
              service::serialize_response(
                  Response::make_error("request line too long")));
  }

  if (session.out.bytes() >= kPauseBytes) session.paused = true;
  mark_session_dirty(session);
  update_session_events(session);

  // A client that closed with nothing outstanding closes now rather than
  // waiting for the post-iteration flush.
  if ((session.read_closed || session.quit) && session.slots.empty() &&
      session.out.empty()) {
    close_session(id);
  }
}

void EpollPlane::dispatch_line(Session& session, const std::string& line) {
  const auto line_start = Clock::now();
  bool quit = false;
  service::ParsedRequest parsed;
  auto local = router_.handle_local(line, &parsed, &quit);
  const std::uint64_t seq = session.next_seq++;
  session.slots.emplace_back();
  if (local) {
    if (quit) session.quit = true;
    fill_slot(session, seq, std::move(*local));
    return;
  }
  route(session, seq, parsed.request, line_start);
}

void EpollPlane::fill_slot(Session& session, std::uint64_t seq,
                           std::string reply) {
  const std::uint64_t index = seq - session.base_seq;
  Slot& slot = session.slots[index];
  slot.ready = true;
  slot.reply = std::move(reply);
  drain_ready(session);
}

void EpollPlane::drain_ready(Session& session) {
  bool pushed = false;
  while (!session.slots.empty() && session.slots.front().ready) {
    std::string wire = std::move(session.slots.front().reply);
    wire += '\n';
    session.out.push(std::move(wire));
    session.slots.pop_front();
    ++session.base_seq;
    pushed = true;
  }
  if (pushed) mark_session_dirty(session);
}

void EpollPlane::flush_session(std::uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  router_.note_writeq_bytes(session.out.bytes());
  if (!session.out.empty()) {
    switch (session.out.flush(session.fd)) {
      case service::WriteQueue::FlushResult::kError:
        close_session(id);
        return;
      case service::WriteQueue::FlushResult::kBlocked:
        session.write_blocked = true;
        break;
      case service::WriteQueue::FlushResult::kDrained:
        session.write_blocked = false;
        break;
    }
  } else {
    session.write_blocked = false;
  }

  if (session.paused && session.out.bytes() <= kResumeBytes)
    session.paused = false;

  if ((session.quit || session.read_closed) && session.slots.empty() &&
      session.out.empty()) {
    close_session(id);
    return;
  }
  update_session_events(session);
}

void EpollPlane::close_session(std::uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  loop_.remove_fd(it->second.fd);
  ::close(it->second.fd);
  // Requests still in flight for this session keep running; their replies
  // are dropped at delivery when the session id no longer resolves.
  sessions_.erase(it);
}

void EpollPlane::update_session_events(Session& session) {
  std::uint32_t events = 0;
  if (!session.paused && !session.quit && !session.read_closed)
    events |= EPOLLIN;
  if (session.write_blocked) events |= EPOLLOUT;
  loop_.modify_fd(session.fd, events);
}

void EpollPlane::mark_session_dirty(Session& session) {
  if (session.dirty || session.out.empty()) return;
  session.dirty = true;
  dirty_sessions_.push_back(session.id);
}

// ---------------------------------------------------------------------------
// Backend side
// ---------------------------------------------------------------------------

EpollPlane::BackendPipe* EpollPlane::ensure_pipe(std::size_t b) {
  BackendPipe& pipe = pipes_[b];
  if (pipe.state != BackendPipe::State::kDown) return &pipe;

  // This raw nonblocking dial bypasses connect_loopback(), so it consults
  // the fault injector itself: a refused decision behaves exactly like a
  // synchronous ECONNREFUSED from the kernel.
  if (service::FaultInjector* fi = service::active_fault_injector()) {
    const service::FaultDecision d = service::settle_fault_delay(
        fi->on_connect(router_.options_.backend_ports[b]));
    if (d.kind == service::FaultDecision::Kind::kFail ||
        d.kind == service::FaultDecision::Kind::kEof) {
      return nullptr;
    }
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  service::set_nonblocking(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(router_.options_.backend_ports[b]);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);

  if (rc == 0) {
    service::set_tcp_nodelay(fd);
    pipe.state = BackendPipe::State::kUp;
  } else if (errno == EINPROGRESS) {
    // Queue forwards while the handshake completes; the WriteQueue only
    // flushes once the pipe is kUp.
    pipe.state = BackendPipe::State::kConnecting;
    pipe.dial_timer = loop_.add_timer(
        deadline_from_ms(Clock::now(), router_.options_.dial_timeout_ms),
        [this, b] {
          pipes_[b].dial_timer = 0;
          if (pipes_[b].state == BackendPipe::State::kConnecting)
            on_pipe_error(b);
        });
  } else {
    ::close(fd);
    return nullptr;
  }

  pipe.fd = fd;
  pipe.reader.reset(fd);
  const std::uint32_t events =
      pipe.state == BackendPipe::State::kUp ? EPOLLIN : EPOLLOUT;
  loop_.add_fd(fd, events,
               [this, b](std::uint32_t ev) { on_pipe_event(b, ev); });
  return &pipe;
}

void EpollPlane::on_pipe_event(std::size_t b, std::uint32_t events) {
  BackendPipe& pipe = pipes_[b];
  if (pipe.fd < 0) return;

  if (pipe.state == BackendPipe::State::kConnecting) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(pipe.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      on_pipe_error(b);
      return;
    }
    service::set_tcp_nodelay(pipe.fd);
    pipe.state = BackendPipe::State::kUp;
    if (pipe.dial_timer) {
      loop_.cancel_timer(pipe.dial_timer);
      pipe.dial_timer = 0;
    }
    loop_.modify_fd(pipe.fd, EPOLLIN);
    mark_pipe_dirty(b);  // flush the forwards queued during the dial
    return;
  }

  if (events & EPOLLOUT) flush_pipe(b);
  if (pipe.fd < 0) return;  // flush tore the pipe down

  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0) return;

  char buf[16384];
  bool dead = false;
  for (;;) {
    const ssize_t n = service::faulted_recv(pipe.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      pipe.reader.append({buf, static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {
      dead = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    dead = true;
    break;
  }

  for (;;) {
    auto line = pipe.reader.pop_line();
    if (!line) break;
    if (!valid_response_line(*line) || pipe.inflight.empty()) {
      // Malformed (or unsolicited) response: request/response pairing on
      // this connection can no longer be trusted — abandon it and fail
      // everything still in flight over the ring.
      on_pipe_error(b);
      return;
    }
    const InFlight inflight = pipe.inflight.front();
    pipe.inflight.pop_front();
    router_.inflight_gauge_.fetch_sub(1, std::memory_order_relaxed);
    router_.gauge_backend_inflight_[b]->set(
        static_cast<double>(pipe.inflight.size()));
    handle_backend_reply(b, inflight, std::move(*line));
    if (pipe.fd < 0) return;  // a completion handler tore the pipe down
  }

  // A reply line longer than the reader cap is malformed framing, same as
  // a non-protocol status token.
  if (pipe.reader.overflowed()) {
    on_pipe_error(b);
    return;
  }

  if (dead) on_pipe_error(b);
}

void EpollPlane::on_pipe_error(std::size_t b) {
  BackendPipe& pipe = pipes_[b];
  if (pipe.fd >= 0) {
    loop_.remove_fd(pipe.fd);
    ::close(pipe.fd);
    pipe.fd = -1;
  }
  if (pipe.dial_timer) {
    loop_.cancel_timer(pipe.dial_timer);
    pipe.dial_timer = 0;
  }
  if (pipe.stall_timer) {
    loop_.cancel_timer(pipe.stall_timer);
    pipe.stall_timer = 0;
  }
  pipe.state = BackendPipe::State::kDown;
  pipe.reader.reset(-1);
  pipe.out.clear();
  pipe.write_blocked = false;

  // Swap the FIFO out before iterating: failover below may redial pipes
  // (never this one — a request's candidate cursor only moves forward and
  // the ring chain is distinct) and must not mutate the deque mid-walk.
  std::deque<InFlight> failed;
  failed.swap(pipe.inflight);
  router_.inflight_gauge_.fetch_sub(failed.size(),
                                    std::memory_order_relaxed);
  router_.gauge_backend_inflight_[b]->set(0.0);
  for (const InFlight& inflight : failed) {
    auto it = pending_.find(inflight.request_id);
    if (it == pending_.end()) continue;  // already answered elsewhere
    PendingRequest& request = it->second;
    router_.health_->report_failure(b);
    router_.counter_failovers_->inc();
    --request.live_attempts;
    if (b == request.hedge_backend) request.hedge_backend = kNoBackend;
    if (request.live_attempts > 0) continue;  // hedge twin still racing
    if (send_attempt(request)) continue;
    complete_error(request.id, "no backend available");
  }
}

void EpollPlane::handle_backend_reply(std::size_t b, const InFlight& inflight,
                                      std::string line) {
  // Any in-order reply proves the backend serves, whether or not the
  // request still wants it.
  router_.health_->report_success(b);
  auto it = pending_.find(inflight.request_id);
  if (it == pending_.end()) return;  // hedge loser / post-deadline: discard
  const auto now = Clock::now();
  router_.hist_backend_wait_->record(now - inflight.sent_at);
  if (b == it->second.hedge_backend) router_.counter_hedge_wins_->inc();
  if (it->second.trace.sampled) {
    // Winner's spans only: a loser's reply fails the pending_ lookup
    // above and never reaches the rings.
    router_.tracer_.record(it->second.trace, SpanName::kBackendWait,
                           inflight.sent_at, now);
    router_.ingest_backend_spans(it->second.trace, line, inflight.sent_at);
  }
  complete(inflight.request_id, std::move(line));
}

void EpollPlane::flush_pipe(std::size_t b) {
  BackendPipe& pipe = pipes_[b];
  if (pipe.state != BackendPipe::State::kUp || pipe.fd < 0) return;
  router_.note_writeq_bytes(pipe.out.bytes());
  bool blocked = false;
  if (!pipe.out.empty()) {
    switch (pipe.out.flush(pipe.fd)) {
      case service::WriteQueue::FlushResult::kError:
        on_pipe_error(b);
        return;
      case service::WriteQueue::FlushResult::kBlocked:
        blocked = true;
        break;
      case service::WriteQueue::FlushResult::kDrained:
        break;
    }
  }
  if (blocked != pipe.write_blocked) {
    pipe.write_blocked = blocked;
    loop_.modify_fd(pipe.fd,
                    blocked ? (EPOLLIN | EPOLLOUT)
                            : static_cast<std::uint32_t>(EPOLLIN));
  }
}

void EpollPlane::mark_pipe_dirty(std::size_t b) {
  BackendPipe& pipe = pipes_[b];
  if (pipe.dirty) return;
  pipe.dirty = true;
  dirty_pipes_.push_back(b);
}

// ---------------------------------------------------------------------------
// Request lifecycle
// ---------------------------------------------------------------------------

void EpollPlane::route(Session& session, std::uint64_t seq,
                       const service::Request& request,
                       Clock::time_point line_start) {
  router_.counter_routed_->inc();

  // Head-of-trace decision (or adoption of an upstream context); sampled
  // requests carry the context on the wire to every attempt, unsampled
  // ones put nothing there — byte-identical to the pre-trace wire.
  const TraceContext trace = request.trace.sampled
                                 ? router_.tracer_.adopt(request.trace)
                                 : router_.tracer_.start_trace();

  const std::string key = service::canonical_key(request);
  std::string wire = key;
  if (request.deadline_ms > 0)
    wire += " deadline_ms=" + format_ms(request.deadline_ms);
  if (trace.sampled) wire += " trace=" + trace.wire();
  wire += '\n';

  const auto now = Clock::now();
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : router_.options_.backend_deadline_ms;
  const auto deadline = deadline_from_ms(now, deadline_ms);

  // Same failover order as the thread plane: the owner, then the distinct
  // ring successors, down backends filtered up front (full chain as the
  // all-down fallback — the monitor may be stale).
  const std::vector<std::size_t> full_chain = router_.shards_.replica_chain(key);
  std::vector<std::size_t> chain;
  chain.reserve(full_chain.size());
  for (const std::size_t b : full_chain)
    if (router_.health_->up(b)) chain.push_back(b);
  if (chain.empty()) chain = full_chain;
  const auto route_end = Clock::now();
  router_.hist_route_->record(route_end - line_start);
  if (trace.sampled)
    router_.tracer_.record(trace, SpanName::kRoute, line_start, route_end);

  const std::uint64_t id = next_request_id_++;
  PendingRequest& pending = pending_[id];
  router_.pending_gauge_.fetch_add(1, std::memory_order_relaxed);
  pending.id = id;
  pending.session_id = session.id;
  pending.slot_seq = seq;
  pending.wire = std::move(wire);
  pending.chain = std::move(chain);
  pending.line_start = line_start;
  pending.deadline = deadline;
  pending.trace = trace;

  if (!send_attempt(pending)) {
    complete_error(id, "no backend available");
    return;
  }

  const bool hedging =
      router_.options_.hedge_ms >= 0 && router_.current_hedge_delay_us() > 0;
  if (hedging && pending.next_candidate < pending.chain.size()) {
    auto hedge_at =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::micro>(
                      router_.current_hedge_delay_us()));
    if (deadline < hedge_at) hedge_at = deadline;
    pending.hedge_timer =
        loop_.add_timer(hedge_at, [this, id] { on_hedge_fire(id); });
  }
  if (deadline != Clock::time_point::max()) {
    pending.deadline_timer =
        loop_.add_timer(deadline, [this, id] { on_deadline_fire(id); });
  }
}

std::optional<std::size_t> EpollPlane::send_attempt(PendingRequest& request) {
  while (request.next_candidate < request.chain.size()) {
    const std::size_t b = request.chain[request.next_candidate++];
    BackendPipe* pipe = ensure_pipe(b);
    if (!pipe) {
      router_.health_->report_failure(b);
      router_.counter_failovers_->inc();
      continue;
    }
    const auto now = Clock::now();
    InFlight entry;
    entry.request_id = request.id;
    entry.entry_id = pipe->next_entry_id++;
    entry.sent_at = now;
    entry.expires_at = stall_expiry(now, request.deadline);
    const bool was_empty = pipe->inflight.empty();
    pipe->out.push(request.wire);
    pipe->inflight.push_back(entry);
    router_.inflight_gauge_.fetch_add(1, std::memory_order_relaxed);
    router_.gauge_backend_inflight_[b]->set(
        static_cast<double>(pipe->inflight.size()));
    mark_pipe_dirty(b);
    ++request.live_attempts;
    // Arm the watchdog only when this entry became the FIFO front; pops
    // never rearm (zero hot-path cost), so an armed timer may be for an
    // already-completed front — on_pipe_stall re-checks and rearms.
    if (was_empty) arm_pipe_stall(b);
    return b;
  }
  return std::nullopt;
}

EpollPlane::Clock::time_point EpollPlane::stall_expiry(
    Clock::time_point now, Clock::time_point request_deadline) const {
  if (request_deadline != Clock::time_point::max()) {
    return request_deadline +
           std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double, std::milli>(
                   router_.options_.stall_grace_ms));
  }
  if (router_.options_.pipe_stall_ms <= 0) return Clock::time_point::max();
  return now + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       router_.options_.pipe_stall_ms));
}

void EpollPlane::arm_pipe_stall(std::size_t b) {
  BackendPipe& pipe = pipes_[b];
  if (pipe.stall_timer) {
    loop_.cancel_timer(pipe.stall_timer);
    pipe.stall_timer = 0;
  }
  if (pipe.fd < 0 || pipe.inflight.empty()) return;
  const InFlight& front = pipe.inflight.front();
  if (front.expires_at == Clock::time_point::max()) return;
  pipe.stall_timer = loop_.add_timer(
      front.expires_at,
      [this, b, eid = front.entry_id] {
        pipes_[b].stall_timer = 0;
        on_pipe_stall(b, eid);
      });
}

void EpollPlane::on_pipe_stall(std::size_t b, std::uint64_t entry_id) {
  BackendPipe& pipe = pipes_[b];
  if (pipe.fd < 0) return;
  if (pipe.inflight.empty()) return;  // drained since arming
  if (pipe.inflight.front().entry_id != entry_id) {
    // The front the timer was armed for completed; rearm for the current
    // front (its expiry may already be past, in which case add_timer
    // fires on the next loop iteration).
    arm_pipe_stall(b);
    return;
  }
  // The head reply is overdue. In-order pairing means nothing behind the
  // head can complete either: the pipe accepted forwards and stopped
  // replying (accept-then-blackhole, or a wedged backend). Report it and
  // tear the pipe down — on_pipe_error fails the whole FIFO over the
  // ring, which is also what reclaims hedge-loser entries whose requests
  // completed long ago via the winner.
  router_.counter_pipe_stalls_->inc();
  router_.health_->report_failure(b);
  on_pipe_error(b);
}

void EpollPlane::on_hedge_fire(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingRequest& request = it->second;
  request.hedge_timer = 0;
  // A failover in progress already consumed the next candidate; hedging
  // on top of it would double-spend the chain.
  if (request.live_attempts < 1) return;
  if (request.next_candidate >= request.chain.size()) return;
  // Same canonical line to the ring replica; first answer wins. The loser
  // still fills its own cache shard — wasted compute is the price of the
  // tail cut.
  if (auto b = send_attempt(request)) {
    router_.counter_hedges_->inc();
    request.hedge_backend = *b;
  }
}

void EpollPlane::on_deadline_fire(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  it->second.deadline_timer = 0;
  // Attempts still in flight stay on their FIFOs; late replies are
  // discarded by descriptor when they arrive.
  complete_error(id, "no backend available");
}

void EpollPlane::complete(std::uint64_t id, std::string reply) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  const std::uint64_t session_id = it->second.session_id;
  const std::uint64_t slot_seq = it->second.slot_seq;
  const Clock::time_point line_start = it->second.line_start;
  const TraceContext trace = it->second.trace;
  if (it->second.hedge_timer) loop_.cancel_timer(it->second.hedge_timer);
  if (it->second.deadline_timer)
    loop_.cancel_timer(it->second.deadline_timer);
  pending_.erase(it);
  router_.pending_gauge_.fetch_sub(1, std::memory_order_relaxed);

  router_.finish_compute(reply, trace, line_start);

  auto sit = sessions_.find(session_id);
  if (sit == sessions_.end()) return;  // client left; drop the reply
  fill_slot(sit->second, slot_seq, std::move(reply));
}

void EpollPlane::complete_error(std::uint64_t id, const char* message) {
  router_.counter_errors_->inc();
  complete(id, service::serialize_response(Response::make_error(message)));
}

// ---------------------------------------------------------------------------
// Batched writes
// ---------------------------------------------------------------------------

void EpollPlane::post_iteration_flush() {
  // Flushes can cascade (a pipe error fails requests over, dirtying other
  // pipes and sessions), so drain until a fixed point.
  while (!dirty_pipes_.empty() || !dirty_sessions_.empty()) {
    std::vector<std::size_t> pipes;
    pipes.swap(dirty_pipes_);
    for (const std::size_t b : pipes) {
      pipes_[b].dirty = false;
      flush_pipe(b);
    }
    std::vector<std::uint64_t> sessions;
    sessions.swap(dirty_sessions_);
    for (const std::uint64_t id : sessions) {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      it->second.dirty = false;
      flush_session(id);
    }
  }
}

}  // namespace tecfan::cluster
