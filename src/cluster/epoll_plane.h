// Event-driven router data plane: one thread, nonblocking sockets, backend
// pipelining, batched writes.
//
// The thread-per-session plane (Router::serve_threads) pays four context
// switches and a syscall-per-line on every forwarded request; on the
// loopback fleets this repo targets that *halves* routed throughput vs
// direct serving. This plane replaces it with a single epoll loop where
// both sides of the router are state machines:
//
//   * Client sessions — O_NONBLOCK fds with a LineReader (incremental
//     line splitting) and a WriteQueue (response coalescing). A client may
//     pipeline request lines; responses are delivered strictly in request
//     order via a per-session reorder buffer (slots), because backends
//     complete out of order.
//   * Backend pipes — ONE persistent connection per backend carrying all
//     forwards concurrently. The line protocol is strictly in-order per
//     connection, so a FIFO of in-flight descriptors pairs each response
//     line with its request; this replaces BackendClient's
//     lease-per-request model (and its per-request pool round trip) on the
//     hot path. Dials are nonblocking with a timeout.
//
// Invariants the tests pin:
//   * Pipelining: response k on a pipe answers the k-th unanswered forward
//     on that pipe — any response line that does not parse as a protocol
//     status (`ok`/`error`/`busy`), or that arrives with an empty FIFO,
//     abandons the connection (the pairing can no longer be trusted) and
//     fails the whole FIFO over the ring.
//   * Failover: a pipe death (EOF, error, dial timeout, malformed line)
//     fails every in-flight request over to its next ring replica with no
//     client-visible error as long as a replica is up; health reports and
//     the failover counter fire per affected request, same as the thread
//     plane.
//   * Hedging: a hedge is cancelled by descriptor, never by connection
//     reuse — the loser's entry stays in its pipe FIFO and the reply is
//     discarded on arrival (the request id no longer resolves), keeping
//     the shared connection in sync.
//   * No FIFO entry lives forever: a pipe whose head reply is overdue
//     (request deadline + grace, or pipe_stall_ms for deadline-less
//     requests) is declared stalled — in-order pairing means nothing
//     behind the head can complete either — reported to health, torn
//     down, and its whole FIFO failed over. This reclaims hedge losers
//     parked on a blackholed backend, which complete successfully via
//     the winner and therefore never trip their own deadline timer.
//
// Writes are coalesced: handlers append to per-socket WriteQueues and a
// post-iteration hook flushes each dirty socket once (gathered sendmsg),
// so an iteration that produced N lines for a socket pays one syscall.
// TCP_NODELAY is set everywhere, making that flush the only batching
// boundary.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/event_loop.h"
#include "service/framing.h"
#include "service/request.h"

namespace tecfan::cluster {

class Router;

class EpollPlane {
 public:
  /// `listen_fd` is Router's bound listening socket (not owned; the plane
  /// switches it to O_NONBLOCK for its accept loop).
  EpollPlane(Router& router, int listen_fd);
  ~EpollPlane();

  EpollPlane(const EpollPlane&) = delete;
  EpollPlane& operator=(const EpollPlane&) = delete;

  /// Event loop; returns after request_stop(). Single-threaded.
  void run();

  /// Thread-safe: wake the loop and make run() return.
  void request_stop();

 private:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kNoBackend = static_cast<std::size_t>(-1);
  /// Flow control: stop reading a session whose response backlog passes
  /// the high-water mark, resume below the low-water mark.
  static constexpr std::size_t kPauseBytes = 256 * 1024;
  static constexpr std::size_t kResumeBytes = 64 * 1024;

  /// One response slot in a session's reorder buffer.
  struct Slot {
    bool ready = false;
    std::string reply;  // without trailing '\n'
  };

  struct Session {
    int fd = -1;
    std::uint64_t id = 0;
    service::LineReader reader;
    service::WriteQueue out;
    /// Reorder buffer: slots_[i] answers request base_seq + i.
    std::deque<Slot> slots;
    std::uint64_t base_seq = 0;
    std::uint64_t next_seq = 0;
    bool read_closed = false;   // client EOF; drain replies then close
    bool quit = false;          // `quit` seen; stop reading
    bool paused = false;        // flow control: EPOLLIN dropped
    bool write_blocked = false; // EPOLLOUT armed
    bool dirty = false;         // queued for the post-iteration flush
  };

  /// One forward awaiting its in-order response line on a pipe.
  struct InFlight {
    std::uint64_t request_id = 0;
    /// Per-pipe monotone id: lets the stall timer verify the FIFO front
    /// it armed for is still the front when it fires.
    std::uint64_t entry_id = 0;
    Clock::time_point sent_at{};
    /// When the head-of-line stall watchdog declares this entry overdue:
    /// the request deadline plus grace, or sent_at + pipe_stall_ms for
    /// deadline-less requests. max() = never.
    Clock::time_point expires_at = Clock::time_point::max();
  };

  struct BackendPipe {
    enum class State { kDown, kConnecting, kUp };
    State state = State::kDown;
    int fd = -1;
    service::LineReader reader;
    service::WriteQueue out;
    std::deque<InFlight> inflight;
    std::uint64_t dial_timer = 0;
    /// Head-of-line stall watchdog (see arm_pipe_stall): a pipe that
    /// accepted forwards but stopped replying is torn down instead of
    /// holding its FIFO entries — hedge losers included — forever.
    std::uint64_t stall_timer = 0;
    std::uint64_t next_entry_id = 1;
    bool write_blocked = false;
    bool dirty = false;
  };

  /// One routed request, alive until its response (or error) is delivered.
  /// Erasure from pending_ IS completion: a reply whose id no longer
  /// resolves (hedge loser, post-deadline straggler) is discarded.
  struct PendingRequest {
    std::uint64_t id = 0;
    std::uint64_t session_id = 0;
    std::uint64_t slot_seq = 0;
    std::string wire;  // canonical line + '\n', resent verbatim on failover
    std::vector<std::size_t> chain;  // health-filtered failover candidates
    std::size_t next_candidate = 0;
    int live_attempts = 0;
    std::size_t hedge_backend = kNoBackend;
    Clock::time_point line_start{};
    Clock::time_point deadline = Clock::time_point::max();
    std::uint64_t hedge_timer = 0;
    std::uint64_t deadline_timer = 0;
    /// Sampled contexts ride the wire to every attempt (the hedged twin
    /// reuses `wire` verbatim); only the winning reply's spans are folded
    /// into the router's rings, because completion erases the request.
    TraceContext trace;
  };

  // Client side.
  void on_accept(std::uint32_t events);
  void on_session_event(std::uint64_t id, std::uint32_t events);
  void dispatch_line(Session& session, const std::string& line);
  void fill_slot(Session& session, std::uint64_t seq, std::string reply);
  void drain_ready(Session& session);
  /// Flush + flow-control resume + drained-close check. May close.
  void flush_session(std::uint64_t id);
  void close_session(std::uint64_t id);
  void update_session_events(Session& session);
  void mark_session_dirty(Session& session);

  // Backend side.
  /// Pipe for backend b, dialing (async) if down. nullptr if socket().
  BackendPipe* ensure_pipe(std::size_t b);
  void on_pipe_event(std::size_t b, std::uint32_t events);
  /// Tear the pipe down and fail its whole in-flight FIFO over the ring.
  void on_pipe_error(std::size_t b);
  void handle_backend_reply(std::size_t b, const InFlight& inflight,
                            std::string line);
  void flush_pipe(std::size_t b);
  void mark_pipe_dirty(std::size_t b);
  /// (Re)arm the stall watchdog for the pipe's current FIFO front. At
  /// most one timer per pipe: replies don't rearm it (hot-path cost
  /// zero); a firing with a fresh front just rearms for that front.
  void arm_pipe_stall(std::size_t b);
  void on_pipe_stall(std::size_t b, std::uint64_t entry_id);
  /// expires_at for a new FIFO entry (deadline + grace, or the
  /// pipe_stall_ms bound for deadline-less requests).
  Clock::time_point stall_expiry(Clock::time_point now,
                                 Clock::time_point request_deadline) const;

  // Request lifecycle.
  void route(Session& session, std::uint64_t seq,
             const service::Request& request, Clock::time_point line_start);
  /// Send on the next live candidate; returns the backend index used.
  std::optional<std::size_t> send_attempt(PendingRequest& request);
  void on_hedge_fire(std::uint64_t id);
  void on_deadline_fire(std::uint64_t id);
  void complete(std::uint64_t id, std::string reply);
  void complete_error(std::uint64_t id, const char* message);

  void post_iteration_flush();

  Router& router_;
  const int listen_fd_;
  EventLoop loop_;

  std::unordered_map<std::uint64_t, Session> sessions_;
  std::vector<BackendPipe> pipes_;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t next_request_id_ = 1;

  // Sockets with queued bytes, flushed once per loop iteration.
  std::vector<std::uint64_t> dirty_sessions_;
  std::vector<std::size_t> dirty_pipes_;
};

}  // namespace tecfan::cluster
