// Background health checking for a fleet of tecfand backends.
//
// One monitor thread pings every backend (the protocol's `ping` verb, via
// that backend's BackendClient pool) on a fixed period. A backend is
// marked down after `down_after` consecutive failures and marked up again
// on the first successful ping. While a backend is down its probes back
// off exponentially (with deterministic jitter so a restarted fleet does
// not probe in lockstep) up to `backoff_max_s`; a healthy fleet is probed
// at `interval_s`.
//
// The router consults up() on every route: a down backend is skipped and
// its keys fail over to the next backend on the ShardMap ring. The router
// also reports its own observations via report_failure()/report_success(),
// so a backend that dies between probes is marked down by the traffic
// that discovers it rather than one full probe period later.
//
// Traffic reports and probes race when a backend flaps faster than the
// ping interval: a probe that started before the backend died can come
// back `ok` after the traffic path already marked the backend down, and
// would resurrect it with stale evidence. State transitions are therefore
// monotonic per observation epoch: every traffic report advances the
// backend's epoch, a probe snapshots the epoch before its round trip
// (begin_probe) and its result is discarded (counted in stale_probes) if
// the epoch moved while it was in flight (finish_probe).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/backend_client.h"

namespace tecfan::cluster {

class HealthMonitor {
 public:
  struct Options {
    double interval_s = 0.1;     // probe period while up
    int down_after = 2;          // consecutive failures before markdown
    double ping_timeout_ms = 250.0;
    double backoff_base_s = 0.1; // first retry delay once down
    double backoff_max_s = 2.0;
    std::uint64_t jitter_seed = 0x7ec5eed;  // deterministic jitter stream
  };

  /// Monitors the given backends (not owned; must outlive the monitor).
  /// All backends start up — optimistic, so a router can serve immediately
  /// — and the first probe round corrects that within one period.
  HealthMonitor(std::vector<BackendClient*> backends, Options options);
  explicit HealthMonitor(std::vector<BackendClient*> backends)
      : HealthMonitor(std::move(backends), Options{}) {}
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void start();
  void stop();

  std::size_t backend_count() const { return backends_.size(); }
  bool up(std::size_t backend) const {
    return state_[backend]->up.load(std::memory_order_acquire);
  }
  std::size_t up_count() const;

  /// Traffic-path observations: a failed forward counts like a failed
  /// ping (accelerating markdown); a success resets the failure streak.
  /// Either advances the backend's observation epoch, invalidating any
  /// probe currently in flight.
  void report_failure(std::size_t backend);
  void report_success(std::size_t backend);

  /// Probe-side epoch handshake, public so fault-injection tests can
  /// interleave a probe with traffic reports deterministically: take a
  /// token before the round trip, hand the result back with it. A result
  /// whose token is stale (a traffic report landed in between) is
  /// discarded — the probe observed a connection from before the report.
  std::uint64_t begin_probe(std::size_t backend) const;
  void finish_probe(std::size_t backend, bool ok, std::uint64_t token);

  /// Wake the monitor thread and run one probe round now, returning after
  /// the round completes (bounded by backend_count x ping timeout). Used
  /// by tests and the failover path to re-check without waiting a period.
  void probe_now();

  struct BackendHealth {
    bool up = true;
    std::uint64_t probes = 0;        // pings attempted
    std::uint64_t probe_failures = 0;
    std::uint64_t markdowns = 0;     // up -> down transitions
    std::uint64_t stale_probes = 0;  // probe results discarded by epoch
    double last_rtt_us = 0.0;        // last successful ping round trip
  };
  BackendHealth health(std::size_t backend) const;

 private:
  struct BackendState {
    std::atomic<bool> up{true};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> probe_failures{0};
    std::atomic<std::uint64_t> markdowns{0};
    std::atomic<std::uint64_t> stale_probes{0};
    std::atomic<double> last_rtt_us{0.0};
    // State-transition fields, serialized by obs_mu (uncontended in the
    // steady state: the traffic path and one monitor thread). `up` is
    // additionally atomic so the route path reads it lock-free.
    mutable std::mutex obs_mu;
    std::uint64_t epoch = 0;
    int consecutive_failures = 0;
    // Monitor-thread-only backoff bookkeeping.
    int backoff_exponent = 0;
    std::chrono::steady_clock::time_point next_probe{};
  };

  void run();
  /// Probe every backend whose next_probe has arrived; reschedule each.
  void probe_round(std::chrono::steady_clock::time_point now);
  bool ping(std::size_t backend);
  /// Apply one observation under st.obs_mu (already held).
  void apply_observation(BackendState& st, bool ok);
  double jitter_fraction();  // in [0, 0.25), monitor thread only

  std::vector<BackendClient*> backends_;
  Options options_;
  std::vector<std::unique_ptr<BackendState>> state_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  // probe_now() handshake: a caller takes a request stamp and waits until
  // a full forced round that STARTED at or after that stamp completes (a
  // round already in flight may have skipped backed-off backends).
  std::uint64_t probe_requested_ = 0;
  std::uint64_t probe_completed_ = 0;
  std::thread thread_;
  std::uint64_t jitter_state_;
};

}  // namespace tecfan::cluster
