#include "cluster/backend_client.h"

#include <unistd.h>

#include <utility>

namespace tecfan::cluster {

BackendClient::BackendClient(std::uint16_t port, std::size_t max_idle,
                             double dial_timeout_ms)
    : port_(port), max_idle_(max_idle), dial_timeout_ms_(dial_timeout_ms) {}

BackendClient::~BackendClient() { close_idle(); }

BackendClient::Lease& BackendClient::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    abandon();
    owner_ = other.owner_;
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.owner_ = nullptr;
    other.fd_ = -1;
    other.reader_.reset(-1);
  }
  return *this;
}

bool BackendClient::Lease::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string msg = line;
  msg += '\n';
  return service::send_all(fd_, msg);
}

bool BackendClient::Lease::reply_ready(
    std::chrono::steady_clock::time_point deadline) {
  if (fd_ < 0) return false;
  if (reader_.has_line()) return true;
  return service::wait_readable(fd_, deadline);
}

std::optional<std::string> BackendClient::Lease::read_line(
    std::chrono::steady_clock::time_point deadline) {
  if (fd_ < 0) return std::nullopt;
  return reader_.read_line(deadline);
}

void BackendClient::Lease::release() {
  if (fd_ < 0) return;
  if (owner_) {
    owner_->give_back(fd_, std::move(reader_));
  } else {
    ::close(fd_);
  }
  fd_ = -1;
  reader_.reset(-1);
  owner_ = nullptr;
}

void BackendClient::Lease::abandon() {
  if (fd_ < 0) return;
  if (owner_) {
    std::lock_guard<std::mutex> lock(owner_->mu_);
    ++owner_->abandons_;
  }
  ::close(fd_);
  fd_ = -1;
  reader_.reset(-1);
  owner_ = nullptr;
}

BackendClient::Lease BackendClient::lease() {
  return lease(std::chrono::steady_clock::time_point::max());
}

BackendClient::Lease BackendClient::lease(
    std::chrono::steady_clock::time_point deadline) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      PooledConn conn = std::move(idle_.back());
      idle_.pop_back();
      ++reuses_;
      Lease l(this, conn.fd);
      l.reader_ = std::move(conn.reader);
      return l;
    }
  }
  auto dial_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(dial_timeout_ms_));
  if (deadline < dial_deadline) dial_deadline = deadline;
  const int fd = service::connect_loopback(port_, dial_deadline);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd < 0) {
    ++dial_failures_;
    return Lease{};
  }
  ++dials_;
  return Lease(this, fd);
}

std::optional<std::string> BackendClient::round_trip(
    const std::string& line, std::chrono::steady_clock::time_point deadline) {
  Lease l = lease(deadline);
  if (!l.valid()) return std::nullopt;
  if (!l.send_line(line)) return std::nullopt;  // dtor abandons
  auto reply = l.read_line(deadline);
  if (reply) l.release();
  return reply;
}

void BackendClient::give_back(int fd, service::LineReader reader) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < max_idle_) {
    idle_.push_back({fd, std::move(reader)});
    return;
  }
  ++abandons_;
  ::close(fd);
}

BackendClient::Stats BackendClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.dials = dials_;
  s.dial_failures = dial_failures_;
  s.reuses = reuses_;
  s.abandons = abandons_;
  s.idle = idle_.size();
  return s;
}

void BackendClient::close_idle() {
  std::vector<PooledConn> drop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drop.swap(idle_);
  }
  for (auto& conn : drop) ::close(conn.fd);
}

}  // namespace tecfan::cluster
