// Consistent-hash shard map over canonical request keys.
//
// The router partitions the compute-request key space (the canonical
// cache key from service/request.h) across N tecfand backends with a
// fixed virtual-node hash ring: each backend owns kVirtualNodes points on
// a 64-bit ring, and a key belongs to the backend owning the first point
// at or after the key's hash (wrapping). Two properties matter for the
// fleet:
//
//   * Disjoint, stable slices — a key always routes to the same backend
//     (the hash is FNV-1a, fixed across processes and platforms, NOT
//     std::hash), so each backend's ResultCache sees a disjoint shard of
//     the key space and fleet-wide effective cache capacity scales
//     linearly with backend count.
//   * Minimal movement — adding or removing one backend remaps only the
//     ring arcs adjacent to its virtual nodes (~1/N of keys), so growing
//     the fleet does not invalidate every backend's cache.
//
// replica_chain() yields the ring-successor order used for failover and
// hedging: the first entry is the owner, the next entries are the
// distinct backends whose virtual nodes follow on the ring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace tecfan::cluster {

/// FNV-1a 64-bit — stable across processes, platforms, and builds (the
/// ring layout must agree between router restarts and fleet members).
std::uint64_t stable_hash(std::string_view s);

class ShardMap {
 public:
  static constexpr std::size_t kDefaultVirtualNodes = 64;

  /// Ring over backends [0, backend_count) with `virtual_nodes` points
  /// per backend. backend_count must be >= 1.
  explicit ShardMap(std::size_t backend_count,
                    std::size_t virtual_nodes = kDefaultVirtualNodes);

  std::size_t backend_count() const { return backend_count_; }
  std::size_t virtual_nodes() const { return virtual_nodes_; }

  /// The backend owning `key` (first virtual node at or after the key's
  /// hash, wrapping).
  std::size_t owner(std::string_view key) const;

  /// Owner followed by the distinct backends next along the ring, at most
  /// `max_backends` entries (0 = all backends). The order is the failover
  /// order: when the owner is down its keys re-route to chain[1], etc.
  std::vector<std::size_t> replica_chain(std::string_view key,
                                         std::size_t max_backends = 0) const;

 private:
  struct VirtualNode {
    std::uint64_t point;
    std::uint32_t backend;
  };

  /// Index into ring_ of the virtual node owning `key`.
  std::size_t ring_index(std::string_view key) const;

  std::size_t backend_count_;
  std::size_t virtual_nodes_;
  std::vector<VirtualNode> ring_;  // sorted by point
};

}  // namespace tecfan::cluster
