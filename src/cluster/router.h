// tecrouter — sharding + replication front-end over a tecfand fleet.
//
// Clients speak the service/request.h line protocol to the router exactly
// as they would to a single tecfand; the router speaks the same protocol
// to its backends. Per request line:
//
//   * control verbs (ping/stats/metrics/quit) are answered locally —
//     `stats` reports fleet topology and health, `metrics` dumps the
//     router's own per-stage histograms (route / backend_wait / e2e) in
//     the same wire format as a backend;
//   * compute verbs (equilibrium/run/sweep/table1) are routed by the
//     canonical cache key through the ShardMap ring, so each backend's
//     ResultCache sees a disjoint, stable slice of the key space and
//     fleet-wide effective cache capacity scales linearly;
//   * a down backend (HealthMonitor markdown, or a forward failure
//     observed on the traffic path) is skipped: the request fails over to
//     the next distinct backend along the ring, and the keys come back to
//     the owner automatically once it is marked up again;
//   * optionally, a request whose reply has not arrived after a
//     p99-derived delay is hedged: the same canonical line is sent to the
//     ring replica and the first answer wins. Cache hits return in
//     microseconds and never reach the hedge timer — hedging is
//     effectively a miss-path tail cutter.
//
// Responses are forwarded verbatim (bit-identical to direct serving);
// only router-generated errors (`no backend available`, parse errors) are
// produced locally.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_client.h"
#include "cluster/health_monitor.h"
#include "cluster/shard_map.h"
#include "service/request.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tecfan::cluster {

class EpollPlane;

/// Which forwarding engine serve() runs.
///
///   * kEpoll — one event-loop thread, nonblocking state-machine sessions,
///     requests pipelined over one persistent connection per backend,
///     per-socket write batching (see epoll_plane.h). The default.
///   * kThreads — one blocking thread per client session, one
///     BackendClient lease (pool round trip) per forward. Kept for one
///     release as the equivalence oracle: both planes must produce
///     byte-identical response streams.
enum class DataPlane { kEpoll, kThreads };

struct RouterOptions {
  /// Loopback TCP ports of the tecfand backends (one fleet member each).
  std::vector<std::uint16_t> backend_ports;
  /// Virtual nodes per backend on the consistent-hash ring.
  std::size_t virtual_nodes = ShardMap::kDefaultVirtualNodes;
  /// Idle connections pooled per backend.
  std::size_t pool_size = 8;
  /// Per-forward deadline when the client request carries none; 0 = none.
  /// (A forward that times out counts as a backend failure and fails
  /// over.)
  double backend_deadline_ms = 0.0;
  /// Hedged retry: <0 disables; 0 derives the delay from the router's
  /// observed e2e p99 (clamped to [hedge_floor_ms, hedge_ceil_ms]); >0 is
  /// a fixed delay in ms.
  double hedge_ms = -1.0;
  double hedge_floor_ms = 1.0;
  double hedge_ceil_ms = 200.0;
  /// Bound on every backend dial (epoll-plane pipe connects and
  /// BackendClient leases): a nonblocking connect() polled to this
  /// deadline, so a SYN-blackholed backend costs milliseconds, not the
  /// kernel's SYN-retry default.
  double dial_timeout_ms = 250.0;
  /// Epoll plane only: how long a deadline-less forward may sit at the
  /// head of a backend pipe's FIFO before the pipe is declared stalled
  /// (accept-then-blackhole), reported to health, torn down, and its
  /// whole FIFO failed over. Forwards that carry a deadline use it (plus
  /// stall_grace_ms) instead, so legitimately long computes are never cut
  /// short. 0 disables the watchdog.
  double pipe_stall_ms = 30000.0;
  /// Grace added to a request's own deadline before its pipe is declared
  /// stalled (the deadline timer answers the client; the watchdog only
  /// reclaims the FIFO and the connection).
  double stall_grace_ms = 250.0;
  /// Head-of-trace sampling for routed requests: 0 disables tracing,
  /// N >= 1 samples every Nth compute line. Sampled forwards carry a
  /// `trace=` field to the backend; the backend's reply spans are folded
  /// into the router's rings, so the `trace` verb on the router returns
  /// the full cross-tier tree. Requests that already arrive with a
  /// `trace=` field are always adopted.
  std::uint64_t trace_every = 0;
  DataPlane data_plane = DataPlane::kEpoll;
  HealthMonitor::Options health;
};

class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Parse and execute one request line; returns the response line. Sets
  /// *quit when the line was a `quit` request (per-connection, local).
  std::string handle_line(const std::string& line, bool* quit = nullptr);

  /// Bind a loopback listening socket; port 0 picks an ephemeral port.
  std::uint16_t bind_listen(std::uint16_t port);

  /// Serve accepted connections until stop(). Runs the data plane chosen
  /// in RouterOptions: the epoll event loop (default) or the legacy
  /// thread-per-connection model.
  void serve();

  /// Stop the accept loop, open connections, and the health monitor.
  void stop();

  std::uint16_t bound_port() const { return bound_port_.load(); }

  const ShardMap& shards() const { return shards_; }
  HealthMonitor& health() { return *health_; }
  const HealthMonitor& health() const { return *health_; }

  struct Stats {
    std::uint64_t requests = 0;    // request lines accepted (any kind)
    std::uint64_t routed = 0;      // compute forwards attempted
    std::uint64_t local = 0;       // control verbs answered locally
    std::uint64_t failovers = 0;   // forwards retried on another backend
    std::uint64_t hedges = 0;      // hedge requests actually sent
    std::uint64_t hedge_wins = 0;  // hedges whose reply arrived first
    std::uint64_t errors = 0;      // router-generated error responses
    std::uint64_t pipe_stalls = 0; // backend pipes torn down by watchdog
    /// Leak gauges (epoll plane; always 0 on the thread plane). Both
    /// must return to zero once traffic quiesces — the chaos tests pin
    /// that after every storm.
    std::uint64_t pending = 0;          // live PendingRequests
    std::uint64_t backend_inflight = 0; // FIFO entries across all pipes
    std::size_t backends = 0;
    std::size_t backends_up = 0;
  };
  Stats stats() const;

  /// Cluster per-stage telemetry (microseconds):
  ///   route        — parse + canonical key + ring/health backend choice
  ///   backend_wait — forward send to reply line complete (per attempt)
  ///   e2e_hit      — whole handle_line span, reply was `ok cached=1`
  ///   e2e_miss     — whole handle_line span, reply was computed `ok`
  /// plus the epoll-plane health instruments:
  ///   loop_iteration      — active portion of each event-loop iteration
  ///   loop_dispatch_batch — ready events per nonempty epoll_wait batch
  const MetricsRegistry& metrics() const { return metrics_; }

  /// One coherent dump: refresh the runtime health gauges (pending
  /// requests, backend-pipe inflight totals, WriteQueue high-water, open
  /// trace spans) and capture every instrument under a single registry
  /// lock hold. All dump paths — the `metrics` verb, `metrics prom`, and
  /// the periodic stderr logger — render from one of these.
  MetricsRegistry::Snapshot metrics_snapshot() const;

  /// Span recorder for this tier (tecrouter); the `trace` verb dumps its
  /// completed traces, backend spans included.
  const Tracer& tracer() const { return tracer_; }
  Tracer& tracer() { return tracer_; }

  /// The hedge delay a compute forward would use right now (us); 0 when
  /// hedging is disabled. Exposed for tests and the stats verb.
  double current_hedge_delay_us() const;

 private:
  friend class EpollPlane;  // the event-driven data plane shares routing
                            // state, counters, and histograms

  /// Count the line, parse it, and answer control verbs and parse errors
  /// locally. Returns the response line for those, nullopt for a compute
  /// request (with *parsed filled in for the caller to route).
  std::optional<std::string> handle_local(const std::string& line,
                                          service::ParsedRequest* parsed,
                                          bool* quit);
  /// Record the e2e hit/miss span (and, when sampled, the root e2e trace
  /// span) for a routed reply and periodically re-derive the auto hedge
  /// delay. Shared by both data planes.
  void finish_compute(const std::string& reply, const TraceContext& ctx,
                      std::chrono::steady_clock::time_point line_start);
  /// Fold the `spans="..."` field of a sampled backend reply into this
  /// router's rings, anchored at the attempt's send time. Winner only —
  /// both planes call this exactly once per completed sampled request.
  void ingest_backend_spans(const TraceContext& ctx,
                            const std::string& reply,
                            std::chrono::steady_clock::time_point sent_at);

  void serve_threads();
  void serve_epoll();

  std::string route_compute(service::Request& request,
                            std::chrono::steady_clock::time_point line_start,
                            bool* hedge_won);
  /// Forward `wire` to backend b, one attempt. nullopt on failure.
  std::optional<std::string> forward(std::size_t backend,
                                     const std::string& wire,
                                     const TraceContext& ctx,
                                     std::chrono::steady_clock::time_point
                                         deadline);
  /// Hedged forward: primary attempt on `b1`, hedge on `b2` after the
  /// hedge delay, first reply wins.
  std::optional<std::string> forward_hedged(
      std::size_t b1, std::size_t b2, const std::string& wire,
      const TraceContext& ctx,
      std::chrono::steady_clock::time_point deadline, bool* hedge_won);
  std::string stats_response_line() const;
  std::string trace_response_line(int limit) const;
  std::string prom_exposition() const;
  void refresh_hedge_delay();

  /// High-water tracking for the epoll plane's per-socket WriteQueues
  /// (bytes). Single writer (the loop thread); readers dump it.
  void note_writeq_bytes(std::size_t bytes) {
    std::uint64_t hw = writeq_highwater_.load(std::memory_order_relaxed);
    while (bytes > hw && !writeq_highwater_.compare_exchange_weak(
                             hw, bytes, std::memory_order_relaxed)) {
    }
  }

  RouterOptions options_;
  ShardMap shards_;
  std::vector<std::unique_ptr<BackendClient>> clients_;
  std::unique_ptr<HealthMonitor> health_;

  MetricsRegistry metrics_;
  LatencyHistogram* hist_route_;
  LatencyHistogram* hist_backend_wait_;
  LatencyHistogram* hist_e2e_hit_;
  LatencyHistogram* hist_e2e_miss_;
  LatencyHistogram* hist_loop_iteration_;
  LatencyHistogram* hist_loop_dispatch_batch_;

  // Request-outcome totals live in the registry so the `metrics` verb and
  // the Prometheus exposition see them; Counter::inc is the same relaxed
  // fetch_add the old bare atomics paid.
  Counter* counter_requests_;
  Counter* counter_routed_;
  Counter* counter_local_;
  Counter* counter_failovers_;
  Counter* counter_hedges_;
  Counter* counter_hedge_wins_;
  Counter* counter_errors_;
  Counter* counter_pipe_stalls_;
  // Runtime health gauges, refreshed at dump time (Gauge::set through a
  // stored pointer is const-safe) except the per-backend pipe inflight
  // gauges, which the single-threaded epoll plane keeps live.
  Gauge* gauge_pending_;
  Gauge* gauge_inflight_;
  Gauge* gauge_writeq_highwater_;
  Gauge* gauge_trace_open_spans_;
  std::vector<Gauge*> gauge_backend_inflight_;
  Tracer tracer_{TraceTier::kRouter};

  // Maintained by the epoll plane (single-threaded writer; atomic so
  // stats() can read from any thread).
  std::atomic<std::uint64_t> pending_gauge_{0};
  std::atomic<std::uint64_t> inflight_gauge_{0};
  std::atomic<std::uint64_t> writeq_highwater_{0};

  /// Cached p99-derived hedge delay (us), refreshed every
  /// kHedgeRefreshPeriod routed requests (a histogram snapshot is too
  /// expensive per request).
  static constexpr std::uint64_t kHedgeRefreshPeriod = 256;
  std::atomic<double> hedge_delay_us_{0.0};
  std::atomic<std::uint64_t> hedge_refresh_countdown_{0};

  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();

  // TCP accept state, same shape as service::Server.
  std::atomic<int> listen_fd_{-1};
  std::atomic<std::uint16_t> bound_port_{0};
  std::atomic<bool> stopping_{false};
  std::mutex serve_mu_;
  std::condition_variable serve_cv_;
  bool serve_running_ = false;
  EpollPlane* plane_ = nullptr;  // live while serve_epoll() runs; under
                                 // serve_mu_ so stop() can wake it
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace tecfan::cluster
