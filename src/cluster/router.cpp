#include "cluster/router.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "cluster/epoll_plane.h"
#include "service/framing.h"
#include "util/error.h"

// Build identification for the `stats` verb (git describe at configure
// time; see src/cluster/CMakeLists.txt). Matches the tecfand field so
// operators can check a whole deployment runs one build.
#ifndef TECFAN_BUILD_INFO
#define TECFAN_BUILD_INFO "unknown"
#endif

namespace tecfan::cluster {
namespace {

using Clock = std::chrono::steady_clock;
using service::Request;
using service::RequestKind;
using service::Response;

Clock::time_point deadline_from_ms(Clock::time_point start, double ms) {
  if (ms <= 0) return Clock::time_point::max();
  return start + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(ms));
}

/// Locale-independent %g formatting for the re-attached deadline_ms
/// parameter (the backend parses it with from_chars).
std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", ms);
  return buf;
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      shards_(options_.backend_ports.size(), options_.virtual_nodes),
      hist_route_(&metrics_.histogram("route")),
      hist_backend_wait_(&metrics_.histogram("backend_wait")),
      hist_e2e_hit_(&metrics_.histogram("e2e_hit")),
      hist_e2e_miss_(&metrics_.histogram("e2e_miss")),
      hist_loop_iteration_(&metrics_.histogram("loop_iteration")),
      hist_loop_dispatch_batch_(&metrics_.histogram("loop_dispatch_batch")),
      counter_requests_(&metrics_.counter("requests")),
      counter_routed_(&metrics_.counter("routed")),
      counter_local_(&metrics_.counter("local")),
      counter_failovers_(&metrics_.counter("failovers")),
      counter_hedges_(&metrics_.counter("hedges")),
      counter_hedge_wins_(&metrics_.counter("hedge_wins")),
      counter_errors_(&metrics_.counter("errors")),
      counter_pipe_stalls_(&metrics_.counter("pipe_stalls")),
      gauge_pending_(&metrics_.gauge("pending_requests")),
      gauge_inflight_(&metrics_.gauge("backend_inflight")),
      gauge_writeq_highwater_(&metrics_.gauge("writeq_highwater_bytes")),
      gauge_trace_open_spans_(&metrics_.gauge("trace_open_spans")) {
  TECFAN_REQUIRE(!options_.backend_ports.empty(),
                 "Router needs at least one backend port");
  tracer_.set_sample_every(options_.trace_every);
  clients_.reserve(options_.backend_ports.size());
  gauge_backend_inflight_.reserve(options_.backend_ports.size());
  std::vector<BackendClient*> raw;
  for (const std::uint16_t port : options_.backend_ports) {
    clients_.push_back(std::make_unique<BackendClient>(
        port, options_.pool_size, options_.dial_timeout_ms));
    raw.push_back(clients_.back().get());
    gauge_backend_inflight_.push_back(&metrics_.gauge(
        "backend" + std::to_string(gauge_backend_inflight_.size()) +
        "_pipe_inflight"));
  }
  health_ = std::make_unique<HealthMonitor>(std::move(raw), options_.health);
  if (options_.hedge_ms > 0)
    hedge_delay_us_.store(options_.hedge_ms * 1e3,
                          std::memory_order_relaxed);
  else if (options_.hedge_ms == 0)
    hedge_delay_us_.store(options_.hedge_ceil_ms * 1e3,
                          std::memory_order_relaxed);
  health_->start();
}

Router::~Router() { stop(); }

double Router::current_hedge_delay_us() const {
  if (options_.hedge_ms < 0) return 0.0;
  return hedge_delay_us_.load(std::memory_order_relaxed);
}

void Router::refresh_hedge_delay() {
  // Auto mode only: derive the delay from the observed miss-path e2e p99
  // so hedges fire for tail stragglers, not for the median compute.
  const LatencyHistogram::Snapshot snap = hist_e2e_miss_->snapshot();
  if (snap.count < 32) return;  // keep the conservative ceiling
  const double p99_us = snap.percentile(99.0);
  const double clamped = std::clamp(p99_us, options_.hedge_floor_ms * 1e3,
                                    options_.hedge_ceil_ms * 1e3);
  hedge_delay_us_.store(clamped, std::memory_order_relaxed);
}

std::optional<std::string> Router::forward(std::size_t backend,
                                           const std::string& wire,
                                           const TraceContext& ctx,
                                           Clock::time_point deadline) {
  const auto sent_at = Clock::now();
  ScopedLatencyTimer wait_span(hist_backend_wait_, sent_at);
  auto reply = clients_[backend]->round_trip(wire, deadline);
  if (reply) {
    health_->report_success(backend);
    if (ctx.sampled) {
      tracer_.record(ctx, SpanName::kBackendWait, sent_at, Clock::now());
      ingest_backend_spans(ctx, *reply, sent_at);
    }
  } else {
    wait_span.stop();
    health_->report_failure(backend);
  }
  return reply;
}

std::optional<std::string> Router::forward_hedged(std::size_t b1,
                                                  std::size_t b2,
                                                  const std::string& wire,
                                                  const TraceContext& ctx,
                                                  Clock::time_point deadline,
                                                  bool* hedge_won) {
  const auto start = Clock::now();
  BackendClient::Lease primary = clients_[b1]->lease();
  if (!primary.valid() || !primary.send_line(wire)) {
    health_->report_failure(b1);
    counter_failovers_->inc();
    return forward(b2, wire, ctx, deadline);
  }

  const double delay_us = current_hedge_delay_us();
  const auto hedge_at = std::min(
      deadline, start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::micro>(
                                delay_us)));
  if (primary.reply_ready(hedge_at)) {
    // Fast path: the primary answered before the hedge timer (cache hits
    // and healthy misses land here).
    auto reply = primary.read_line(deadline);
    const auto reply_at = Clock::now();
    hist_backend_wait_->record(reply_at - start);
    if (reply) {
      primary.release();
      health_->report_success(b1);
      if (ctx.sampled) {
        tracer_.record(ctx, SpanName::kBackendWait, start, reply_at);
        ingest_backend_spans(ctx, *reply, start);
      }
      return reply;
    }
    health_->report_failure(b1);
    counter_failovers_->inc();
    return forward(b2, wire, ctx, deadline);
  }

  // Hedge: same canonical line to the ring replica; first answer wins.
  // The loser's connection is abandoned (its late reply would desync the
  // pool), and the loser still fills its own cache shard — wasted compute
  // is the price of the tail cut.
  counter_hedges_->inc();
  BackendClient::Lease hedge = clients_[b2]->lease();
  bool hedge_alive = hedge.valid() && hedge.send_line(wire);
  if (!hedge_alive) health_->report_failure(b2);
  bool primary_alive = true;

  while (primary_alive || hedge_alive) {
    const auto now = Clock::now();
    if (now >= deadline) break;
    // Buffered-line / instant-readability checks first, then one blocking
    // poll across both sockets.
    const bool p_ready = primary_alive && primary.reply_ready(now);
    const bool h_ready = !p_ready && hedge_alive && hedge.reply_ready(now);
    if (p_ready || h_ready) {
      BackendClient::Lease& winner = p_ready ? primary : hedge;
      const std::size_t winner_backend = p_ready ? b1 : b2;
      auto reply = winner.read_line(deadline);
      if (reply) {
        const auto reply_at = Clock::now();
        hist_backend_wait_->record(reply_at - start);
        winner.release();
        health_->report_success(winner_backend);
        if (!p_ready) {
          counter_hedge_wins_->inc();
          if (hedge_won) *hedge_won = true;
        }
        if (ctx.sampled) {
          // Winner's spans only: the loser's reply is abandoned with its
          // connection and never reaches the rings.
          tracer_.record(ctx, SpanName::kBackendWait, start, reply_at);
          ingest_backend_spans(ctx, *reply, start);
        }
        return reply;
      }
      health_->report_failure(winner_backend);
      if (p_ready)
        primary_alive = false;
      else
        hedge_alive = false;
      continue;
    }
    pollfd pfds[2];
    nfds_t n = 0;
    if (primary_alive) pfds[n++] = {primary.fd(), POLLIN, 0};
    if (hedge_alive) pfds[n++] = {hedge.fd(), POLLIN, 0};
    if (n == 0) break;
    int timeout_ms = -1;
    if (deadline != Clock::time_point::max()) {
      const auto remaining = deadline - Clock::now();
      timeout_ms =
          remaining <= Clock::duration::zero()
              ? 0
              : static_cast<int>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        remaining)
                        .count()) +
                    1;
    }
    const int rc = ::poll(pfds, n, timeout_ms);
    if (rc == 0) break;                       // deadline
    if (rc < 0 && errno != EINTR) break;
  }
  // Neither side produced a reply before the deadline (or both died).
  if (primary_alive) health_->report_failure(b1);
  return std::nullopt;
}

std::string Router::route_compute(Request& request,
                                  Clock::time_point line_start,
                                  bool* hedge_won) {
  counter_routed_->inc();

  // Head-of-trace decision (or adoption of an upstream context). Sampled
  // requests carry the context to the backend on the wire; unsampled ones
  // pay one branch per stage and put nothing on the wire, so old peers
  // and byte-equivalence tests never see a difference.
  request.trace = request.trace.sampled ? tracer_.adopt(request.trace)
                                        : tracer_.start_trace();

  const std::string key = service::canonical_key(request);
  std::string wire = key;
  if (request.deadline_ms > 0)
    wire += " deadline_ms=" + format_ms(request.deadline_ms);
  if (request.trace.sampled) wire += " trace=" + request.trace.wire();

  const auto now = Clock::now();
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : options_.backend_deadline_ms;
  const auto deadline = deadline_from_ms(now, deadline_ms);

  // Failover order: the owner, then the distinct ring successors. Down
  // backends are filtered out up front; when the whole fleet looks down
  // the full chain is attempted anyway (the monitor may be stale, and a
  // traffic-path success marks the backend up again).
  const std::vector<std::size_t> chain = shards_.replica_chain(key);
  std::vector<std::size_t> candidates;
  candidates.reserve(chain.size());
  for (const std::size_t b : chain)
    if (health_->up(b)) candidates.push_back(b);
  if (candidates.empty()) candidates = chain;
  const auto route_end = Clock::now();
  hist_route_->record(route_end - line_start);
  if (request.trace.sampled)
    tracer_.record(request.trace, SpanName::kRoute, line_start, route_end);

  const bool hedging =
      options_.hedge_ms >= 0 && current_hedge_delay_us() > 0;
  std::size_t i = 0;
  while (i < candidates.size()) {
    std::optional<std::string> reply;
    if (hedging && i + 1 < candidates.size()) {
      reply = forward_hedged(candidates[i], candidates[i + 1], wire,
                             request.trace, deadline, hedge_won);
      i += 2;  // a hedged attempt consumes both fleet members
    } else {
      reply = forward(candidates[i], wire, request.trace, deadline);
      i += 1;
    }
    if (reply) return *reply;
    counter_failovers_->inc();
  }
  counter_errors_->inc();
  return serialize_response(
      Response::make_error("no backend available"));
}

std::string Router::stats_response_line() const {
  Response r;
  r.add("name", std::string("tecrouter"));
  r.add("pid", static_cast<std::uint64_t>(::getpid()));
  // Same build/uptime fields as tecfand's stats verb, so one fleet-wide
  // `stats` sweep answers "which build, up how long" for every process.
  r.add("build", std::string(TECFAN_BUILD_INFO));
  r.add("uptime_s",
        std::chrono::duration<double>(Clock::now() - started_at_).count());
  const Stats s = stats();
  r.add("backends", static_cast<std::uint64_t>(s.backends));
  r.add("backends_up", static_cast<std::uint64_t>(s.backends_up));
  r.add("virtual_nodes",
        static_cast<std::uint64_t>(shards_.virtual_nodes()));
  r.add("requests", s.requests);
  r.add("routed", s.routed);
  r.add("local", s.local);
  r.add("failovers", s.failovers);
  r.add("hedges", s.hedges);
  r.add("hedge_wins", s.hedge_wins);
  r.add("errors", s.errors);
  r.add("pipe_stalls", s.pipe_stalls);
  r.add("pending", s.pending);
  r.add("backend_inflight", s.backend_inflight);
  r.add("traces_sampled", tracer_.sampled_traces());
  r.add("traces_adopted", tracer_.adopted_traces());
  r.add("hedge_delay_us", current_hedge_delay_us());
  for (std::size_t b = 0; b < clients_.size(); ++b) {
    const std::string prefix = "backend" + std::to_string(b) + "_";
    const HealthMonitor::BackendHealth h = health_->health(b);
    r.add(prefix + "port",
          static_cast<std::uint64_t>(clients_[b]->port()));
    r.add(prefix + "up", std::string(h.up ? "1" : "0"));
    r.add(prefix + "probes", h.probes);
    r.add(prefix + "probe_failures", h.probe_failures);
    r.add(prefix + "markdowns", h.markdowns);
    r.add(prefix + "stale_probes", h.stale_probes);
    r.add(prefix + "rtt_us", h.last_rtt_us);
  }
  return serialize_response(r);
}

std::optional<std::string> Router::handle_local(const std::string& line,
                                                service::ParsedRequest* parsed,
                                                bool* quit) {
  if (quit) *quit = false;
  counter_requests_->inc();

  *parsed = service::parse_request(line);
  if (!parsed->ok) {
    counter_errors_->inc();
    return serialize_response(Response::make_error(parsed->error));
  }
  const Request& request = parsed->request;
  if (request.is_compute()) return std::nullopt;

  counter_local_->inc();
  switch (request.kind) {
    case RequestKind::kPing: {
      Response r;
      r.add("pong", std::string("1"));
      return serialize_response(r);
    }
    case RequestKind::kQuit: {
      if (quit) *quit = true;
      Response r;
      r.add("bye", std::string("1"));
      return serialize_response(r);
    }
    case RequestKind::kStats:
      return stats_response_line();
    case RequestKind::kTrace:
      return trace_response_line(parsed->request.trace_limit);
    case RequestKind::kMetrics:
      // `metrics prom` is the protocol's one multi-line response (raw
      // Prometheus exposition ending in "# EOF"); both it and the plain
      // verb are answered locally and never cross a backend pipe.
      if (request.format == "prom") return prom_exposition();
      return serialize_response(
          service::metrics_to_response(metrics_snapshot()));
    default:
      break;
  }
  counter_errors_->inc();
  return serialize_response(Response::make_error("unhandled verb"));
}

void Router::finish_compute(const std::string& reply, const TraceContext& ctx,
                            Clock::time_point line_start) {
  const auto now = Clock::now();
  // This tier's root span closes with the reply regardless of outcome —
  // error traces (failover exhaustion, deadline) complete too.
  if (ctx.sampled) tracer_.record_root(ctx, line_start, now);
  // Hit/miss-split end-to-end span, mirroring the backend Server: replies
  // are forwarded verbatim, so `ok cached=1` identifies a shard-cache hit.
  if (reply.rfind("ok cached=1", 0) == 0) {
    hist_e2e_hit_->record(now - line_start);
  } else if (reply.rfind("ok", 0) == 0) {
    hist_e2e_miss_->record(now - line_start);
    // Periodically re-derive the auto hedge delay from the miss tail.
    if (options_.hedge_ms == 0 &&
        hedge_refresh_countdown_.fetch_add(1, std::memory_order_relaxed) %
                kHedgeRefreshPeriod ==
            kHedgeRefreshPeriod - 1) {
      refresh_hedge_delay();
    }
  }
}

void Router::ingest_backend_spans(const TraceContext& ctx,
                                  const std::string& reply,
                                  Clock::time_point sent_at) {
  // The encoding has no protocol-special characters, so the serializer
  // emits it bare; accept the quoted form too in case that ever changes.
  const std::size_t pos = reply.find(" spans=");
  if (pos == std::string::npos) return;
  std::size_t begin = pos + 7;
  std::size_t end;
  if (begin < reply.size() && reply[begin] == '"') {
    ++begin;
    end = reply.find('"', begin);
    if (end == std::string::npos) return;
  } else {
    end = reply.find(' ', begin);
    if (end == std::string::npos) end = reply.size();
  }
  const std::vector<ReplySpan> spans = decode_reply_spans(
      std::string_view(reply).substr(begin, end - begin));
  if (spans.empty()) return;

  // Anchor the backend's relative starts at our send time: the backend's
  // own clock never crosses the wire, so its line_start maps onto the
  // attempt's sent_at (off by at most the one-way network delay — within
  // the slop the duration-consistency checks allow).
  const std::uint64_t base_us = tracer_.to_us(sent_at);
  // The backend's e2e root (when present) parents its siblings and hangs
  // off this router's root span; span ids only need per-trace uniqueness,
  // so the router's id sequence serves for ingested spans too.
  std::uint64_t backend_root = 0;
  for (const ReplySpan& s : spans)
    if (s.name == SpanName::kE2e) {
      backend_root = tracer_.next_span_id();
      break;
    }
  for (const ReplySpan& s : spans) {
    const bool is_root = s.name == SpanName::kE2e;
    const std::uint64_t span_id =
        is_root ? backend_root : tracer_.next_span_id();
    const std::uint64_t parent =
        is_root || backend_root == 0 ? ctx.span_id : backend_root;
    tracer_.record_span(ctx.trace_id, span_id, parent, s.name,
                        TraceTier::kServer, s.thread,
                        base_us + s.start_rel_us, s.duration_us);
  }
}

std::string Router::handle_line(const std::string& line, bool* quit) {
  const auto line_start = Clock::now();
  service::ParsedRequest parsed;
  if (auto local = handle_local(line, &parsed, quit)) return *local;

  bool hedge_won = false;
  std::string reply = route_compute(parsed.request, line_start, &hedge_won);
  finish_compute(reply, parsed.request.trace, line_start);
  return reply;
}

Router::Stats Router::stats() const {
  Stats s;
  s.requests = counter_requests_->value();
  s.routed = counter_routed_->value();
  s.local = counter_local_->value();
  s.failovers = counter_failovers_->value();
  s.hedges = counter_hedges_->value();
  s.hedge_wins = counter_hedge_wins_->value();
  s.errors = counter_errors_->value();
  s.pipe_stalls = counter_pipe_stalls_->value();
  s.pending = pending_gauge_.load(std::memory_order_relaxed);
  s.backend_inflight = inflight_gauge_.load(std::memory_order_relaxed);
  s.backends = clients_.size();
  s.backends_up = health_->up_count();
  return s;
}

MetricsRegistry::Snapshot Router::metrics_snapshot() const {
  gauge_pending_->set(
      static_cast<double>(pending_gauge_.load(std::memory_order_relaxed)));
  gauge_inflight_->set(
      static_cast<double>(inflight_gauge_.load(std::memory_order_relaxed)));
  gauge_writeq_highwater_->set(static_cast<double>(
      writeq_highwater_.load(std::memory_order_relaxed)));
  gauge_trace_open_spans_->set(static_cast<double>(tracer_.open_spans()));
  return metrics_.snapshot();
}

std::string Router::trace_response_line(int limit) const {
  const std::vector<CompletedTrace> traces =
      tracer_.completed_traces(static_cast<std::size_t>(limit));
  Response r;
  r.add("traces", static_cast<std::uint64_t>(traces.size()));
  // One JSON object per trace in numbered fields, same shape as tecfand's
  // trace verb; for routed sampled requests each object already contains
  // the ingested backend spans, so this single response carries the whole
  // cross-tier tree.
  for (std::size_t i = 0; i < traces.size(); ++i)
    r.add("t" + std::to_string(i), trace_to_json(traces[i]));
  return serialize_response(r);
}

std::string Router::prom_exposition() const {
  std::string body = render_prometheus(metrics_snapshot());
  if (!body.empty() && body.back() == '\n') body.pop_back();
  return body;
}

std::uint16_t Router::bind_listen(std::uint16_t port) {
  TECFAN_REQUIRE(listen_fd_.load() < 0, "already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TECFAN_REQUIRE(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw precondition_error(std::string("bind() failed: ") +
                             std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw precondition_error(std::string("listen() failed: ") +
                             std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_.store(fd);
  bound_port_.store(ntohs(addr.sin_port));
  return bound_port_.load();
}

void Router::serve() {
  if (options_.data_plane == DataPlane::kEpoll)
    serve_epoll();
  else
    serve_threads();
}

void Router::serve_epoll() {
  const int listen_fd = listen_fd_.load();
  if (listen_fd < 0) {
    // stop() may win the race against a serve() thread that was just
    // launched; that is a clean no-op, not a programming error.
    TECFAN_REQUIRE(stopping_.load(), "call bind_listen() before serve()");
    return;
  }
  EpollPlane plane(*this, listen_fd);
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    if (stopping_.load()) return;  // stop() already reclaimed the socket
    serve_running_ = true;
    plane_ = &plane;
  }
  plane.run();
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    serve_running_ = false;
    plane_ = nullptr;
  }
  serve_cv_.notify_all();
}

void Router::serve_threads() {
  const int listen_fd = listen_fd_.load();
  if (listen_fd < 0) {
    // stop() may win the race against a serve() thread that was just
    // launched; that is a clean no-op, not a programming error.
    TECFAN_REQUIRE(stopping_.load(), "call bind_listen() before serve()");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    if (stopping_.load()) return;  // stop() already reclaimed the socket
    serve_running_ = true;
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listening socket gone
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    service::set_tcp_nodelay(fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] {
      service::LineReader reader(fd);
      bool quit = false;
      while (!quit && !stopping_.load()) {
        auto line = reader.read_line();
        if (!line) {
          if (reader.overflowed()) {
            counter_errors_->inc();
            std::string reply = serialize_response(
                Response::make_error("request line too long"));
            reply += '\n';
            service::send_all(fd, reply);
            // Drain before the close: unread flood bytes would raise
            // RST and discard the error reply client-side.
            service::shutdown_drain(fd, std::chrono::milliseconds(250));
          }
          break;
        }
        if (line->empty()) continue;
        std::string reply = handle_line(*line, &quit);
        reply += '\n';
        if (!service::send_all(fd, reply)) break;
      }
      // Deregister before closing so stop() never shuts down a recycled
      // descriptor number.
      {
        std::lock_guard<std::mutex> lock2(conns_mu_);
        conn_fds_.erase(
            std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
            conn_fds_.end());
      }
      ::close(fd);
    });
  }
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    serve_running_ = false;
  }
  serve_cv_.notify_all();
}

void Router::stop() {
  int listen_fd;
  {
    // Same handshake as service::Server::stop(): stopping_ flips under
    // serve_mu_ so a racing serve() either sees it and returns or
    // registers serve_running_ first and is woken by the shutdown().
    std::lock_guard<std::mutex> lock(serve_mu_);
    stopping_.store(true);
    listen_fd = listen_fd_.exchange(-1);
    if (plane_) plane_->request_stop();  // epoll plane: wake its loop
  }
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    {
      std::unique_lock<std::mutex> lock(serve_mu_);
      serve_cv_.wait(lock, [this] { return !serve_running_; });
    }
    ::close(listen_fd);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_fds_.clear();
    threads.swap(conn_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  if (health_) health_->stop();
}

}  // namespace tecfan::cluster
