#include "cluster/shard_map.h"

#include <algorithm>
#include <string>

#include "util/error.h"

namespace tecfan::cluster {

std::uint64_t stable_hash(std::string_view s) {
  // FNV-1a 64-bit.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ShardMap::ShardMap(std::size_t backend_count, std::size_t virtual_nodes)
    : backend_count_(backend_count), virtual_nodes_(virtual_nodes) {
  TECFAN_REQUIRE(backend_count >= 1, "ShardMap needs at least one backend");
  TECFAN_REQUIRE(virtual_nodes >= 1,
                 "ShardMap needs at least one virtual node per backend");
  ring_.reserve(backend_count * virtual_nodes);
  for (std::size_t b = 0; b < backend_count; ++b) {
    for (std::size_t v = 0; v < virtual_nodes; ++v) {
      // The label (not the index) is hashed so a backend's points are
      // independent of fleet size: backend 2's points are the same in a
      // 3-backend and a 5-backend ring, which is what bounds key movement
      // when the fleet grows.
      const std::string label =
          "backend-" + std::to_string(b) + "#" + std::to_string(v);
      ring_.push_back({stable_hash(label), static_cast<std::uint32_t>(b)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const VirtualNode& a, const VirtualNode& b) {
              if (a.point != b.point) return a.point < b.point;
              return a.backend < b.backend;  // deterministic tie-break
            });
}

std::size_t ShardMap::ring_index(std::string_view key) const {
  const std::uint64_t h = stable_hash(key);
  // First point at or after h, wrapping to the ring start.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const VirtualNode& node, std::uint64_t value) {
        return node.point < value;
      });
  if (it == ring_.end()) it = ring_.begin();
  return static_cast<std::size_t>(it - ring_.begin());
}

std::size_t ShardMap::owner(std::string_view key) const {
  return ring_[ring_index(key)].backend;
}

std::vector<std::size_t> ShardMap::replica_chain(
    std::string_view key, std::size_t max_backends) const {
  if (max_backends == 0 || max_backends > backend_count_)
    max_backends = backend_count_;
  std::vector<std::size_t> chain;
  chain.reserve(max_backends);
  std::vector<bool> seen(backend_count_, false);
  std::size_t i = ring_index(key);
  for (std::size_t step = 0;
       step < ring_.size() && chain.size() < max_backends; ++step) {
    const std::size_t b = ring_[(i + step) % ring_.size()].backend;
    if (seen[b]) continue;
    seen[b] = true;
    chain.push_back(b);
  }
  return chain;
}

}  // namespace tecfan::cluster
