// Single-threaded epoll event loop for the router's event-driven data
// plane (src/cluster/epoll_plane.*).
//
// The loop multiplexes nonblocking sockets (level-triggered epoll),
// monotonic-clock timers (hedge delays, forward deadlines, dial
// timeouts), and a cross-thread stop signal (eventfd). One iteration:
//
//   1. fire every timer whose due time has passed,
//   2. epoll_wait with a timeout bounded by the earliest pending timer,
//   3. dispatch fd handlers for the ready events,
//   4. run the post-iteration hook (the data plane uses it to flush all
//      per-socket write queues with one gathered write each — the only
//      write-batching boundary, since every socket is TCP_NODELAY).
//
// Everything except stop() must be called from the loop thread. Handlers
// may add/remove fds and timers freely, including their own: fd
// registrations carry a generation counter, so an event for an fd number
// that was removed (and possibly recycled by a new connection) within the
// same batch is dropped instead of misdelivered.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "util/metrics.h"

namespace tecfan::cluster {

class EventLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using FdHandler = std::function<void(std::uint32_t epoll_events)>;
  using TimerHandler = std::function<void()>;
  using Hook = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for `events` (EPOLLIN/EPOLLOUT/...). The loop never
  /// owns the fd; remove_fd() before closing it.
  void add_fd(int fd, std::uint32_t events, FdHandler handler);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  /// One-shot timer; returns a nonzero id. The handler runs on the loop
  /// thread once `when` has passed and the id is spent.
  std::uint64_t add_timer(Clock::time_point when, TimerHandler handler);
  /// Cancel a pending timer; 0 and already-fired ids are ignored.
  void cancel_timer(std::uint64_t id);

  /// Runs after each iteration's timers + events (write-flush hook).
  void set_post_hook(Hook hook) { post_hook_ = std::move(hook); }

  /// Optional loop-health instrumentation: `iteration` records the active
  /// portion of each iteration (epoll_wait return through the post hook,
  /// us) and `dispatch_batch` the number of ready events per nonempty
  /// epoll_wait batch. Null sinks (the default) cost nothing; the clock is
  /// only read when a sink is set. Call before run().
  void set_stats(LatencyHistogram* iteration,
                 LatencyHistogram* dispatch_batch) {
    stats_iteration_ = iteration;
    stats_dispatch_batch_ = dispatch_batch;
  }

  /// Process events until stop(). Must run on one thread.
  void run();

  /// Thread-safe: wake the loop and make run() return after the current
  /// iteration.
  void stop();

 private:
  struct FdEntry {
    std::uint64_t generation;
    std::uint32_t events;
    FdHandler handler;
  };
  struct TimerEntry {
    Clock::time_point when;
    TimerHandler handler;
  };

  void fire_due_timers();
  int next_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd written by stop()
  std::atomic<bool> stop_requested_{false};
  std::uint64_t next_generation_ = 1;
  std::unordered_map<int, FdEntry> fds_;

  std::uint64_t next_timer_id_ = 1;
  // Due-time order plus id lookup for O(log n) cancel.
  std::multimap<Clock::time_point, std::uint64_t> timer_order_;
  std::unordered_map<std::uint64_t, TimerEntry> timers_;

  Hook post_hook_;
  LatencyHistogram* stats_iteration_ = nullptr;
  LatencyHistogram* stats_dispatch_batch_ = nullptr;
};

}  // namespace tecfan::cluster
