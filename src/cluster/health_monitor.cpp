#include "cluster/health_monitor.h"

#include <algorithm>

#include "util/error.h"

namespace tecfan::cluster {
namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds_to_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

HealthMonitor::HealthMonitor(std::vector<BackendClient*> backends,
                             Options options)
    : backends_(std::move(backends)),
      options_(options),
      jitter_state_(options.jitter_seed | 1) {
  TECFAN_REQUIRE(!backends_.empty(), "HealthMonitor needs backends");
  TECFAN_REQUIRE(options_.down_after >= 1, "down_after must be >= 1");
  state_.reserve(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i)
    state_.push_back(std::make_unique<BackendState>());
}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  const auto now = Clock::now();
  for (auto& st : state_) st->next_probe = now;
  thread_ = std::thread([this] { run(); });
}

void HealthMonitor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::size_t HealthMonitor::up_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < state_.size(); ++i)
    if (up(i)) ++n;
  return n;
}

void HealthMonitor::report_failure(std::size_t backend) {
  BackendState& st = *state_[backend];
  std::lock_guard<std::mutex> lock(st.obs_mu);
  ++st.epoch;  // invalidate any probe in flight
  apply_observation(st, false);
}

void HealthMonitor::report_success(std::size_t backend) {
  BackendState& st = *state_[backend];
  std::lock_guard<std::mutex> lock(st.obs_mu);
  ++st.epoch;
  apply_observation(st, true);
}

std::uint64_t HealthMonitor::begin_probe(std::size_t backend) const {
  BackendState& st = *state_[backend];
  std::lock_guard<std::mutex> lock(st.obs_mu);
  return st.epoch;
}

void HealthMonitor::finish_probe(std::size_t backend, bool ok,
                                 std::uint64_t token) {
  BackendState& st = *state_[backend];
  std::lock_guard<std::mutex> lock(st.obs_mu);
  if (st.epoch != token) {
    // A traffic report landed while the probe was in flight; its fresher
    // observation wins, whatever this probe saw.
    st.stale_probes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  apply_observation(st, ok);
}

void HealthMonitor::probe_now() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!thread_.joinable()) {
    // Not started: probe synchronously on the caller's thread.
    lock.unlock();
    const auto now = Clock::now();
    for (auto& st : state_) st->next_probe = now;
    probe_round(now);
    return;
  }
  const std::uint64_t stamp = ++probe_requested_;
  cv_.notify_all();
  cv_.wait(lock, [this, stamp] {
    return probe_completed_ >= stamp || stop_requested_;
  });
}

HealthMonitor::BackendHealth HealthMonitor::health(std::size_t backend) const {
  const BackendState& st = *state_[backend];
  BackendHealth h;
  h.up = st.up.load(std::memory_order_acquire);
  h.probes = st.probes.load(std::memory_order_relaxed);
  h.probe_failures = st.probe_failures.load(std::memory_order_relaxed);
  h.markdowns = st.markdowns.load(std::memory_order_relaxed);
  h.stale_probes = st.stale_probes.load(std::memory_order_relaxed);
  h.last_rtt_us = st.last_rtt_us.load(std::memory_order_relaxed);
  return h;
}

void HealthMonitor::run() {
  for (;;) {
    std::uint64_t serving;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto tick = seconds_to_duration(
          std::min(options_.interval_s, options_.backoff_base_s) * 0.5);
      cv_.wait_for(lock, tick, [this] {
        return stop_requested_ || probe_requested_ > probe_completed_;
      });
      if (stop_requested_) return;
      serving = probe_requested_;
    }
    const auto now = Clock::now();
    const bool forced = [this, serving] {
      std::lock_guard<std::mutex> lock(mu_);
      return serving > probe_completed_;
    }();
    if (forced)
      for (auto& st : state_) st->next_probe = now;
    probe_round(now);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (serving > probe_completed_) probe_completed_ = serving;
    }
    cv_.notify_all();
  }
}

void HealthMonitor::probe_round(Clock::time_point now) {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    BackendState& st = *state_[i];
    if (now < st.next_probe) continue;
    const bool ok = ping(i);
    // Reschedule: healthy backends on the fixed period; down backends on
    // an exponential backoff with jitter so a whole restarted fleet does
    // not hammer a struggling backend in lockstep.
    double delay_s;
    if (ok) {
      st.backoff_exponent = 0;
      delay_s = options_.interval_s;
    } else {
      delay_s = std::min(
          options_.backoff_base_s * static_cast<double>(1 << st.backoff_exponent),
          options_.backoff_max_s);
      if (st.backoff_exponent < 16) ++st.backoff_exponent;
    }
    delay_s *= 1.0 + jitter_fraction();
    st.next_probe = now + seconds_to_duration(delay_s);
  }
}

bool HealthMonitor::ping(std::size_t backend) {
  BackendState& st = *state_[backend];
  st.probes.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t token = begin_probe(backend);
  const auto start = Clock::now();
  const auto deadline =
      start + seconds_to_duration(options_.ping_timeout_ms * 1e-3);
  const auto reply = backends_[backend]->round_trip("ping", deadline);
  const bool ok = reply.has_value() && reply->rfind("ok", 0) == 0;
  if (ok) {
    st.last_rtt_us.store(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count(),
        std::memory_order_relaxed);
  } else {
    st.probe_failures.fetch_add(1, std::memory_order_relaxed);
  }
  finish_probe(backend, ok, token);
  return ok;
}

void HealthMonitor::apply_observation(BackendState& st, bool ok) {
  if (ok) {
    // Mark-up is immediate: one good round trip proves the backend serves.
    st.consecutive_failures = 0;
    st.up.store(true, std::memory_order_release);
    return;
  }
  if (++st.consecutive_failures >= options_.down_after) {
    if (st.up.exchange(false, std::memory_order_acq_rel))
      st.markdowns.fetch_add(1, std::memory_order_relaxed);
  }
}

double HealthMonitor::jitter_fraction() {
  // xorshift64* — cheap, deterministic per seed; monitor thread only.
  std::uint64_t x = jitter_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  jitter_state_ = x;
  const std::uint64_t scaled = (x * 2685821657736338717ull) >> 40;
  return 0.25 * static_cast<double>(scaled) / 16777216.0;
}

}  // namespace tecfan::cluster
