#include "cluster/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace tecfan::cluster {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("eventfd failed");
  }
  add_fd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drain = 0;
    // Drain so a level-triggered wake doesn't spin; value is irrelevant.
    [[maybe_unused]] const ssize_t n =
        ::read(wake_fd_, &drain, sizeof(drain));
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    throw std::runtime_error("epoll_ctl(ADD) failed");
  fds_[fd] = FdEntry{next_generation_++, events, std::move(handler)};
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if (it->second.events == events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
    it->second.events = events;
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::uint64_t EventLoop::add_timer(Clock::time_point when,
                                   TimerHandler handler) {
  const std::uint64_t id = next_timer_id_++;
  timers_.emplace(id, TimerEntry{when, std::move(handler)});
  timer_order_.emplace(when, id);
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return;
  const auto range = timer_order_.equal_range(it->second.when);
  for (auto oit = range.first; oit != range.second; ++oit) {
    if (oit->second == id) {
      timer_order_.erase(oit);
      break;
    }
  }
  timers_.erase(it);
}

void EventLoop::fire_due_timers() {
  const auto now = Clock::now();
  while (!timer_order_.empty() && timer_order_.begin()->first <= now) {
    const std::uint64_t id = timer_order_.begin()->second;
    timer_order_.erase(timer_order_.begin());
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;
    TimerHandler handler = std::move(it->second.handler);
    timers_.erase(it);
    handler();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timer_order_.empty()) return -1;
  const auto remaining = timer_order_.begin()->first - Clock::now();
  if (remaining <= Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
          .count();
  return static_cast<int>(ms) + 1;  // round up, don't spin sub-ms
}

void EventLoop::run() {
  stop_requested_.store(false, std::memory_order_relaxed);
  std::vector<epoll_event> events(64);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    fire_due_timers();
    // Timer callbacks produce output too (deadline errors, stall-driven
    // failovers): flush it BEFORE blocking. epoll_wait's timeout only
    // wakes for the next timer; with none left and an idle peer the
    // queued bytes would otherwise sit until unrelated traffic arrives —
    // the chaos storms caught exactly that as a forever-stuck reply.
    if (post_hook_) post_hook_();
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), next_timeout_ms());
    } while (n < 0 && errno == EINTR);
    if (n < 0) break;  // unrecoverable epoll error
    Clock::time_point dispatch_start{};
    if (stats_iteration_) dispatch_start = Clock::now();
    if (stats_dispatch_batch_ && n > 0)
      stats_dispatch_batch_->record_us(static_cast<double>(n));
    // Snapshot each ready fd's registration generation before any handler
    // runs: a handler earlier in the batch may close an fd number and a
    // new connection may re-register it, and the stale kernel event must
    // not be delivered to the new handler.
    std::vector<std::uint64_t> batch_gen(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      auto it = fds_.find(events[i].data.fd);
      if (it != fds_.end()) batch_gen[static_cast<std::size_t>(i)] =
          it->second.generation;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;  // removed earlier in this batch
      if (it->second.generation != batch_gen[static_cast<std::size_t>(i)])
        continue;  // fd number recycled since epoll_wait
      it->second.handler(events[i].events);
    }
    if (n == static_cast<int>(events.size())) events.resize(events.size() * 2);
    if (post_hook_) post_hook_();
    if (stats_iteration_)
      stats_iteration_->record(Clock::now() - dispatch_start);
  }
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace tecfan::cluster
