// Systolic-array model for band matrix–vector multiplication.
//
// Section III-E of the paper argues TECfan's on-chip temperature estimator is
// cheap because G is a band matrix and band MVM maps onto a space-optimal
// linear systolic array [25]. This module provides (a) a functional,
// cycle-stepped simulation of that array — used to validate the cycle-count
// formula against the software matvec — and (b) the area/power cost model the
// paper uses (0.057 mm^2 per 16-bit fixed-point multiplier at 65 nm, scaled
// quadratically with operand width; 0.56 W/mm^2 at full utilization).
#pragma once

#include <cstddef>

#include "linalg/banded.h"

namespace tecfan::linalg {

struct SystolicRunResult {
  Vector y;                 // the computed product
  std::size_t cycles = 0;   // cycles until the last output drained
  std::size_t pe_count = 0; // processing elements (one per band diagonal)
  std::size_t multiply_ops = 0;
};

/// Functionally simulate a linear systolic array (one PE per band diagonal)
/// computing y = A x; result matches BandMatrix::matvec exactly.
SystolicRunResult systolic_band_matvec(const BandMatrix& a,
                                       std::span<const double> x);

/// Hardware cost model from Sec. III-E.
struct SystolicCostModel {
  std::size_t components = 18;   // M: thermal nodes per core
  std::size_t neighbours = 3;    // K: nodes with thermal impact
  int operand_bits = 8;          // fixed-point width (8 bits suffice)
  double ref_multiplier_area_mm2 = 0.057;  // 16-bit multiplier, 65 nm [26]
  int ref_multiplier_bits = 16;
  double power_density_w_per_mm2 = 0.56;   // IBM POWER6 FPU density [27]
  double die_area_mm2 = 200.0;             // typical die used in the paper

  std::size_t multiplier_count() const { return components * neighbours; }
  /// Area of one multiplier (quadratic scaling in operand width).
  double multiplier_area_mm2() const;
  /// Total estimator area.
  double total_area_mm2() const;
  /// Area overhead as a fraction of the die.
  double area_overhead() const;
  /// Power at 100% utilization.
  double power_w() const;
};

}  // namespace tecfan::linalg
