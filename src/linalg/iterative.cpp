#include "linalg/iterative.h"

#include <cmath>

#include "linalg/matrix.h"
#include "util/error.h"

namespace tecfan::linalg {
namespace {

Vector jacobi_inverse(const SparseMatrix& a, bool enabled) {
  Vector inv(a.rows(), 1.0);
  if (!enabled) return inv;
  const Vector d = a.diagonal();
  for (std::size_t i = 0; i < d.size(); ++i)
    inv[i] = (d[i] != 0.0) ? 1.0 / d[i] : 1.0;
  return inv;
}

void apply_precond(const Vector& minv, std::span<const double> r,
                   std::span<double> z) {
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = minv[i] * r[i];
}

}  // namespace

IterativeResult conjugate_gradient(const SparseMatrix& a,
                                   std::span<const double> b,
                                   const IterativeOptions& opts) {
  TECFAN_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix");
  TECFAN_REQUIRE(b.size() == a.rows(), "CG rhs size mismatch");
  const std::size_t n = a.rows();
  const double bnorm = norm2(b);
  IterativeResult res;
  res.x.assign(n, 0.0);
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  const Vector minv = jacobi_inverse(a, opts.jacobi_preconditioner);
  Vector r(b.begin(), b.end());
  Vector z(n), p(n), ap(n);
  apply_precond(minv, r, z);
  p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    a.matvec(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0)
      throw numerical_error("CG: matrix is not positive definite");
    const double alpha = rz / pap;
    axpy(alpha, p, res.x);
    axpy(-alpha, ap, r);
    res.iterations = it + 1;
    res.residual = norm2(r) / bnorm;
    if (res.residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    apply_precond(minv, r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

IterativeResult bicgstab(const SparseMatrix& a, std::span<const double> b,
                         const IterativeOptions& opts) {
  TECFAN_REQUIRE(a.rows() == a.cols(), "BiCGSTAB requires a square matrix");
  TECFAN_REQUIRE(b.size() == a.rows(), "BiCGSTAB rhs size mismatch");
  const std::size_t n = a.rows();
  const double bnorm = norm2(b);
  IterativeResult res;
  res.x.assign(n, 0.0);
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  const Vector minv = jacobi_inverse(a, opts.jacobi_preconditioner);
  Vector r(b.begin(), b.end());
  Vector r_hat = r;
  Vector p(n, 0.0), v(n, 0.0), s(n), t(n), z(n), y(n);
  double rho = 1.0, alpha = 1.0, omega = 1.0;

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    const double rho_new = dot(r_hat, r);
    if (rho_new == 0.0) break;  // breakdown
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    apply_precond(minv, p, y);
    a.matvec(y, v);
    const double rhv = dot(r_hat, v);
    if (rhv == 0.0) break;  // breakdown
    alpha = rho / rhv;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    res.iterations = it + 1;
    if (norm2(s) / bnorm < opts.tolerance) {
      axpy(alpha, y, res.x);
      res.residual = norm2(s) / bnorm;
      res.converged = true;
      return res;
    }
    apply_precond(minv, s, z);
    a.matvec(z, t);
    const double tt = dot(t, t);
    if (tt == 0.0) break;  // breakdown
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * y[i] + omega * z[i];
      r[i] = s[i] - omega * t[i];
    }
    res.residual = norm2(r) / bnorm;
    if (res.residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) break;  // breakdown
  }
  return res;
}

}  // namespace tecfan::linalg
