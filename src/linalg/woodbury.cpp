#include "linalg/woodbury.h"

#include <map>

#include "util/error.h"

namespace tecfan::linalg {
namespace {

Vector solve_unit_column(const LuFactorization& base, std::size_t node) {
  Vector e(base.size(), 0.0);
  e[node] = 1.0;
  return base.solve(e);
}

}  // namespace

FactoredOperator::FactoredOperator(DenseMatrix a0,
                                   std::span<const std::size_t> warm_nodes)
    : base_(std::move(a0)) {
  TECFAN_REQUIRE(base_.valid(),
                 "FactoredOperator requires a nonempty, factorable matrix");
  for (const std::size_t node : warm_nodes) {
    TECFAN_REQUIRE(node < base_.size(), "warm node out of range");
    if (warm_.contains(node)) continue;
    warm_.emplace(node, solve_unit_column(base_, node));
  }
}

const Vector& FactoredOperator::inverse_column(std::size_t node) const {
  TECFAN_REQUIRE(node < base_.size(), "update node out of range");
  // Warm columns are written once in the constructor and never touched
  // again, so this lookup is safe from any number of threads.
  if (auto it = warm_.find(node); it != warm_.end()) return it->second;
  // References into an unordered_map survive rehashing, so a column handed
  // out here stays valid while later misses grow the overflow map.
  std::lock_guard<std::mutex> lock(overflow_mu_);
  if (auto it = overflow_.find(node); it != overflow_.end()) return it->second;
  return overflow_.emplace(node, solve_unit_column(base_, node)).first->second;
}

std::size_t FactoredOperator::overflow_columns() const {
  std::lock_guard<std::mutex> lock(overflow_mu_);
  return overflow_.size();
}

std::size_t FactoredOperator::memory_bytes() const {
  const std::size_t n = base_.size();
  std::size_t columns = warm_.size();
  {
    std::lock_guard<std::mutex> lock(overflow_mu_);
    columns += overflow_.size();
  }
  // LU matrix + permutation + cached columns; bookkeeping overhead ignored.
  return n * n * sizeof(double) + n * sizeof(std::size_t) +
         columns * n * sizeof(double);
}

UpdateWorkspace::UpdateWorkspace(std::shared_ptr<const FactoredOperator> op)
    : op_(std::move(op)) {
  TECFAN_REQUIRE(op_ && op_->valid(),
                 "UpdateWorkspace requires a valid factored operator");
}

void UpdateWorkspace::set_updates(
    const std::vector<std::pair<std::size_t, double>>& updates) {
  TECFAN_REQUIRE(op_, "set_updates before binding a factored operator");
  // Accumulate duplicates and drop zeros (a toggled-then-untoggled knob).
  std::map<std::size_t, double> acc;
  for (const auto& [node, delta] : updates) {
    TECFAN_REQUIRE(node < op_->size(), "update node out of range");
    acc[node] += delta;
  }
  nodes_.clear();
  deltas_.clear();
  columns_.clear();
  for (const auto& [node, delta] : acc) {
    if (delta == 0.0) continue;
    nodes_.push_back(node);
    deltas_.push_back(delta);
  }
  const std::size_t k = nodes_.size();
  if (k == 0) {
    capacitance_ = LuFactorization();
    return;
  }
  columns_.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    columns_.push_back(&op_->inverse_column(nodes_[i]));

  DenseMatrix s(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b)
      s(a, b) = (*columns_[b])[nodes_[a]];
    s(a, a) += 1.0 / deltas_[a];
  }
  capacitance_ = LuFactorization(std::move(s));
}

Vector UpdateWorkspace::solve(std::span<const double> b) {
  TECFAN_REQUIRE(op_, "solve before binding a factored operator");
  Vector y = op_->solve_base(b);
  const std::size_t k = nodes_.size();
  if (k == 0) return y;
  rhs_scratch_.resize(k);
  for (std::size_t a = 0; a < k; ++a) rhs_scratch_[a] = y[nodes_[a]];
  const Vector z = capacitance_.solve(rhs_scratch_);
  for (std::size_t a = 0; a < k; ++a) {
    const Vector& col = *columns_[a];
    const double za = z[a];
    for (std::size_t i = 0; i < y.size(); ++i) y[i] -= col[i] * za;
  }
  return y;
}

std::size_t UpdateWorkspace::memory_bytes() const {
  const std::size_t k = nodes_.size();
  return k * k * sizeof(double) +
         k * (sizeof(std::size_t) + sizeof(double) + sizeof(Vector*)) +
         rhs_scratch_.capacity() * sizeof(double);
}

}  // namespace tecfan::linalg
