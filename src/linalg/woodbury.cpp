#include "linalg/woodbury.h"

#include <map>

#include "util/error.h"

namespace tecfan::linalg {

DiagonalUpdateSolver::DiagonalUpdateSolver(
    std::shared_ptr<const LuFactorization> base)
    : base_(std::move(base)) {
  TECFAN_REQUIRE(base_ && base_->valid(),
                 "DiagonalUpdateSolver requires a valid base factorization");
}

const Vector& DiagonalUpdateSolver::inverse_column(std::size_t node) {
  auto it = column_cache_.find(node);
  if (it != column_cache_.end()) return it->second;
  Vector e(base_->size(), 0.0);
  e[node] = 1.0;
  auto [ins, _] = column_cache_.emplace(node, base_->solve(e));
  return ins->second;
}

void DiagonalUpdateSolver::set_updates(
    const std::vector<std::pair<std::size_t, double>>& updates) {
  TECFAN_REQUIRE(base_, "set_updates before binding a base factorization");
  // Accumulate duplicates and drop zeros (a toggled-then-untoggled knob).
  std::map<std::size_t, double> acc;
  for (const auto& [node, delta] : updates) {
    TECFAN_REQUIRE(node < base_->size(), "update node out of range");
    acc[node] += delta;
  }
  nodes_.clear();
  deltas_.clear();
  columns_.clear();
  for (const auto& [node, delta] : acc) {
    if (delta == 0.0) continue;
    nodes_.push_back(node);
    deltas_.push_back(delta);
  }
  const std::size_t k = nodes_.size();
  if (k == 0) {
    capacitance_ = LuFactorization();
    return;
  }
  columns_.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    columns_.push_back(&inverse_column(nodes_[i]));

  DenseMatrix s(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b)
      s(a, b) = (*columns_[b])[nodes_[a]];
    s(a, a) += 1.0 / deltas_[a];
  }
  capacitance_ = LuFactorization(std::move(s));
}

Vector DiagonalUpdateSolver::solve(std::span<const double> b) const {
  TECFAN_REQUIRE(base_, "solve before binding a base factorization");
  Vector y = base_->solve(b);
  const std::size_t k = nodes_.size();
  if (k == 0) return y;
  Vector rhs(k);
  for (std::size_t a = 0; a < k; ++a) rhs[a] = y[nodes_[a]];
  const Vector z = capacitance_.solve(rhs);
  for (std::size_t a = 0; a < k; ++a) {
    const Vector& col = *columns_[a];
    const double za = z[a];
    for (std::size_t i = 0; i < y.size(); ++i) y[i] -= col[i] * za;
  }
  return y;
}

}  // namespace tecfan::linalg
