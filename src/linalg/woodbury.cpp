#include "linalg/woodbury.h"

#include <map>

#include "linalg/ordering.h"
#include "util/error.h"

namespace tecfan::linalg {

FactoredOperator::FactoredOperator(DenseMatrix a0,
                                   std::span<const std::size_t> warm_nodes) {
  TECFAN_REQUIRE(a0.rows() > 0 && a0.rows() == a0.cols(),
                 "FactoredOperator requires a nonempty square matrix");
  n_ = a0.rows();
  init_dense(std::move(a0));
  cold_ = std::make_unique<std::atomic<const Vector*>[]>(n_);
  warm_columns(warm_nodes);
}

FactoredOperator::FactoredOperator(const SparseMatrix& a0,
                                   std::span<const std::size_t> warm_nodes,
                                   SolveBackend backend) {
  TECFAN_REQUIRE(a0.rows() > 0 && a0.rows() == a0.cols(),
                 "FactoredOperator requires a nonempty square matrix");
  n_ = a0.rows();
  if (backend != SolveBackend::kDense) {
    const auto graph = sparsity_graph(a0);
    std::vector<std::size_t> perm = reverse_cuthill_mckee(graph);
    const std::size_t bw = bandwidth_under(graph, perm);
    // Viability cutoff from the substitution cost: a pivoted-band solve
    // sweeps kl + (kl+ku) = 3b entries per row versus n for dense, so the
    // band wins per-solve while 3b < n (factorization breaks even even
    // later, at b ~ 0.4n). The chip network sits at b/n ~ 0.28 — its 16
    // spreader hubs (degree ~30) put a floor under the RCM bandwidth — and
    // still measures ~14x cheaper to factor, ~2.5x cheaper per solve.
    if (backend == SolveBackend::kBanded || 3 * bw < n_) {
      pos_.assign(n_, 0);
      for (std::size_t i = 0; i < n_; ++i) pos_[perm[i]] = i;
      BandMatrix base(n_, bw, bw);
      const auto offsets = a0.row_offsets();
      const auto cols = a0.col_indices();
      const auto vals = a0.values();
      for (std::size_t r = 0; r < n_; ++r)
        for (std::size_t idx = offsets[r]; idx < offsets[r + 1]; ++idx)
          base.at(pos_[r], pos_[cols[idx]]) = vals[idx];
      // Band Cholesky stores kd+1 diagonals against the pivoted LU's
      // 3b+1, and the 600-node solves are bound on streaming the factor —
      // so try it whenever the base is exactly symmetric.
      if (a0.asymmetry() == 0.0) {
        try {
          band_chol_ = BandCholesky(base);
        } catch (const numerical_error&) {
          // Symmetric but not positive definite; BandLu below handles it.
        }
      }
      if (!band_chol_.valid()) band_ = BandLu(base);
      band_base_ = std::move(base);
      perm_ = std::move(perm);
    }
  }
  if (!banded()) {
    pos_.clear();
    init_dense(a0.to_dense());
  }
  cold_ = std::make_unique<std::atomic<const Vector*>[]>(n_);
  warm_columns(warm_nodes);
}

void FactoredOperator::init_dense(DenseMatrix a0) {
  if (a0.is_symmetric(0.0)) {
    try {
      chol_ = CholeskyFactorization(a0);
      return;
    } catch (const numerical_error&) {
      // Symmetric but not positive definite; LU below handles it.
    }
  }
  lu_ = LuFactorization(std::move(a0));
}

void FactoredOperator::warm_columns(std::span<const std::size_t> warm_nodes) {
  std::vector<std::size_t> fresh;
  fresh.reserve(warm_nodes.size());
  for (const std::size_t node : warm_nodes) {
    TECFAN_REQUIRE(node < n_, "warm node out of range");
    if (warm_.contains(node)) continue;
    warm_.emplace(node, Vector());
    fresh.push_back(node);
  }
  if (fresh.empty()) return;
  if (banded()) {
    // All unit columns in one blocked multi-RHS sweep over the factor.
    DenseMatrix rhs(n_, fresh.size());
    for (std::size_t j = 0; j < fresh.size(); ++j)
      rhs(pos_[fresh[j]], j) = 1.0;
    if (band_chol_.valid()) {
      band_chol_.solve_multi(rhs);
    } else {
      band_.solve_multi(rhs);
    }
    for (std::size_t j = 0; j < fresh.size(); ++j) {
      Vector col(n_);
      for (std::size_t i = 0; i < n_; ++i) col[perm_[i]] = rhs(i, j);
      warm_[fresh[j]] = std::move(col);
    }
  } else {
    for (const std::size_t node : fresh) warm_[node] = solve_unit_column(node);
  }
}

Vector FactoredOperator::solve_unit_column(std::size_t node) const {
  Vector e(n_, 0.0);
  e[node] = 1.0;
  return solve_base(e);
}

const BandMatrix& FactoredOperator::band_base() const {
  TECFAN_REQUIRE(banded(), "band_base on a dense-backend operator");
  return band_base_;
}

Vector FactoredOperator::solve_base(std::span<const double> b) const {
  TECFAN_REQUIRE(valid(), "solve on an empty operator");
  TECFAN_REQUIRE(b.size() == n_, "solve rhs size mismatch");
  if (banded()) {
    Vector tmp(n_);
    for (std::size_t i = 0; i < n_; ++i) tmp[i] = b[perm_[i]];
    if (band_chol_.valid()) {
      band_chol_.solve_in_place(tmp);
    } else {
      band_.solve_in_place(tmp);
    }
    Vector out(n_);
    for (std::size_t i = 0; i < n_; ++i) out[perm_[i]] = tmp[i];
    return out;
  }
  if (chol_.valid()) {
    Vector out(b.begin(), b.end());
    chol_.solve_in_place(out);
    return out;
  }
  return lu_.solve(b);
}

const Vector& FactoredOperator::inverse_column(std::size_t node) const {
  TECFAN_REQUIRE(node < n_, "update node out of range");
  // Warm columns are written once in the constructor and never touched
  // again, so this lookup is safe from any number of threads.
  if (auto it = warm_.find(node); it != warm_.end()) return it->second;
  // Cold node: double-checked locking against the node's publication slot.
  // Only the very first access (per node) takes the lock; after the
  // release-store every reader sees the column through the acquire-load.
  std::atomic<const Vector*>& slot = cold_[node];
  if (const Vector* hit = slot.load(std::memory_order_acquire)) return *hit;
  std::lock_guard<std::mutex> lock(cold_mu_);
  if (const Vector* hit = slot.load(std::memory_order_relaxed)) return *hit;
  cold_storage_.push_back(
      std::make_unique<const Vector>(solve_unit_column(node)));
  const Vector* col = cold_storage_.back().get();
  cold_count_.fetch_add(1, std::memory_order_relaxed);
  slot.store(col, std::memory_order_release);
  return *col;
}

std::size_t FactoredOperator::memory_bytes() const {
  const std::size_t columns = warm_.size() + overflow_columns();
  std::size_t base = 0;
  if (banded()) {
    base = band_.memory_bytes() + band_chol_.memory_bytes() +
           band_base_.stored_coefficients() * sizeof(double) +
           2 * n_ * sizeof(std::size_t);  // perm_ + pos_
  } else {
    base = n_ * n_ * sizeof(double) +
           (chol_.valid() ? 0 : n_ * sizeof(std::size_t));
  }
  // Factor + column cache + publication slots; bookkeeping overhead ignored.
  return base + n_ * sizeof(std::atomic<const Vector*>) +
         columns * n_ * sizeof(double);
}

UpdateWorkspace::UpdateWorkspace(std::shared_ptr<const FactoredOperator> op)
    : op_(std::move(op)) {
  TECFAN_REQUIRE(op_ && op_->valid(),
                 "UpdateWorkspace requires a valid factored operator");
}

void UpdateWorkspace::set_updates(
    const std::vector<std::pair<std::size_t, double>>& updates) {
  TECFAN_REQUIRE(op_, "set_updates before binding a factored operator");
  // Accumulate duplicates and drop zeros (a toggled-then-untoggled knob).
  std::map<std::size_t, double> acc;
  for (const auto& [node, delta] : updates) {
    TECFAN_REQUIRE(node < op_->size(), "update node out of range");
    acc[node] += delta;
  }
  nodes_.clear();
  deltas_.clear();
  columns_.clear();
  for (const auto& [node, delta] : acc) {
    if (delta == 0.0) continue;
    nodes_.push_back(node);
    deltas_.push_back(delta);
  }
  const std::size_t k = nodes_.size();
  if (k == 0) {
    mode_ = Mode::kBase;
    capacitance_ = LuFactorization();
    refactored_ = BandLu();
    return;
  }
  if (op_->banded()) {
    // Woodbury costs a k^3/3 capacitance factor plus 2kn per solve; a
    // direct refactor of the (still banded — the update is diagonal)
    // permuted matrix costs n*b*2b once and nothing per solve. Cross over
    // on the factor terms.
    const double kk = static_cast<double>(k);
    const double n = static_cast<double>(op_->size());
    const double bw = static_cast<double>(op_->bandwidth());
    if (kk * kk * kk / 3.0 > 2.0 * n * bw * bw) {
      BandMatrix a = op_->band_base();
      const auto pos = op_->positions();
      for (std::size_t i = 0; i < k; ++i)
        a.at(pos[nodes_[i]], pos[nodes_[i]]) += deltas_[i];
      refactored_ = BandLu(a);
      capacitance_ = LuFactorization();
      mode_ = Mode::kRefactor;
      return;
    }
  }
  mode_ = Mode::kWoodbury;
  refactored_ = BandLu();
  columns_.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    columns_.push_back(&op_->inverse_column(nodes_[i]));

  DenseMatrix s(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b)
      s(a, b) = (*columns_[b])[nodes_[a]];
    s(a, a) += 1.0 / deltas_[a];
  }
  capacitance_ = LuFactorization(std::move(s));
}

Vector UpdateWorkspace::solve(std::span<const double> b) {
  TECFAN_REQUIRE(op_, "solve before binding a factored operator");
  if (mode_ == Mode::kRefactor) {
    const std::size_t n = op_->size();
    TECFAN_REQUIRE(b.size() == n, "solve rhs size mismatch");
    const auto perm = op_->permutation();
    perm_scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_scratch_[i] = b[perm[i]];
    refactored_.solve_in_place(perm_scratch_);
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) x[perm[i]] = perm_scratch_[i];
    return x;
  }
  Vector y = op_->solve_base(b);
  if (mode_ == Mode::kBase) return y;
  const std::size_t k = nodes_.size();
  rhs_scratch_.resize(k);
  for (std::size_t a = 0; a < k; ++a) rhs_scratch_[a] = y[nodes_[a]];
  capacitance_.solve_in_place(rhs_scratch_);
  for (std::size_t a = 0; a < k; ++a) {
    const Vector& col = *columns_[a];
    const double za = rhs_scratch_[a];
    for (std::size_t i = 0; i < y.size(); ++i) y[i] -= col[i] * za;
  }
  return y;
}

std::size_t UpdateWorkspace::memory_bytes() const {
  const std::size_t k = nodes_.size();
  return k * k * sizeof(double) +
         k * (sizeof(std::size_t) + sizeof(double) + sizeof(Vector*)) +
         refactored_.memory_bytes() +
         (rhs_scratch_.capacity() + perm_scratch_.capacity()) * sizeof(double);
}

}  // namespace tecfan::linalg
