#include "linalg/matrix.h"

#include <cmath>

#include "util/error.h"

namespace tecfan::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void DenseMatrix::matvec(std::span<const double> x,
                         std::span<double> y) const {
  TECFAN_REQUIRE(x.size() == cols_ && y.size() == rows_,
                 "matvec size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = &data_[r * cols_];
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += a[c] * x[c];
    y[r] = s;
  }
}

void DenseMatrix::matvec_transpose(std::span<const double> x,
                                   std::span<double> y) const {
  TECFAN_REQUIRE(x.size() == rows_ && y.size() == cols_,
                 "matvec_transpose size mismatch");
  for (std::size_t c = 0; c < cols_; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = &data_[r * cols_];
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
  }
}

double DenseMatrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  TECFAN_REQUIRE(a.size() == b.size(), "subtract size mismatch");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

void axpy(double s, std::span<const double> b, std::span<double> a) {
  TECFAN_REQUIRE(a.size() == b.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

double dot(std::span<const double> a, std::span<const double> b) {
  TECFAN_REQUIRE(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace tecfan::linalg
