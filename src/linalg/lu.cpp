#include "linalg/lu.h"

#include <cmath>
#include <utility>

#include "util/error.h"

namespace tecfan::linalg {

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  TECFAN_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0)
      throw numerical_error("LU: matrix is singular at column " +
                            std::to_string(k));
    if (pivot != k) {
      std::swap(perm_[pivot], perm_[k]);
      perm_sign_ = -perm_sign_;
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(pivot, c), lu_(k, c));
    }
    const double inv_piv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) * inv_piv;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      const double* src = &lu_.data()[k * n];
      double* dst = &lu_.data()[r * n];
      for (std::size_t c = k + 1; c < n; ++c) dst[c] -= m * src[c];
    }
  }
}

Vector LuFactorization::solve(std::span<const double> b) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(b.size() == size(), "solve rhs size mismatch");
  const std::size_t n = size();
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  solve_in_place_permuted(x);
  return x;
}

void LuFactorization::solve_in_place(std::span<double> x) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(x.size() == size(), "solve rhs size mismatch");
  const std::size_t n = size();
  Vector tmp(n);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[perm_[i]];
  for (std::size_t i = 0; i < n; ++i) x[i] = tmp[i];
  solve_in_place_permuted(x);
}

void LuFactorization::solve_into(std::span<const double> b, Vector& x) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(b.size() == size(), "solve rhs size mismatch");
  const std::size_t n = size();
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  solve_in_place_permuted(x);
}

Vector LuFactorization::solve_transpose(std::span<const double> b) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(b.size() == size(), "solve rhs size mismatch");
  const std::size_t n = size();
  // A^T = U^T L^T P; solve U^T y = b, then L^T z = y, then x = P^T z.
  Vector y(b.begin(), b.end());
  for (std::size_t c = 0; c < n; ++c) {
    double s = y[c];
    for (std::size_t r = 0; r < c; ++r) s -= lu_(r, c) * y[r];
    y[c] = s / lu_(c, c);
  }
  for (std::size_t ci = n; ci-- > 0;) {
    double s = y[ci];
    for (std::size_t r = ci + 1; r < n; ++r) s -= lu_(r, ci) * y[r];
    y[ci] = s;
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = y[i];
  return x;
}

void LuFactorization::solve_in_place_permuted(std::span<double> x) const {
  const std::size_t n = size();
  // L y = Pb (unit lower triangular).
  for (std::size_t r = 1; r < n; ++r) {
    const double* row = &lu_.data()[r * n];
    double s = x[r];
    for (std::size_t c = 0; c < r; ++c) s -= row[c] * x[c];
    x[r] = s;
  }
  // U x = y.
  for (std::size_t ri = n; ri-- > 0;) {
    const double* row = &lu_.data()[ri * n];
    double s = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= row[c] * x[c];
    x[ri] = s / row[ri];
  }
}

double LuFactorization::determinant() const {
  TECFAN_REQUIRE(valid(), "determinant on empty factorization");
  double d = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace tecfan::linalg
