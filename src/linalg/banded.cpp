#include "linalg/banded.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/error.h"

namespace tecfan::linalg {

BandMatrix::BandMatrix(std::size_t n, std::size_t lower, std::size_t upper)
    : n_(n), kl_(lower), ku_(upper), data_((lower + upper + 1) * n, 0.0) {
  TECFAN_REQUIRE(lower < n || n == 0, "lower bandwidth must be < n");
  TECFAN_REQUIRE(upper < n || n == 0, "upper bandwidth must be < n");
}

BandMatrix BandMatrix::from_dense(const DenseMatrix& a, std::size_t lower,
                                  std::size_t upper, double tol) {
  TECFAN_REQUIRE(a.rows() == a.cols(), "from_dense requires square input");
  BandMatrix m(a.rows(), lower, upper);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (m.in_band(r, c)) {
        m.at(r, c) = a(r, c);
      } else {
        TECFAN_REQUIRE(std::abs(a(r, c)) <= tol,
                       "dense matrix has entries outside the band");
      }
    }
  return m;
}

bool BandMatrix::in_band(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) return false;
  if (c > r) return c - r <= ku_;
  return r - c <= kl_;
}

double& BandMatrix::at(std::size_t r, std::size_t c) {
  TECFAN_REQUIRE(in_band(r, c), "band access outside band");
  const std::size_t d = r + ku_ - c;
  return data_[d * n_ + c];
}

double BandMatrix::get(std::size_t r, std::size_t c) const {
  if (!in_band(r, c)) return 0.0;
  const std::size_t d = r + ku_ - c;
  return data_[d * n_ + c];
}

void BandMatrix::matvec(std::span<const double> x,
                        std::span<double> y) const {
  TECFAN_REQUIRE(x.size() == n_ && y.size() == n_,
                 "band matvec size mismatch");
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c0 = (r > kl_) ? r - kl_ : 0;
    const std::size_t c1 = std::min(n_ - 1, r + ku_);
    double s = 0.0;
    for (std::size_t c = c0; c <= c1; ++c) s += get(r, c) * x[c];
    y[r] = s;
  }
}

DenseMatrix BandMatrix::to_dense() const {
  DenseMatrix m(n_, n_);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c0 = (r > kl_) ? r - kl_ : 0;
    const std::size_t c1 = std::min(n_ - 1, r + ku_);
    for (std::size_t c = c0; c <= c1; ++c) m(r, c) = get(r, c);
  }
  return m;
}

BandLu::BandLu(const BandMatrix& a)
    : n_(a.size()),
      kl_(a.lower_bandwidth()),
      ku_(a.upper_bandwidth()),
      ldab_(2 * kl_ + ku_ + 1),
      f_(ldab_ * n_, 0.0),
      piv_(n_, 0) {
  const std::size_t kuf = kl_ + ku_;  // bandwidth of U after pivoting
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c0 = (r > kl_) ? r - kl_ : 0;
    const std::size_t c1 = std::min(n_ - 1, r + ku_);
    for (std::size_t c = c0; c <= c1; ++c)
      f_[c * ldab_ + kuf + r - c] = a.get(r, c);
  }
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t rmax = std::min(n_ - 1, k + kl_);
    // Column k of the active submatrix is contiguous: entry (k + i, k) is
    // colk[i] for i in [0, rmax - k].
    double* colk = &f_[k * ldab_ + kuf];
    std::size_t p = 0;
    double best = std::abs(colk[0]);
    for (std::size_t i = 1; i <= rmax - k; ++i) {
      const double v = std::abs(colk[i]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0)
      throw numerical_error("BandLu: matrix is singular at column " +
                            std::to_string(k));
    piv_[k] = k + p;
    const std::size_t cmax = std::min(n_ - 1, k + kuf);
    if (p != 0) {
      // Swap rows k and k+p across the remaining columns. Both rows stay
      // inside the expanded band because p <= kl_.
      for (std::size_t c = k; c <= cmax; ++c) {
        double* col = &f_[c * ldab_ + kuf - c];
        std::swap(col[k], col[k + p]);
      }
    }
    const double inv = 1.0 / colk[0];
    for (std::size_t i = 1; i <= rmax - k; ++i) colk[i] *= inv;
    // Rank-1 update, column by column so the inner loop is contiguous.
    for (std::size_t c = k + 1; c <= cmax; ++c) {
      double* col = &f_[c * ldab_ + kuf - c];
      const double ukc = col[k];
      if (ukc == 0.0) continue;
      for (std::size_t r = k + 1; r <= rmax; ++r)
        col[r] -= colk[r - k] * ukc;
    }
  }
}

Vector BandLu::solve(std::span<const double> b) const {
  TECFAN_REQUIRE(b.size() == n_, "solve rhs size mismatch");
  Vector x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void BandLu::solve_in_place(std::span<double> x) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(x.size() == n_, "solve rhs size mismatch");
  const std::size_t kuf = kl_ + ku_;
  // x := L^{-1} P x.
  for (std::size_t k = 0; k < n_; ++k) {
    if (piv_[k] != k) std::swap(x[k], x[piv_[k]]);
    const double xk = x[k];
    if (xk == 0.0) continue;
    const double* col = &f_[k * ldab_ + kuf - k];
    const std::size_t rmax = std::min(n_ - 1, k + kl_);
    for (std::size_t r = k + 1; r <= rmax; ++r) x[r] -= col[r] * xk;
  }
  // x := U^{-1} x, column sweeps (column j of U is contiguous in f_).
  for (std::size_t j = n_; j-- > 0;) {
    const double* col = &f_[j * ldab_ + kuf - j];
    const double xj = x[j] / col[j];
    x[j] = xj;
    if (xj == 0.0) continue;
    const std::size_t r0 = (j > kuf) ? j - kuf : 0;
    for (std::size_t r = r0; r < j; ++r) x[r] -= col[r] * xj;
  }
}

void BandLu::solve_multi(DenseMatrix& b) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(b.rows() == n_, "solve_multi rhs row count mismatch");
  const std::size_t m = b.cols();
  if (m == 0) return;
  const std::size_t kuf = kl_ + ku_;
  // Process right-hand sides in blocks: the elimination loops then stream
  // the factor once per block while every inner loop runs contiguously
  // across the block's columns (b is row-major).
  constexpr std::size_t kBlock = 48;
  for (std::size_t j0 = 0; j0 < m; j0 += kBlock) {
    const std::size_t jw = std::min(kBlock, m - j0);
    for (std::size_t k = 0; k < n_; ++k) {
      double* bk = &b(k, j0);
      if (piv_[k] != k) {
        double* bp = &b(piv_[k], j0);
        for (std::size_t t = 0; t < jw; ++t) std::swap(bk[t], bp[t]);
      }
      const double* col = &f_[k * ldab_ + kuf - k];
      const std::size_t rmax = std::min(n_ - 1, k + kl_);
      for (std::size_t r = k + 1; r <= rmax; ++r) {
        const double l = col[r];
        if (l == 0.0) continue;
        double* br = &b(r, j0);
        for (std::size_t t = 0; t < jw; ++t) br[t] -= l * bk[t];
      }
    }
    for (std::size_t j = n_; j-- > 0;) {
      const double* col = &f_[j * ldab_ + kuf - j];
      double* bj = &b(j, j0);
      const double inv = 1.0 / col[j];
      for (std::size_t t = 0; t < jw; ++t) bj[t] *= inv;
      const std::size_t r0 = (j > kuf) ? j - kuf : 0;
      for (std::size_t r = r0; r < j; ++r) {
        const double u = col[r];
        if (u == 0.0) continue;
        double* br = &b(r, j0);
        for (std::size_t t = 0; t < jw; ++t) br[t] -= u * bj[t];
      }
    }
  }
}

BandCholesky::BandCholesky(const BandMatrix& a)
    : n_(a.size()), kd_(a.lower_bandwidth()), f_((a.lower_bandwidth() + 1) * n_, 0.0) {
  TECFAN_REQUIRE(a.lower_bandwidth() == a.upper_bandwidth(),
                 "BandCholesky requires a symmetric band");
  const std::size_t ld = kd_ + 1;
  for (std::size_t c = 0; c < n_; ++c) {
    const std::size_t rmax = std::min(n_ - 1, c + kd_);
    for (std::size_t r = c; r <= rmax; ++r)
      f_[c * ld + (r - c)] = a.get(r, c);
  }
  for (std::size_t j = 0; j < n_; ++j) {
    double* colj = &f_[j * ld];
    const std::size_t m = std::min(kd_, n_ - 1 - j);  // rows below the pivot
    const double d = colj[0];
    if (!(d > 0.0))
      throw numerical_error("BandCholesky: matrix is not positive definite "
                            "at column " +
                            std::to_string(j));
    const double ljj = std::sqrt(d);
    colj[0] = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = 1; i <= m; ++i) colj[i] *= inv;
    // Trailing update, column by column: both the read of colj and the
    // write to colc run contiguously down the band.
    for (std::size_t c = j + 1; c <= j + m; ++c) {
      double* colc = &f_[c * ld];
      const double ljc = colj[c - j];
      if (ljc == 0.0) continue;
      for (std::size_t r = c; r <= j + m; ++r)
        colc[r - c] -= colj[r - j] * ljc;
    }
  }
}

Vector BandCholesky::solve(std::span<const double> b) const {
  TECFAN_REQUIRE(b.size() == n_, "solve rhs size mismatch");
  Vector x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void BandCholesky::solve_in_place(std::span<double> x) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(x.size() == n_, "solve rhs size mismatch");
  const std::size_t ld = kd_ + 1;
  // x := L^{-1} x, column sweeps.
  for (std::size_t j = 0; j < n_; ++j) {
    const double* colj = &f_[j * ld];
    const double xj = x[j] / colj[0];
    x[j] = xj;
    if (xj == 0.0) continue;
    const std::size_t m = std::min(kd_, n_ - 1 - j);
    for (std::size_t i = 1; i <= m; ++i) x[j + i] -= colj[i] * xj;
  }
  // x := L^{-T} x, row sweeps (column j of L is row j of L^T, contiguous).
  for (std::size_t j = n_; j-- > 0;) {
    const double* colj = &f_[j * ld];
    const std::size_t m = std::min(kd_, n_ - 1 - j);
    double s = x[j];
    for (std::size_t i = 1; i <= m; ++i) s -= colj[i] * x[j + i];
    x[j] = s / colj[0];
  }
}

void BandCholesky::solve_multi(DenseMatrix& b) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(b.rows() == n_, "solve_multi rhs row count mismatch");
  const std::size_t m = b.cols();
  if (m == 0) return;
  const std::size_t ld = kd_ + 1;
  constexpr std::size_t kBlock = 48;
  for (std::size_t j0 = 0; j0 < m; j0 += kBlock) {
    const std::size_t jw = std::min(kBlock, m - j0);
    for (std::size_t j = 0; j < n_; ++j) {
      const double* colj = &f_[j * ld];
      double* bj = &b(j, j0);
      const double inv = 1.0 / colj[0];
      for (std::size_t t = 0; t < jw; ++t) bj[t] *= inv;
      const std::size_t rows = std::min(kd_, n_ - 1 - j);
      for (std::size_t i = 1; i <= rows; ++i) {
        const double l = colj[i];
        if (l == 0.0) continue;
        double* br = &b(j + i, j0);
        for (std::size_t t = 0; t < jw; ++t) br[t] -= l * bj[t];
      }
    }
    for (std::size_t j = n_; j-- > 0;) {
      const double* colj = &f_[j * ld];
      double* bj = &b(j, j0);
      const std::size_t rows = std::min(kd_, n_ - 1 - j);
      for (std::size_t i = 1; i <= rows; ++i) {
        const double l = colj[i];
        if (l == 0.0) continue;
        const double* br = &b(j + i, j0);
        for (std::size_t t = 0; t < jw; ++t) bj[t] -= l * br[t];
      }
      const double inv = 1.0 / colj[0];
      for (std::size_t t = 0; t < jw; ++t) bj[t] *= inv;
    }
  }
}

}  // namespace tecfan::linalg
