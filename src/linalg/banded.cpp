#include "linalg/banded.h"

#include <cmath>
#include <utility>

#include "util/error.h"

namespace tecfan::linalg {

BandMatrix::BandMatrix(std::size_t n, std::size_t lower, std::size_t upper)
    : n_(n), kl_(lower), ku_(upper), data_((lower + upper + 1) * n, 0.0) {
  TECFAN_REQUIRE(lower < n || n == 0, "lower bandwidth must be < n");
  TECFAN_REQUIRE(upper < n || n == 0, "upper bandwidth must be < n");
}

BandMatrix BandMatrix::from_dense(const DenseMatrix& a, std::size_t lower,
                                  std::size_t upper, double tol) {
  TECFAN_REQUIRE(a.rows() == a.cols(), "from_dense requires square input");
  BandMatrix m(a.rows(), lower, upper);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (m.in_band(r, c)) {
        m.at(r, c) = a(r, c);
      } else {
        TECFAN_REQUIRE(std::abs(a(r, c)) <= tol,
                       "dense matrix has entries outside the band");
      }
    }
  return m;
}

bool BandMatrix::in_band(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) return false;
  if (c > r) return c - r <= ku_;
  return r - c <= kl_;
}

double& BandMatrix::at(std::size_t r, std::size_t c) {
  TECFAN_REQUIRE(in_band(r, c), "band access outside band");
  const std::size_t d = r + ku_ - c;
  return data_[d * n_ + c];
}

double BandMatrix::get(std::size_t r, std::size_t c) const {
  if (!in_band(r, c)) return 0.0;
  const std::size_t d = r + ku_ - c;
  return data_[d * n_ + c];
}

void BandMatrix::matvec(std::span<const double> x,
                        std::span<double> y) const {
  TECFAN_REQUIRE(x.size() == n_ && y.size() == n_,
                 "band matvec size mismatch");
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c0 = (r > kl_) ? r - kl_ : 0;
    const std::size_t c1 = std::min(n_ - 1, r + ku_);
    double s = 0.0;
    for (std::size_t c = c0; c <= c1; ++c) s += get(r, c) * x[c];
    y[r] = s;
  }
}

DenseMatrix BandMatrix::to_dense() const {
  DenseMatrix m(n_, n_);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c0 = (r > kl_) ? r - kl_ : 0;
    const std::size_t c1 = std::min(n_ - 1, r + ku_);
    for (std::size_t c = c0; c <= c1; ++c) m(r, c) = get(r, c);
  }
  return m;
}

BandLu::BandLu(BandMatrix a) : a_(std::move(a)) {
  const std::size_t n = a_.size();
  const std::size_t kl = a_.lower_bandwidth();
  const std::size_t ku = a_.upper_bandwidth();
  for (std::size_t k = 0; k < n; ++k) {
    const double piv = a_.get(k, k);
    if (std::abs(piv) < 1e-300)
      throw numerical_error("BandLu: zero pivot at " + std::to_string(k) +
                            " (matrix not diagonally dominant?)");
    const std::size_t r1 = std::min(n - 1, k + kl);
    for (std::size_t r = k + 1; r <= r1 && r < n; ++r) {
      const double m = a_.get(r, k) / piv;
      if (m == 0.0) continue;
      a_.at(r, k) = m;
      const std::size_t c1 = std::min(n - 1, k + ku);
      for (std::size_t c = k + 1; c <= c1; ++c)
        a_.at(r, c) = a_.get(r, c) - m * a_.get(k, c);
    }
  }
}

Vector BandLu::solve(std::span<const double> b) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(b.size() == size(), "solve rhs size mismatch");
  const std::size_t n = size();
  const std::size_t kl = a_.lower_bandwidth();
  const std::size_t ku = a_.upper_bandwidth();
  Vector x(b.begin(), b.end());
  // L y = b (unit lower within the band).
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t c0 = (r > kl) ? r - kl : 0;
    double s = x[r];
    for (std::size_t c = c0; c < r; ++c) s -= a_.get(r, c) * x[c];
    x[r] = s;
  }
  // U x = y.
  for (std::size_t ri = n; ri-- > 0;) {
    const std::size_t c1 = std::min(n - 1, ri + ku);
    double s = x[ri];
    for (std::size_t c = ri + 1; c <= c1; ++c) s -= a_.get(ri, c) * x[c];
    x[ri] = s / a_.get(ri, ri);
  }
  return x;
}

}  // namespace tecfan::linalg
