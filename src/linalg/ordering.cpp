#include "linalg/ordering.h"

#include <algorithm>
#include <queue>

#include "util/error.h"

namespace tecfan::linalg {

std::vector<std::vector<std::size_t>> sparsity_graph(const SparseMatrix& a) {
  TECFAN_REQUIRE(a.rows() == a.cols(), "sparsity_graph needs square input");
  std::vector<std::vector<std::size_t>> graph(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = a.row_offsets()[r]; k < a.row_offsets()[r + 1];
         ++k) {
      const std::size_t c = a.col_indices()[k];
      if (c == r || a.values()[k] == 0.0) continue;
      graph[r].push_back(c);
      graph[c].push_back(r);
    }
  }
  for (auto& adj : graph) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  return graph;
}

namespace {

/// BFS from `start` over unvisited nodes; fills `level` (distance from
/// start, only for the reached nodes) and returns the nodes of the deepest
/// level. `scratch` is the reached-node list, for resetting `level`.
std::vector<std::size_t> bfs_last_level(
    const std::vector<std::vector<std::size_t>>& graph,
    const std::vector<bool>& visited, std::size_t start,
    std::vector<std::size_t>& level, std::size_t* eccentricity) {
  std::vector<std::size_t> frontier{start};
  level[start] = 0;
  std::vector<std::size_t> last = frontier;
  std::size_t depth = 0;
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t v : frontier)
      for (const std::size_t u : graph[v])
        if (!visited[u] && level[u] == graph.size()) {
          level[u] = depth + 1;
          next.push_back(u);
        }
    if (!next.empty()) {
      ++depth;
      last = next;
    }
    frontier = std::move(next);
  }
  *eccentricity = depth;
  return last;
}

/// George–Liu pseudo-peripheral node of the component containing `seed`:
/// repeatedly jump to a minimum-degree node of the deepest BFS level while
/// the eccentricity keeps growing. Starting Cuthill–McKee from such an
/// endpoint (instead of an arbitrary minimum-degree node, which may sit in
/// the middle of the graph) is what keeps grid-like networks — the chip's
/// die/spreader/sink stack — at a small bandwidth.
std::size_t pseudo_peripheral(const std::vector<std::vector<std::size_t>>& graph,
                              const std::vector<bool>& visited,
                              std::size_t seed) {
  const std::size_t n = graph.size();
  std::vector<std::size_t> level(n, n);
  std::size_t node = seed;
  std::size_t ecc = 0;
  bool first = true;
  for (;;) {
    std::fill(level.begin(), level.end(), n);
    std::size_t new_ecc = 0;
    const std::vector<std::size_t> last =
        bfs_last_level(graph, visited, node, level, &new_ecc);
    if (!first && new_ecc <= ecc) return node;
    first = false;
    ecc = new_ecc;
    if (ecc == 0) return node;  // isolated node
    std::size_t candidate = last.front();
    for (const std::size_t v : last)
      if (graph[v].size() < graph[candidate].size() ||
          (graph[v].size() == graph[candidate].size() && v < candidate))
        candidate = v;
    if (candidate == node) return node;
    node = candidate;
  }
}

}  // namespace

std::vector<std::size_t> reverse_cuthill_mckee(
    const std::vector<std::vector<std::size_t>>& graph) {
  const std::size_t n = graph.size();
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);

  auto degree = [&](std::size_t v) { return graph[v].size(); };

  for (;;) {
    // Start each component from a pseudo-peripheral node, seeded at its
    // minimum-degree unvisited node.
    std::size_t seed = n;
    for (std::size_t v = 0; v < n; ++v)
      if (!visited[v] && (seed == n || degree(v) < degree(seed)))
        seed = v;
    if (seed == n) break;
    const std::size_t start = pseudo_peripheral(graph, visited, seed);

    std::queue<std::size_t> queue;
    queue.push(start);
    visited[start] = true;
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop();
      order.push_back(v);
      std::vector<std::size_t> next;
      for (std::size_t u : graph[v])
        if (!visited[u]) {
          visited[u] = true;
          next.push_back(u);
        }
      // Degree order with an index tie-break so the permutation (and
      // everything factored through it) is deterministic.
      std::sort(next.begin(), next.end(),
                [&](std::size_t a, std::size_t b) {
                  return degree(a) != degree(b) ? degree(a) < degree(b)
                                                : a < b;
                });
      for (std::size_t u : next) queue.push(u);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::size_t> reverse_cuthill_mckee(const SparseMatrix& a) {
  return reverse_cuthill_mckee(sparsity_graph(a));
}

std::size_t bandwidth_under(
    const std::vector<std::vector<std::size_t>>& graph,
    const std::vector<std::size_t>& perm) {
  TECFAN_REQUIRE(perm.size() == graph.size(), "permutation size mismatch");
  std::vector<std::size_t> pos(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    TECFAN_REQUIRE(perm[i] < perm.size(), "permutation entry out of range");
    pos[perm[i]] = i;
  }
  std::size_t bw = 0;
  for (std::size_t v = 0; v < graph.size(); ++v)
    for (std::size_t u : graph[v]) {
      const std::size_t d =
          pos[v] > pos[u] ? pos[v] - pos[u] : pos[u] - pos[v];
      bw = std::max(bw, d);
    }
  return bw;
}

DenseMatrix permute_symmetric(const DenseMatrix& a,
                              const std::vector<std::size_t>& perm) {
  TECFAN_REQUIRE(a.rows() == a.cols() && perm.size() == a.rows(),
                 "permute_symmetric size mismatch");
  DenseMatrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      out(i, j) = a(perm[i], perm[j]);
  return out;
}

}  // namespace tecfan::linalg
