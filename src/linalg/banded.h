// Band matrix storage, matvec, and banded LU.
//
// Section III-E of the paper observes that the per-core thermal conductance
// matrix is by nature a band matrix (thermal influence is local) and bases
// its on-chip hardware estimate on band matrix–vector products. This module
// provides that representation: LAPACK-style banded storage, matvec (the
// operation the paper maps onto a systolic array), and an in-place banded LU
// without pivoting for the diagonally dominant systems the estimator solves.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace tecfan::linalg {

class BandMatrix {
 public:
  BandMatrix() = default;

  /// n x n with `lower` sub-diagonals and `upper` super-diagonals.
  BandMatrix(std::size_t n, std::size_t lower, std::size_t upper);

  /// Construct from a dense matrix, verifying entries outside the band are
  /// zero (within tol).
  static BandMatrix from_dense(const DenseMatrix& a, std::size_t lower,
                               std::size_t upper, double tol = 0.0);

  std::size_t size() const { return n_; }
  std::size_t lower_bandwidth() const { return kl_; }
  std::size_t upper_bandwidth() const { return ku_; }

  /// True if (r, c) lies within the band.
  bool in_band(std::size_t r, std::size_t c) const;

  /// Element access; (r, c) must lie inside the band for the mutable form,
  /// the const form returns 0 outside the band.
  double& at(std::size_t r, std::size_t c);
  double get(std::size_t r, std::size_t c) const;

  /// y = A x.
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// Number of stored (in-band) coefficients, the paper's multiplier count
  /// for a one-row-per-cycle systolic evaluation.
  std::size_t stored_coefficients() const { return n_ * (kl_ + ku_ + 1); }

  DenseMatrix to_dense() const;

 private:
  std::size_t n_ = 0;
  std::size_t kl_ = 0;
  std::size_t ku_ = 0;
  std::vector<double> data_;  // (kl_+ku_+1) x n_, diagonal d = r - c + ku_
};

/// Banded LU without pivoting (suitable for diagonally dominant systems such
/// as conductance matrices). Fill stays within the band.
class BandLu {
 public:
  BandLu() = default;
  explicit BandLu(BandMatrix a);

  std::size_t size() const { return a_.size(); }
  bool valid() const { return a_.size() > 0; }

  Vector solve(std::span<const double> b) const;

 private:
  BandMatrix a_;
};

}  // namespace tecfan::linalg
