// Band matrix storage, matvec, and banded LU.
//
// Section III-E of the paper observes that the per-core thermal conductance
// matrix is by nature a band matrix (thermal influence is local) and bases
// its on-chip hardware estimate on band matrix–vector products. This module
// provides that representation: LAPACK-style banded storage, matvec (the
// operation the paper maps onto a systolic array), and a banded LU with
// partial pivoting confined to the band — the base factorization behind the
// RCM-permuted solve path of FactoredOperator as well as the Sec. III-E
// hardware estimator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace tecfan::linalg {

class BandMatrix {
 public:
  BandMatrix() = default;

  /// n x n with `lower` sub-diagonals and `upper` super-diagonals.
  BandMatrix(std::size_t n, std::size_t lower, std::size_t upper);

  /// Construct from a dense matrix, verifying entries outside the band are
  /// zero (within tol).
  static BandMatrix from_dense(const DenseMatrix& a, std::size_t lower,
                               std::size_t upper, double tol = 0.0);

  std::size_t size() const { return n_; }
  std::size_t lower_bandwidth() const { return kl_; }
  std::size_t upper_bandwidth() const { return ku_; }

  /// True if (r, c) lies within the band.
  bool in_band(std::size_t r, std::size_t c) const;

  /// Element access; (r, c) must lie inside the band for the mutable form,
  /// the const form returns 0 outside the band.
  double& at(std::size_t r, std::size_t c);
  double get(std::size_t r, std::size_t c) const;

  /// y = A x.
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// Number of stored (in-band) coefficients, the paper's multiplier count
  /// for a one-row-per-cycle systolic evaluation.
  std::size_t stored_coefficients() const { return n_ * (kl_ + ku_ + 1); }

  DenseMatrix to_dense() const;

 private:
  std::size_t n_ = 0;
  std::size_t kl_ = 0;
  std::size_t ku_ = 0;
  std::vector<double> data_;  // (kl_+ku_+1) x n_, diagonal d = r - c + ku_
};

/// Banded LU with partial pivoting confined to the band (LAPACK gbtrf
/// style): row interchanges grow U's bandwidth to at most kl+ku while L
/// keeps kl multipliers per column, so fill stays inside an expanded band
/// of (2*kl + ku + 1) diagonals. Factor cost is O(n * kl * (kl + ku)); each
/// triangular solve is O(n * (2*kl + ku)).
class BandLu {
 public:
  BandLu() = default;
  explicit BandLu(const BandMatrix& a);

  std::size_t size() const { return n_; }
  bool valid() const { return n_ > 0; }
  std::size_t lower_bandwidth() const { return kl_; }
  std::size_t upper_bandwidth() const { return ku_; }

  Vector solve(std::span<const double> b) const;

  /// Allocation-free solve: x holds b on entry and the solution on exit.
  void solve_in_place(std::span<double> x) const;

  /// Blocked multi-RHS solve: every column of b is an independent
  /// right-hand side, overwritten with its solution. Right-hand sides are
  /// processed in blocks whose inner loops run contiguously across the
  /// block (b is row-major), which is what lets the compiler vectorize —
  /// this is how FactoredOperator pre-warms all A0^{-1} e_i columns in one
  /// pass instead of n sequential solves.
  void solve_multi(DenseMatrix& b) const;

  /// Factor storage footprint (expanded band + pivots).
  std::size_t memory_bytes() const {
    return f_.capacity() * sizeof(double) +
           piv_.capacity() * sizeof(std::size_t);
  }

 private:
  // Entry (r, c) of the factor lives at f_[c * ldab_ + (kl_ + ku_ + r - c)]:
  // column-major within the expanded band, so the pivot-column scans of the
  // factorization and the substitution sweeps are contiguous.
  std::size_t n_ = 0;
  std::size_t kl_ = 0;
  std::size_t ku_ = 0;   // of the input matrix; the factor stores kl_+ku_
  std::size_t ldab_ = 0; // 2*kl_ + ku_ + 1
  std::vector<double> f_;
  std::vector<std::size_t> piv_;  // row swapped with k at elimination step k
};

/// Banded Cholesky (LAPACK pbtrf style) for symmetric positive definite
/// band matrices. No pivoting means no fill-in: the factor keeps the
/// matrix's kd+1 lower diagonals, about a quarter of the pivoted BandLu
/// footprint at equal bandwidth — which matters because a 600-node solve
/// is memory-bound on streaming the factor, not on arithmetic. Factor cost
/// is O(n * kd^2 / 2); each solve streams 2 * n * kd entries.
/// Throws numerical_error if the matrix is not positive definite, letting
/// callers fall back to BandLu (mirroring the dense Cholesky -> LU path).
class BandCholesky {
 public:
  BandCholesky() = default;
  /// Requires a symmetric band (equal bandwidths); only the lower triangle
  /// is read.
  explicit BandCholesky(const BandMatrix& a);

  std::size_t size() const { return n_; }
  bool valid() const { return n_ > 0; }
  std::size_t bandwidth() const { return kd_; }

  Vector solve(std::span<const double> b) const;

  /// Allocation-free solve: x holds b on entry and the solution on exit.
  void solve_in_place(std::span<double> x) const;

  /// Blocked multi-RHS solve over the columns of row-major b; see
  /// BandLu::solve_multi.
  void solve_multi(DenseMatrix& b) const;

  std::size_t memory_bytes() const { return f_.capacity() * sizeof(double); }

 private:
  // Entry (r, c), r >= c, of L lives at f_[c * (kd_ + 1) + (r - c)]:
  // column-major within the band, contiguous down each column.
  std::size_t n_ = 0;
  std::size_t kd_ = 0;  // half-bandwidth
  std::vector<double> f_;
};

}  // namespace tecfan::linalg
