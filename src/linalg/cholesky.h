// Dense Cholesky factorization for symmetric positive-definite systems.
//
// The base conductance matrix (all TECs off — Peltier terms enter only as
// later diagonal updates) is SPD, and Cholesky is ~2x cheaper to factor
// than LU: FactoredOperator's dense backend picks Cholesky when the base
// matrix is exactly symmetric and falls back to LU otherwise. Cholesky is
// also the validation oracle for the iterative solvers in tests.
#pragma once

#include "linalg/matrix.h"

namespace tecfan::linalg {

class CholeskyFactorization {
 public:
  CholeskyFactorization() = default;

  /// Factor A = L L^T; throws numerical_error if A is not positive definite
  /// (within roundoff).
  explicit CholeskyFactorization(const DenseMatrix& a);

  std::size_t size() const { return l_.rows(); }
  bool valid() const { return l_.rows() > 0; }

  /// Solve A x = b.
  Vector solve(std::span<const double> b) const;

  /// Allocation-free solve: x holds b on entry and the solution on exit.
  void solve_in_place(std::span<double> x) const;

 private:
  DenseMatrix l_;
};

}  // namespace tecfan::linalg
