// Dense Cholesky factorization for symmetric positive-definite systems.
//
// With all TECs off the thermal conductance matrix is SPD, and Cholesky is
// ~2x cheaper than LU. The steady-state solver picks Cholesky or LU based on
// whether Peltier terms are active; Cholesky is also the validation oracle
// for the iterative solvers in tests.
#pragma once

#include "linalg/matrix.h"

namespace tecfan::linalg {

class CholeskyFactorization {
 public:
  CholeskyFactorization() = default;

  /// Factor A = L L^T; throws numerical_error if A is not positive definite
  /// (within roundoff).
  explicit CholeskyFactorization(const DenseMatrix& a);

  std::size_t size() const { return l_.rows(); }
  bool valid() const { return l_.rows() > 0; }

  /// Solve A x = b.
  Vector solve(std::span<const double> b) const;

 private:
  DenseMatrix l_;
};

}  // namespace tecfan::linalg
