// Bandwidth-reducing node orderings.
//
// Section III-E's hardware estimator relies on the per-core conductance
// matrix being a band matrix. The raw node numbering (components, then TEC
// faces) scatters couplings; a reverse Cuthill–McKee pass over the
// conductance graph brings them near the diagonal so the banded LU and the
// systolic MVM model apply with a small bandwidth.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.h"

namespace tecfan::linalg {

/// Adjacency list of the off-diagonal sparsity pattern of a square sparse
/// matrix (symmetrized).
std::vector<std::vector<std::size_t>> sparsity_graph(const SparseMatrix& a);

/// Reverse Cuthill–McKee ordering of a graph. Returns `perm` such that new
/// index i holds old node perm[i]; disconnected components are handled by
/// restarting from the minimum-degree unvisited node.
std::vector<std::size_t> reverse_cuthill_mckee(
    const std::vector<std::vector<std::size_t>>& graph);

/// Convenience overload over a sparse matrix's pattern.
std::vector<std::size_t> reverse_cuthill_mckee(const SparseMatrix& a);

/// Half bandwidth of a graph under a given ordering: max |pos(u) - pos(v)|
/// over edges. 0 for diagonal matrices.
std::size_t bandwidth_under(
    const std::vector<std::vector<std::size_t>>& graph,
    const std::vector<std::size_t>& perm);

/// Apply a permutation to a dense matrix: out(i, j) = a(perm[i], perm[j]).
DenseMatrix permute_symmetric(const DenseMatrix& a,
                              const std::vector<std::size_t>& perm);

}  // namespace tecfan::linalg
