// Sherman–Morrison–Woodbury solver for diagonal low-rank updates, split
// into an immutable shared operator and a per-thread workspace.
//
// Every runtime knob in TECfan perturbs the thermal system matrix only on
// its diagonal: toggling a TEC adds ±alpha*I Peltier terms to its two face
// nodes, and changing the fan level rescales the convection conductances of
// the sink nodes. Instead of refactoring the ~600x600 system each control
// interval, we factor the base matrix once and solve
//     (A0 + U D U^T) x = b
// via the Woodbury identity, where U selects the touched nodes and D holds
// the deltas. Columns of A0^{-1} U depend only on the node index, so they
// are cached across intervals: after warm-up a knob change costs one small
// k x k factorization instead of an O(n^3) refactor.
//
// The split:
//   * FactoredOperator — the expensive, immutable part: the base LU plus
//     the A0^{-1} e_i column cache. The update-able node set is known up
//     front (TEC faces, sink nodes), so callers pre-warm those columns at
//     construction and every later read is lock-free; columns for nodes
//     outside the warm set fall back to a small mutex-protected overflow
//     map. One FactoredOperator serves any number of threads.
//   * UpdateWorkspace — the cheap, per-thread part: the current update set,
//     its k x k capacitance factorization, and solve scratch. Constructing
//     one costs a few small allocations, never a base refactor.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace tecfan::linalg {

class FactoredOperator {
 public:
  /// Factor A0 and pre-warm the A0^{-1} e_i columns for `warm_nodes`
  /// (deduplicated; out-of-range nodes are rejected). Warmed columns are
  /// immutable afterwards, so reads need no synchronization.
  explicit FactoredOperator(DenseMatrix a0,
                            std::span<const std::size_t> warm_nodes = {});

  FactoredOperator(const FactoredOperator&) = delete;
  FactoredOperator& operator=(const FactoredOperator&) = delete;

  std::size_t size() const { return base_.size(); }
  bool valid() const { return base_.valid(); }

  /// Solve A0 x = b (no diagonal update).
  Vector solve_base(std::span<const double> b) const { return base_.solve(b); }

  /// A0^{-1} e_node. Thread-safe: warm columns are read lock-free; a miss
  /// computes the column under the overflow lock (references stay valid for
  /// the operator's lifetime either way).
  const Vector& inverse_column(std::size_t node) const;

  std::size_t warmed_columns() const { return warm_.size(); }
  /// Columns computed on demand past the warm set (locked reads).
  std::size_t overflow_columns() const;

  /// Rough resident footprint: LU storage plus cached columns. Used by the
  /// serving layer to report engine-vs-workspace memory.
  std::size_t memory_bytes() const;

 private:
  LuFactorization base_;
  std::unordered_map<std::size_t, Vector> warm_;  // immutable after ctor
  mutable std::mutex overflow_mu_;
  mutable std::unordered_map<std::size_t, Vector> overflow_;
};

class UpdateWorkspace {
 public:
  UpdateWorkspace() = default;

  /// Bind to a shared operator; many workspaces may share one.
  explicit UpdateWorkspace(std::shared_ptr<const FactoredOperator> op);

  /// Replace the current update set {(node, delta)}; deltas of zero are
  /// dropped, duplicate nodes are accumulated. Rebuilds the capacitance
  /// (k x k) system from the operator's cached columns.
  void set_updates(const std::vector<std::pair<std::size_t, double>>& updates);

  /// Solve (A0 + sum_i delta_i e_i e_i^T) x = b for the current update set.
  /// Deliberately non-const: reuses the workspace's scratch buffers.
  Vector solve(std::span<const double> b);

  const FactoredOperator& op() const { return *op_; }
  std::size_t base_size() const { return op_ ? op_->size() : 0; }
  std::size_t update_rank() const { return nodes_.size(); }

  /// Rough footprint of the mutable per-thread state (capacitance LU plus
  /// scratch) — the counterpart of FactoredOperator::memory_bytes().
  std::size_t memory_bytes() const;

 private:
  std::shared_ptr<const FactoredOperator> op_;
  std::vector<std::size_t> nodes_;
  std::vector<double> deltas_;
  std::vector<const Vector*> columns_;  // operator cache entries for nodes_
  LuFactorization capacitance_;         // LU of (D^{-1} + U^T A0^{-1} U)
  Vector rhs_scratch_;
};

}  // namespace tecfan::linalg
