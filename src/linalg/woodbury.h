// Sherman–Morrison–Woodbury solver for diagonal low-rank updates.
//
// Every runtime knob in TECfan perturbs the thermal system matrix only on
// its diagonal: toggling a TEC adds ±alpha*I Peltier terms to its two face
// nodes, and changing the fan level rescales the convection conductances of
// the sink nodes. Instead of refactoring the ~600x600 system each control
// interval, we factor the base matrix once and solve
//     (A0 + U D U^T) x = b
// via the Woodbury identity, where U selects the touched nodes and D holds
// the deltas. Columns of A0^{-1} U depend only on the node index, so they
// are cached across intervals: after warm-up a knob change costs one small
// k x k factorization instead of an O(n^3) refactor.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace tecfan::linalg {

class DiagonalUpdateSolver {
 public:
  DiagonalUpdateSolver() = default;

  /// Bind to a base factorization (shared so several solvers can reuse it).
  explicit DiagonalUpdateSolver(std::shared_ptr<const LuFactorization> base);

  /// Replace the current update set {(node, delta)}; deltas of zero are
  /// dropped, duplicate nodes are accumulated. Rebuilds the capacitance
  /// (k x k) system; O(k) base solves on first sight of each node.
  void set_updates(const std::vector<std::pair<std::size_t, double>>& updates);

  /// Solve (A0 + sum_i delta_i e_i e_i^T) x = b for the current update set.
  Vector solve(std::span<const double> b) const;

  std::size_t base_size() const { return base_ ? base_->size() : 0; }
  std::size_t update_rank() const { return nodes_.size(); }
  std::size_t cached_columns() const { return column_cache_.size(); }

 private:
  const Vector& inverse_column(std::size_t node);

  std::shared_ptr<const LuFactorization> base_;
  std::unordered_map<std::size_t, Vector> column_cache_;  // A0^{-1} e_node
  std::vector<std::size_t> nodes_;
  std::vector<double> deltas_;
  std::vector<const Vector*> columns_;  // cache entries for nodes_
  LuFactorization capacitance_;         // LU of (D^{-1} + U^T A0^{-1} U)
};

}  // namespace tecfan::linalg
