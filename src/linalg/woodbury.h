// Sherman–Morrison–Woodbury solver for diagonal low-rank updates, split
// into an immutable shared operator and a per-thread workspace.
//
// Every runtime knob in TECfan perturbs the thermal system matrix only on
// its diagonal: toggling a TEC adds ±alpha*I Peltier terms to its two face
// nodes, and changing the fan level rescales the convection conductances of
// the sink nodes. Instead of refactoring the ~600x600 system each control
// interval, we factor the base matrix once and solve
//     (A0 + U D U^T) x = b
// via the Woodbury identity, where U selects the touched nodes and D holds
// the deltas. Columns of A0^{-1} U depend only on the node index, so they
// are cached across intervals: after warm-up a knob change costs one small
// k x k factorization instead of an O(n^3) refactor.
//
// The split:
//   * FactoredOperator — the expensive, immutable part: the base
//     factorization plus the A0^{-1} e_i column cache. The update-able node
//     set is known up front (TEC faces, sink nodes), so callers pre-warm
//     those columns at construction and every later read is lock-free;
//     columns for nodes outside the warm set are published through per-node
//     atomic slots (double-checked locking: first use computes under a
//     mutex, every later read is lock-free). One FactoredOperator serves
//     any number of threads.
//   * UpdateWorkspace — the cheap, per-thread part: the current update set,
//     its k x k capacitance factorization, and solve scratch. Constructing
//     one costs a few small allocations, never a base refactor.
//
// Backends. The paper's Sec. III-E observation — thermal influence is
// local, so the conductance matrix is by nature a band matrix — applies to
// the full chip network, not just the per-core estimator. When constructed
// from a SparseMatrix, FactoredOperator reorders the system with reverse
// Cuthill–McKee (linalg/ordering.h) and factors it as a banded LU in
// O(n·b²) instead of dense O(n³); every solve then costs O(n·b) instead of
// O(n²), and the warm columns are produced by one blocked multi-RHS banded
// solve. The permutation is applied inside solve_base (gather rhs, banded
// solve, scatter solution), so callers and workspaces are oblivious to the
// ordering. The dense path (Cholesky when the base matrix is exactly
// symmetric, LU otherwise) is kept both as an explicit backend choice and
// as the automatic fallback when RCM finds no useful band structure
// (4·b > n, e.g. a dense coupling row).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/banded.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace tecfan::linalg {

/// Base-factorization backend selection for FactoredOperator.
enum class SolveBackend {
  kAuto,    // banded when the RCM bandwidth is small enough, else dense
  kDense,   // dense Cholesky (exactly symmetric base) or LU
  kBanded,  // RCM-permuted band Cholesky/LU regardless of bandwidth
};

class FactoredOperator {
 public:
  /// Dense backend: factor A0 and pre-warm the A0^{-1} e_i columns for
  /// `warm_nodes` (deduplicated; out-of-range nodes are rejected). Warmed
  /// columns are immutable afterwards, so reads need no synchronization.
  explicit FactoredOperator(DenseMatrix a0,
                            std::span<const std::size_t> warm_nodes = {});

  /// Backend-selecting form: RCM-reorder the sparsity pattern, factor in
  /// banded form when profitable (see SolveBackend), and pre-warm all
  /// `warm_nodes` columns with one blocked multi-RHS solve.
  explicit FactoredOperator(const SparseMatrix& a0,
                            std::span<const std::size_t> warm_nodes = {},
                            SolveBackend backend = SolveBackend::kAuto);

  FactoredOperator(const FactoredOperator&) = delete;
  FactoredOperator& operator=(const FactoredOperator&) = delete;

  std::size_t size() const { return n_; }
  bool valid() const { return n_ > 0; }

  /// True when the banded backend is active.
  bool banded() const { return band_.valid() || band_chol_.valid(); }
  /// RCM half-bandwidth of the permuted base matrix (0 for dense).
  std::size_t bandwidth() const {
    return banded() ? band_base_.lower_bandwidth() : 0;
  }
  /// Permuted base matrix (banded backend only): B = P A0 P^T with
  /// B(i, j) = A0(perm[i], perm[j]). UpdateWorkspace copies this to
  /// refactor directly when an update set is too large for Woodbury.
  const BandMatrix& band_base() const;
  /// RCM permutation, new index -> old node (empty for dense).
  std::span<const std::size_t> permutation() const { return perm_; }
  /// Inverse permutation, old node -> new index (empty for dense).
  std::span<const std::size_t> positions() const { return pos_; }

  /// Solve A0 x = b (no diagonal update).
  Vector solve_base(std::span<const double> b) const;

  /// A0^{-1} e_node. Thread-safe: warm columns are read lock-free; a cold
  /// node computes its column once under a lock and publishes it through an
  /// atomic slot, so every later read — including of other threads' columns
  /// — is lock-free (references stay valid for the operator's lifetime).
  const Vector& inverse_column(std::size_t node) const;

  std::size_t warmed_columns() const { return warm_.size(); }
  /// Columns computed on demand past the warm set.
  std::size_t overflow_columns() const {
    return cold_count_.load(std::memory_order_acquire);
  }

  /// Rough resident footprint: factor storage plus cached columns. Used by
  /// the serving layer to report engine-vs-workspace memory.
  std::size_t memory_bytes() const;

 private:
  void init_dense(DenseMatrix a0);
  void warm_columns(std::span<const std::size_t> warm_nodes);
  Vector solve_unit_column(std::size_t node) const;

  std::size_t n_ = 0;
  // Dense backend (one of the two is valid): Cholesky for exactly
  // symmetric base matrices, LU otherwise.
  LuFactorization lu_;
  CholeskyFactorization chol_;
  // Banded backend: RCM-permuted base matrix and its factorization — band
  // Cholesky when the base is positive definite (the thermal conductance
  // matrices are), pivoted banded LU otherwise. Only one is valid.
  BandLu band_;
  BandCholesky band_chol_;
  BandMatrix band_base_;
  std::vector<std::size_t> perm_;  // new index -> old node
  std::vector<std::size_t> pos_;   // old node -> new index

  std::unordered_map<std::size_t, Vector> warm_;  // immutable after ctor
  // Cold columns: one atomic publication slot per node plus a lock that
  // only serializes first-time computes (double-checked locking).
  mutable std::unique_ptr<std::atomic<const Vector*>[]> cold_;
  mutable std::mutex cold_mu_;
  mutable std::vector<std::unique_ptr<const Vector>> cold_storage_;
  mutable std::atomic<std::size_t> cold_count_{0};
};

class UpdateWorkspace {
 public:
  UpdateWorkspace() = default;

  /// Bind to a shared operator; many workspaces may share one.
  explicit UpdateWorkspace(std::shared_ptr<const FactoredOperator> op);

  /// Replace the current update set {(node, delta)}; deltas of zero are
  /// dropped, duplicate nodes are accumulated. Small sets rebuild the
  /// k x k capacitance system from the operator's cached columns; on a
  /// banded operator, sets large enough that the Woodbury bookkeeping
  /// would cost more than an O(n·b²) banded refactor (k³/3 > n·b·2b, e.g.
  /// every TEC toggled) refactor A0 + D directly instead — the update is
  /// diagonal, so the permuted band structure is unchanged.
  void set_updates(const std::vector<std::pair<std::size_t, double>>& updates);

  /// Solve (A0 + sum_i delta_i e_i e_i^T) x = b for the current update set.
  /// Deliberately non-const: reuses the workspace's scratch buffers.
  Vector solve(std::span<const double> b);

  const FactoredOperator& op() const { return *op_; }
  std::size_t base_size() const { return op_ ? op_->size() : 0; }
  std::size_t update_rank() const { return nodes_.size(); }
  /// True when the current update set is absorbed by a direct banded
  /// refactor instead of the Woodbury identity.
  bool refactored() const { return mode_ == Mode::kRefactor; }

  /// Rough footprint of the mutable per-thread state (capacitance LU or
  /// banded refactor plus scratch) — the counterpart of
  /// FactoredOperator::memory_bytes().
  std::size_t memory_bytes() const;

 private:
  enum class Mode { kBase, kWoodbury, kRefactor };

  std::shared_ptr<const FactoredOperator> op_;
  Mode mode_ = Mode::kBase;
  std::vector<std::size_t> nodes_;
  std::vector<double> deltas_;
  std::vector<const Vector*> columns_;  // operator cache entries for nodes_
  LuFactorization capacitance_;         // LU of (D^{-1} + U^T A0^{-1} U)
  BandLu refactored_;                   // banded LU of P (A0 + D) P^T
  Vector rhs_scratch_;
  Vector perm_scratch_;
};

}  // namespace tecfan::linalg
