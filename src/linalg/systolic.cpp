#include "linalg/systolic.h"

#include "util/error.h"

namespace tecfan::linalg {

SystolicRunResult systolic_band_matvec(const BandMatrix& a,
                                       std::span<const double> x) {
  TECFAN_REQUIRE(x.size() == a.size(), "systolic matvec size mismatch");
  const std::size_t n = a.size();
  const std::size_t kl = a.lower_bandwidth();
  const std::size_t ku = a.upper_bandwidth();
  const std::size_t w = kl + ku + 1;  // one PE per diagonal

  SystolicRunResult res;
  res.pe_count = w;
  res.y.assign(n, 0.0);

  // Row r of the product accumulates contributions from diagonals
  // d in [-kl, +ku] (column c = r + d). We schedule like the classic
  // space-optimal array: at cycle t, PE for diagonal d processes row
  // r = t - (d + kl); each PE fires once per row, so row r completes at
  // cycle r + w - 1 and the final output drains at cycle n - 1 + w.
  for (std::size_t t = 0; t < n + w; ++t) {
    for (std::size_t pe = 0; pe < w; ++pe) {
      // pe handles diagonal offset d = pe - kl (column = row + d).
      if (t < pe) continue;
      const std::size_t r = t - pe;
      if (r >= n) continue;
      const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(r) +
                               static_cast<std::ptrdiff_t>(pe) -
                               static_cast<std::ptrdiff_t>(kl);
      if (c < 0 || c >= static_cast<std::ptrdiff_t>(n)) continue;
      const double coeff = a.get(r, static_cast<std::size_t>(c));
      res.y[r] += coeff * x[static_cast<std::size_t>(c)];
      ++res.multiply_ops;
      res.cycles = t + 1;
    }
  }
  return res;
}

double SystolicCostModel::multiplier_area_mm2() const {
  const double scale = static_cast<double>(operand_bits) /
                       static_cast<double>(ref_multiplier_bits);
  return ref_multiplier_area_mm2 * scale * scale;
}

double SystolicCostModel::total_area_mm2() const {
  return multiplier_area_mm2() * static_cast<double>(multiplier_count());
}

double SystolicCostModel::area_overhead() const {
  return total_area_mm2() / die_area_mm2;
}

double SystolicCostModel::power_w() const {
  return total_area_mm2() * power_density_w_per_mm2;
}

}  // namespace tecfan::linalg
