// Dense LU factorization with partial pivoting.
//
// This is the workhorse behind the thermal steady-state and transient
// solvers: the conductance matrix G becomes nonsymmetric-indefinite once
// Peltier terms are folded in, so Cholesky is not always applicable. The
// factorization is computed once per chip configuration and then reused for
// many right-hand sides (and, through WoodburySolver, for low-rank knob
// updates), so factor cost is amortized away.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"

namespace tecfan::linalg {

class LuFactorization {
 public:
  LuFactorization() = default;

  /// Factor A = P L U in place; throws numerical_error on singularity.
  explicit LuFactorization(DenseMatrix a);

  std::size_t size() const { return lu_.rows(); }
  bool valid() const { return lu_.rows() > 0; }

  /// Solve A x = b.
  Vector solve(std::span<const double> b) const;

  /// Solve A^T x = b (needed by Woodbury with asymmetric updates).
  Vector solve_transpose(std::span<const double> b) const;

  /// Solve in place (x on entry is b).
  void solve_in_place(std::span<double> x) const;

  /// Solve A x = b into a caller-owned buffer (resized as needed) without
  /// temporaries — batch evaluation reuses one buffer per worker. Bit-exact
  /// with solve().
  void solve_into(std::span<const double> b, Vector& x) const;

  /// Determinant sign * |det| via the diagonal of U (may over/underflow for
  /// large systems; intended for small-matrix tests).
  double determinant() const;

 private:
  /// Forward/back substitution on an already row-permuted rhs.
  void solve_in_place_permuted(std::span<double> x) const;

  DenseMatrix lu_;
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is perm_[i]
  int perm_sign_ = 1;
};

}  // namespace tecfan::linalg
