// Jacobi-preconditioned iterative Krylov solvers.
//
// CG handles the SPD conductance systems (TECs off); BiCGSTAB handles the
// general case once Peltier terms are active. These are used for large grids
// and as an independent cross-check of the direct solvers; the runtime
// controllers use the cached dense factorizations instead.
#pragma once

#include <cstddef>

#include "linalg/sparse.h"

namespace tecfan::linalg {

struct IterativeOptions {
  std::size_t max_iterations = 2000;
  double tolerance = 1e-10;  // relative to ||b||
  bool jacobi_preconditioner = true;
};

struct IterativeResult {
  Vector x;
  std::size_t iterations = 0;
  double residual = 0.0;  // final relative residual
  bool converged = false;
};

/// Conjugate gradient; A must be symmetric positive definite.
IterativeResult conjugate_gradient(const SparseMatrix& a,
                                   std::span<const double> b,
                                   const IterativeOptions& opts = {});

/// BiCGSTAB for general square systems.
IterativeResult bicgstab(const SparseMatrix& a, std::span<const double> b,
                         const IterativeOptions& opts = {});

}  // namespace tecfan::linalg
