// Dense row-major matrix of doubles plus the handful of BLAS-1/2 kernels the
// thermal solvers need. The thermal networks in this project are a few
// hundred nodes, where a cache-friendly dense factorization (factored once,
// reused for thousands of triangular solves via the Woodbury identity) beats
// a general sparse direct solver in both code size and runtime.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tecfan::linalg {

using Vector = std::vector<double>;

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) { return {&data_[r * cols_], cols_}; }
  std::span<const double> row(std::size_t r) const {
    return {&data_[r * cols_], cols_};
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// y = A x (sizes must match).
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// y = A^T x.
  void matvec_transpose(std::span<const double> x, std::span<double> y) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Returns true if |A - A^T| has no entry above tol (square only).
  bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// r = a - b.
Vector subtract(std::span<const double> a, std::span<const double> b);

/// a += s * b.
void axpy(double s, std::span<const double> b, std::span<double> a);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// Infinity norm.
double norm_inf(std::span<const double> a);

}  // namespace tecfan::linalg
