// Compressed-sparse-row matrix with a triplet builder.
//
// The RC thermal network assembles naturally as (i, j, g) triplets; the CSR
// form backs the iterative solvers (CG/BiCGSTAB) and fast matvec for the
// residual checks. Duplicate triplets accumulate, which lets the network
// builder emit one triplet per physical conductance without bookkeeping.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace tecfan::linalg {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class SparseMatrix;

/// Accumulates triplets and compresses them into a SparseMatrix.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols);

  void add(std::size_t row, std::size_t col, double value);

  /// Add a symmetric conductance between nodes i and j:
  /// +g on both diagonals, -g on both off-diagonals.
  void add_conductance(std::size_t i, std::size_t j, double g);

  /// Add g only to the diagonal of node i (e.g. a link to a fixed-potential
  /// boundary such as ambient).
  void add_to_diagonal(std::size_t i, double g);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  SparseMatrix build() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A x.
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// Value at (r, c); zero when not stored. O(log nnz_row).
  double at(std::size_t r, std::size_t c) const;

  /// Diagonal entries (zero where absent).
  Vector diagonal() const;

  /// Densify (tests and small systems only).
  DenseMatrix to_dense() const;

  /// Max |A - A^T| entry; 0 for exactly symmetric.
  double asymmetry() const;

  std::span<const std::size_t> row_offsets() const { return row_offsets_; }
  std::span<const std::size_t> col_indices() const { return col_indices_; }
  std::span<const double> values() const { return values_; }

 private:
  friend class SparseBuilder;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;  // sorted within each row
  std::vector<double> values_;
};

}  // namespace tecfan::linalg
