#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tecfan::linalg {

SparseBuilder::SparseBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseBuilder::add(std::size_t row, std::size_t col, double value) {
  TECFAN_REQUIRE(row < rows_ && col < cols_, "triplet index out of range");
  if (value != 0.0) triplets_.push_back({row, col, value});
}

void SparseBuilder::add_conductance(std::size_t i, std::size_t j, double g) {
  TECFAN_REQUIRE(i != j, "conductance endpoints must differ");
  add(i, i, g);
  add(j, j, g);
  add(i, j, -g);
  add(j, i, -g);
}

void SparseBuilder::add_to_diagonal(std::size_t i, double g) { add(i, i, g); }

SparseMatrix SparseBuilder::build() const {
  SparseMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_offsets_.assign(rows_ + 1, 0);
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    double acc = 0.0;
    while (j < sorted.size() && sorted[j].row == sorted[i].row &&
           sorted[j].col == sorted[i].col) {
      acc += sorted[j].value;
      ++j;
    }
    if (acc != 0.0) {
      m.col_indices_.push_back(sorted[i].col);
      m.values_.push_back(acc);
      ++m.row_offsets_[sorted[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r)
    m.row_offsets_[r + 1] += m.row_offsets_[r];
  return m;
}

void SparseMatrix::matvec(std::span<const double> x,
                          std::span<double> y) const {
  TECFAN_REQUIRE(x.size() == cols_ && y.size() == rows_,
                 "sparse matvec size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      s += values_[k] * x[col_indices_[k]];
    y[r] = s;
  }
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  TECFAN_REQUIRE(r < rows_ && c < cols_, "sparse at() out of range");
  const auto begin = col_indices_.begin() +
                     static_cast<std::ptrdiff_t>(row_offsets_[r]);
  const auto end = col_indices_.begin() +
                   static_cast<std::ptrdiff_t>(row_offsets_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

Vector SparseMatrix::diagonal() const {
  Vector d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) d[r] = at(r, std::min(r, cols_ - 1));
  return d;
}

DenseMatrix SparseMatrix::to_dense() const {
  DenseMatrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      m(r, col_indices_[k]) += values_[k];
  return m;
}

double SparseMatrix::asymmetry() const {
  double worst = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const std::size_t c = col_indices_[k];
      worst = std::max(worst, std::abs(values_[k] - at(c, r)));
    }
  return worst;
}

}  // namespace tecfan::linalg
