#include "linalg/cholesky.h"

#include <cmath>

#include "util/error.h"

namespace tecfan::linalg {

CholeskyFactorization::CholeskyFactorization(const DenseMatrix& a) {
  TECFAN_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  l_ = DenseMatrix(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      double s = a(r, c);
      const double* lr = &l_.data()[r * n];
      const double* lc = &l_.data()[c * n];
      for (std::size_t k = 0; k < c; ++k) s -= lr[k] * lc[k];
      if (r == c) {
        if (s <= 0.0)
          throw numerical_error("Cholesky: matrix not positive definite at " +
                                std::to_string(r));
        l_(r, c) = std::sqrt(s);
      } else {
        l_(r, c) = s / l_(c, c);
      }
    }
  }
}

Vector CholeskyFactorization::solve(std::span<const double> b) const {
  TECFAN_REQUIRE(b.size() == size(), "solve rhs size mismatch");
  Vector x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void CholeskyFactorization::solve_in_place(std::span<double> x) const {
  TECFAN_REQUIRE(valid(), "solve on empty factorization");
  TECFAN_REQUIRE(x.size() == size(), "solve rhs size mismatch");
  const std::size_t n = size();
  // L y = b.
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = &l_.data()[r * n];
    double s = x[r];
    for (std::size_t c = 0; c < r; ++c) s -= row[c] * x[c];
    x[r] = s / row[r];
  }
  // L^T x = y.
  for (std::size_t ri = n; ri-- > 0;) {
    double s = x[ri];
    for (std::size_t r = ri + 1; r < n; ++r) s -= l_(r, ri) * x[r];
    x[ri] = s / l_(ri, ri);
  }
}

}  // namespace tecfan::linalg
