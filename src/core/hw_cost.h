// Hardware cost model for TECfan's on-chip estimator (Sec. III-E).
//
// The paper sizes an aggressive design that evaluates one core's temperature
// per cycle with a systolic band-matrix multiplier array: M x K fixed-point
// multipliers (M = components per core, K = neighbours with thermal impact),
// 8-bit operands, area scaled from a published 16-bit 65 nm multiplier
// (0.057 mm^2 [26]) and power from the POWER6 FPU density (0.56 W/mm^2
// [27]). This module reproduces those estimates for arbitrary parameters
// and reports them against the paper's quoted numbers (54 multipliers,
// ~0.03 W, < 1.7% of the target CMP).
#pragma once

#include "linalg/systolic.h"

namespace tecfan::core {

struct HwCostReport {
  std::size_t multipliers = 0;
  double multiplier_area_mm2 = 0.0;
  double total_area_mm2 = 0.0;
  double area_overhead_frac = 0.0;   // of the reference die
  double power_w = 0.0;
  double power_overhead_frac = 0.0;  // of the reference chip power
};

struct HwCostInputs {
  std::size_t components_per_core = 18;  // M
  std::size_t thermal_neighbours = 3;    // K
  int operand_bits = 8;
  double die_area_mm2 = 149.76;   // 10.4 mm x 14.4 mm SCC-like chip
  double chip_power_w = 125.9;    // peak Table I power for the overhead ratio
};

/// Evaluate the Sec. III-E cost model.
HwCostReport estimate_hw_cost(const HwCostInputs& in);

}  // namespace tecfan::core
