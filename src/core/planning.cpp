#include "core/planning.h"

#include <algorithm>
#include <limits>

namespace tecfan::core {

double Prediction::max_temp_k() const {
  if (spot_temps_k.empty()) return 0.0;
  return *std::max_element(spot_temps_k.begin(), spot_temps_k.end());
}

double Prediction::epi() const {
  if (ips <= 0.0) return std::numeric_limits<double>::infinity();
  return power.total_w() / ips;
}

void PlanningModel::evaluate_batch(const ActionSet::Slice& slice,
                                   const KnobState& base,
                                   std::vector<Prediction>& out) {
  // Reference implementation and the bit-exactness contract: one serial
  // predict() per candidate, in slice order.
  out.resize(slice.size());
  KnobState knobs = base;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    slice.set->materialize(slice.begin + i, knobs);
    out[i] = predict(knobs);
  }
}

}  // namespace tecfan::core
