#include "core/planning.h"

#include <algorithm>
#include <limits>

namespace tecfan::core {

double Prediction::max_temp_k() const {
  if (spot_temps_k.empty()) return 0.0;
  return *std::max_element(spot_temps_k.begin(), spot_temps_k.end());
}

double Prediction::epi() const {
  if (ips <= 0.0) return std::numeric_limits<double>::infinity();
  return power.total_w() / ips;
}

}  // namespace tecfan::core
