// Runtime policy interface.
//
// The simulator calls decide() once per (lower-level) control interval with
// the freshly observed PlanningModel and the knobs currently applied; the
// returned knobs take effect for the next interval. Policies that manage
// the fan (TECfan's higher level, OFTEC, Oracle) do so on their own coarser
// cadence, counted in control intervals; under the Sec. IV-C fan-sweep
// protocol the harness disables fan management and fixes the level instead.
#pragma once

#include <memory>
#include <string_view>

#include "core/actions.h"
#include "core/planning.h"

namespace tecfan::core {

struct PolicyOptions {
  bool manage_fan = false;
  int fan_period_intervals = 500;  // e.g. 1 s at a 2 ms control period
  /// Safety margin (kelvin) the fan loop keeps below the threshold before
  /// slowing down, to avoid flapping at the boundary.
  double fan_margin_k = 0.5;
  /// Control slack (kelvin) subtracted from T_th in the lower-level
  /// constraint checks, absorbing the Eq. (5) estimator's bias against the
  /// true transient plant.
  double constraint_margin_k = 0.1;
  /// Move all cores' DVFS together (Sec. III-E: "TECfan can be integrated
  /// with chip-level DVFS seamlessly"). Per-core DVFS remains the default.
  bool chip_wide_dvfs = false;
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string_view name() const = 0;

  /// Forget any run state (interval counters etc.). Called at run start.
  virtual void reset() {}

  /// Choose the knobs for the next interval.
  virtual KnobState decide(PlanningModel& model, const KnobState& current) = 0;
};

using PolicyPtr = std::unique_ptr<Policy>;

}  // namespace tecfan::core
