// The four reactive baselines of Sec. V-A.
//
// Fan-only:  no TEC/DVFS actuation at all; the fan level is fixed by the
//            Sec. IV-C sweep (the "ideal" non-implementable baseline).
// Fan+TEC:   per-device threshold rule on sensed temperatures — a TEC turns
//            on when any component under it exceeds T_th and off when all of
//            them are below it. Fan as in Fan-only.
// Fan+DVFS:  classic DVFS dynamic thermal management — a core steps down
//            when any of its components exceeds T_th and steps up otherwise.
// DVFS+TEC:  both rules applied independently, unaware of each other (the
//            paper's illustration of why uncoordinated knobs interfere).
#pragma once

#include "core/control_engine.h"
#include "core/policy.h"

namespace tecfan::core {

namespace strategies {
/// The Fan+TEC device rule, applied to `knobs` in place: a TEC turns on
/// when any covered spot exceeds T_th, off when all sit below the
/// hysteresis margin. Stateless — reads only sensed temperatures.
void apply_tec_rule(const PlanningModel& model, KnobState& knobs,
                    double off_margin_k);
/// The Fan+DVFS per-core rule, applied to `knobs` in place.
void apply_dvfs_rule(const PlanningModel& model, KnobState& knobs,
                     double up_margin_k);
}  // namespace strategies

class FanOnlyPolicy final : public Policy {
 public:
  std::string_view name() const override { return "Fan-only"; }
  KnobState decide(PlanningModel& model, const KnobState& current) override;
};

class FanTecPolicy final : public Policy {
 public:
  /// `off_margin_k`: hysteresis below T_th before a device turns off. The
  /// paper's verbatim rule (off as soon as every covered component is below
  /// T_th) bang-bangs when the die time constant is shorter than the control
  /// period; a small margin recovers the sustained-on behaviour of Fig. 4(b).
  explicit FanTecPolicy(double off_margin_k = 6.0);

  std::string_view name() const override { return "Fan+TEC"; }
  KnobState decide(PlanningModel& model, const KnobState& current) override;

 private:
  double off_margin_k_;
};

class FanDvfsPolicy final : public Policy {
 public:
  /// `up_margin_k`: guard band below T_th before a core steps back up
  /// (classic DTM guard band; keeps the regulation point just under the
  /// threshold instead of oscillating across it).
  explicit FanDvfsPolicy(double up_margin_k = 2.0);

  std::string_view name() const override { return "Fan+DVFS"; }
  KnobState decide(PlanningModel& model, const KnobState& current) override;

 private:
  double up_margin_k_;
};

class DvfsTecPolicy final : public Policy {
 public:
  explicit DvfsTecPolicy(double tec_off_margin_k = 6.0);

  std::string_view name() const override { return "DVFS+TEC"; }
  KnobState decide(PlanningModel& model, const KnobState& current) override;

 private:
  double tec_off_margin_k_;
};

namespace detail {
// Old home of the reactive rules; forwarders kept for source compat.
using strategies::apply_dvfs_rule;
using strategies::apply_tec_rule;
}  // namespace detail

}  // namespace tecfan::core
