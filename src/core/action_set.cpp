#include "core/action_set.h"

#include <functional>

#include "util/error.h"

namespace tecfan::core {
namespace {

std::size_t enumerated_count(const ControlDims& dims,
                             const ActionSpec& spec) {
  std::size_t count = std::size_t{1} << dims.tecs;
  if (spec.include_dvfs)
    for (int c = 0; c < dims.cores; ++c)
      count *= static_cast<std::size_t>(dims.dvfs_levels);
  if (spec.include_fan) count *= static_cast<std::size_t>(dims.fan_levels);
  return count;
}

}  // namespace

ActionSet::ActionSet(const ControlDims& dims, const ActionSpec& spec)
    : dims_(dims), spec_(spec) {
  TECFAN_REQUIRE(dims.cores > 0 && dims.dvfs_levels > 0 &&
                     dims.fan_levels > 0,
                 "ActionSet requires positive dimensions");
  TECFAN_REQUIRE(dims.tecs < 64, "TEC mask must fit 64 bits");
  TECFAN_REQUIRE(dims.dvfs_levels <= 255 && dims.fan_levels <= 255,
                 "knob levels must fit a byte");
  count_ = enumerated_count(dims, spec);

  const auto cores = static_cast<std::size_t>(dims.cores);
  if (spec.include_dvfs) dvfs_.reserve(count_ * cores);
  tec_on_.reserve(count_ * dims.tecs);
  if (spec.include_fan) fan_.reserve(count_);

  // Same nesting as the legacy exhaustive recursion: fan outermost, DVFS
  // with core 0 slowest-varying, TEC mask innermost.
  const std::uint64_t tec_combos = std::uint64_t{1} << dims.tecs;
  std::vector<std::uint8_t> dvfs_row(cores, 0);
  int fan_lvl = 0;

  std::function<void(std::size_t)> dvfs_rec = [&](std::size_t core) {
    if (core == cores || !spec.include_dvfs) {
      for (std::uint64_t mask = 0; mask < tec_combos; ++mask) {
        if (spec.include_dvfs)
          dvfs_.insert(dvfs_.end(), dvfs_row.begin(), dvfs_row.end());
        for (std::size_t t = 0; t < dims_.tecs; ++t)
          tec_on_.push_back((mask >> t) & 1u ? 1 : 0);
        if (spec.include_fan)
          fan_.push_back(static_cast<std::uint8_t>(fan_lvl));
      }
      return;
    }
    for (int lvl = 0; lvl < dims_.dvfs_levels; ++lvl) {
      dvfs_row[core] = static_cast<std::uint8_t>(lvl);
      dvfs_rec(core + 1);
    }
  };

  const int fan_span = spec.include_fan ? dims.fan_levels : 1;
  for (fan_lvl = 0; fan_lvl < fan_span; ++fan_lvl) dvfs_rec(0);
  TECFAN_REQUIRE(tec_on_.size() == count_ * dims_.tecs,
                 "ActionSet enumeration miscounted");
}

void ActionSet::materialize(std::size_t i, KnobState& out) const {
  const auto cores = static_cast<std::size_t>(dims_.cores);
  if (spec_.include_dvfs) {
    const std::uint8_t* row = dvfs_.data() + i * cores;
    for (std::size_t c = 0; c < cores; ++c) out.dvfs[c] = row[c];
  }
  const std::uint8_t* tec = tec_on_.data() + i * dims_.tecs;
  for (std::size_t t = 0; t < dims_.tecs; ++t) out.tec_on[t] = tec[t];
  if (spec_.include_fan) out.fan_level = fan_[i];
}

}  // namespace tecfan::core
