#include "core/chip_planning_model.h"

#include <utility>

#include "util/error.h"
#include "util/parallel.h"

namespace tecfan::core {
namespace {

std::shared_ptr<const thermal::ThermalEngine> require_engine(
    std::shared_ptr<const thermal::ThermalEngine> engine) {
  TECFAN_REQUIRE(engine != nullptr, "ChipPlanningModel requires an engine");
  return engine;
}

}  // namespace

ChipPlanningModel::ChipPlanningModel(
    std::shared_ptr<const thermal::ThermalEngine> engine, Config config)
    : engine_(require_engine(std::move(engine))),
      model_(engine_->model_ptr()),
      config_(std::move(config)),
      solver_(engine_) {}

void ChipPlanningModel::reset() {
  state_estimate_.clear();
  has_observation_ = false;
}

int ChipPlanningModel::core_count() const {
  return model_->floorplan().core_count();
}

std::size_t ChipPlanningModel::tec_count() const {
  return model_->tec_count();
}

std::size_t ChipPlanningModel::spot_count() const {
  return model_->component_count();
}

int ChipPlanningModel::core_of_spot(std::size_t spot) const {
  return model_->floorplan().component(spot).core;
}

const std::vector<std::size_t>& ChipPlanningModel::tecs_over(
    std::size_t spot) const {
  return model_->tecs_over(spot);
}

const linalg::Vector& ChipPlanningModel::sensed_temps() const {
  TECFAN_REQUIRE(has_observation_, "sensed_temps before first observe()");
  return last_.comp_temps_k;
}

void ChipPlanningModel::observe(const Observation& obs) {
  TECFAN_REQUIRE(obs.comp_temps_k.size() == model_->component_count(),
                 "observation temps size mismatch");
  TECFAN_REQUIRE(obs.comp_dyn_power_w.size() == model_->component_count(),
                 "observation power size mismatch");
  TECFAN_REQUIRE(
      obs.core_ips.size() ==
          static_cast<std::size_t>(model_->floorplan().core_count()),
      "observation IPS size mismatch");
  TECFAN_REQUIRE(obs.applied.tec_on.size() == model_->tec_count(),
                 "observation knob size mismatch");
  last_ = obs;

  if (state_estimate_.empty()) {
    // Bootstrap the unobservable nodes from a steady solve at the observed
    // operating point (the paper similarly iterates HotSpot to a stable
    // initial temperature before starting).
    CandidateEval eval = evaluate_power(obs.applied);
    state_estimate_ = solver_.solve(eval.comp_power, eval.cooling);
  }
  // Sensor fusion: die nodes are measured directly.
  for (std::size_t c = 0; c < model_->component_count(); ++c)
    state_estimate_[model_->die_node(c)] = obs.comp_temps_k[c];
  has_observation_ = true;
}

ChipPlanningModel::CandidateEval ChipPlanningModel::evaluate_power(
    const KnobState& knobs) const {
  TECFAN_REQUIRE(knobs.dvfs.size() ==
                     static_cast<std::size_t>(core_count()),
                 "knob DVFS size mismatch");
  TECFAN_REQUIRE(knobs.tec_on.size() == model_->tec_count(),
                 "knob TEC size mismatch");
  CandidateEval eval;
  const std::size_t n_comp = model_->component_count();
  eval.comp_power.assign(n_comp, 0.0);
  const double chip_area = model_->floorplan().chip_area();

  const bool first = !has_observation_;
  for (std::size_t c = 0; c < n_comp; ++c) {
    const auto& comp = model_->floorplan().component(c);
    const auto core = static_cast<std::size_t>(comp.core);
    // Eq. (7): dynamic power scaled from the previous interval measurement.
    double dyn = 0.0;
    if (!first) {
      const int prev_lvl = last_.applied.dvfs[core];
      dyn = last_.comp_dyn_power_w[c] *
            config_.dvfs.dyn_scale(prev_lvl, knobs.dvfs[core]);
    }
    // Eq. (6): leakage, linear in the last sensed temperature.
    const double t_prev =
        first ? config_.threshold_k : last_.comp_temps_k[c];
    const double leak = config_.leakage.component_leakage_w(
        comp.rect.area() / chip_area, t_prev);
    eval.comp_power[c] = dyn + leak;
    eval.dynamic_w += dyn;
    eval.leakage_w += leak;
  }
  eval.cooling.tec_on = knobs.tec_on;
  eval.cooling.airflow_cfm = config_.fan.airflow_cfm(knobs.fan_level);
  return eval;
}

Prediction ChipPlanningModel::finish_prediction(
    const KnobState& knobs, const CandidateEval& eval,
    linalg::Vector node_temps) const {
  Prediction pred;
  pred.spot_temps_k.resize(model_->component_count());
  for (std::size_t c = 0; c < model_->component_count(); ++c)
    pred.spot_temps_k[c] = node_temps[model_->die_node(c)];
  pred.power.dynamic_w = eval.dynamic_w;
  pred.power.leakage_w = eval.leakage_w;
  pred.power.tec_w = model_->total_tec_power(node_temps, eval.cooling);
  pred.power.fan_w = config_.fan.power_w(knobs.fan_level);
  // Eq. (11)/(10): chip IPS from measured previous-interval per-core IPS.
  double ips = 0.0;
  if (has_observation_) {
    for (int n = 0; n < core_count(); ++n) {
      const auto ni = static_cast<std::size_t>(n);
      ips += last_.core_ips[ni] *
             config_.dvfs.freq_scale(last_.applied.dvfs[ni], knobs.dvfs[ni]);
    }
  }
  pred.ips = ips;
  pred.capacity_ips = ips;
  return pred;
}

Prediction ChipPlanningModel::predict(const KnobState& knobs) {
  return predict_detailed(knobs, nullptr, nullptr);
}

Prediction ChipPlanningModel::predict_detailed(
    const KnobState& knobs, linalg::Vector* steady_nodes_out,
    linalg::Vector* blended_nodes_out) {
  TECFAN_REQUIRE(has_observation_, "predict before first observe()");
  CandidateEval eval = evaluate_power(knobs);
  linalg::Vector steady = solver_.solve(eval.comp_power, eval.cooling);
  if (steady_nodes_out) *steady_nodes_out = steady;
  linalg::Vector next = thermal::exponential_step(
      *model_, steady, state_estimate_, config_.control_period_s);
  if (blended_nodes_out) *blended_nodes_out = next;
  return finish_prediction(knobs, eval, std::move(next));
}

std::vector<Prediction> ChipPlanningModel::predict_batch(
    std::span<const KnobState> knobs) {
  TECFAN_REQUIRE(has_observation_, "predict_batch before first observe()");
  std::vector<Prediction> out(knobs.size());
  parallel_for(knobs.size(), [&](std::size_t i) {
    // Each candidate gets its own workspace over the shared engine, so
    // evaluations are independent and match the serial predict() bit for
    // bit (same operator, same update arithmetic).
    thermal::SteadyStateSolver solver(engine_);
    CandidateEval eval = evaluate_power(knobs[i]);
    linalg::Vector steady = solver.solve(eval.comp_power, eval.cooling);
    linalg::Vector next = thermal::exponential_step(
        *model_, steady, state_estimate_, config_.control_period_s);
    out[i] = finish_prediction(knobs[i], eval, std::move(next));
  });
  return out;
}

void ChipPlanningModel::evaluate_batch(const ActionSet::Slice& slice,
                                       const KnobState& base,
                                       std::vector<Prediction>& out) {
  TECFAN_REQUIRE(has_observation_, "evaluate_batch before first observe()");
  out.resize(slice.size());
  parallel_for(slice.size(), [&](std::size_t i) {
    // Same per-candidate independence as predict_batch: a private solver
    // workspace over the shared engine keeps results bit-exact with the
    // serial predict() loop.
    thermal::SteadyStateSolver solver(engine_);
    KnobState knobs = base;
    slice.set->materialize(slice.begin + i, knobs);
    CandidateEval eval = evaluate_power(knobs);
    linalg::Vector steady = solver.solve(eval.comp_power, eval.cooling);
    linalg::Vector next = thermal::exponential_step(
        *model_, steady, state_estimate_, config_.control_period_s);
    out[i] = finish_prediction(knobs, eval, std::move(next));
  });
}

const ChipPlanningModel::Observation&
ChipPlanningModel::last_observation() const {
  TECFAN_REQUIRE(has_observation_, "no observation yet");
  return last_;
}

Prediction ChipPlanningModel::predict_steady(const KnobState& knobs) {
  TECFAN_REQUIRE(has_observation_, "predict_steady before first observe()");
  CandidateEval eval = evaluate_power(knobs);
  linalg::Vector steady = solver_.solve(eval.comp_power, eval.cooling);
  return finish_prediction(knobs, eval, std::move(steady));
}

}  // namespace tecfan::core
