#include "core/hw_cost.h"

#include "util/error.h"

namespace tecfan::core {

HwCostReport estimate_hw_cost(const HwCostInputs& in) {
  TECFAN_REQUIRE(in.components_per_core > 0 && in.thermal_neighbours > 0,
                 "cost model dimensions must be positive");
  TECFAN_REQUIRE(in.die_area_mm2 > 0 && in.chip_power_w > 0,
                 "reference die/power must be positive");
  linalg::SystolicCostModel model;
  model.components = in.components_per_core;
  model.neighbours = in.thermal_neighbours;
  model.operand_bits = in.operand_bits;
  model.die_area_mm2 = in.die_area_mm2;

  HwCostReport out;
  out.multipliers = model.multiplier_count();
  out.multiplier_area_mm2 = model.multiplier_area_mm2();
  out.total_area_mm2 = model.total_area_mm2();
  out.area_overhead_frac = model.area_overhead();
  out.power_w = model.power_w();
  out.power_overhead_frac = out.power_w / in.chip_power_w;
  return out;
}

}  // namespace tecfan::core
