#include "core/tecfan_policy.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.h"

namespace tecfan::core {
namespace strategies {
namespace {

/// Tracks the best (lowest-EPI) constraint-satisfying configuration seen.
struct BestTracker {
  KnobState knobs;
  double epi = std::numeric_limits<double>::infinity();
  bool valid = false;

  void consider(const KnobState& k, const Prediction& p, double tth) {
    if (p.max_temp_k() > tth) return;
    if (!valid || p.epi() < epi) {
      knobs = k;
      epi = p.epi();
      valid = true;
    }
  }
};

Prediction predict(PolicyWorkspace& ws, PlanningModel& model,
                   const KnobState& k) {
  ++ws.predictions;
  return model.predict(k);
}

KnobState lower_level(const ControlEngine& engine,
                      const PolicyOptions& options, PolicyWorkspace& ws,
                      PlanningModel& model, KnobState cand) {
  const double tth = model.threshold_k() - options.constraint_margin_k;
  const int cores = engine.cores();
  const int slowest = engine.dvfs_levels() - 1;
  BestTracker best;

  Prediction pred = predict(ws, model, cand);
  best.consider(cand, pred, tth);

  // Guard: NL TEC toggles + N*M DVFS steps bounds the iteration count.
  const int max_iters =
      static_cast<int>(engine.tecs()) + cores * engine.dvfs_levels() + 4;

  if (pred.max_temp_k() > tth) {
    // ---- Hot iteration ----
    for (int it = 0; it < max_iters && pred.max_temp_k() > tth; ++it) {
      // 1. Prefer the TEC over the hottest violating spot that is still off.
      std::size_t chosen_tec = engine.tecs();
      double hottest = tth;
      for (std::size_t s = 0; s < model.spot_count(); ++s) {
        const double t = pred.spot_temps_k[s];
        if (t <= hottest) continue;
        for (std::size_t dev : model.tecs_over(s)) {
          if (!cand.tec_on[dev]) {
            hottest = t;
            chosen_tec = dev;
            break;
          }
        }
      }
      if (chosen_tec < engine.tecs()) {
        cand.tec_on[chosen_tec] = 1;
        pred = predict(ws, model, cand);
        best.consider(cand, pred, tth);
        continue;
      }
      // 2. All TECs over hot spots are on: step DVFS down, choosing the
      //    core with the lowest resulting EPI (or all cores together under
      //    chip-wide DVFS).
      KnobState chosen;
      Prediction chosen_pred;
      double best_epi = std::numeric_limits<double>::infinity();
      bool found = false;
      if (options.chip_wide_dvfs) {
        KnobState trial = cand;
        bool moved = false;
        for (auto& d : trial.dvfs)
          if (d < slowest) {
            ++d;
            moved = true;
          }
        if (moved) {
          chosen_pred = predict(ws, model, trial);
          chosen = std::move(trial);
          found = true;
        }
      } else {
        for (int n = 0; n < cores; ++n) {
          const auto ni = static_cast<std::size_t>(n);
          if (cand.dvfs[ni] >= slowest) continue;
          KnobState trial = cand;
          ++trial.dvfs[ni];
          Prediction p = predict(ws, model, trial);
          if (!found || p.epi() < best_epi) {
            best_epi = p.epi();
            chosen = std::move(trial);
            chosen_pred = std::move(p);
            found = true;
          }
        }
      }
      if (!found) break;  // knobs exhausted; keep the coolest attempt
      cand = std::move(chosen);
      pred = std::move(chosen_pred);
      best.consider(cand, pred, tth);
    }
    // Apply the best valid configuration; if none cleared the threshold,
    // apply the final (coolest) attempt as a best effort.
    return best.valid ? best.knobs : cand;
  }

  // ---- Cool iteration ----
  // Performance has priority (Sec. III-D): DVFS raises are applied
  // unconditionally while the constraint holds — the EPI comparison only
  // selects WHICH core to raise — and TECs turn off once every core is at
  // the top level. The final accepted configuration is applied.
  for (int it = 0; it < max_iters; ++it) {
    KnobState chosen;
    Prediction chosen_pred;
    bool found = false;
    // 1. Prefer raising DVFS (performance first): choose the core whose
    //    one-step increase gives the lowest predicted EPI. A raise that buys
    //    no throughput (a core already serving all offered work, as in the
    //    server model at medium load) is skipped — this is what lets TECfan
    //    "select appropriate DVFS levels without degrading performance"
    //    (Sec. V-E) instead of pinning every core at the top.
    double best_epi = std::numeric_limits<double>::infinity();
    if (options.chip_wide_dvfs) {
      KnobState trial = cand;
      bool moved = false;
      for (auto& d : trial.dvfs)
        if (d > 0) {
          --d;
          moved = true;
        }
      if (moved) {
        Prediction p = predict(ws, model, trial);
        if (p.ips > pred.ips * (1.0 + 1e-9)) {
          chosen = std::move(trial);
          chosen_pred = std::move(p);
          found = true;
        }
      }
    } else {
      for (int n = 0; n < cores; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (cand.dvfs[ni] <= 0) continue;
        KnobState trial = cand;
        --trial.dvfs[ni];
        Prediction p = predict(ws, model, trial);
        if (p.ips <= pred.ips * (1.0 + 1e-9)) continue;
        if (!found || p.epi() < best_epi) {
          best_epi = p.epi();
          chosen = std::move(trial);
          chosen_pred = std::move(p);
          found = true;
        }
      }
    }
    if (!found) {
      // 2. Every core at the top level: turn off the TEC over the coolest
      //    covered spot.
      std::size_t chosen_tec = engine.tecs();
      double coolest = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < model.spot_count(); ++s) {
        const double t = pred.spot_temps_k[s];
        if (t >= coolest) continue;
        for (std::size_t dev : model.tecs_over(s)) {
          if (cand.tec_on[dev]) {
            coolest = t;
            chosen_tec = dev;
            break;
          }
        }
      }
      if (chosen_tec == engine.tecs()) break;  // nothing left to save
      chosen = cand;
      chosen.tec_on[chosen_tec] = 0;
      chosen_pred = predict(ws, model, chosen);
      found = true;
    }
    if (chosen_pred.max_temp_k() > tth) break;
    cand = std::move(chosen);
    pred = std::move(chosen_pred);
  }
  return cand;
}

int fan_decision(const ControlEngine& engine, const PolicyOptions& options,
                 PlanningModel& model, const KnobState& current) {
  const double tth = model.threshold_k();
  const int slowest = engine.fan_levels() - 1;
  KnobState trial = current;
  // Steady-state evaluation: speed up while hot, otherwise pick the slowest
  // level that keeps a margin below the threshold.
  Prediction at_current = model.predict_steady(trial);
  if (at_current.max_temp_k() > tth) {
    int lvl = current.fan_level;
    while (lvl > 0) {
      --lvl;
      trial.fan_level = lvl;
      if (model.predict_steady(trial).max_temp_k() <= tth) break;
    }
    return lvl;
  }
  int lvl = current.fan_level;
  while (lvl < slowest) {
    trial.fan_level = lvl + 1;
    if (model.predict_steady(trial).max_temp_k() >
        tth - options.fan_margin_k)
      break;
    ++lvl;
  }
  return lvl;
}

}  // namespace

KnobState tecfan_decide(const ControlEngine& engine,
                        const PolicyOptions& options, PolicyWorkspace& ws,
                        PlanningModel& model, const KnobState& current) {
  ws.predictions = 0;
  KnobState cand = current;
  if (options.manage_fan && ws.interval % options.fan_period_intervals == 0)
    cand.fan_level = fan_decision(engine, options, model, cand);
  ++ws.interval;
  return lower_level(engine, options, ws, model, std::move(cand));
}

}  // namespace strategies

TecFanPolicy::TecFanPolicy(PolicyOptions options) : options_(options) {}

TecFanPolicy::TecFanPolicy(ControlEnginePtr engine, PolicyOptions options)
    : engine_(std::move(engine)), options_(options) {}

void TecFanPolicy::reset() { ws_.reset(); }

KnobState TecFanPolicy::decide(PlanningModel& model,
                               const KnobState& current) {
  engine_ = ensure_control_engine(std::move(engine_), model);
  return strategies::tecfan_decide(*engine_, options_, ws_, model, current);
}

}  // namespace tecfan::core
