#include "core/tecfan_policy.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace tecfan::core {
namespace {

/// Tracks the best (lowest-EPI) constraint-satisfying configuration seen.
struct BestTracker {
  KnobState knobs;
  double epi = std::numeric_limits<double>::infinity();
  bool valid = false;

  void consider(const KnobState& k, const Prediction& p, double tth) {
    if (p.max_temp_k() > tth) return;
    if (!valid || p.epi() < epi) {
      knobs = k;
      epi = p.epi();
      valid = true;
    }
  }
};

}  // namespace

TecFanPolicy::TecFanPolicy(PolicyOptions options) : options_(options) {}

void TecFanPolicy::reset() {
  interval_ = 0;
  predictions_ = 0;
}

Prediction TecFanPolicy::predict(PlanningModel& model, const KnobState& k) {
  ++predictions_;
  return model.predict(k);
}

KnobState TecFanPolicy::decide(PlanningModel& model,
                               const KnobState& current) {
  predictions_ = 0;
  KnobState cand = current;
  if (options_.manage_fan && interval_ % options_.fan_period_intervals == 0)
    cand.fan_level = fan_decision(model, cand);
  ++interval_;
  return lower_level(model, std::move(cand));
}

KnobState TecFanPolicy::lower_level(PlanningModel& model, KnobState cand) {
  const double tth = model.threshold_k() - options_.constraint_margin_k;
  const int cores = model.core_count();
  const int slowest = model.dvfs_level_count() - 1;
  BestTracker best;

  Prediction pred = predict(model, cand);
  best.consider(cand, pred, tth);

  // Guard: NL TEC toggles + N*M DVFS steps bounds the iteration count.
  const int max_iters =
      static_cast<int>(model.tec_count()) +
      cores * model.dvfs_level_count() + 4;

  if (pred.max_temp_k() > tth) {
    // ---- Hot iteration ----
    for (int it = 0; it < max_iters && pred.max_temp_k() > tth; ++it) {
      // 1. Prefer the TEC over the hottest violating spot that is still off.
      std::size_t chosen_tec = model.tec_count();
      double hottest = tth;
      for (std::size_t s = 0; s < model.spot_count(); ++s) {
        const double t = pred.spot_temps_k[s];
        if (t <= hottest) continue;
        for (std::size_t dev : model.tecs_over(s)) {
          if (!cand.tec_on[dev]) {
            hottest = t;
            chosen_tec = dev;
            break;
          }
        }
      }
      if (chosen_tec < model.tec_count()) {
        cand.tec_on[chosen_tec] = 1;
        pred = predict(model, cand);
        best.consider(cand, pred, tth);
        continue;
      }
      // 2. All TECs over hot spots are on: step DVFS down, choosing the
      //    core with the lowest resulting EPI (or all cores together under
      //    chip-wide DVFS).
      KnobState chosen;
      Prediction chosen_pred;
      double best_epi = std::numeric_limits<double>::infinity();
      bool found = false;
      if (options_.chip_wide_dvfs) {
        KnobState trial = cand;
        bool moved = false;
        for (auto& d : trial.dvfs)
          if (d < slowest) {
            ++d;
            moved = true;
          }
        if (moved) {
          chosen_pred = predict(model, trial);
          chosen = std::move(trial);
          found = true;
        }
      } else {
        for (int n = 0; n < cores; ++n) {
          const auto ni = static_cast<std::size_t>(n);
          if (cand.dvfs[ni] >= slowest) continue;
          KnobState trial = cand;
          ++trial.dvfs[ni];
          Prediction p = predict(model, trial);
          if (!found || p.epi() < best_epi) {
            best_epi = p.epi();
            chosen = std::move(trial);
            chosen_pred = std::move(p);
            found = true;
          }
        }
      }
      if (!found) break;  // knobs exhausted; keep the coolest attempt
      cand = std::move(chosen);
      pred = std::move(chosen_pred);
      best.consider(cand, pred, tth);
    }
    // Apply the best valid configuration; if none cleared the threshold,
    // apply the final (coolest) attempt as a best effort.
    return best.valid ? best.knobs : cand;
  }

  // ---- Cool iteration ----
  // Performance has priority (Sec. III-D): DVFS raises are applied
  // unconditionally while the constraint holds — the EPI comparison only
  // selects WHICH core to raise — and TECs turn off once every core is at
  // the top level. The final accepted configuration is applied.
  for (int it = 0; it < max_iters; ++it) {
    KnobState chosen;
    Prediction chosen_pred;
    bool found = false;
    // 1. Prefer raising DVFS (performance first): choose the core whose
    //    one-step increase gives the lowest predicted EPI. A raise that buys
    //    no throughput (a core already serving all offered work, as in the
    //    server model at medium load) is skipped — this is what lets TECfan
    //    "select appropriate DVFS levels without degrading performance"
    //    (Sec. V-E) instead of pinning every core at the top.
    double best_epi = std::numeric_limits<double>::infinity();
    if (options_.chip_wide_dvfs) {
      KnobState trial = cand;
      bool moved = false;
      for (auto& d : trial.dvfs)
        if (d > 0) {
          --d;
          moved = true;
        }
      if (moved) {
        Prediction p = predict(model, trial);
        if (p.ips > pred.ips * (1.0 + 1e-9)) {
          chosen = std::move(trial);
          chosen_pred = std::move(p);
          found = true;
        }
      }
    } else {
      for (int n = 0; n < cores; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (cand.dvfs[ni] <= 0) continue;
        KnobState trial = cand;
        --trial.dvfs[ni];
        Prediction p = predict(model, trial);
        if (p.ips <= pred.ips * (1.0 + 1e-9)) continue;
        if (!found || p.epi() < best_epi) {
          best_epi = p.epi();
          chosen = std::move(trial);
          chosen_pred = std::move(p);
          found = true;
        }
      }
    }
    if (!found) {
      // 2. Every core at the top level: turn off the TEC over the coolest
      //    covered spot.
      std::size_t chosen_tec = model.tec_count();
      double coolest = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < model.spot_count(); ++s) {
        const double t = pred.spot_temps_k[s];
        if (t >= coolest) continue;
        for (std::size_t dev : model.tecs_over(s)) {
          if (cand.tec_on[dev]) {
            coolest = t;
            chosen_tec = dev;
            break;
          }
        }
      }
      if (chosen_tec == model.tec_count()) break;  // nothing left to save
      chosen = cand;
      chosen.tec_on[chosen_tec] = 0;
      chosen_pred = predict(model, chosen);
      found = true;
    }
    if (chosen_pred.max_temp_k() > tth) break;
    cand = std::move(chosen);
    pred = std::move(chosen_pred);
  }
  return cand;
}

int TecFanPolicy::fan_decision(PlanningModel& model,
                               const KnobState& current) {
  const double tth = model.threshold_k();
  const int slowest = model.fan_level_count() - 1;
  KnobState trial = current;
  // Steady-state evaluation: speed up while hot, otherwise pick the slowest
  // level that keeps a margin below the threshold.
  Prediction at_current = model.predict_steady(trial);
  if (at_current.max_temp_k() > tth) {
    int lvl = current.fan_level;
    while (lvl > 0) {
      --lvl;
      trial.fan_level = lvl;
      if (model.predict_steady(trial).max_temp_k() <= tth) break;
    }
    return lvl;
  }
  int lvl = current.fan_level;
  while (lvl < slowest) {
    trial.fan_level = lvl + 1;
    if (model.predict_steady(trial).max_temp_k() >
        tth - options_.fan_margin_k)
      break;
    ++lvl;
  }
  return lvl;
}

}  // namespace tecfan::core
