// TECfan: the paper's hierarchical multi-step down-hill heuristic
// (Sec. III-D, Fig. 2).
//
// Lower level (every control interval, ~2 ms): model-predictive hot/cool
// iterations over TEC states and per-core DVFS.
//   * Hot iteration (predicted max T > T_th): first turn on TEC devices over
//     the hottest violating spots; only when every TEC over a hot spot is
//     already on, step DVFS down — each step choosing the core whose
//     one-level decrease yields the lowest predicted EPI — until the
//     prediction clears the threshold or the knobs are exhausted.
//   * Cool iteration (no predicted hot spot): step DVFS up — each step
//     choosing the core whose one-step increase yields the lowest predicted
//     EPI — and, once every core is at the top level, turn off the TEC over
//     the coolest covered spot; stop just before a predicted violation.
// The applied configuration is the lowest-EPI one visited that satisfies
// the constraint (the paper's iteration-termination rule).
//
// Higher level (every fan_period_intervals, ~seconds): adjust the fan speed
// against the *steady-state* prediction — speed up while hot spots persist,
// slow down while a margin below T_th remains.
//
// Complexity is O(NL + N^2 M) per interval as derived in Sec. V-A: at most
// NL TEC toggles and N M DVFS steps, each DVFS step comparing N candidates.
//
// Structure: the decision logic is the stateless strategy function
// strategies::tecfan_decide over (ControlEngine, options, PolicyWorkspace,
// model); the TecFanPolicy class is a thin adapter holding a shared engine
// pointer and one private workspace. The iteration stays scalar — its
// candidates are data-dependent one-step moves, not an enumerable set — so
// only the counters and cadence live in the workspace.
#pragma once

#include "core/control_engine.h"
#include "core/policy.h"

namespace tecfan::core {

namespace strategies {

/// One TECfan decision: fan cadence (when options.manage_fan) plus the
/// lower-level hot/cool iteration. Pure in everything except `ws` (interval
/// counter, prediction counter) and the model's prediction scratch; safe to
/// run concurrently against one shared engine with per-thread workspaces.
/// `engine` must match `model`'s knob space.
KnobState tecfan_decide(const ControlEngine& engine,
                        const PolicyOptions& options, PolicyWorkspace& ws,
                        PlanningModel& model, const KnobState& current);

}  // namespace strategies

class TecFanPolicy final : public Policy {
 public:
  explicit TecFanPolicy(PolicyOptions options = {});

  /// Shares a prebuilt engine (e.g. sim::ChipEngine::control()); bare
  /// construction builds a dims-only engine lazily on first decide().
  explicit TecFanPolicy(ControlEnginePtr engine, PolicyOptions options = {});

  std::string_view name() const override { return "TECfan"; }
  void reset() override;
  KnobState decide(PlanningModel& model, const KnobState& current) override;

  const PolicyOptions& options() const { return options_; }

  /// Number of predict() calls issued in the last decide() (for the
  /// overhead benchmarks).
  std::size_t last_prediction_count() const { return ws_.predictions; }

 private:
  ControlEnginePtr engine_;
  PolicyOptions options_;
  PolicyWorkspace ws_;
};

}  // namespace tecfan::core
