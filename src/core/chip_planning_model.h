// PlanningModel implementation for the 16-core component-level chip.
//
// This is the paper's on-line estimator, assembled from:
//   Eq. (1)  steady state:  G(k) Ts(k) = P(k)   (SteadyStateSolver)
//   Eq. (5)  transient:     T(k) = (1-b) Ts + b T(k-1), b = exp(-dt/RC)
//   Eq. (6)  leakage:       linear in last-interval temperature
//   Eq. (7)  dynamic:       scaled from measured previous-interval power
//   Eq. (9)  TEC power:     r I^2 + alpha I (Th - Tc)
//   Eq. (11) performance:   IPS scaled from measured previous-interval IPS
//
// The model keeps its own full-network temperature estimate T^(k): die nodes
// are corrected with sensor readings every interval; TEC-face, spreader and
// sink nodes are unobservable and evolve by Eq. (5). The gap between this
// estimator and the implicit-Euler plant is what yields the paper's small
// runtime violations (Fig. 5(b)).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/planning.h"
#include "power/dvfs.h"
#include "power/fan.h"
#include "power/leakage.h"
#include "thermal/solvers.h"

namespace tecfan::core {

class ChipPlanningModel final : public PlanningModel {
 public:
  struct Config {
    power::LinearLeakageModel leakage;
    power::FanModel fan = power::FanModel::dynatron_r16();
    power::DvfsTable dvfs = power::DvfsTable::scc();
    double threshold_k = 363.15;
    double control_period_s = 2e-3;
  };

  /// What the controller can measure at the start of each interval.
  struct Observation {
    linalg::Vector comp_temps_k;      // sensed die temperatures
    linalg::Vector comp_dyn_power_w;  // previous-interval dynamic power [22]
    linalg::Vector core_ips;          // previous-interval per-core IPS
    KnobState applied;                // knobs in effect during that interval
  };

  /// Borrows `engine`'s steady factorization (a steady-only engine is
  /// enough); constructing a planner is therefore cheap, and any number of
  /// planners can share one engine across threads.
  ChipPlanningModel(std::shared_ptr<const thermal::ThermalEngine> engine,
                    Config config);

  /// Feed the interval's measurements; must be called before decide()/
  /// predict() each interval.
  void observe(const Observation& obs);

  /// Clear run state (internal temperature estimate).
  void reset();

  void set_threshold_k(double t) { config_.threshold_k = t; }

  // PlanningModel interface.
  int core_count() const override;
  std::size_t tec_count() const override;
  int dvfs_level_count() const override {
    return config_.dvfs.level_count();
  }
  int fan_level_count() const override { return config_.fan.level_count(); }
  std::size_t spot_count() const override;
  int core_of_spot(std::size_t spot) const override;
  const std::vector<std::size_t>& tecs_over(std::size_t spot) const override;
  const linalg::Vector& sensed_temps() const override;
  double threshold_k() const override { return config_.threshold_k; }
  Prediction predict(const KnobState& knobs) override;
  Prediction predict_steady(const KnobState& knobs) override;

  /// Evaluate many candidate knob settings, fanning out over
  /// util/parallel.h workers. Each worker borrows its own solver workspace
  /// from the shared engine, so results are bit-exact with calling
  /// predict() serially on each candidate.
  std::vector<Prediction> predict_batch(std::span<const KnobState> knobs);

  /// Flat-ActionSet batch evaluation, parallelized the same way as
  /// predict_batch (one independent SteadyStateSolver workspace per
  /// candidate); bit-exact with the serial default.
  void evaluate_batch(const ActionSet::Slice& slice, const KnobState& base,
                      std::vector<Prediction>& out) override;

  /// predict() variant that also exposes the steady-state node vector
  /// (Eq. 1 solution) and the blended next-interval node vector (Eq. 5)
  /// behind the prediction — the anchors of the incremental per-core model.
  Prediction predict_detailed(const KnobState& knobs,
                              linalg::Vector* steady_nodes_out,
                              linalg::Vector* blended_nodes_out = nullptr);

  /// Internal full-state estimate T^(k) after the last observe().
  const linalg::Vector& state_estimate() const { return state_estimate_; }

  /// The last observation fed to observe().
  const Observation& last_observation() const;

  const Config& config() const { return config_; }
  const thermal::ChipThermalModel& thermal_model() const { return *model_; }

 private:
  struct CandidateEval {
    linalg::Vector comp_power;
    double dynamic_w = 0.0;
    double leakage_w = 0.0;
    thermal::CoolingState cooling;
  };

  CandidateEval evaluate_power(const KnobState& knobs) const;
  Prediction finish_prediction(const KnobState& knobs,
                               const CandidateEval& eval,
                               linalg::Vector node_temps) const;

  std::shared_ptr<const thermal::ThermalEngine> engine_;
  std::shared_ptr<const thermal::ChipThermalModel> model_;
  Config config_;
  thermal::SteadyStateSolver solver_;
  linalg::Vector state_estimate_;  // full node vector T^(k)
  Observation last_;
  bool has_observation_ = false;
};

}  // namespace tecfan::core
