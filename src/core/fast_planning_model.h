// Incremental per-core planning model — the paper's Sec. III-E evaluation
// strategy as a drop-in PlanningModel.
//
// "Since the inter-core thermal impact is limited in tile-structured
//  many-core architectures, we only evaluate the temperature of one core
//  each time."
//
// ChipPlanningModel solves the full ~600-node network for every candidate
// knob configuration (~1.3 ms each). This model instead computes ONE global
// baseline prediction per control interval (at the currently applied knobs)
// and evaluates each candidate by re-solving only the cores whose knobs
// changed, using thermal::CoreEstimator (36-node banded solves, ~14 us)
// with the baseline as the boundary condition; unchanged cores keep their
// baseline temperatures. Power and IPS aggregates are updated by per-core
// deltas. Candidates that change the fan level fall back to the global
// path, since the fan moves every node.
//
// The approximation (candidate boundaries held at the baseline) is exactly
// the locality assumption the paper's hardware design makes; tests bound
// its error against the exact model.
#pragma once

#include <memory>

#include "core/chip_planning_model.h"
#include "thermal/core_estimator.h"

namespace tecfan::core {

class FastChipPlanningModel final : public PlanningModel {
 public:
  using Config = ChipPlanningModel::Config;
  using Observation = ChipPlanningModel::Observation;

  /// Borrows `engine`'s steady factorization like the exact model; the
  /// per-core estimators factor their own small banded systems.
  FastChipPlanningModel(
      std::shared_ptr<const thermal::ThermalEngine> engine, Config config);

  void observe(const Observation& obs);
  void reset();

  // PlanningModel interface.
  int core_count() const override { return exact_.core_count(); }
  std::size_t tec_count() const override { return exact_.tec_count(); }
  int dvfs_level_count() const override { return exact_.dvfs_level_count(); }
  int fan_level_count() const override { return exact_.fan_level_count(); }
  std::size_t spot_count() const override { return exact_.spot_count(); }
  int core_of_spot(std::size_t spot) const override {
    return exact_.core_of_spot(spot);
  }
  const std::vector<std::size_t>& tecs_over(std::size_t spot) const override {
    return exact_.tecs_over(spot);
  }
  const linalg::Vector& sensed_temps() const override {
    return exact_.sensed_temps();
  }
  double threshold_k() const override { return exact_.threshold_k(); }
  void set_threshold_k(double t) { exact_.set_threshold_k(t); }

  Prediction predict(const KnobState& knobs) override;
  Prediction predict_steady(const KnobState& knobs) override {
    return exact_.predict_steady(knobs);  // fan-cadence path stays global
  }

  /// Serial flat-ActionSet batch: each candidate goes through the normal
  /// incremental predict() path. The incremental/global counters, the
  /// shared baseline and the exact model's solver workspace make this
  /// model single-threaded by design, and a ~14 us per-core solve is far
  /// below util/parallel's fork-join grain anyway.
  void evaluate_batch(const ActionSet::Slice& slice, const KnobState& base,
                      std::vector<Prediction>& out) override;

  /// How many predict() calls took the incremental per-core path (vs the
  /// global fallback) since the last reset — for the overhead benches.
  std::size_t incremental_predictions() const { return incremental_; }
  std::size_t global_predictions() const { return global_; }

 private:
  /// Cores whose knobs differ from the baseline (DVFS or any owned TEC).
  std::vector<int> changed_cores(const KnobState& knobs) const;

  std::shared_ptr<const thermal::ChipThermalModel> model_;
  ChipPlanningModel exact_;
  std::vector<thermal::CoreEstimator> estimators_;  // one per core
  Observation last_;
  bool has_observation_ = false;

  // Baseline (at the observed knobs), refreshed each observe().
  KnobState baseline_knobs_;
  Prediction baseline_;
  linalg::Vector baseline_steady_;   // Eq. 1 solution at the baseline knobs
  linalg::Vector baseline_blended_;  // Eq. 5 next-interval estimate
  std::vector<double> baseline_core_dyn_;   // per-core dynamic power
  std::vector<double> baseline_core_leak_;  // per-core leakage
  std::vector<double> baseline_core_tec_;   // per-core TEC power
  std::vector<double> baseline_core_ips_;

  std::size_t incremental_ = 0;
  std::size_t global_ = 0;
};

}  // namespace tecfan::core
