#include "core/exhaustive_policies.h"

#include <cmath>
#include <functional>
#include <limits>

#include "util/error.h"

namespace tecfan::core {
namespace {

/// Enumerate all TEC masks and DVFS level assignments over a template knob
/// state, invoking visit(knobs) for each. The fan level of the template is
/// left untouched.
void enumerate_tec_dvfs(const PlanningModel& model, KnobState knobs,
                        bool include_dvfs,
                        const std::function<void(const KnobState&)>& visit) {
  const std::size_t n_tec = model.tec_count();
  const auto cores = static_cast<std::size_t>(model.core_count());
  const int levels = model.dvfs_level_count();
  const std::uint64_t tec_combos = 1ull << n_tec;

  std::function<void(std::size_t)> dvfs_rec = [&](std::size_t core) {
    if (core == cores || !include_dvfs) {
      for (std::uint64_t mask = 0; mask < tec_combos; ++mask) {
        for (std::size_t t = 0; t < n_tec; ++t)
          knobs.tec_on[t] = (mask >> t) & 1u ? 1 : 0;
        visit(knobs);
      }
      return;
    }
    for (int lvl = 0; lvl < levels; ++lvl) {
      knobs.dvfs[core] = lvl;
      dvfs_rec(core + 1);
    }
  };
  dvfs_rec(0);
}

std::size_t candidate_count(const PlanningModel& model, bool include_dvfs,
                            bool include_fan) {
  double count = std::pow(2.0, static_cast<double>(model.tec_count()));
  if (include_dvfs)
    count *= std::pow(static_cast<double>(model.dvfs_level_count()),
                      static_cast<double>(model.core_count()));
  if (include_fan) count *= model.fan_level_count();
  return count > 1e18 ? static_cast<std::size_t>(-1)
                      : static_cast<std::size_t>(count);
}

}  // namespace

OraclePolicy::OraclePolicy(ExhaustiveOptions options)
    : options_(options) {}

void OraclePolicy::reset() {
  interval_ = 0;
  candidates_ = 0;
}

double OraclePolicy::ips_floor(int) const { return 0.0; }

KnobState OraclePolicy::decide(PlanningModel& model,
                               const KnobState& current) {
  const bool fan_turn =
      options_.base.manage_fan &&
      interval_ % options_.base.fan_period_intervals == 0;
  TECFAN_REQUIRE(
      candidate_count(model, /*include_dvfs=*/true, fan_turn) <=
          options_.max_candidates,
      "Oracle search space exceeds the configured bound");

  const double tth = model.threshold_k() - options_.base.constraint_margin_k;
  const double floor = ips_floor(interval_);
  ++interval_;
  candidates_ = 0;

  KnobState best = current;
  double best_epi = std::numeric_limits<double>::infinity();
  bool best_valid = false;
  KnobState coolest = current;
  double coolest_t = std::numeric_limits<double>::infinity();

  auto visit = [&](const KnobState& k) {
    ++candidates_;
    const Prediction p = model.predict(k);
    const double t = p.max_temp_k();
    if (t < coolest_t) {
      coolest_t = t;
      coolest = k;
    }
    if (t > tth) return;
    if (p.capacity_ips + 1e-9 < floor) return;
    if (!best_valid || p.epi() < best_epi) {
      best_epi = p.epi();
      best = k;
      best_valid = true;
    }
  };

  KnobState tmpl = current;
  if (fan_turn) {
    for (int lvl = 0; lvl < model.fan_level_count(); ++lvl) {
      tmpl.fan_level = lvl;
      enumerate_tec_dvfs(model, tmpl, /*include_dvfs=*/true, visit);
    }
  } else {
    enumerate_tec_dvfs(model, tmpl, /*include_dvfs=*/true, visit);
  }
  return best_valid ? best : coolest;
}

OraclePPolicy::OraclePPolicy(
    ExhaustiveOptions options,
    std::shared_ptr<const std::vector<double>> reference_ips)
    : OraclePolicy(options), reference_ips_(std::move(reference_ips)) {
  TECFAN_REQUIRE(reference_ips_ != nullptr,
                 "Oracle-P requires a reference IPS trajectory");
}

double OraclePPolicy::ips_floor(int interval) const {
  if (reference_ips_->empty()) return 0.0;
  const auto i = std::min(static_cast<std::size_t>(interval),
                          reference_ips_->size() - 1);
  return (*reference_ips_)[i];
}

OftecPolicy::OftecPolicy(ExhaustiveOptions options) : options_(options) {}

void OftecPolicy::reset() { interval_ = 0; }

KnobState OftecPolicy::decide(PlanningModel& model,
                              const KnobState& current) {
  const bool fan_turn =
      options_.base.manage_fan &&
      interval_ % options_.base.fan_period_intervals == 0;
  ++interval_;
  TECFAN_REQUIRE(
      candidate_count(model, /*include_dvfs=*/false, fan_turn) <=
          options_.max_candidates,
      "OFTEC search space exceeds the configured bound");

  const double tth = model.threshold_k() - options_.base.constraint_margin_k;
  KnobState best = current;
  // OFTEC never adapts DVFS: cores stay at the top level.
  for (auto& d : best.dvfs) d = 0;
  double best_cooling = std::numeric_limits<double>::infinity();
  bool best_valid = false;
  KnobState coolest = best;
  double coolest_t = std::numeric_limits<double>::infinity();

  auto visit = [&](const KnobState& k) {
    const Prediction p = model.predict(k);
    const double t = p.max_temp_k();
    if (t < coolest_t) {
      coolest_t = t;
      coolest = k;
    }
    if (t > tth) return;
    // OFTEC's objective: cooling power plus the leakage it influences
    // through temperature ([8] is leakage-aware).
    const double cooling = p.power.cooling_w() + p.power.leakage_w;
    if (!best_valid || cooling < best_cooling) {
      best_cooling = cooling;
      best = k;
      best_valid = true;
    }
  };

  KnobState tmpl = best;
  if (fan_turn) {
    for (int lvl = 0; lvl < model.fan_level_count(); ++lvl) {
      tmpl.fan_level = lvl;
      enumerate_tec_dvfs(model, tmpl, /*include_dvfs=*/false, visit);
    }
  } else {
    enumerate_tec_dvfs(model, tmpl, /*include_dvfs=*/false, visit);
  }
  return best_valid ? best : coolest;
}

}  // namespace tecfan::core
