#include "core/exhaustive_policies.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.h"

namespace tecfan::core {
namespace strategies {
namespace {

/// Candidates per evaluate_batch call: bounds the Prediction scratch (a few
/// MB at the server model's spot counts) without giving up batch locality.
constexpr std::size_t kBatchChunk = 8192;

/// Walk the whole enumeration for `spec` through chunked batch evaluation,
/// invoking scan(knobs, prediction) for every candidate in enumeration
/// order. `tmpl` supplies the dimensions `spec` does not cover.
template <typename Scan>
void scan_actions(const ControlEngine& engine, const ActionSpec& spec,
                  PolicyWorkspace& ws, PlanningModel& model,
                  const KnobState& tmpl, Scan&& scan) {
  const std::shared_ptr<const ActionSet> set = engine.actions(spec);
  KnobState knobs = tmpl;
  for (std::size_t b = 0; b < set->size(); b += kBatchChunk) {
    const std::size_t e = std::min(set->size(), b + kBatchChunk);
    model.evaluate_batch(set->slice(b, e), tmpl, ws.batch);
    for (std::size_t i = 0; i < e - b; ++i) {
      set->materialize(b + i, knobs);
      scan(knobs, ws.batch[i]);
    }
  }
}

}  // namespace

KnobState oracle_decide(const ControlEngine& engine,
                        const ExhaustiveOptions& options, double ips_floor,
                        PolicyWorkspace& ws, PlanningModel& model,
                        const KnobState& current) {
  const bool fan_turn =
      options.base.manage_fan &&
      ws.interval % options.base.fan_period_intervals == 0;
  const ActionSpec spec{/*include_dvfs=*/true, /*include_fan=*/fan_turn};
  TECFAN_REQUIRE(engine.action_count(spec) <= options.max_candidates,
                 "Oracle search space exceeds the configured bound");

  const double tth = model.threshold_k() - options.base.constraint_margin_k;
  ++ws.interval;
  ws.candidates = 0;

  KnobState best = current;
  double best_epi = std::numeric_limits<double>::infinity();
  bool best_valid = false;
  KnobState coolest = current;
  double coolest_t = std::numeric_limits<double>::infinity();

  scan_actions(engine, spec, ws, model, current,
               [&](const KnobState& k, const Prediction& p) {
                 ++ws.candidates;
                 const double t = p.max_temp_k();
                 if (t < coolest_t) {
                   coolest_t = t;
                   coolest = k;
                 }
                 if (t > tth) return;
                 if (p.capacity_ips + 1e-9 < ips_floor) return;
                 if (!best_valid || p.epi() < best_epi) {
                   best_epi = p.epi();
                   best = k;
                   best_valid = true;
                 }
               });
  return best_valid ? best : coolest;
}

KnobState oftec_decide(const ControlEngine& engine,
                       const ExhaustiveOptions& options, PolicyWorkspace& ws,
                       PlanningModel& model, const KnobState& current) {
  const bool fan_turn =
      options.base.manage_fan &&
      ws.interval % options.base.fan_period_intervals == 0;
  ++ws.interval;
  const ActionSpec spec{/*include_dvfs=*/false, /*include_fan=*/fan_turn};
  TECFAN_REQUIRE(engine.action_count(spec) <= options.max_candidates,
                 "OFTEC search space exceeds the configured bound");

  const double tth = model.threshold_k() - options.base.constraint_margin_k;
  KnobState best = current;
  // OFTEC never adapts DVFS: cores stay at the top level.
  for (auto& d : best.dvfs) d = 0;
  double best_cooling = std::numeric_limits<double>::infinity();
  bool best_valid = false;
  KnobState coolest = best;
  double coolest_t = std::numeric_limits<double>::infinity();
  ws.candidates = 0;

  scan_actions(engine, spec, ws, model, best,
               [&](const KnobState& k, const Prediction& p) {
                 ++ws.candidates;
                 const double t = p.max_temp_k();
                 if (t < coolest_t) {
                   coolest_t = t;
                   coolest = k;
                 }
                 if (t > tth) return;
                 // OFTEC's objective: cooling power plus the leakage it
                 // influences through temperature ([8] is leakage-aware).
                 const double cooling = p.power.cooling_w() + p.power.leakage_w;
                 if (!best_valid || cooling < best_cooling) {
                   best_cooling = cooling;
                   best = k;
                   best_valid = true;
                 }
               });
  return best_valid ? best : coolest;
}

}  // namespace strategies

OraclePolicy::OraclePolicy(ExhaustiveOptions options) : options_(options) {}

OraclePolicy::OraclePolicy(ControlEnginePtr engine, ExhaustiveOptions options)
    : options_(options), engine_(std::move(engine)) {}

void OraclePolicy::reset() { ws_.reset(); }

double OraclePolicy::ips_floor(int) const { return 0.0; }

KnobState OraclePolicy::decide(PlanningModel& model,
                               const KnobState& current) {
  engine_ = ensure_control_engine(std::move(engine_), model);
  const double floor = ips_floor(ws_.interval);
  return strategies::oracle_decide(*engine_, options_, floor, ws_, model,
                                   current);
}

OraclePPolicy::OraclePPolicy(
    ExhaustiveOptions options,
    std::shared_ptr<const std::vector<double>> reference_ips)
    : OraclePolicy(options), reference_ips_(std::move(reference_ips)) {
  TECFAN_REQUIRE(reference_ips_ != nullptr,
                 "Oracle-P requires a reference IPS trajectory");
}

OraclePPolicy::OraclePPolicy(
    ControlEnginePtr engine, ExhaustiveOptions options,
    std::shared_ptr<const std::vector<double>> reference_ips)
    : OraclePolicy(std::move(engine), options),
      reference_ips_(std::move(reference_ips)) {
  TECFAN_REQUIRE(reference_ips_ != nullptr,
                 "Oracle-P requires a reference IPS trajectory");
}

double OraclePPolicy::ips_floor(int interval) const {
  if (reference_ips_->empty()) return 0.0;
  const auto i = std::min(static_cast<std::size_t>(interval),
                          reference_ips_->size() - 1);
  return (*reference_ips_)[i];
}

OftecPolicy::OftecPolicy(ExhaustiveOptions options) : options_(options) {}

OftecPolicy::OftecPolicy(ControlEnginePtr engine, ExhaustiveOptions options)
    : options_(options), engine_(std::move(engine)) {}

void OftecPolicy::reset() { ws_.reset(); }

KnobState OftecPolicy::decide(PlanningModel& model,
                              const KnobState& current) {
  engine_ = ensure_control_engine(std::move(engine_), model);
  return strategies::oftec_decide(*engine_, options_, ws_, model, current);
}

}  // namespace tecfan::core
