// Exhaustive-search baselines of Sec. V-E.
//
// Oracle  — solves the Eq. (13) problem exactly each interval by enumerating
//           every (DVFS^N x TEC^L) combination (and fan levels on the fan
//           cadence), picking the lowest predicted EPI that satisfies the
//           temperature constraint. Complexity O(M^N 2^(NL)) — the paper's
//           argument for why it cannot run online.
// Oracle-P — Oracle with an added per-decision performance floor so its
//           delay matches TECfan's (the paper's fair-performance variant):
//           candidates must predict at least the reference IPS.
// OFTEC   — the state-of-the-art cooling-power optimizer [8]: enumerates TEC
//           states (and fan levels) minimizing TEC+fan power under the
//           temperature constraint, with leakage-temperature awareness, but
//           never touches DVFS. The paper runs OFTEC as exhaustive search
//           (Sec. V-A), as we do.
//
// These policies are only meant for small configuration spaces (the paper's
// 4-core setup); every decision enforces a search-space bound.
//
// Structure: the search runs over the ControlEngine's memoized flat
// ActionSet in chunked PlanningModel::evaluate_batch calls (parallel on
// models that override it), then scans the predictions in enumeration
// order with the same first-strictly-better comparisons the old
// per-candidate recursion used — decisions are bit-exact with it. The
// policy classes are thin adapters: shared engine pointer + one workspace.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/control_engine.h"
#include "core/policy.h"

namespace tecfan::core {

struct ExhaustiveOptions {
  PolicyOptions base;
  /// Upper bound on candidates per decision; guards against accidentally
  /// pointing an exponential search at the 16-core chip.
  std::size_t max_candidates = 1u << 20;
};

namespace strategies {

/// One Oracle decision: enumerate DVFS x TEC (x fan on the cadence),
/// minimize EPI subject to the temperature constraint and `ips_floor`.
/// Mutates only `ws` (interval/candidate counters, batch scratch).
KnobState oracle_decide(const ControlEngine& engine,
                        const ExhaustiveOptions& options, double ips_floor,
                        PolicyWorkspace& ws, PlanningModel& model,
                        const KnobState& current);

/// One OFTEC decision: DVFS pinned to the top level, enumerate TEC (x fan
/// on the cadence), minimize cooling + leakage power under the constraint.
KnobState oftec_decide(const ControlEngine& engine,
                       const ExhaustiveOptions& options, PolicyWorkspace& ws,
                       PlanningModel& model, const KnobState& current);

}  // namespace strategies

class OraclePolicy : public Policy {
 public:
  explicit OraclePolicy(ExhaustiveOptions options = {});
  explicit OraclePolicy(ControlEnginePtr engine,
                        ExhaustiveOptions options = {});

  std::string_view name() const override { return "Oracle"; }
  void reset() override;
  KnobState decide(PlanningModel& model, const KnobState& current) override;

  std::size_t last_candidate_count() const { return ws_.candidates; }

 protected:
  /// Performance floor for the decision at `interval` (Oracle-P); returns 0
  /// (no floor) in the plain Oracle.
  virtual double ips_floor(int interval) const;

  ExhaustiveOptions options_;

 private:
  ControlEnginePtr engine_;
  PolicyWorkspace ws_;
};

class OraclePPolicy final : public OraclePolicy {
 public:
  /// `reference_ips`: per-interval chip performance *capability*
  /// (capacity_ips) held by TECfan on the same trace (recorded from a prior
  /// run); Oracle-P may not fall below it, giving it exactly TECfan's
  /// performance posture.
  OraclePPolicy(ExhaustiveOptions options,
                std::shared_ptr<const std::vector<double>> reference_ips);
  OraclePPolicy(ControlEnginePtr engine, ExhaustiveOptions options,
                std::shared_ptr<const std::vector<double>> reference_ips);

  std::string_view name() const override { return "Oracle-P"; }

 protected:
  double ips_floor(int interval) const override;

 private:
  std::shared_ptr<const std::vector<double>> reference_ips_;
};

class OftecPolicy final : public Policy {
 public:
  explicit OftecPolicy(ExhaustiveOptions options = {});
  explicit OftecPolicy(ControlEnginePtr engine,
                       ExhaustiveOptions options = {});

  std::string_view name() const override { return "OFTEC"; }
  void reset() override;
  KnobState decide(PlanningModel& model, const KnobState& current) override;

 private:
  ExhaustiveOptions options_;
  ControlEnginePtr engine_;
  PolicyWorkspace ws_;
};

}  // namespace tecfan::core
