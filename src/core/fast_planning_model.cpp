#include "core/fast_planning_model.h"

#include <algorithm>

#include "util/error.h"

namespace tecfan::core {
namespace {

std::shared_ptr<const thermal::ChipThermalModel> require_engine_model(
    const std::shared_ptr<const thermal::ThermalEngine>& engine) {
  TECFAN_REQUIRE(engine != nullptr, "FastChipPlanningModel requires an engine");
  return engine->model_ptr();
}

}  // namespace

FastChipPlanningModel::FastChipPlanningModel(
    std::shared_ptr<const thermal::ThermalEngine> engine, Config config)
    : model_(require_engine_model(engine)),
      exact_(std::move(engine), std::move(config)) {
  estimators_.reserve(
      static_cast<std::size_t>(model_->floorplan().core_count()));
  for (int n = 0; n < model_->floorplan().core_count(); ++n)
    estimators_.emplace_back(model_, n);
}

void FastChipPlanningModel::reset() {
  exact_.reset();
  has_observation_ = false;
  incremental_ = 0;
  global_ = 0;
}

void FastChipPlanningModel::observe(const Observation& obs) {
  exact_.observe(obs);
  last_ = obs;
  has_observation_ = true;

  // One global prediction per interval anchors everything.
  baseline_knobs_ = obs.applied;
  baseline_ = exact_.predict_detailed(obs.applied, &baseline_steady_,
                                      &baseline_blended_);

  const auto cores = static_cast<std::size_t>(core_count());
  baseline_core_dyn_.assign(cores, 0.0);
  baseline_core_leak_.assign(cores, 0.0);
  baseline_core_tec_.assign(cores, 0.0);
  baseline_core_ips_.assign(cores, 0.0);
  const auto& fp = model_->floorplan();
  const double chip_area = fp.chip_area();
  const auto& cfg = exact_.config();
  for (std::size_t c = 0; c < fp.component_count(); ++c) {
    const auto n = static_cast<std::size_t>(fp.component(c).core);
    baseline_core_dyn_[n] += obs.comp_dyn_power_w[c];
    baseline_core_leak_[n] += cfg.leakage.component_leakage_w(
        fp.component(c).rect.area() / chip_area, obs.comp_temps_k[c]);
  }
  const auto devs = static_cast<std::size_t>(
      model_->tec().devices_per_tile());
  for (std::size_t t = 0; t < model_->tec_count(); ++t) {
    if (!obs.applied.tec_on[t]) continue;
    baseline_core_tec_[t / devs] +=
        model_->tec_electrical_power(baseline_blended_, t, /*on=*/true);
  }
  for (std::size_t n = 0; n < cores; ++n)
    baseline_core_ips_[n] = obs.core_ips[n];
}

void FastChipPlanningModel::evaluate_batch(const ActionSet::Slice& slice,
                                           const KnobState& base,
                                           std::vector<Prediction>& out) {
  TECFAN_REQUIRE(has_observation_,
                 "evaluate_batch before first observe()");
  out.resize(slice.size());
  KnobState knobs = base;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    slice.set->materialize(slice.begin + i, knobs);
    out[i] = predict(knobs);
  }
}

std::vector<int> FastChipPlanningModel::changed_cores(
    const KnobState& knobs) const {
  std::vector<int> changed;
  const auto devs = static_cast<std::size_t>(
      model_->tec().devices_per_tile());
  for (int n = 0; n < core_count(); ++n) {
    const auto ni = static_cast<std::size_t>(n);
    bool diff = knobs.dvfs[ni] != baseline_knobs_.dvfs[ni];
    for (std::size_t d = ni * devs; !diff && d < (ni + 1) * devs; ++d)
      diff = knobs.tec_on[d] != baseline_knobs_.tec_on[d];
    if (diff) changed.push_back(n);
  }
  return changed;
}

Prediction FastChipPlanningModel::predict(const KnobState& knobs) {
  TECFAN_REQUIRE(has_observation_, "predict before first observe()");
  if (knobs.fan_level != baseline_knobs_.fan_level) {
    ++global_;  // the fan moves every node: no locality to exploit
    return exact_.predict(knobs);
  }
  const std::vector<int> changed = changed_cores(knobs);
  if (changed.empty()) return baseline_;
  ++incremental_;

  Prediction pred = baseline_;
  const auto& fp = model_->floorplan();
  const auto& cfg = exact_.config();
  const auto devs = static_cast<std::size_t>(
      model_->tec().devices_per_tile());
  const auto& state = exact_.state_estimate();

  for (int n : changed) {
    const auto ni = static_cast<std::size_t>(n);
    const thermal::CoreEstimator& est = estimators_[ni];
    const auto comps = fp.components_of_core(n);

    // Per-component powers for this core under the candidate knobs
    // (Eq. 7 dynamic scaling; Eq. 6 leakage at the sensed temperature).
    std::vector<double> comp_power(thermal::kComponentsPerTile, 0.0);
    const double dyn_scale = cfg.dvfs.dyn_scale(
        baseline_knobs_.dvfs[ni], knobs.dvfs[ni]);
    double core_dyn = 0.0;
    const double chip_area = fp.chip_area();
    for (int k = 0; k < thermal::kComponentsPerTile; ++k) {
      const std::size_t c = comps[static_cast<std::size_t>(k)];
      const double dyn = last_.comp_dyn_power_w[c] * dyn_scale;
      const double leak = cfg.leakage.component_leakage_w(
          fp.component(c).rect.area() / chip_area, last_.comp_temps_k[c]);
      comp_power[static_cast<std::size_t>(k)] = dyn + leak;
      core_dyn += dyn;
    }
    std::vector<std::uint8_t> tec_on(devs);
    for (std::size_t d = 0; d < devs; ++d)
      tec_on[d] = knobs.tec_on[ni * devs + d];

    // Conditioned local solve against the baseline STEADY boundary (the
    // steady system must see steady neighbours), then Eq. (5).
    const linalg::Vector ts_local =
        est.steady(comp_power, tec_on, baseline_steady_);
    linalg::Vector prev_local(est.local_node_count());
    for (std::size_t i = 0; i < prev_local.size(); ++i)
      prev_local[i] = state[est.local_to_global()[i]];
    const linalg::Vector next_local =
        est.exponential(ts_local, prev_local, cfg.control_period_s);

    // Splice component temperatures and update the power/IPS aggregates.
    for (int k = 0; k < thermal::kComponentsPerTile; ++k)
      pred.spot_temps_k[comps[static_cast<std::size_t>(k)]] =
          next_local[est.local_of_component(k)];

    double core_tec = 0.0;
    for (std::size_t d = 0; d < devs; ++d) {
      if (!tec_on[d]) continue;
      const double dtheta =
          next_local[est.local_hot(static_cast<int>(d))] -
          next_local[est.local_cold(static_cast<int>(d))];
      core_tec += model_->tec().electrical_power_w(dtheta);
    }
    pred.power.dynamic_w += core_dyn - baseline_core_dyn_[ni];
    pred.power.tec_w += core_tec - baseline_core_tec_[ni];
    const double ips = baseline_core_ips_[ni] *
                       cfg.dvfs.freq_scale(baseline_knobs_.dvfs[ni],
                                           knobs.dvfs[ni]);
    pred.ips += ips - baseline_core_ips_[ni];
    pred.capacity_ips += ips - baseline_core_ips_[ni];
  }
  return pred;
}

}  // namespace tecfan::core
