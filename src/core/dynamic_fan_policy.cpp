#include "core/dynamic_fan_policy.h"

#include <algorithm>

namespace tecfan::core {
namespace strategies {

KnobState dynamic_fan_decide(const PolicyOptions& options,
                             PolicyWorkspace& ws, PlanningModel& model,
                             const KnobState& current) {
  KnobState next = current;
  const bool fan_turn =
      options.manage_fan && ws.interval % options.fan_period_intervals == 0;
  ++ws.interval;
  if (!fan_turn) return next;

  const auto& temps = model.sensed_temps();
  const double tth = model.threshold_k();
  double peak = 0.0;
  for (double t : temps) peak = std::max(peak, t);
  if (peak > tth) {
    next.fan_level = std::max(0, next.fan_level - 1);  // speed up
  } else if (peak < tth - options.fan_margin_k) {
    next.fan_level =
        std::min(model.fan_level_count() - 1, next.fan_level + 1);
  }
  return next;
}

}  // namespace strategies

DynamicFanPolicy::DynamicFanPolicy(PolicyOptions options)
    : options_(options) {}

KnobState DynamicFanPolicy::decide(PlanningModel& model,
                                   const KnobState& current) {
  return strategies::dynamic_fan_decide(options_, ws_, model, current);
}

}  // namespace tecfan::core
