// ControlEngine / PolicyWorkspace: the engine/workspace split for the
// control layer, mirroring linalg::FactoredOperator + UpdateWorkspace and
// sim::ChipEngine + ChipSimulator.
//
// The engine is the immutable, thread-safe half: the knob-space dimensions,
// the precomputed Eq. (6)/(7)/(11) scaling tables (fan electrical power and
// airflow per level, the M x M dynamic-power and frequency ratios between
// DVFS operating points), and the memoized flat ActionSet enumerations the
// exhaustive baselines and full-sweep benchmarks batch-evaluate. One engine
// is built per chip scenario (sim::ChipEngine owns one) and shared by every
// concurrent policy instance — across the tecfand worker pool and hence
// across a tecrouter fleet.
//
// The workspace is the cheap, per-thread half: interval counters and the
// scratch buffers a single policy's decide() reuses between intervals.
// Policies hold an engine pointer plus one workspace, and their decision
// logic lives in stateless strategy functions over (engine, workspace,
// model) — see tecfan_policy.h / exhaustive_policies.h.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/action_set.h"
#include "core/planning.h"
#include "power/dvfs.h"
#include "power/fan.h"

namespace tecfan::core {

class ControlEngine {
 public:
  /// Hard cap on candidates actions() will materialize, protecting against
  /// pointing an enumeration at the 16-core chip (2^36 TEC masks). The
  /// exhaustive policies apply their own, tighter max_candidates bound
  /// before calling actions().
  static constexpr std::size_t kMaxEnumerable = std::size_t{1} << 22;

  /// Dimensions-only engine: enumerations work, scaling tables are absent
  /// (has_tables() == false). What policies build lazily when handed a
  /// bare PlanningModel.
  explicit ControlEngine(const ControlDims& dims);

  /// Full engine with the Eq. (6)/(7)/(11) tables precomputed from the
  /// scenario's DVFS and fan models.
  ControlEngine(const ControlDims& dims, const power::DvfsTable& dvfs,
                const power::FanModel& fan);

  ControlEngine(const ControlEngine&) = delete;
  ControlEngine& operator=(const ControlEngine&) = delete;

  const ControlDims& dims() const { return dims_; }
  int cores() const { return dims_.cores; }
  std::size_t tecs() const { return dims_.tecs; }
  int dvfs_levels() const { return dims_.dvfs_levels; }
  int fan_levels() const { return dims_.fan_levels; }

  /// True when this engine was built for `model`'s knob space.
  bool matches(const PlanningModel& model) const;

  // -- Precomputed scaling tables ----------------------------------------
  bool has_tables() const { return !dyn_scale_.empty(); }
  /// Eq. (7): dynamic-power ratio moving DVFS `from` -> `to`.
  double dyn_scale(int from, int to) const;
  /// Eq. (11): frequency (performance) ratio moving `from` -> `to`.
  double freq_scale(int from, int to) const;
  /// Fan electrical power / airflow at a level (Eq. (6) fan bucket).
  double fan_power_w(int lvl) const;
  double fan_airflow_cfm(int lvl) const;

  // -- Enumerated action spaces ------------------------------------------
  /// Candidate count for `spec` without materializing anything; saturates
  /// (like the legacy guard) instead of overflowing on huge TEC counts.
  std::size_t action_count(const ActionSpec& spec) const;

  /// The enumerated flat action space for `spec`, memoized per engine so
  /// repeated decisions (and concurrent policies) share one copy.
  /// Thread-safe; throws precondition_error above kMaxEnumerable.
  std::shared_ptr<const ActionSet> actions(const ActionSpec& spec) const;

  /// Rough resident footprint: tables plus memoized enumerations.
  std::size_t memory_bytes() const;

 private:
  ControlDims dims_;
  // Row-major [from][to] over dvfs_levels; empty without tables.
  std::vector<double> dyn_scale_;
  std::vector<double> freq_scale_;
  std::vector<double> fan_power_w_;
  std::vector<double> fan_airflow_cfm_;

  mutable std::mutex actions_mu_;
  mutable std::map<ActionSpec, std::shared_ptr<const ActionSet>> actions_;
};

using ControlEnginePtr = std::shared_ptr<const ControlEngine>;

/// Dimensions-only engine over a model's knob space.
ControlEnginePtr make_control_engine(const PlanningModel& model);

/// Full engine with scaling tables.
ControlEnginePtr make_control_engine(const ControlDims& dims,
                                     const power::DvfsTable& dvfs,
                                     const power::FanModel& fan);

/// Reuse `engine` when it was built for `model`'s knob space; otherwise
/// build a dims-only engine. The lazy path for policies constructed bare
/// (tests, tools) and the guard for policies handed a mismatched engine.
ControlEnginePtr ensure_control_engine(ControlEnginePtr engine,
                                       const PlanningModel& model);

/// Per-thread mutable policy state: interval counters plus the scratch a
/// decide() reuses across intervals so steady-state decisions allocate
/// nothing. One workspace per policy instance; never shared.
struct PolicyWorkspace {
  int interval = 0;
  /// predict() calls issued by the last decide() (overhead benches).
  std::size_t predictions = 0;
  /// Batch candidates evaluated by the last decide() (exhaustives).
  std::size_t candidates = 0;

  KnobState cand;
  KnobState trial;
  KnobState chosen;
  std::vector<Prediction> batch;

  void reset() {
    interval = 0;
    predictions = 0;
    candidates = 0;
  }
};

}  // namespace tecfan::core
