#include "core/reactive_policies.h"

#include <algorithm>

namespace tecfan::core {
namespace strategies {

void apply_tec_rule(const PlanningModel& model, KnobState& knobs,
                    double off_margin_k) {
  const auto& temps = model.sensed_temps();
  const double tth = model.threshold_k();
  // Gather, per device, whether any covered spot is hot and whether all are
  // cool enough (with hysteresis) to switch the device off.
  std::vector<std::uint8_t> any_hot(model.tec_count(), 0);
  std::vector<std::uint8_t> all_cool(model.tec_count(), 1);
  for (std::size_t s = 0; s < model.spot_count(); ++s) {
    for (std::size_t t : model.tecs_over(s)) {
      if (temps[s] > tth) any_hot[t] = 1;
      if (temps[s] >= tth - off_margin_k) all_cool[t] = 0;
    }
  }
  for (std::size_t t = 0; t < model.tec_count(); ++t) {
    if (any_hot[t])
      knobs.tec_on[t] = 1;
    else if (all_cool[t])
      knobs.tec_on[t] = 0;
  }
}

void apply_dvfs_rule(const PlanningModel& model, KnobState& knobs,
                     double up_margin_k) {
  const auto& temps = model.sensed_temps();
  const double tth = model.threshold_k();
  // A core steps down as soon as any of its spots violates, and steps back
  // up only once all of them are below the guard band.
  std::vector<std::uint8_t> core_hot(
      static_cast<std::size_t>(model.core_count()), 0);
  std::vector<std::uint8_t> core_cool(
      static_cast<std::size_t>(model.core_count()), 1);
  for (std::size_t s = 0; s < model.spot_count(); ++s) {
    const auto n = static_cast<std::size_t>(model.core_of_spot(s));
    if (temps[s] > tth) core_hot[n] = 1;
    if (temps[s] >= tth - up_margin_k) core_cool[n] = 0;
  }
  const int slowest = model.dvfs_level_count() - 1;
  for (std::size_t n = 0; n < knobs.dvfs.size(); ++n) {
    if (core_hot[n])
      knobs.dvfs[n] = std::min(knobs.dvfs[n] + 1, slowest);
    else if (core_cool[n])
      knobs.dvfs[n] = std::max(knobs.dvfs[n] - 1, 0);
  }
}

}  // namespace strategies

KnobState FanOnlyPolicy::decide(PlanningModel&, const KnobState& current) {
  return current;
}

FanTecPolicy::FanTecPolicy(double off_margin_k)
    : off_margin_k_(off_margin_k) {}

KnobState FanTecPolicy::decide(PlanningModel& model,
                               const KnobState& current) {
  KnobState next = current;
  strategies::apply_tec_rule(model, next, off_margin_k_);
  return next;
}

FanDvfsPolicy::FanDvfsPolicy(double up_margin_k)
    : up_margin_k_(up_margin_k) {}

KnobState FanDvfsPolicy::decide(PlanningModel& model,
                                const KnobState& current) {
  KnobState next = current;
  strategies::apply_dvfs_rule(model, next, up_margin_k_);
  return next;
}

DvfsTecPolicy::DvfsTecPolicy(double tec_off_margin_k)
    : tec_off_margin_k_(tec_off_margin_k) {}

KnobState DvfsTecPolicy::decide(PlanningModel& model,
                                const KnobState& current) {
  KnobState next = current;
  strategies::apply_tec_rule(model, next, tec_off_margin_k_);
  strategies::apply_dvfs_rule(model, next, 2.0);
  return next;
}

}  // namespace tecfan::core
