// Flat SoA enumeration of the controller's action space.
//
// An ActionSet holds every candidate the exhaustive policies and the
// full-sweep benchmarks consider: the cross product of TEC on/off masks,
// per-core DVFS assignments and (optionally) fan levels. Candidates are
// stored structure-of-arrays (one contiguous byte lane per knob dimension)
// so batch evaluation walks memory linearly and a candidate is
// materialized into a KnobState with three memcpy-shaped loops.
//
// The enumeration order is load-bearing: it replicates the recursion the
// pre-engine exhaustive baselines used (fan level slowest-varying, then
// DVFS with core 0 outermost, TEC mask fastest-varying), and the policies'
// first-strictly-better tie-breaking means any reordering would change
// decisions. ControlEngineOrderMatchesLegacyRecursion pins it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/actions.h"

namespace tecfan::core {

/// Which knob dimensions an enumeration spans. TEC states are always
/// enumerated; DVFS and fan are optional (OFTEC pins DVFS, and the fan
/// only joins on the higher-level cadence). Dimensions not covered keep
/// whatever the evaluation template carries.
struct ActionSpec {
  bool include_dvfs = true;
  bool include_fan = false;

  bool operator==(const ActionSpec&) const = default;
  bool operator<(const ActionSpec& o) const {
    return include_dvfs != o.include_dvfs ? include_dvfs < o.include_dvfs
                                          : include_fan < o.include_fan;
  }
};

/// Knob-space dimensions an ActionSet (and ControlEngine) is built for.
struct ControlDims {
  int cores = 0;
  std::size_t tecs = 0;
  int dvfs_levels = 0;
  int fan_levels = 0;

  bool operator==(const ControlDims&) const = default;
};

class ActionSet {
 public:
  /// Enumerates the full cross product for `spec`; size() candidates.
  /// Levels must fit a byte and the TEC mask a 64-bit word (the built-in
  /// models are far below both).
  ActionSet(const ControlDims& dims, const ActionSpec& spec);

  std::size_t size() const { return count_; }
  const ControlDims& dims() const { return dims_; }
  const ActionSpec& spec() const { return spec_; }
  bool has_dvfs() const { return spec_.include_dvfs; }
  bool has_fan() const { return spec_.include_fan; }

  /// Overwrite the dimensions this set covers in `out` (which must already
  /// be sized for dims(); uncovered dimensions are left untouched, so the
  /// caller's template supplies them).
  void materialize(std::size_t i, KnobState& out) const;

  /// Candidate i's TEC lane packed as a bit mask (bit t = device t) —
  /// lets batch evaluators group candidates by cooling configuration
  /// without materializing a full KnobState. Fits: dims().tecs < 64.
  std::uint64_t tec_mask(std::size_t i) const {
    const std::uint8_t* lane = tec_on_.data() + i * dims_.tecs;
    std::uint64_t mask = 0;
    for (std::size_t t = 0; t < dims_.tecs; ++t)
      if (lane[t]) mask |= std::uint64_t{1} << t;
    return mask;
  }

  /// Candidate i's fan level, or `fallback` when the set has no fan lane
  /// (the evaluation template supplies the level, as in materialize).
  int fan_level(std::size_t i, int fallback) const {
    return spec_.include_fan ? static_cast<int>(fan_[i]) : fallback;
  }

  /// A contiguous candidate range [begin, end) — the unit of batch
  /// evaluation (PlanningModel::evaluate_batch).
  struct Slice {
    const ActionSet* set = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
  };
  Slice all() const { return {this, 0, count_}; }
  Slice slice(std::size_t begin, std::size_t end) const {
    return {this, begin, end};
  }

  std::size_t memory_bytes() const {
    return dvfs_.capacity() + tec_on_.capacity() + fan_.capacity();
  }

 private:
  ControlDims dims_;
  ActionSpec spec_;
  std::size_t count_ = 0;
  // SoA lanes, candidate-major. Unused lanes stay empty.
  std::vector<std::uint8_t> dvfs_;    // count * cores when has_dvfs()
  std::vector<std::uint8_t> tec_on_;  // count * tecs
  std::vector<std::uint8_t> fan_;     // count when has_fan()
};

}  // namespace tecfan::core
