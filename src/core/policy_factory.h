// Canonical policy-name registry shared by the tecfand service, the CLI and
// the benches — one place mapping protocol policy names to constructed
// policies, so the layers cannot drift apart on spelling or defaults.
#pragma once

#include <string>
#include <vector>

#include "core/control_engine.h"
#include "core/policy.h"

namespace tecfan::core {

/// Construct the policy registered under `name`, or nullptr when unknown.
/// Known names: fan-only, fan+tec, fan+dvfs, dvfs+tec, dynamic-fan,
/// tecfan, tecfan-chipwide. Policies that plan over the knob space share
/// `engine` (pass the scenario's ControlEngine to keep requests
/// allocation-light and its memoized action sets warm); nullptr falls back
/// to a lazily built dims-only engine.
PolicyPtr make_named_policy(const std::string& name,
                            ControlEnginePtr engine = nullptr);

/// The names make_named_policy accepts, in protocol order.
const std::vector<std::string>& known_policy_names();

}  // namespace tecfan::core
