// Dynamic-fan: the industry-practice baseline the paper's higher level is
// modelled on ("we adjust the fan speed based on the total power and peak
// temperature of the chip, like the current industry practice") and the
// "Dynamic-fan" reference of Sec. V-C — reactive fan control with no TEC or
// DVFS actuation. Speeds up one level when any sensed spot violates; slows
// one level when everything sits below the threshold by a margin.
#pragma once

#include "core/control_engine.h"
#include "core/policy.h"

namespace tecfan::core {

namespace strategies {
/// One Dynamic-fan decision; mutates only the workspace interval counter.
KnobState dynamic_fan_decide(const PolicyOptions& options,
                             PolicyWorkspace& ws, PlanningModel& model,
                             const KnobState& current);
}  // namespace strategies

class DynamicFanPolicy final : public Policy {
 public:
  explicit DynamicFanPolicy(PolicyOptions options = {.manage_fan = true});

  std::string_view name() const override { return "Dynamic-fan"; }
  void reset() override { ws_.reset(); }
  KnobState decide(PlanningModel& model, const KnobState& current) override;

 private:
  PolicyOptions options_;
  PolicyWorkspace ws_;
};

}  // namespace tecfan::core
