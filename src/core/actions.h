// The actuator state ("knobs") every policy manipulates:
// per-core DVFS level, per-device TEC on/off, and the fan speed level.
// Level 0 is always the fastest/highest setting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tecfan::core {

struct KnobState {
  std::vector<int> dvfs;             // per core; 0 = fastest
  std::vector<std::uint8_t> tec_on;  // per TEC device
  int fan_level = 0;                 // 0 = fastest

  bool operator==(const KnobState&) const = default;

  static KnobState initial(int cores, std::size_t tecs, int fan_level = 0) {
    KnobState k;
    k.dvfs.assign(static_cast<std::size_t>(cores), 0);
    k.tec_on.assign(tecs, 0);
    k.fan_level = fan_level;
    return k;
  }

  std::size_t tecs_active() const {
    std::size_t n = 0;
    for (auto b : tec_on) n += b ? 1 : 0;
    return n;
  }

  double mean_dvfs() const {
    if (dvfs.empty()) return 0.0;
    double s = 0.0;
    for (int d : dvfs) s += d;
    return s / static_cast<double>(dvfs.size());
  }
};

}  // namespace tecfan::core
