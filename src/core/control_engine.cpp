#include "core/control_engine.h"

#include <cmath>

#include "util/error.h"

namespace tecfan::core {
namespace {

void require_dims(const ControlDims& dims) {
  TECFAN_REQUIRE(dims.cores > 0 && dims.dvfs_levels > 0 &&
                     dims.fan_levels > 0,
                 "ControlEngine requires positive dimensions");
}

}  // namespace

ControlEngine::ControlEngine(const ControlDims& dims) : dims_(dims) {
  require_dims(dims);
}

ControlEngine::ControlEngine(const ControlDims& dims,
                             const power::DvfsTable& dvfs,
                             const power::FanModel& fan)
    : dims_(dims) {
  require_dims(dims);
  TECFAN_REQUIRE(dvfs.level_count() == dims.dvfs_levels &&
                     fan.level_count() == dims.fan_levels,
                 "ControlEngine tables must match the declared dimensions");
  const auto m = static_cast<std::size_t>(dims.dvfs_levels);
  dyn_scale_.resize(m * m);
  freq_scale_.resize(m * m);
  for (int from = 0; from < dims.dvfs_levels; ++from)
    for (int to = 0; to < dims.dvfs_levels; ++to) {
      dyn_scale_[static_cast<std::size_t>(from) * m +
                 static_cast<std::size_t>(to)] = dvfs.dyn_scale(from, to);
      freq_scale_[static_cast<std::size_t>(from) * m +
                  static_cast<std::size_t>(to)] = dvfs.freq_scale(from, to);
    }
  fan_power_w_.resize(static_cast<std::size_t>(dims.fan_levels));
  fan_airflow_cfm_.resize(static_cast<std::size_t>(dims.fan_levels));
  for (int lvl = 0; lvl < dims.fan_levels; ++lvl) {
    fan_power_w_[static_cast<std::size_t>(lvl)] = fan.power_w(lvl);
    fan_airflow_cfm_[static_cast<std::size_t>(lvl)] = fan.airflow_cfm(lvl);
  }
}

bool ControlEngine::matches(const PlanningModel& model) const {
  return dims_.cores == model.core_count() &&
         dims_.tecs == model.tec_count() &&
         dims_.dvfs_levels == model.dvfs_level_count() &&
         dims_.fan_levels == model.fan_level_count();
}

double ControlEngine::dyn_scale(int from, int to) const {
  TECFAN_REQUIRE(has_tables(), "engine built without scaling tables");
  return dyn_scale_[static_cast<std::size_t>(from) *
                        static_cast<std::size_t>(dims_.dvfs_levels) +
                    static_cast<std::size_t>(to)];
}

double ControlEngine::freq_scale(int from, int to) const {
  TECFAN_REQUIRE(has_tables(), "engine built without scaling tables");
  return freq_scale_[static_cast<std::size_t>(from) *
                         static_cast<std::size_t>(dims_.dvfs_levels) +
                     static_cast<std::size_t>(to)];
}

double ControlEngine::fan_power_w(int lvl) const {
  TECFAN_REQUIRE(has_tables(), "engine built without scaling tables");
  return fan_power_w_[static_cast<std::size_t>(lvl)];
}

double ControlEngine::fan_airflow_cfm(int lvl) const {
  TECFAN_REQUIRE(has_tables(), "engine built without scaling tables");
  return fan_airflow_cfm_[static_cast<std::size_t>(lvl)];
}

std::size_t ControlEngine::action_count(const ActionSpec& spec) const {
  // Same saturating arithmetic as the legacy candidate_count guard: the
  // 16-core chip's 2^36 TEC masks must compare safely against bounds.
  double count = std::pow(2.0, static_cast<double>(dims_.tecs));
  if (spec.include_dvfs)
    count *= std::pow(static_cast<double>(dims_.dvfs_levels),
                      static_cast<double>(dims_.cores));
  if (spec.include_fan) count *= dims_.fan_levels;
  return count > 1e18 ? static_cast<std::size_t>(-1)
                      : static_cast<std::size_t>(count);
}

std::shared_ptr<const ActionSet> ControlEngine::actions(
    const ActionSpec& spec) const {
  {
    std::lock_guard<std::mutex> lock(actions_mu_);
    auto it = actions_.find(spec);
    if (it != actions_.end()) return it->second;
  }
  TECFAN_REQUIRE(action_count(spec) <= kMaxEnumerable,
                 "action space exceeds the enumerable bound");
  // Built outside the lock (enumeration can be large); a racing duplicate
  // build is harmless — first insert wins, like ChipEngine::workload.
  auto set = std::make_shared<const ActionSet>(dims_, spec);
  std::lock_guard<std::mutex> lock(actions_mu_);
  return actions_.emplace(spec, std::move(set)).first->second;
}

std::size_t ControlEngine::memory_bytes() const {
  std::size_t bytes =
      (dyn_scale_.capacity() + freq_scale_.capacity() +
       fan_power_w_.capacity() + fan_airflow_cfm_.capacity()) *
      sizeof(double);
  std::lock_guard<std::mutex> lock(actions_mu_);
  for (const auto& [spec, set] : actions_) bytes += set->memory_bytes();
  return bytes;
}

ControlEnginePtr make_control_engine(const PlanningModel& model) {
  return std::make_shared<const ControlEngine>(
      ControlDims{model.core_count(), model.tec_count(),
                  model.dvfs_level_count(), model.fan_level_count()});
}

ControlEnginePtr make_control_engine(const ControlDims& dims,
                                     const power::DvfsTable& dvfs,
                                     const power::FanModel& fan) {
  return std::make_shared<const ControlEngine>(dims, dvfs, fan);
}

ControlEnginePtr ensure_control_engine(ControlEnginePtr engine,
                                       const PlanningModel& model) {
  if (engine && engine->matches(model)) return engine;
  return make_control_engine(model);
}

}  // namespace tecfan::core
