#include "core/policy_factory.h"

#include <memory>
#include <utility>

#include "core/dynamic_fan_policy.h"
#include "core/reactive_policies.h"
#include "core/tecfan_policy.h"

namespace tecfan::core {

PolicyPtr make_named_policy(const std::string& name, ControlEnginePtr engine) {
  if (name == "fan-only") return std::make_unique<FanOnlyPolicy>();
  if (name == "fan+tec") return std::make_unique<FanTecPolicy>();
  if (name == "fan+dvfs") return std::make_unique<FanDvfsPolicy>();
  if (name == "dvfs+tec") return std::make_unique<DvfsTecPolicy>();
  if (name == "dynamic-fan") return std::make_unique<DynamicFanPolicy>();
  if (name == "tecfan")
    return std::make_unique<TecFanPolicy>(std::move(engine));
  if (name == "tecfan-chipwide") {
    PolicyOptions opt;
    opt.chip_wide_dvfs = true;
    return std::make_unique<TecFanPolicy>(std::move(engine), opt);
  }
  return nullptr;
}

const std::vector<std::string>& known_policy_names() {
  static const std::vector<std::string> names = {
      "fan-only", "fan+tec",          "fan+dvfs", "dvfs+tec",
      "dynamic-fan", "tecfan", "tecfan-chipwide"};
  return names;
}

}  // namespace tecfan::core
