// The predictive model interface shared by all runtime policies.
//
// A PlanningModel is the controller-side implementation of the paper's
// estimation machinery: given a hypothetical knob configuration it predicts
// the next-interval temperatures (Eq. 1 steady state + Eq. 5 exponential
// interpolation), power (Eq. 6 leakage, Eq. 7 dynamic scaling, Eq. 8
// aggregation, Eq. 9 TEC power) and performance (Eq. 11 IPS scaling) — and
// hence the per-instruction energy EPI of Eq. (13). Policies are written
// against this interface so the same TECfan/Oracle/OFTEC code runs on both
// the 16-core component-level chip model and the 4-core server model.
//
// "Spots" are the temperature-sensed locations the constraint max T <= T_th
// ranges over: die components on the chip model, cores on the server model.
#pragma once

#include <cstddef>
#include <vector>

#include "core/action_set.h"
#include "core/actions.h"
#include "linalg/matrix.h"
#include "power/breakdown.h"

namespace tecfan::core {

struct Prediction {
  linalg::Vector spot_temps_k;  // predicted per-spot temperature
  power::PowerBreakdown power;  // predicted power buckets
  double ips = 0.0;             // predicted chip-level IPS (Eq. 10). On the
                                // server model this is *served* work, which
                                // saturates at the offered demand.
  double capacity_ips = 0.0;    // frequency-proportional capability (what a
                                // "same performance degradation" constraint
                                // compares; == ips on the chip model)

  double max_temp_k() const;

  /// Eq. (13): per-instruction energy. Infinite when nothing retires.
  double epi() const;
};

class PlanningModel {
 public:
  virtual ~PlanningModel() = default;

  virtual int core_count() const = 0;
  virtual std::size_t tec_count() const = 0;
  virtual int dvfs_level_count() const = 0;
  virtual int fan_level_count() const = 0;

  virtual std::size_t spot_count() const = 0;
  virtual int core_of_spot(std::size_t spot) const = 0;

  /// TEC devices whose footprint covers a spot (empty when uncovered).
  virtual const std::vector<std::size_t>& tecs_over(
      std::size_t spot) const = 0;

  /// Latest sensed per-spot temperatures (kelvin).
  virtual const linalg::Vector& sensed_temps() const = 0;

  /// The peak-temperature constraint T_th (kelvin).
  virtual double threshold_k() const = 0;

  /// Predict the next control interval under `knobs` (Eq. 1 + Eq. 5).
  virtual Prediction predict(const KnobState& knobs) = 0;

  /// Predict the settled (steady-state) outcome under `knobs` — what the
  /// higher-level fan loop evaluates, since the fan time constant spans many
  /// control intervals.
  virtual Prediction predict_steady(const KnobState& knobs) = 0;

  /// Batch candidate evaluation: predict every candidate in `slice`, each
  /// materialized over the `base` template (dimensions the ActionSet does
  /// not cover — e.g. the fan level outside the fan cadence — come from
  /// `base`). On return, out[i] is the prediction for candidate
  /// slice.begin + i.
  ///
  /// Contract: results MUST be bit-exact with calling predict() serially
  /// on each materialized candidate in slice order — the exhaustive
  /// policies' first-strictly-better tie-breaking depends on it. The
  /// default implementation is that serial loop; ChipPlanningModel
  /// parallelizes it over util/parallel workers with an independent solver
  /// workspace per candidate.
  virtual void evaluate_batch(const ActionSet::Slice& slice,
                              const KnobState& base,
                              std::vector<Prediction>& out);
};

}  // namespace tecfan::core
