// The 16-core co-simulation loop (the SESC+Wattch+HotSpot stand-in).
//
// Each control interval the simulator:
//   1. exposes sensed component temperatures and previous-interval
//      measurements to the controller-side ChipPlanningModel,
//   2. lets the policy pick the next knob configuration,
//   3. computes plant power (activity-based dynamic + quadratic leakage,
//      recomputed per substep to capture the temperature-leakage loop the
//      paper adds to HotSpot's transient routine),
//   4. advances the full RC network by implicit Euler substeps,
//   5. accounts energy, instructions (Eq. 11 scaling), and violations.
// The run ends when every active core has retired its instruction budget
// (per-core barrier semantics: the slowest core defines the delay).
//
// ChipSimulator is the cheap, per-thread half of the engine/workspace
// split: it borrows a shared const ChipEngine (models + factorizations +
// calibrated workloads) and adds only its own solver workspaces, so
// constructing one costs microseconds and N threads can run N simulators
// over one engine concurrently, bit-exact with the single-threaded path.
#pragma once

#include <memory>

#include "core/chip_planning_model.h"
#include "core/policy.h"
#include "perf/workload.h"
#include "sim/chip_engine.h"
#include "sim/metrics.h"
#include "thermal/solvers.h"

namespace tecfan::sim {

struct RunConfig {
  double threshold_k = 363.15;     // T_th (set from the base scenario)
  int fan_level = 0;               // fixed level unless the policy manages it
  bool policy_manages_fan = false;
  double max_sim_time_s = 1.0;     // safety cap
  bool record_trace = true;
  double sensor_noise_k = 0.0;     // optional gaussian sensor noise
  std::uint64_t noise_seed = 99;
  /// Activity multiplier applied to cores that finished their budget.
  double finished_core_activity = 0.06;
  /// Tolerance above T_th before an interval counts as a violation.
  double violation_tolerance_k = 0.02;
  /// Peltier engage delay on switch-on (Sec. IV-C cites up to 20 us [9]);
  /// the plant derates a newly-enabled device's first substep by
  /// delay/substep.
  double tec_engage_delay_s = 20e-6;
  /// Intervals excluded from violation/peak statistics while the run warms
  /// up from its initial equilibrium (energy and delay are still counted).
  std::size_t warmup_intervals = 5;
};

class ChipSimulator {
 public:
  /// Per-thread workspace over a shared engine; cheap to construct.
  explicit ChipSimulator(ChipEnginePtr engine);

  RunResult run(core::Policy& policy, const perf::Workload& workload,
                const RunConfig& config);

  double control_period_s() const { return engine_->control_period_s(); }
  const ChipModels& models() const { return engine_->models(); }
  const ChipEngine& engine() const { return *engine_; }
  /// The shared engine itself — what sweep helpers fan out over when they
  /// need to spin up sibling workspaces on other threads.
  const ChipEnginePtr& engine_ptr() const { return engine_; }

  /// Mutable per-thread footprint (solver workspaces); the counterpart of
  /// ChipEngine::memory_bytes().
  std::size_t workspace_bytes() const {
    return plant_.workspace_bytes() + steady_.workspace_bytes();
  }

  /// Steady-state node temperatures with the temperature-leakage fixed point
  /// (iterated until the peak moves < 0.5 K, the paper's criterion), at a
  /// given operating point. Also used to initialize runs.
  linalg::Vector equilibrium(const perf::Workload& workload,
                             const core::KnobState& knobs, double time_s = 0.0);

 private:
  /// Per-component dynamic power at simulated time t under knob state.
  /// `finished` marks active cores that already retired their budget; their
  /// activity is scaled by `finished_activity` (inactive cores are handled
  /// by the workload's own idle path).
  linalg::Vector dynamic_power(const perf::Workload& workload,
                               const core::KnobState& knobs, double time_s,
                               const std::vector<std::uint8_t>& finished,
                               double finished_activity) const;

  /// Add quadratic-leakage power for the current die temperatures.
  void add_leakage(const linalg::Vector& node_temps,
                   linalg::Vector& comp_power, double* leak_total) const;

  ChipEnginePtr engine_;
  thermal::TransientSolver plant_;
  thermal::SteadyStateSolver steady_;
};

}  // namespace tecfan::sim
