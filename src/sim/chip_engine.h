// ChipEngine: the immutable, shareable half of the simulator.
//
// Building a chip scenario is expensive — assembling the RC network and
// factoring its ~600x600 base matrices — while everything a run mutates
// (Woodbury update sets, temperature state, policy state) is cheap. The
// engine owns the expensive part once: the calibrated model bundle, a
// ThermalEngine holding both base factorizations (steady + implicit-Euler
// transient at the control substep), and a memoized calibrated-workload
// cache. Any number of ChipSimulator workspaces — one per thread — share a
// single const engine and are constructed in microseconds.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/control_engine.h"
#include "perf/workload.h"
#include "sim/defaults.h"
#include "thermal/solvers.h"

namespace tecfan::sim {

class ChipEngine {
 public:
  /// control_period: lower-level interval (paper: 2 ms); substeps: implicit
  /// Euler steps per interval. The transient operator is factored at
  /// control_period / substeps. `backend` selects the base-factorization
  /// path (default: RCM-permuted banded with dense fallback).
  explicit ChipEngine(
      ChipModels models, double control_period_s = 2e-3, int substeps = 4,
      linalg::SolveBackend backend = linalg::SolveBackend::kAuto);

  ChipEngine(const ChipEngine&) = delete;
  ChipEngine& operator=(const ChipEngine&) = delete;

  const ChipModels& models() const { return models_; }
  const std::shared_ptr<const thermal::ThermalEngine>& thermal() const {
    return thermal_;
  }
  double control_period_s() const { return control_period_s_; }
  int substeps() const { return substeps_; }

  /// The control-layer engine for this scenario's knob space: precomputed
  /// Eq. (6)/(7)/(11) scaling tables plus the memoized action-space
  /// enumerations. Shared — policies for concurrent runs (the tecfand
  /// worker pool, parallel sweeps) all point here.
  const core::ControlEnginePtr& control() const { return control_; }

  /// Calibrated SPLASH-2 workload, memoized by (name, threads). Thread-safe;
  /// throws on unknown benchmarks.
  perf::WorkloadPtr workload(const std::string& name, int threads) const;

  /// Rough resident footprint of the shared factored state.
  std::size_t memory_bytes() const {
    return thermal_->memory_bytes() + control_->memory_bytes();
  }

 private:
  ChipModels models_;
  double control_period_s_;
  int substeps_;
  std::shared_ptr<const thermal::ThermalEngine> thermal_;
  core::ControlEnginePtr control_;

  mutable std::mutex workloads_mu_;
  mutable std::map<std::string, perf::WorkloadPtr> workloads_;
};

using ChipEnginePtr = std::shared_ptr<const ChipEngine>;

/// Engine over an explicit model bundle.
ChipEnginePtr make_chip_engine(
    ChipModels models, double control_period_s = 2e-3, int substeps = 4,
    linalg::SolveBackend backend = linalg::SolveBackend::kAuto);

/// Engine over make_chip_models(tiles_x, tiles_y).
ChipEnginePtr make_chip_engine(
    int tiles_x, int tiles_y, double control_period_s = 2e-3,
    int substeps = 4,
    linalg::SolveBackend backend = linalg::SolveBackend::kAuto);

/// The calibrated default: 4x4 SCC floorplan, Table-I-anchored models.
ChipEnginePtr make_default_chip_engine(
    double control_period_s = 2e-3, int substeps = 4,
    linalg::SolveBackend backend = linalg::SolveBackend::kAuto);

}  // namespace tecfan::sim
