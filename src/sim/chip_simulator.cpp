#include "sim/chip_simulator.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace tecfan::sim {

using core::KnobState;

namespace {

ChipEnginePtr require_engine(ChipEnginePtr engine) {
  TECFAN_REQUIRE(engine != nullptr, "simulator requires an engine");
  return engine;
}

}  // namespace

ChipSimulator::ChipSimulator(ChipEnginePtr engine)
    : engine_(require_engine(std::move(engine))),
      plant_(engine_->thermal()),
      steady_(engine_->thermal()) {}

linalg::Vector ChipSimulator::dynamic_power(
    const perf::Workload& workload, const KnobState& knobs, double time_s,
    const std::vector<std::uint8_t>& finished,
    double finished_activity) const {
  const auto& fp = models().thermal->floorplan();
  linalg::Vector dyn(fp.component_count(), 0.0);
  const double scale = workload.power_scale();
  for (std::size_t c = 0; c < fp.component_count(); ++c) {
    const auto& comp = fp.component(c);
    const auto core = static_cast<std::size_t>(comp.core);
    double act = workload.activity(comp.core, comp.kind, time_s);
    if (finished[core]) act *= finished_activity;
    const double dvfs_scale = models().dvfs.dyn_scale(0, knobs.dvfs[core]);
    dyn[c] = models().dynamic.component_power_w(comp, act, dvfs_scale, scale);
  }
  return dyn;
}

void ChipSimulator::add_leakage(const linalg::Vector& node_temps,
                                linalg::Vector& comp_power,
                                double* leak_total) const {
  const auto& fp = models().thermal->floorplan();
  const double chip_area = fp.chip_area();
  double total = 0.0;
  for (std::size_t c = 0; c < fp.component_count(); ++c) {
    const double leak = models().leak_quad.component_leakage_w(
        fp.component(c).rect.area() / chip_area,
        node_temps[models().thermal->die_node(c)]);
    comp_power[c] += leak;
    total += leak;
  }
  if (leak_total) *leak_total = total;
}

linalg::Vector ChipSimulator::equilibrium(const perf::Workload& workload,
                                          const KnobState& knobs,
                                          double time_s) {
  const auto& model = *models().thermal;
  thermal::CoolingState cooling;
  cooling.tec_on = knobs.tec_on;
  cooling.airflow_cfm = models().fan.airflow_cfm(knobs.fan_level);

  std::vector<std::uint8_t> finished(
      static_cast<std::size_t>(model.floorplan().core_count()), 0);
  const linalg::Vector dyn =
      dynamic_power(workload, knobs, time_s, finished, 1.0);

  // Temperature-leakage fixed point (paper: iterate until the peak changes
  // by < 0.5 C between rounds).
  linalg::Vector temps(model.node_count(), model.ambient_k());
  double prev_peak = 0.0;
  for (int round = 0; round < 20; ++round) {
    linalg::Vector power = dyn;
    add_leakage(temps, power, nullptr);
    temps = steady_.solve(power, cooling);
    const double peak =
        *std::max_element(temps.begin(), temps.end());
    if (std::abs(peak - prev_peak) < 0.5) break;
    prev_peak = peak;
  }
  return temps;
}

RunResult ChipSimulator::run(core::Policy& policy,
                             const perf::Workload& workload,
                             const RunConfig& config) {
  const auto& model = *models().thermal;
  const auto& fp = model.floorplan();
  const int cores = fp.core_count();
  const std::size_t n_comp = model.component_count();
  const double dt = control_period_s();
  const double sub_dt = plant_.dt();

  core::ChipPlanningModel::Config planner_cfg;
  planner_cfg.leakage = models().leak_linear;
  planner_cfg.fan = models().fan;
  planner_cfg.dvfs = models().dvfs;
  planner_cfg.threshold_k = config.threshold_k;
  planner_cfg.control_period_s = dt;
  // Borrows the engine's steady factorization: the planner is a per-run
  // workspace, so building one here costs no refactorization.
  core::ChipPlanningModel planner(engine_->thermal(), planner_cfg);

  policy.reset();
  Rng noise(config.noise_seed);

  KnobState knobs = KnobState::initial(cores, model.tec_count(),
                                       config.fan_level);
  linalg::Vector temps = equilibrium(workload, knobs);

  // finished[n] is set once an *active* core retires its budget; inactive
  // cores idle through the workload's own idle path and never gate
  // completion.
  std::vector<std::uint8_t> finished(static_cast<std::size_t>(cores), 0);
  std::vector<double> retired(static_cast<std::size_t>(cores), 0.0);
  std::vector<double> finish_time(static_cast<std::size_t>(cores), 0.0);
  int active_cores = 0;
  for (int n = 0; n < cores; ++n)
    if (workload.core_active(n)) ++active_cores;
  TECFAN_REQUIRE(active_cores > 0, "workload has no active cores");
  const double budget = workload.instructions_per_core();

  RunResult res;
  res.policy = std::string(policy.name());
  res.workload = std::string(workload.name());

  // k = 0 "previous interval" bootstrap measurements.
  linalg::Vector measured_dyn = dynamic_power(
      workload, knobs, 0.0, finished, config.finished_core_activity);
  linalg::Vector measured_ips(static_cast<std::size_t>(cores), 0.0);
  for (int n = 0; n < cores; ++n)
    if (workload.core_active(n))
      measured_ips[static_cast<std::size_t>(n)] =
          workload.base_ips_per_core() * workload.ips_factor(n, 0.0);

  std::vector<std::uint8_t> prev_tec_on(model.tec_count(), 0);
  double t = 0.0;
  double energy = 0.0;
  power::PowerBreakdown power_sum;  // time-weighted, divided at the end
  double ips_sum = 0.0;
  double dvfs_sum = 0.0;
  std::size_t intervals = 0;
  std::size_t measured_intervals = 0;
  std::size_t violations = 0;
  double run_peak = 0.0;
  double peak_sum = 0.0;

  while (t < config.max_sim_time_s) {
    // --- Controller turn ---
    core::ChipPlanningModel::Observation obs;
    obs.comp_temps_k.resize(n_comp);
    for (std::size_t c = 0; c < n_comp; ++c) {
      obs.comp_temps_k[c] = temps[model.die_node(c)];
      if (config.sensor_noise_k > 0.0)
        obs.comp_temps_k[c] += noise.normal(0.0, config.sensor_noise_k);
    }
    obs.comp_dyn_power_w = measured_dyn;
    obs.core_ips = measured_ips;
    obs.applied = knobs;
    planner.observe(obs);
    KnobState next = policy.decide(planner, knobs);
    if (!config.policy_manages_fan) next.fan_level = config.fan_level;
    knobs = std::move(next);

    // --- Plant interval ---
    thermal::CoolingState cooling;
    cooling.tec_on = knobs.tec_on;
    cooling.airflow_cfm = models().fan.airflow_cfm(knobs.fan_level);
    const double fan_w = models().fan.power_w(knobs.fan_level);

    // Peltier engage delay: a device switched on this interval pumps for
    // only (substep - delay) of its first substep; model by holding it off
    // for the first substep when the delay is a significant fraction.
    thermal::CoolingState first_substep_cooling = cooling;
    if (config.tec_engage_delay_s > 0.0) {
      const double derate = config.tec_engage_delay_s / sub_dt;
      if (derate >= 0.5) {
        for (std::size_t d = 0; d < cooling.tec_on.size(); ++d)
          if (cooling.tec_on[d] && !prev_tec_on[d])
            first_substep_cooling.tec_on[d] = 0;
      }
    }

    linalg::Vector dyn = dynamic_power(workload, knobs, t, finished,
                                       config.finished_core_activity);
    double dyn_total = 0.0;
    for (double v : dyn) dyn_total += v;

    power::PowerBreakdown interval_power;
    for (int s = 0; s < engine_->substeps(); ++s) {
      const thermal::CoolingState& step_cooling =
          (s == 0) ? first_substep_cooling : cooling;
      linalg::Vector power = dyn;
      double leak_total = 0.0;
      add_leakage(temps, power, &leak_total);
      const double tec_w = model.total_tec_power(temps, step_cooling);
      temps = plant_.step(temps, power, step_cooling);
      interval_power.dynamic_w += dyn_total / engine_->substeps();
      interval_power.leakage_w += leak_total / engine_->substeps();
      interval_power.tec_w += tec_w / engine_->substeps();
      interval_power.fan_w += fan_w / engine_->substeps();
      energy += (dyn_total + leak_total + tec_w + fan_w) * sub_dt;
    }

    // --- Performance accounting (Eq. 11) ---
    double chip_ips = 0.0;
    for (int n = 0; n < cores; ++n) {
      const auto ni = static_cast<std::size_t>(n);
      double ips = 0.0;
      if (workload.core_active(n) && !finished[ni]) {
        ips = workload.base_ips_per_core() *
              models().dvfs.freq_scale(0, knobs.dvfs[ni]) *
              workload.ips_factor(n, t);
        retired[ni] += ips * dt;
        if (retired[ni] >= budget) {
          finished[ni] = 1;
          finish_time[ni] = t + dt;
        }
      }
      measured_ips[ni] = ips;
      chip_ips += ips;
    }
    measured_dyn = std::move(dyn);
    prev_tec_on = knobs.tec_on;

    // --- Metrics ---
    // Violations are counted per (interval, component) sample, matching the
    // per-sample percentages of Fig. 5(b).
    const bool in_warmup = intervals < config.warmup_intervals;
    double peak = 0.0;
    std::size_t hot_samples = 0;
    for (std::size_t c = 0; c < n_comp; ++c) {
      const double tc = temps[model.die_node(c)];
      peak = std::max(peak, tc);
      if (tc > config.threshold_k + config.violation_tolerance_k)
        ++hot_samples;
    }
    const bool violated = hot_samples > 0;
    if (!in_warmup) {
      run_peak = std::max(run_peak, peak);
      peak_sum += peak;
      violations += hot_samples;
      ++measured_intervals;
    }
    power_sum += interval_power;
    ips_sum += chip_ips;
    dvfs_sum += knobs.mean_dvfs();
    ++intervals;

    if (config.record_trace) {
      IntervalRecord rec;
      rec.time_s = t;
      rec.peak_temp_k = peak;
      rec.power = interval_power;
      rec.ips = chip_ips;
      rec.fan_level = knobs.fan_level;
      rec.tecs_on = knobs.tecs_active();
      rec.mean_dvfs = knobs.mean_dvfs();
      rec.violation = violated;
      res.trace.push_back(rec);
    }

    t += dt;
    bool all_done = true;
    for (int n = 0; n < cores; ++n)
      if (workload.core_active(n) && !finished[static_cast<std::size_t>(n)])
        all_done = false;
    if (all_done) {
      res.completed = true;
      break;
    }
  }

  res.exec_time_s = 0.0;
  for (int n = 0; n < cores; ++n)
    if (workload.core_active(n))
      res.exec_time_s =
          std::max(res.exec_time_s, finish_time[static_cast<std::size_t>(n)]);
  if (!res.completed) res.exec_time_s = t;
  res.energy_j = energy;
  if (intervals > 0) {
    const double inv = 1.0 / static_cast<double>(intervals);
    res.avg_power.dynamic_w = power_sum.dynamic_w * inv;
    res.avg_power.leakage_w = power_sum.leakage_w * inv;
    res.avg_power.tec_w = power_sum.tec_w * inv;
    res.avg_power.fan_w = power_sum.fan_w * inv;
    res.avg_ips = ips_sum * inv;
    res.avg_dvfs = dvfs_sum * inv;
    res.violation_frac =
        measured_intervals == 0
            ? 0.0
            : static_cast<double>(violations) /
                  (static_cast<double>(measured_intervals) *
                   static_cast<double>(n_comp));
  }
  res.peak_temp_k = run_peak;
  res.mean_peak_temp_k =
      measured_intervals ? peak_sum / static_cast<double>(measured_intervals)
                         : run_peak;
  res.fan_level = knobs.fan_level;
  return res;
}

}  // namespace tecfan::sim
