// Default model bundle: the calibrated 16-core SCC-like system used across
// tests, benches and examples. Building the thermal model (and especially
// factoring its base matrices inside the solvers) is the expensive part, so
// callers share one ChipModels instance across runs.
#pragma once

#include <memory>

#include "power/dvfs.h"
#include "power/dynamic.h"
#include "power/fan.h"
#include "power/leakage.h"
#include "thermal/network.h"

namespace tecfan::sim {

struct ChipModels {
  std::shared_ptr<const thermal::ChipThermalModel> thermal;
  power::DynamicPowerModel dynamic = power::DynamicPowerModel::scc_calibrated();
  power::LinearLeakageModel leak_linear;
  power::QuadraticLeakageModel leak_quad;
  power::FanModel fan = power::FanModel::dynatron_r16();
  power::DvfsTable dvfs = power::DvfsTable::scc();
};

/// The calibrated default: 4x4 SCC floorplan, Table-I-anchored power models.
ChipModels make_default_chip_models();

/// Same structure at a custom tile-grid size (tests use small grids).
ChipModels make_chip_models(int tiles_x, int tiles_y);

}  // namespace tecfan::sim
