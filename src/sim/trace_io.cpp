#include "sim/trace_io.h"

#include <ostream>

#include "util/csv.h"
#include "util/error.h"

namespace tecfan::sim {
namespace {

const std::vector<std::string> kTraceHeader = {
    "time_s",  "peak_temp_k", "dynamic_w", "leakage_w", "tec_w",
    "fan_w",   "ips",         "fan_level", "tecs_on",   "mean_dvfs",
    "violation"};

}  // namespace

void write_trace_csv(std::ostream& os, const RunResult& result) {
  CsvWriter w(os);
  w.write_header(kTraceHeader);
  for (const auto& rec : result.trace) {
    w.write_row({format_double(rec.time_s, 9),
                 format_double(rec.peak_temp_k, 9),
                 format_double(rec.power.dynamic_w, 9),
                 format_double(rec.power.leakage_w, 9),
                 format_double(rec.power.tec_w, 9),
                 format_double(rec.power.fan_w, 9),
                 format_double(rec.ips, 9), std::to_string(rec.fan_level),
                 std::to_string(rec.tecs_on),
                 format_double(rec.mean_dvfs, 9),
                 rec.violation ? "1" : "0"});
  }
}

std::vector<IntervalRecord> read_trace_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  TECFAN_REQUIRE(!rows.empty(), "empty trace CSV");
  TECFAN_REQUIRE(rows[0] == kTraceHeader, "unrecognized trace CSV header");
  std::vector<IntervalRecord> out;
  out.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& r = rows[i];
    TECFAN_REQUIRE(r.size() == kTraceHeader.size(),
                   "trace CSV row width mismatch");
    IntervalRecord rec;
    rec.time_s = std::stod(r[0]);
    rec.peak_temp_k = std::stod(r[1]);
    rec.power.dynamic_w = std::stod(r[2]);
    rec.power.leakage_w = std::stod(r[3]);
    rec.power.tec_w = std::stod(r[4]);
    rec.power.fan_w = std::stod(r[5]);
    rec.ips = std::stod(r[6]);
    rec.fan_level = std::stoi(r[7]);
    rec.tecs_on = static_cast<std::size_t>(std::stoul(r[8]));
    rec.mean_dvfs = std::stod(r[9]);
    rec.violation = r[10] == "1";
    out.push_back(rec);
  }
  return out;
}

void write_summary_csv(std::ostream& os,
                       const std::vector<RunResult>& results) {
  CsvWriter w(os);
  w.write_header({"policy", "workload", "fan_level", "exec_time_s",
                  "energy_j", "avg_power_w", "dynamic_w", "leakage_w",
                  "tec_w", "fan_w", "peak_temp_k", "violation_frac",
                  "avg_ips", "avg_dvfs", "edp", "completed"});
  for (const auto& r : results) {
    w.write_row({r.policy, r.workload, std::to_string(r.fan_level),
                 format_double(r.exec_time_s, 9),
                 format_double(r.energy_j, 9),
                 format_double(r.avg_total_power_w(), 9),
                 format_double(r.avg_power.dynamic_w, 9),
                 format_double(r.avg_power.leakage_w, 9),
                 format_double(r.avg_power.tec_w, 9),
                 format_double(r.avg_power.fan_w, 9),
                 format_double(r.peak_temp_k, 9),
                 format_double(r.violation_frac, 9),
                 format_double(r.avg_ips, 9), format_double(r.avg_dvfs, 9),
                 format_double(r.edp(), 9), r.completed ? "1" : "0"});
  }
}

}  // namespace tecfan::sim
