// CSV serialization of run traces — what the bench binaries emit so the
// paper's figures can be re-plotted outside C++.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/metrics.h"

namespace tecfan::sim {

/// Write a run's interval trace as CSV (header + one row per interval).
void write_trace_csv(std::ostream& os, const RunResult& result);

/// Parse a trace written by write_trace_csv back into interval records
/// (policy/workload and scalar summary fields are not round-tripped).
std::vector<IntervalRecord> read_trace_csv(const std::string& text);

/// Write a one-line-per-run summary CSV for a set of results.
void write_summary_csv(std::ostream& os,
                       const std::vector<RunResult>& results);

}  // namespace tecfan::sim
