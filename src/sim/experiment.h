// The Sec. IV-C evaluation protocol.
//
// The fan's 15-30 s time constant dwarfs the <100 ms SPLASH runs, so the
// paper runs every (policy, workload) combination at each fan speed level
// and reports the run with the lowest speed that does not violate the
// temperature threshold. measure_base_scenario() produces the Table I
// anchor runs (top DVFS, fastest fan, TECs off) whose peak temperature
// defines T_th for each workload.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/chip_simulator.h"

namespace tecfan::sim {

using PolicyFactory = std::function<core::PolicyPtr()>;

/// Base scenario (Table I): fastest fan, top DVFS, all TECs off; returns the
/// run result whose peak temperature becomes the workload's threshold.
RunResult measure_base_scenario(ChipSimulator& simulator,
                                const perf::Workload& workload,
                                double max_sim_time_s = 1.0);

struct SweepOptions {
  double threshold_k = 0.0;  // T_th (from the base scenario)
  /// A fan level is acceptable when the policy *holds* the threshold: the
  /// post-warmup mean interval peak stays within tolerance of T_th (the
  /// paper's "without violating the temperature threshold"; transient
  /// crossings are reported separately as the Fig. 5(b) violation metric).
  double mean_peak_tolerance_k = 0.1;
  /// Optional bound on the time-average DVFS level for a level to qualify.
  /// Used for TECfan: its higher-level fan loop only slows the fan while
  /// steady-state hot spots stay absent *without throttling*, so the
  /// equivalent static level is the slowest one the policy holds with at
  /// most marginal DVFS engagement.
  double max_mean_dvfs = 1e9;
  double max_sim_time_s = 1.0;
  bool record_trace = false;
  /// Simulate the fan levels concurrently (one ChipSimulator + policy per
  /// level over the shared engine) instead of serially. The reported sweep
  /// is bit-identical to the serial scan — levels are still accepted
  /// slowest-first and per_level records the same prefix — only wall clock
  /// changes (slowest single run instead of the sum over tried levels).
  bool parallel = true;
};

struct SweepResult {
  RunResult chosen;                // run at the selected fan level
  std::vector<RunResult> per_level;  // every level actually simulated
};

/// Scan fan levels from slowest to fastest and keep the first (slowest)
/// level whose violation fraction stays within bounds; falls back to the
/// fastest level when none qualifies. Takes the shared engine and builds a
/// throwaway workspace per simulated level, so sweeps are safe to issue
/// concurrently (the tecfand worker pool does) and can parallelize across
/// levels (SweepOptions::parallel).
SweepResult run_with_fan_sweep(const ChipEnginePtr& engine,
                               const PolicyFactory& make_policy,
                               const perf::Workload& workload,
                               const SweepOptions& options);

/// Convenience overload over an existing workspace's engine.
SweepResult run_with_fan_sweep(ChipSimulator& simulator,
                               const PolicyFactory& make_policy,
                               const perf::Workload& workload,
                               const SweepOptions& options);

}  // namespace tecfan::sim
