// Run-level metrics: energy, delay, EDP, violation rate, power breakdown.
#pragma once

#include <string>
#include <vector>

#include "core/actions.h"
#include "power/breakdown.h"

namespace tecfan::sim {

struct IntervalRecord {
  double time_s = 0.0;
  double peak_temp_k = 0.0;
  power::PowerBreakdown power;  // interval-average
  double ips = 0.0;
  int fan_level = 0;
  std::size_t tecs_on = 0;
  double mean_dvfs = 0.0;
  bool violation = false;
};

struct RunResult {
  std::string policy;
  std::string workload;

  double exec_time_s = 0.0;   // when the last core finished (delay metric)
  double energy_j = 0.0;      // total energy incl. cooling
  power::PowerBreakdown avg_power;  // time-average buckets
  double peak_temp_k = 0.0;   // max over run and spots
  double mean_peak_temp_k = 0.0;  // post-warmup mean of interval peaks
  double violation_frac = 0.0;  // fraction of intervals with a violation
  double avg_ips = 0.0;
  double avg_dvfs = 0.0;   // time-average of the mean per-core DVFS level
  bool completed = false;     // instruction budgets met within the time cap
  int fan_level = 0;          // level in effect (or final level if managed)

  std::vector<IntervalRecord> trace;

  double avg_total_power_w() const { return avg_power.total_w(); }
  double edp() const { return energy_j * exec_time_s; }
};

}  // namespace tecfan::sim
