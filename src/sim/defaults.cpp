#include "sim/defaults.h"

namespace tecfan::sim {

ChipModels make_chip_models(int tiles_x, int tiles_y) {
  ChipModels m;
  thermal::PackageParameters pkg;   // calibrated defaults (see package.h)
  thermal::TecParameters tec;       // calibrated defaults (see tec_device.h)
  m.thermal = std::make_shared<const thermal::ChipThermalModel>(
      thermal::Floorplan::scc(tiles_x, tiles_y), pkg, tec);
  m.leak_linear = power::LinearLeakageModel{};
  m.leak_quad = power::QuadraticLeakageModel::matched_to(m.leak_linear);
  return m;
}

ChipModels make_default_chip_models() { return make_chip_models(4, 4); }

}  // namespace tecfan::sim
