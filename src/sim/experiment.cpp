#include "sim/experiment.h"

#include "core/reactive_policies.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace tecfan::sim {

RunResult measure_base_scenario(ChipSimulator& simulator,
                                const perf::Workload& workload,
                                double max_sim_time_s) {
  core::FanOnlyPolicy policy;
  RunConfig cfg;
  cfg.threshold_k = 1e6;  // effectively unconstrained: we measure the peak
  cfg.fan_level = 0;
  cfg.max_sim_time_s = max_sim_time_s;
  cfg.record_trace = true;
  RunResult res = simulator.run(policy, workload, cfg);
  res.policy = "base";
  return res;
}

SweepResult run_with_fan_sweep(const ChipEnginePtr& engine,
                               const PolicyFactory& make_policy,
                               const perf::Workload& workload,
                               const SweepOptions& options) {
  TECFAN_REQUIRE(engine != nullptr, "sweep requires an engine");
  TECFAN_REQUIRE(options.threshold_k > 0.0,
                 "sweep requires a positive threshold");
  const int levels = engine->models().fan.level_count();

  // One throwaway workspace + policy per simulated level; runs at distinct
  // levels are fully independent, which is what makes the parallel path
  // bit-identical to the serial scan.
  auto run_level = [&](int lvl) {
    RunConfig cfg;
    cfg.threshold_k = options.threshold_k;
    cfg.fan_level = lvl;
    cfg.max_sim_time_s = options.max_sim_time_s;
    cfg.record_trace = options.record_trace;
    ChipSimulator simulator(engine);
    auto policy = make_policy();
    return simulator.run(*policy, workload, cfg);
  };

  std::vector<RunResult> results(static_cast<std::size_t>(levels));
  std::vector<std::uint8_t> ran(static_cast<std::size_t>(levels), 0);
  if (options.parallel) {
    // Speculatively simulate every level concurrently. The scan below still
    // stops at the slowest passing level, so per_level matches the serial
    // sweep; faster levels that would not have been tried are discarded.
    parallel_for(static_cast<std::size_t>(levels), [&](std::size_t i) {
      results[i] = run_level(static_cast<int>(i));
      ran[i] = 1;
    });
  }

  SweepResult sweep;
  bool have_choice = false;
  for (int lvl = levels - 1; lvl >= 0; --lvl) {
    const auto li = static_cast<std::size_t>(lvl);
    if (!ran[li]) results[li] = run_level(lvl);
    RunResult& res = results[li];
    const bool ok = res.completed &&
                    res.mean_peak_temp_k <=
                        options.threshold_k + options.mean_peak_tolerance_k &&
                    res.avg_dvfs <= options.max_mean_dvfs;
    TECFAN_LOG_DEBUG << "sweep " << res.policy << "/" << res.workload
                     << " fan=" << lvl << " viol=" << res.violation_frac
                     << (ok ? " PASS" : " fail");
    sweep.per_level.push_back(std::move(res));
    if (ok) {
      sweep.chosen = sweep.per_level.back();
      have_choice = true;
      break;  // slowest passing level found
    }
  }
  if (!have_choice) {
    // No level passed: report the fastest-fan run (last simulated).
    sweep.chosen = sweep.per_level.back();
    TECFAN_LOG_WARN << "fan sweep found no passing level for "
                    << sweep.chosen.policy << "/" << sweep.chosen.workload;
  }
  return sweep;
}

SweepResult run_with_fan_sweep(ChipSimulator& simulator,
                               const PolicyFactory& make_policy,
                               const perf::Workload& workload,
                               const SweepOptions& options) {
  return run_with_fan_sweep(simulator.engine_ptr(), make_policy, workload,
                            options);
}

}  // namespace tecfan::sim
