// The 4-core server setup of Sec. IV-B / V-E: Core i7-3770K-shaped cores
// driven by the Wikipedia trace, with one TEC module per core and the same
// adjustable fan. Small enough (14 thermal nodes, 4 cores, 4 TECs) for the
// exhaustive Oracle/OFTEC baselines to enumerate.
//
// Node layout: [0,4) cores, [4,8) TEC cold faces, [8,12) TEC hot faces,
// 12 spreader, 13 sink.
#pragma once

#include <memory>

#include "core/planning.h"
#include "core/policy.h"
#include "linalg/lu.h"
#include "perf/server_model.h"
#include "perf/wikipedia_trace.h"
#include "power/dvfs.h"
#include "power/fan.h"
#include "sim/metrics.h"

namespace tecfan::sim {

struct ServerThermalParams {
  double g_core_cold = 2.0;     // die -> TEC cold face [W/K]
  double g_core_direct = 1.5;   // die -> spreader bypass (uncovered TIM)
  double g_core_core = 0.8;     // adjacent cores on die
  double g_hot_spreader = 3.0;  // TEC hot face -> spreader
  double g_spreader_sink = 8.0;
  double conv_fixed_g = 1.5;    // sink -> ambient, no airflow
  double conv_cfm_coeff = 0.25;
  double conv_exponent = 0.8;
  double ambient_k = 318.15;

  double tec_alpha_v_per_k = 6e-3;  // module Seebeck
  double tec_r_ohm = 0.05;
  double tec_kappa_w_per_k = 0.8;
  double tec_current_a = 6.0;

  double c_core = 5.0;  // J/K
  double c_face = 0.05;
  double c_spreader = 60.0;
  double c_sink = 400.0;

  // Per-core leakage, linear in core temperature.
  double leak_base_w = 2.0;
  double leak_alpha_w_per_k = 0.08;
  double leak_ref_k = 318.15;
};

class ServerThermalModel {
 public:
  static constexpr int kCores = 4;
  static constexpr std::size_t kNodes = 14;

  explicit ServerThermalModel(ServerThermalParams params = {});

  const ServerThermalParams& params() const { return params_; }

  std::size_t core_node(int n) const { return static_cast<std::size_t>(n); }
  std::size_t cold_node(int n) const { return 4 + static_cast<std::size_t>(n); }
  std::size_t hot_node(int n) const { return 8 + static_cast<std::size_t>(n); }
  std::size_t spreader_node() const { return 12; }
  std::size_t sink_node() const { return 13; }

  /// Steady solve for given per-core power, TEC states, and airflow.
  linalg::Vector steady(std::span<const double> core_power_w,
                        std::span<const std::uint8_t> tec_on,
                        double airflow_cfm) const;

  /// Factor the conductance system for one cooling configuration. The
  /// matrix depends only on (tec_on, airflow) — not on power — so batch
  /// evaluation shares one factorization across every DVFS assignment of
  /// the same TEC mask and fan level (bit-exact with factoring per solve:
  /// the factorization is deterministic in the matrix).
  linalg::LuFactorization factor(std::span<const std::uint8_t> tec_on,
                                 double airflow_cfm) const;

  /// Sink->ambient convection conductance at an airflow — the only
  /// airflow-dependent rhs term (a pow(), worth hoisting per fan level).
  double sink_conv_g(double airflow_cfm) const;

  /// steady() against a factorization from factor() and the matching
  /// precomputed sink_conv_g (same (tec_on, airflow) as the factor).
  linalg::Vector steady_from(const linalg::LuFactorization& lu,
                             std::span<const double> core_power_w,
                             std::span<const std::uint8_t> tec_on,
                             double sink_g) const;

  /// The rhs of steady_from's solve, into a caller-owned buffer (resized
  /// as needed) — batch evaluation reuses one buffer per worker instead
  /// of allocating per candidate.
  void rhs_into(std::span<const double> core_power_w,
                std::span<const std::uint8_t> tec_on, double sink_g,
                linalg::Vector& q) const;

  /// One implicit-Euler step.
  linalg::Vector step(std::span<const double> temps_k,
                      std::span<const double> core_power_w,
                      std::span<const std::uint8_t> tec_on,
                      double airflow_cfm, double dt_s) const;

  /// Eq. (5) per-node time constants.
  const std::vector<double>& taus() const { return taus_; }

  /// Eq. (9) electrical power of core n's TEC.
  double tec_power_w(std::span<const double> temps_k, int n, bool on) const;

  double leakage_w(double core_temp_k) const;

 private:
  linalg::DenseMatrix conductance(std::span<const std::uint8_t> tec_on,
                                  double airflow_cfm) const;
  linalg::Vector rhs(std::span<const double> core_power_w,
                     std::span<const std::uint8_t> tec_on,
                     double airflow_cfm) const;
  /// rhs with the convection term already evaluated (see sink_conv_g).
  linalg::Vector rhs_with(std::span<const double> core_power_w,
                          std::span<const std::uint8_t> tec_on,
                          double sink_g) const;

  ServerThermalParams params_;
  std::vector<double> caps_;
  std::vector<double> taus_;
};

struct ServerConfig {
  power::DvfsTable dvfs = power::DvfsTable::core_i7();
  power::FanModel fan = power::FanModel::dynatron_r16();
  perf::ServerCoreModel core_model{.busy_power_top_w = 18.0,
                                   .idle_power_w = 3.5,
                                   .quad_coeff = 0.35,
                                   .peak_ips = 4.0e9};
  ServerThermalParams thermal;
  double threshold_k = 339.15;     // 66 C
  double control_period_s = 0.2;
  int substeps = 2;
  int fan_period_intervals = 25;   // 5 s
  double duration_s = 600.0;       // one 10-minute trace segment per core
  double max_extra_s = 120.0;      // backlog drain allowance past the trace
  bool record_trace = false;
};

/// PlanningModel over the server system (spots = cores; one TEC per core).
class ServerPlanningModel final : public core::PlanningModel {
 public:
  ServerPlanningModel(std::shared_ptr<const ServerThermalModel> thermal,
                      ServerConfig config);

  struct Observation {
    linalg::Vector core_temps_k;   // sensed
    std::vector<double> demand;    // previous-interval per-core demand
    core::KnobState applied;
  };

  void observe(const Observation& obs);
  void reset();

  int core_count() const override { return ServerThermalModel::kCores; }
  std::size_t tec_count() const override { return 4; }
  int dvfs_level_count() const override { return config_.dvfs.level_count(); }
  int fan_level_count() const override { return config_.fan.level_count(); }
  std::size_t spot_count() const override { return 4; }
  int core_of_spot(std::size_t spot) const override {
    return static_cast<int>(spot);
  }
  const std::vector<std::size_t>& tecs_over(std::size_t spot) const override;
  const linalg::Vector& sensed_temps() const override;
  double threshold_k() const override { return config_.threshold_k; }
  core::Prediction predict(const core::KnobState& knobs) override;
  core::Prediction predict_steady(const core::KnobState& knobs) override;

  /// Flat-ActionSet batch, bit-exact with a serial predict() loop. Two
  /// amortizations over the per-candidate path: the thermal factorization
  /// is shared across every candidate with the same (TEC mask, fan level)
  /// — a full sweep has dvfs^cores times fewer distinct cooling
  /// configurations than candidates — and the independent per-candidate
  /// solves run across util/parallel workers.
  void evaluate_batch(const core::ActionSet::Slice& slice,
                      const core::KnobState& base,
                      std::vector<core::Prediction>& out) override;

 private:
  core::Prediction predict_impl(const core::KnobState& knobs, bool steady);
  /// Reusable per-worker buffers for predict_from (per-core power and the
  /// thermal solve vector) — keeps the batch inner loop allocation-free
  /// apart from the returned Prediction.
  struct PredictScratch {
    std::vector<double> power;
    linalg::Vector q;  // rhs
    linalg::Vector x;  // solution / node temperatures
  };

  /// predict_impl against a pre-built factorization and sink conductance
  /// for knobs' cooling configuration (see ServerThermalModel::factor).
  core::Prediction predict_from(const core::KnobState& knobs,
                                const linalg::LuFactorization& lu,
                                double sink_g, bool steady,
                                PredictScratch& scratch);

  std::shared_ptr<const ServerThermalModel> thermal_;
  ServerConfig config_;
  std::vector<std::vector<std::size_t>> tec_map_;
  /// Eq. (5) interpolation weights exp(-dt / tau) per node — fixed by the
  /// control period, hoisted out of the per-candidate transient step.
  std::vector<double> betas_;
  /// Per-(core, DVFS level) power/performance terms for the current
  /// observation. Demand and sensed temperatures are fixed between
  /// observe() calls, so candidate evaluation only varies the level —
  /// the cache turns the per-candidate core-model walk into four lookups
  /// (same expressions and summation order, so bit-exact).
  struct LevelTerms {
    double dyn_w = 0.0;
    double served_ips = 0.0;
    double capacity_ips = 0.0;
  };
  std::vector<LevelTerms> level_terms_;  // [core * dvfs_levels + lvl]
  std::vector<double> leak_w_;           // per core
  linalg::Vector state_estimate_;
  Observation last_;
  bool has_observation_ = false;
};

class ServerSimulator {
 public:
  explicit ServerSimulator(ServerConfig config = {});

  /// Run one 10-minute (plus backlog drain) simulation of the trace.
  RunResult run(core::Policy& policy, const perf::WikipediaTrace& trace);

  /// Per-interval served chip IPS of the last run.
  const std::vector<double>& last_ips_trace() const { return ips_trace_; }

  /// Per-interval chip performance capability (capacity_ips) of the last
  /// run — the reference trajectory Oracle-P is constrained by.
  const std::vector<double>& last_capacity_trace() const {
    return capacity_trace_;
  }

  const ServerConfig& config() const { return config_; }

 private:
  ServerConfig config_;
  std::shared_ptr<const ServerThermalModel> thermal_;
  std::vector<double> ips_trace_;
  std::vector<double> capacity_trace_;
};

}  // namespace tecfan::sim
