#include "sim/chip_engine.h"

#include "perf/splash2.h"
#include "util/error.h"

namespace tecfan::sim {

ChipEngine::ChipEngine(ChipModels models, double control_period_s,
                       int substeps, linalg::SolveBackend backend)
    : models_(std::move(models)),
      control_period_s_(control_period_s),
      substeps_(substeps) {
  TECFAN_REQUIRE(models_.thermal != nullptr, "ChipEngine requires a model");
  TECFAN_REQUIRE(control_period_s_ > 0 && substeps_ > 0,
                 "control period and substeps must be positive");
  thermal_ = thermal::make_thermal_engine(
      models_.thermal, control_period_s_ / substeps_, backend);
  control_ = core::make_control_engine(
      core::ControlDims{models_.thermal->floorplan().core_count(),
                        models_.thermal->tec_count(),
                        models_.dvfs.level_count(), models_.fan.level_count()},
      models_.dvfs, models_.fan);
}

perf::WorkloadPtr ChipEngine::workload(const std::string& name,
                                       int threads) const {
  const std::string key = name + "/" + std::to_string(threads);
  {
    std::lock_guard<std::mutex> lock(workloads_mu_);
    auto it = workloads_.find(key);
    if (it != workloads_.end()) return it->second;
  }
  // Built outside the lock (workload calibration solves a few systems);
  // a racing duplicate build is harmless — first insert wins.
  auto wl = perf::make_splash_workload(name, threads,
                                       models_.thermal->floorplan(),
                                       models_.dynamic, models_.leak_quad);
  std::lock_guard<std::mutex> lock(workloads_mu_);
  return workloads_.emplace(key, std::move(wl)).first->second;
}

ChipEnginePtr make_chip_engine(ChipModels models, double control_period_s,
                               int substeps, linalg::SolveBackend backend) {
  return std::make_shared<const ChipEngine>(
      std::move(models), control_period_s, substeps, backend);
}

ChipEnginePtr make_chip_engine(int tiles_x, int tiles_y,
                               double control_period_s, int substeps,
                               linalg::SolveBackend backend) {
  return make_chip_engine(make_chip_models(tiles_x, tiles_y),
                          control_period_s, substeps, backend);
}

ChipEnginePtr make_default_chip_engine(double control_period_s, int substeps,
                                       linalg::SolveBackend backend) {
  return make_chip_engine(make_default_chip_models(), control_period_s,
                          substeps, backend);
}

}  // namespace tecfan::sim
