#include "sim/server_system.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

#include "linalg/lu.h"
#include "util/error.h"
#include "util/parallel.h"

namespace tecfan::sim {
namespace {

double conv_g(const ServerThermalParams& p, double cfm) {
  return p.conv_fixed_g + p.conv_cfm_coeff * std::pow(cfm, p.conv_exponent);
}

}  // namespace

ServerThermalModel::ServerThermalModel(ServerThermalParams params)
    : params_(params) {
  caps_.assign(kNodes, 0.0);
  for (int n = 0; n < kCores; ++n) {
    caps_[core_node(n)] = params_.c_core;
    caps_[cold_node(n)] = params_.c_face;
    caps_[hot_node(n)] = params_.c_face;
  }
  caps_[spreader_node()] = params_.c_spreader;
  caps_[sink_node()] = params_.c_sink;

  // Time constants against the passive conductance diagonal.
  std::vector<std::uint8_t> off(4, 0);
  const linalg::DenseMatrix g = conductance(off, 0.0);
  taus_.assign(kNodes, 0.0);
  for (std::size_t i = 0; i < kNodes; ++i) taus_[i] = caps_[i] / g(i, i);
}

linalg::DenseMatrix ServerThermalModel::conductance(
    std::span<const std::uint8_t> tec_on, double airflow_cfm) const {
  TECFAN_REQUIRE(tec_on.size() == 4, "need 4 TEC states");
  linalg::DenseMatrix g(kNodes, kNodes);
  auto couple = [&g](std::size_t a, std::size_t b, double v) {
    g(a, a) += v;
    g(b, b) += v;
    g(a, b) -= v;
    g(b, a) -= v;
  };
  const auto& p = params_;
  for (int n = 0; n < kCores; ++n) {
    couple(core_node(n), cold_node(n), p.g_core_cold);
    couple(cold_node(n), hot_node(n), p.tec_kappa_w_per_k);
    couple(hot_node(n), spreader_node(), p.g_hot_spreader);
    couple(core_node(n), spreader_node(), p.g_core_direct);
    if (n + 1 < kCores) couple(core_node(n), core_node(n + 1), p.g_core_core);
    if (tec_on[static_cast<std::size_t>(n)]) {
      const double pump = p.tec_alpha_v_per_k * p.tec_current_a;
      g(cold_node(n), cold_node(n)) += pump;
      g(hot_node(n), hot_node(n)) -= pump;
    }
  }
  couple(spreader_node(), sink_node(), p.g_spreader_sink);
  g(sink_node(), sink_node()) += conv_g(p, airflow_cfm);
  return g;
}

linalg::Vector ServerThermalModel::rhs(
    std::span<const double> core_power_w,
    std::span<const std::uint8_t> tec_on, double airflow_cfm) const {
  return rhs_with(core_power_w, tec_on, conv_g(params_, airflow_cfm));
}

linalg::Vector ServerThermalModel::rhs_with(
    std::span<const double> core_power_w,
    std::span<const std::uint8_t> tec_on, double sink_g) const {
  linalg::Vector q;
  rhs_into(core_power_w, tec_on, sink_g, q);
  return q;
}

void ServerThermalModel::rhs_into(std::span<const double> core_power_w,
                                  std::span<const std::uint8_t> tec_on,
                                  double sink_g, linalg::Vector& q) const {
  TECFAN_REQUIRE(core_power_w.size() == 4 && tec_on.size() == 4,
                 "need 4 cores");
  q.assign(kNodes, 0.0);
  const auto& p = params_;
  const double joule =
      0.5 * p.tec_current_a * p.tec_current_a * p.tec_r_ohm;
  for (int n = 0; n < kCores; ++n) {
    q[core_node(n)] = core_power_w[static_cast<std::size_t>(n)];
    if (tec_on[static_cast<std::size_t>(n)]) {
      q[cold_node(n)] += joule;
      q[hot_node(n)] += joule;
    }
  }
  q[sink_node()] += sink_g * p.ambient_k;
}

double ServerThermalModel::sink_conv_g(double airflow_cfm) const {
  return conv_g(params_, airflow_cfm);
}

linalg::LuFactorization ServerThermalModel::factor(
    std::span<const std::uint8_t> tec_on, double airflow_cfm) const {
  return linalg::LuFactorization(conductance(tec_on, airflow_cfm));
}

linalg::Vector ServerThermalModel::steady_from(
    const linalg::LuFactorization& lu, std::span<const double> core_power_w,
    std::span<const std::uint8_t> tec_on, double sink_g) const {
  linalg::Vector q = rhs_with(core_power_w, tec_on, sink_g);
  lu.solve_in_place(q);
  return q;
}

linalg::Vector ServerThermalModel::steady(
    std::span<const double> core_power_w,
    std::span<const std::uint8_t> tec_on, double airflow_cfm) const {
  return steady_from(factor(tec_on, airflow_cfm), core_power_w, tec_on,
                     sink_conv_g(airflow_cfm));
}

linalg::Vector ServerThermalModel::step(std::span<const double> temps_k,
                                        std::span<const double> core_power_w,
                                        std::span<const std::uint8_t> tec_on,
                                        double airflow_cfm, double dt_s) const {
  TECFAN_REQUIRE(temps_k.size() == kNodes, "temps size mismatch");
  TECFAN_REQUIRE(dt_s > 0.0, "dt must be positive");
  linalg::DenseMatrix a = conductance(tec_on, airflow_cfm);
  linalg::Vector q = rhs(core_power_w, tec_on, airflow_cfm);
  for (std::size_t i = 0; i < kNodes; ++i) {
    a(i, i) += caps_[i] / dt_s;
    q[i] += caps_[i] / dt_s * temps_k[i];
  }
  return linalg::LuFactorization(std::move(a)).solve(q);
}

double ServerThermalModel::tec_power_w(std::span<const double> temps_k,
                                       int n, bool on) const {
  TECFAN_REQUIRE(temps_k.size() == kNodes, "temps size mismatch");
  if (!on) return 0.0;
  const auto& p = params_;
  const double dtheta = temps_k[hot_node(n)] - temps_k[cold_node(n)];
  return p.tec_r_ohm * p.tec_current_a * p.tec_current_a +
         p.tec_alpha_v_per_k * p.tec_current_a * dtheta;
}

double ServerThermalModel::leakage_w(double core_temp_k) const {
  return std::max(
      0.0, params_.leak_base_w +
               params_.leak_alpha_w_per_k * (core_temp_k - params_.leak_ref_k));
}

ServerPlanningModel::ServerPlanningModel(
    std::shared_ptr<const ServerThermalModel> thermal, ServerConfig config)
    : thermal_(std::move(thermal)), config_(std::move(config)) {
  TECFAN_REQUIRE(thermal_ != nullptr, "ServerPlanningModel needs a model");
  tec_map_.resize(4);
  for (std::size_t s = 0; s < 4; ++s) tec_map_[s] = {s};
  betas_.reserve(thermal_->taus().size());
  for (double tau : thermal_->taus())
    betas_.push_back(std::exp(-config_.control_period_s / tau));
}

void ServerPlanningModel::reset() {
  state_estimate_.clear();
  has_observation_ = false;
}

const std::vector<std::size_t>& ServerPlanningModel::tecs_over(
    std::size_t spot) const {
  TECFAN_REQUIRE(spot < 4, "spot out of range");
  return tec_map_[spot];
}

const linalg::Vector& ServerPlanningModel::sensed_temps() const {
  TECFAN_REQUIRE(has_observation_, "sensed_temps before observe()");
  return last_.core_temps_k;
}

void ServerPlanningModel::observe(const Observation& obs) {
  TECFAN_REQUIRE(obs.core_temps_k.size() == 4 && obs.demand.size() == 4,
                 "observation size mismatch");
  last_ = obs;
  if (state_estimate_.empty()) {
    std::vector<double> power(4, 0.0);
    for (int n = 0; n < 4; ++n) {
      const auto ni = static_cast<std::size_t>(n);
      const double u = config_.core_model.utilization(
          config_.dvfs, obs.applied.dvfs[ni], obs.demand[ni]);
      power[ni] = config_.core_model.power_w(config_.dvfs,
                                             obs.applied.dvfs[ni], u) +
                  thermal_->leakage_w(obs.core_temps_k[ni]);
    }
    state_estimate_ = thermal_->steady(
        power, obs.applied.tec_on,
        config_.fan.airflow_cfm(obs.applied.fan_level));
  }
  for (int n = 0; n < 4; ++n)
    state_estimate_[thermal_->core_node(n)] =
        obs.core_temps_k[static_cast<std::size_t>(n)];

  const int levels = config_.dvfs.level_count();
  level_terms_.assign(4 * static_cast<std::size_t>(levels), {});
  leak_w_.assign(4, 0.0);
  for (int n = 0; n < 4; ++n) {
    const auto ni = static_cast<std::size_t>(n);
    const double demand = last_.demand[ni];
    leak_w_[ni] = thermal_->leakage_w(last_.core_temps_k[ni]);
    for (int lvl = 0; lvl < levels; ++lvl) {
      LevelTerms& lt =
          level_terms_[ni * static_cast<std::size_t>(levels) +
                       static_cast<std::size_t>(lvl)];
      const double u =
          config_.core_model.utilization(config_.dvfs, lvl, demand);
      lt.dyn_w = config_.core_model.power_w(config_.dvfs, lvl, u);
      lt.served_ips = config_.core_model.served(config_.dvfs, lvl, demand) *
                      config_.core_model.peak_ips;
      lt.capacity_ips =
          config_.core_model.relative_capacity(config_.dvfs, lvl) *
          config_.core_model.peak_ips;
    }
  }
  has_observation_ = true;
}

core::Prediction ServerPlanningModel::predict_impl(
    const core::KnobState& knobs, bool steady) {
  TECFAN_REQUIRE(has_observation_, "predict before observe()");
  const double cfm = config_.fan.airflow_cfm(knobs.fan_level);
  PredictScratch scratch;
  return predict_from(knobs, thermal_->factor(knobs.tec_on, cfm),
                      thermal_->sink_conv_g(cfm), steady, scratch);
}

core::Prediction ServerPlanningModel::predict_from(
    const core::KnobState& knobs, const linalg::LuFactorization& lu,
    double sink_g, bool steady, PredictScratch& scratch) {
  TECFAN_REQUIRE(knobs.dvfs.size() == 4 && knobs.tec_on.size() == 4,
                 "knob size mismatch");
  const auto levels = static_cast<std::size_t>(config_.dvfs.level_count());
  std::vector<double>& power = scratch.power;
  power.resize(4);
  double served_ips = 0.0;
  core::Prediction pred;
  pred.power = {};
  for (int n = 0; n < 4; ++n) {
    const auto ni = static_cast<std::size_t>(n);
    const int lvl = knobs.dvfs[ni];
    const LevelTerms& lt =
        level_terms_[ni * levels + static_cast<std::size_t>(lvl)];
    const double leak = leak_w_[ni];
    power[ni] = lt.dyn_w + leak;
    pred.power.dynamic_w += lt.dyn_w;
    pred.power.leakage_w += leak;
    served_ips += lt.served_ips;
    pred.capacity_ips += lt.capacity_ips;
  }
  thermal_->rhs_into(power, knobs.tec_on, sink_g, scratch.q);
  linalg::Vector& node_temps = scratch.x;
  lu.solve_into(scratch.q, node_temps);
  if (!steady) {
    for (std::size_t i = 0; i < node_temps.size(); ++i) {
      const double beta = betas_[i];
      node_temps[i] =
          (1.0 - beta) * node_temps[i] + beta * state_estimate_[i];
    }
  }
  pred.spot_temps_k.resize(4);
  for (int n = 0; n < 4; ++n) {
    pred.spot_temps_k[static_cast<std::size_t>(n)] =
        node_temps[thermal_->core_node(n)];
    pred.power.tec_w += thermal_->tec_power_w(
        node_temps, n, knobs.tec_on[static_cast<std::size_t>(n)] != 0);
  }
  pred.power.fan_w = config_.fan.power_w(knobs.fan_level);
  pred.ips = served_ips;
  return pred;
}

core::Prediction ServerPlanningModel::predict(const core::KnobState& knobs) {
  return predict_impl(knobs, /*steady=*/false);
}

void ServerPlanningModel::evaluate_batch(const core::ActionSet::Slice& slice,
                                         const core::KnobState& base,
                                         std::vector<core::Prediction>& out) {
  TECFAN_REQUIRE(has_observation_, "evaluate_batch before observe()");
  out.resize(slice.size());

  // Phase 1: the conductance matrix only sees the cooling configuration
  // (TEC mask, fan level), so collect the distinct configurations in the
  // slice and factor each once. A full sweep has dvfs_levels^4 candidates
  // per configuration; chunks that only vary DVFS share a single factor.
  const std::size_t tecs = slice.set->dims().tecs;
  std::vector<std::size_t> lu_of(slice.size());
  std::vector<std::uint64_t> keys;
  std::map<std::uint64_t, std::size_t> key_index;
  std::uint64_t last_key = ~std::uint64_t{0};
  std::size_t last_index = 0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const std::uint64_t key =
        (slice.set->tec_mask(slice.begin + i) << 8) |
        static_cast<std::uint64_t>(
            slice.set->fan_level(slice.begin + i, base.fan_level));
    if (key != last_key) {  // runs of equal keys skip the map
      last_index = key_index.emplace(key, keys.size()).first->second;
      if (last_index == keys.size()) keys.push_back(key);
      last_key = key;
    }
    lu_of[i] = last_index;
  }
  std::vector<linalg::LuFactorization> lus(keys.size());
  std::vector<double> sink_gs(keys.size());
  parallel_for(keys.size(), [&](std::size_t k) {
    std::vector<std::uint8_t> tec_on(tecs, 0);
    for (std::size_t t = 0; t < tecs; ++t)
      tec_on[t] = (keys[k] >> (8 + t)) & 1u ? 1 : 0;
    const double cfm =
        config_.fan.airflow_cfm(static_cast<int>(keys[k] & 0xff));
    lus[k] = thermal_->factor(tec_on, cfm);
    sink_gs[k] = thermal_->sink_conv_g(cfm);
  });

  // Phase 2: independent per-candidate solves against the shared factors —
  // bit-exact with predict() (the factorization is deterministic in the
  // matrix, so sharing it cannot change a bit). Contiguous chunks, one per
  // worker, so the KnobState template is copied once per worker rather
  // than once per candidate.
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(parallel_workers(), slice.size()));
  const std::size_t chunk = (slice.size() + workers - 1) / workers;
  parallel_for(workers, [&](std::size_t w) {
    const std::size_t b = w * chunk;
    const std::size_t e = std::min(slice.size(), b + chunk);
    core::KnobState knobs = base;
    PredictScratch scratch;
    for (std::size_t i = b; i < e; ++i) {
      slice.set->materialize(slice.begin + i, knobs);
      out[i] = predict_from(knobs, lus[lu_of[i]], sink_gs[lu_of[i]],
                            /*steady=*/false, scratch);
    }
  });
}

core::Prediction ServerPlanningModel::predict_steady(
    const core::KnobState& knobs) {
  return predict_impl(knobs, /*steady=*/true);
}

ServerSimulator::ServerSimulator(ServerConfig config)
    : config_(std::move(config)),
      thermal_(std::make_shared<const ServerThermalModel>(config_.thermal)) {}

RunResult ServerSimulator::run(core::Policy& policy,
                               const perf::WikipediaTrace& trace) {
  const double dt = config_.control_period_s;
  const double sub_dt = dt / config_.substeps;
  ServerPlanningModel planner(thermal_, config_);
  policy.reset();
  planner.reset();
  ips_trace_.clear();
  capacity_trace_.clear();

  core::KnobState knobs = core::KnobState::initial(4, 4, /*fan_level=*/0);
  std::vector<double> demand(4, 0.0);
  for (int n = 0; n < 4; ++n) demand[static_cast<std::size_t>(n)] =
      trace.core_demand(n, 0.0);

  // Initial equilibrium at the starting operating point.
  std::vector<double> power(4, 0.0);
  linalg::Vector temps(ServerThermalModel::kNodes,
                       config_.thermal.ambient_k);
  for (int round = 0; round < 10; ++round) {
    for (int n = 0; n < 4; ++n) {
      const auto ni = static_cast<std::size_t>(n);
      const double u = config_.core_model.utilization(config_.dvfs, 0,
                                                      demand[ni]);
      power[ni] = config_.core_model.power_w(config_.dvfs, 0, u) +
                  thermal_->leakage_w(temps[thermal_->core_node(n)]);
    }
    temps = thermal_->steady(power, knobs.tec_on,
                             config_.fan.airflow_cfm(knobs.fan_level));
  }

  std::vector<double> backlog(4, 0.0);
  RunResult res;
  res.policy = std::string(policy.name());
  res.workload = "wikipedia";

  double t = 0.0;
  double energy = 0.0;
  power::PowerBreakdown power_sum;
  double ips_sum = 0.0;
  double dvfs_sum = 0.0;
  std::size_t intervals = 0;
  std::size_t measured_intervals = 0;
  std::size_t violations = 0;
  double run_peak = 0.0;
  double peak_sum = 0.0;
  double work_done_at = 0.0;
  constexpr std::size_t kWarmupIntervals = 5;
  const double t_end = config_.duration_s + config_.max_extra_s;

  while (t < t_end) {
    const bool in_trace = t < config_.duration_s;
    for (int n = 0; n < 4; ++n) {
      const auto ni = static_cast<std::size_t>(n);
      demand[ni] = in_trace ? trace.core_demand(n, t) : 0.0;
    }

    // --- Controller ---
    ServerPlanningModel::Observation obs;
    obs.core_temps_k.resize(4);
    for (int n = 0; n < 4; ++n)
      obs.core_temps_k[static_cast<std::size_t>(n)] =
          temps[thermal_->core_node(n)];
    obs.demand = demand;
    obs.applied = knobs;
    planner.observe(obs);
    knobs = policy.decide(planner, knobs);

    // --- Plant ---
    const double cfm = config_.fan.airflow_cfm(knobs.fan_level);
    const double fan_w = config_.fan.power_w(knobs.fan_level);
    power::PowerBreakdown interval_power;
    double chip_ips = 0.0;
    std::vector<double> core_power(4, 0.0);
    for (int n = 0; n < 4; ++n) {
      const auto ni = static_cast<std::size_t>(n);
      // Offered load includes queued backlog.
      const double offered = demand[ni] + backlog[ni] / dt;
      const double cap = config_.core_model.relative_capacity(config_.dvfs,
                                                              knobs.dvfs[ni]);
      const double served = std::min(offered, cap);
      backlog[ni] = std::max(0.0, (offered - served) * dt);
      const double u = std::min(1.0, offered / cap);
      const double dyn =
          config_.core_model.power_w(config_.dvfs, knobs.dvfs[ni], u);
      interval_power.dynamic_w += dyn;
      chip_ips += served * config_.core_model.peak_ips;
      core_power[ni] = dyn;  // leakage added per substep
    }
    for (int s = 0; s < config_.substeps; ++s) {
      std::vector<double> p = core_power;
      double leak_total = 0.0;
      for (int n = 0; n < 4; ++n) {
        const double leak =
            thermal_->leakage_w(temps[thermal_->core_node(n)]);
        p[static_cast<std::size_t>(n)] += leak;
        leak_total += leak;
      }
      double tec_total = 0.0;
      for (int n = 0; n < 4; ++n)
        tec_total += thermal_->tec_power_w(
            temps, n, knobs.tec_on[static_cast<std::size_t>(n)] != 0);
      temps = thermal_->step(temps, p, knobs.tec_on, cfm, sub_dt);
      interval_power.leakage_w += leak_total / config_.substeps;
      interval_power.tec_w += tec_total / config_.substeps;
      interval_power.fan_w += fan_w / config_.substeps;
      energy += (leak_total + tec_total + fan_w) * sub_dt;
    }
    energy += interval_power.dynamic_w * dt;

    // --- Metrics ---
    double peak = 0.0;
    std::size_t hot_samples = 0;
    for (int n = 0; n < 4; ++n) {
      const double tc = temps[thermal_->core_node(n)];
      peak = std::max(peak, tc);
      if (tc > config_.threshold_k + 0.02) ++hot_samples;
    }
    const bool violated = hot_samples > 0;
    if (intervals >= kWarmupIntervals) {
      run_peak = std::max(run_peak, peak);
      peak_sum += peak;
      violations += hot_samples;
      ++measured_intervals;
    }
    power_sum += interval_power;
    ips_sum += chip_ips;
    dvfs_sum += knobs.mean_dvfs();
    ips_trace_.push_back(chip_ips);
    double capacity = 0.0;
    for (int n = 0; n < 4; ++n)
      capacity += config_.core_model.relative_capacity(
                      config_.dvfs, knobs.dvfs[static_cast<std::size_t>(n)]) *
                  config_.core_model.peak_ips;
    capacity_trace_.push_back(capacity);
    ++intervals;
    if (config_.record_trace) {
      IntervalRecord rec;
      rec.time_s = t;
      rec.peak_temp_k = peak;
      rec.power = interval_power;
      rec.ips = chip_ips;
      rec.fan_level = knobs.fan_level;
      rec.tecs_on = knobs.tecs_active();
      rec.mean_dvfs = knobs.mean_dvfs();
      rec.violation = violated;
      res.trace.push_back(rec);
    }

    t += dt;
    const double total_backlog =
        backlog[0] + backlog[1] + backlog[2] + backlog[3];
    if (t >= config_.duration_s && total_backlog <= 1e-9) {
      work_done_at = t;
      break;
    }
  }
  if (work_done_at == 0.0) work_done_at = t;  // backlog never drained

  res.exec_time_s = work_done_at;
  res.completed = work_done_at <= t_end;
  res.energy_j = energy;
  if (intervals > 0) {
    const double inv = 1.0 / static_cast<double>(intervals);
    res.avg_power.dynamic_w = power_sum.dynamic_w * inv;
    res.avg_power.leakage_w = power_sum.leakage_w * inv;
    res.avg_power.tec_w = power_sum.tec_w * inv;
    res.avg_power.fan_w = power_sum.fan_w * inv;
    res.avg_ips = ips_sum * inv;
    res.avg_dvfs = dvfs_sum * inv;
    if (measured_intervals > 0)
      res.violation_frac = static_cast<double>(violations) /
                           (4.0 * static_cast<double>(measured_intervals));
  }
  res.peak_temp_k = run_peak;
  res.mean_peak_temp_k =
      measured_intervals ? peak_sum / static_cast<double>(measured_intervals)
                         : run_peak;
  res.fan_level = knobs.fan_level;
  return res;
}

}  // namespace tecfan::sim
