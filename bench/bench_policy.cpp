// Control-layer throughput over the shared ControlEngine: per-policy
// decision rates on the 4-core server model, and the full-sweep
// (DVFS x TEC x fan = 32768 candidate) evaluation in three modes —
// per-candidate scalar predict(), chunked evaluate_batch over the flat
// ActionSet on one worker, and the same batch fanned out over all
// util/parallel workers. The three modes must pick the same winner
// bit-for-bit (the batch path is exact, not approximate); the acceptance
// bar is parallel-batch >= 2x scalar. Writes BENCH_policy.json (--out to
// override); scripts/bench.sh runs this from a Release build.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/control_engine.h"
#include "core/exhaustive_policies.h"
#include "core/policy_factory.h"
#include "sim/server_system.h"
#include "util/parallel.h"

namespace {

using namespace tecfan;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Median wall time of `reps` calls to fn, in seconds.
template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_seconds();
    fn();
    times.push_back(now_seconds() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct Harness {
  sim::ServerConfig config;
  std::shared_ptr<const sim::ServerThermalModel> thermal;
  sim::ServerPlanningModel model;
  core::ControlEnginePtr engine;

  Harness()
      : thermal(std::make_shared<const sim::ServerThermalModel>(
            config.thermal)),
        model(thermal, config),
        engine(core::make_control_engine(
            core::ControlDims{4, 4, config.dvfs.level_count(),
                              config.fan.level_count()},
            config.dvfs, config.fan)) {
    // A fixed mid-load observation near the threshold: decisions have real
    // work to do (some knobs move) but the scenario is deterministic.
    sim::ServerPlanningModel::Observation obs;
    obs.core_temps_k.resize(4);
    obs.demand.resize(4);
    for (int n = 0; n < 4; ++n) {
      obs.core_temps_k[static_cast<std::size_t>(n)] =
          config.threshold_k - 4.0 + 1.5 * n;
      obs.demand[static_cast<std::size_t>(n)] = 0.35 + 0.1 * n;
    }
    obs.applied = core::KnobState::initial(4, 4, /*fan_level=*/5);
    model.observe(obs);
  }
};

struct PolicyRate {
  std::string name;
  double decisions_per_s = 0.0;
};

/// Winner of an exhaustive EPI scan (the Oracle objective) — used to check
/// the three sweep modes agree bit-for-bit.
struct SweepWinner {
  std::size_t index = static_cast<std::size_t>(-1);
  double epi = std::numeric_limits<double>::infinity();
  bool valid = false;

  void consider(std::size_t i, const core::Prediction& p, double tth) {
    if (p.max_temp_k() > tth) return;
    if (!valid || p.epi() < epi) {
      index = i;
      epi = p.epi();
      valid = true;
    }
  }

  bool operator==(const SweepWinner& o) const {
    return index == o.index && epi == o.epi && valid == o.valid;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_policy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  Harness h;
  const core::KnobState start = core::KnobState::initial(4, 4, 5);

  // ---- Per-policy decision rates --------------------------------------
  std::vector<PolicyRate> rates;
  const char* policy_names[] = {"fan+tec",     "fan+dvfs", "dvfs+tec",
                                "dynamic-fan", "tecfan",   "tecfan-chipwide"};
  for (const char* name : policy_names) {
    core::PolicyPtr policy = core::make_named_policy(name, h.engine);
    if (!policy) continue;
    // Steady-state decide loop (the per-interval serving cost); warm once.
    core::KnobState knobs = start;
    knobs = policy->decide(h.model, knobs);
    constexpr int kDecisions = 200;
    const double s = median_seconds(5, [&] {
      for (int i = 0; i < kDecisions; ++i)
        knobs = policy->decide(h.model, knobs);
    });
    rates.push_back({name, kDecisions / s});
  }
  // Exhaustives decide much slower (32768-candidate fan turns); measure a
  // fan-cadence decision each interval so the rate reflects the full scan.
  for (const char* name : {"oracle", "oftec"}) {
    core::ExhaustiveOptions opt;
    opt.base.manage_fan = true;
    opt.base.fan_period_intervals = 1;  // every decision is a full fan scan
    core::PolicyPtr policy;
    if (std::strcmp(name, "oracle") == 0)
      policy = std::make_unique<core::OraclePolicy>(h.engine, opt);
    else
      policy = std::make_unique<core::OftecPolicy>(h.engine, opt);
    core::KnobState knobs = start;
    knobs = policy->decide(h.model, knobs);
    constexpr int kDecisions = 5;
    const double s = median_seconds(3, [&] {
      for (int i = 0; i < kDecisions; ++i)
        knobs = policy->decide(h.model, knobs);
    });
    rates.push_back({name, kDecisions / s});
  }

  // ---- Full-sweep evaluation: scalar vs batch vs parallel batch -------
  const auto set = h.engine->actions(core::ActionSpec{true, true});
  const std::size_t candidates = set->size();
  const double tth = h.config.threshold_k;
  constexpr std::size_t kChunk = 8192;

  SweepWinner scalar_win, batch_win, parallel_win;
  const double scalar_s = median_seconds(3, [&] {
    scalar_win = SweepWinner{};
    core::KnobState knobs = start;
    for (std::size_t i = 0; i < candidates; ++i) {
      set->materialize(i, knobs);
      scalar_win.consider(i, h.model.predict(knobs), tth);
    }
  });

  auto batched = [&](SweepWinner& win) {
    win = SweepWinner{};
    std::vector<core::Prediction> batch;
    for (std::size_t b = 0; b < candidates; b += kChunk) {
      const std::size_t e = std::min(candidates, b + kChunk);
      h.model.evaluate_batch(set->slice(b, e), start, batch);
      for (std::size_t i = b; i < e; ++i)
        win.consider(i, batch[i - b], tth);
    }
  };
  const std::size_t hw_workers = parallel_workers();
  set_parallel_workers(1);
  const double batch_s = median_seconds(3, [&] { batched(batch_win); });
  set_parallel_workers(0);  // restore the hardware default
  const double parallel_s = median_seconds(3, [&] { batched(parallel_win); });

  if (!(scalar_win == batch_win) || !(scalar_win == parallel_win)) {
    std::fprintf(stderr,
                 "bench_policy: sweep modes disagree (scalar idx=%zu "
                 "batch idx=%zu parallel idx=%zu)\n",
                 scalar_win.index, batch_win.index, parallel_win.index);
    return 1;
  }

  const double speedup_batch = scalar_s / batch_s;
  const double speedup_parallel = scalar_s / parallel_s;

  std::printf("== control-layer benchmark (bench_policy) ==\n");
  std::printf("server model      4 cores, 4 TECs, %d DVFS, %d fan levels\n",
              h.config.dvfs.level_count(), h.config.fan.level_count());
  std::printf("policy decision rates (decisions/s):\n");
  for (const auto& r : rates)
    std::printf("  %-16s %.0f\n", r.name.c_str(), r.decisions_per_s);
  std::printf("full sweep        %zu candidates (DVFS x TEC x fan)\n",
              candidates);
  std::printf("  scalar          %.1f ms (%.0f cand/s)\n", 1e3 * scalar_s,
              candidates / scalar_s);
  std::printf("  batch x1        %.1f ms (%.0f cand/s, %.2fx)\n",
              1e3 * batch_s, candidates / batch_s, speedup_batch);
  std::printf("  batch x%-2zu       %.1f ms (%.0f cand/s, %.2fx)\n",
              hw_workers, 1e3 * parallel_s, candidates / parallel_s,
              speedup_parallel);
  std::printf("  winner          idx=%zu epi=%.6g (all modes agree)\n",
              scalar_win.index, scalar_win.epi);

  std::ofstream json(out_path);
  if (json) {
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"policy\",\n"
         << "  \"policies\": {";
    for (std::size_t i = 0; i < rates.size(); ++i) {
      json << (i ? ",\n" : "\n") << "    \"" << rates[i].name
           << "\": {\"decisions_per_s\": " << rates[i].decisions_per_s
           << "}";
    }
    json << "\n  },\n"
         << "  \"sweep\": {\n"
         << "    \"candidates\": " << candidates << ",\n"
         << "    \"workers\": " << hw_workers << ",\n"
         << "    \"scalar_ms\": " << 1e3 * scalar_s << ",\n"
         << "    \"batch_ms\": " << 1e3 * batch_s << ",\n"
         << "    \"parallel_batch_ms\": " << 1e3 * parallel_s << ",\n"
         << "    \"scalar_candidates_per_s\": " << candidates / scalar_s
         << ",\n"
         << "    \"batch_candidates_per_s\": " << candidates / batch_s
         << ",\n"
         << "    \"parallel_candidates_per_s\": " << candidates / parallel_s
         << ",\n"
         << "    \"speedup_batch\": " << speedup_batch << ",\n"
         << "    \"speedup_parallel_batch\": " << speedup_parallel << ",\n"
         << "    \"modes_bit_identical\": true,\n"
         << "    \"meets_2x_bar\": "
         << (speedup_parallel >= 2.0 ? "true" : "false") << "\n"
         << "  }\n"
         << "}\n";
    std::fprintf(stderr, "bench_policy: wrote %s\n", out_path.c_str());
  }
  return 0;
}
