// Thermal substrate validation: the block (component) model used by the
// runtime stack against an independent fine-grid discretization of the same
// package (thermal/grid_model.h), per workload power map. This is the
// HotSpot block-vs-grid sanity check, rebuilt for our models.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "perf/splash2.h"
#include "sim/defaults.h"
#include "thermal/grid_model.h"
#include "thermal/solvers.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace tecfan;
  sim::ChipModels models = sim::make_default_chip_models();
  auto block = models.thermal;
  thermal::SteadyStateSolver solver(thermal::make_thermal_engine(block));
  const thermal::GridThermalModel grid(thermal::Floorplan::scc(),
                                       thermal::PackageParameters{}, 52, 72);

  std::printf("block model: %zu nodes; grid model: %zu nodes (52x72 die "
              "cells)\n\n",
              block->node_count(), grid.node_count());

  TextTable t;
  t.set_header({"workload", "block peak C", "grid peak C", "diff K",
                "component RMSE K", "max |diff| K"});
  for (const char* bench : {"cholesky", "fmm", "volrend", "lu"}) {
    auto wl = perf::make_splash_workload(bench, 16, block->floorplan(),
                                         models.dynamic, models.leak_quad);
    // Mean power map (profile activity, top DVFS) plus area-split leakage.
    linalg::Vector p(block->component_count(), 0.0);
    for (std::size_t i = 0; i < block->component_count(); ++i) {
      const auto& comp = block->floorplan().component(i);
      p[i] = models.dynamic.component_power_w(
                 comp, wl->activity(comp.core, comp.kind, 0.0), 1.0,
                 wl->power_scale()) +
             models.leak_quad.component_leakage_w(
                 comp.rect.area() / block->floorplan().chip_area(), 358.0);
    }
    const double cfm = models.fan.airflow_cfm(0);
    const auto tb = solver.solve(p, block->make_cooling_state(cfm));
    const auto tg_nodes = grid.steady(p, cfm);
    const auto tg = grid.component_temps(tg_nodes);
    linalg::Vector bc(block->component_count());
    for (std::size_t i = 0; i < block->component_count(); ++i)
      bc[i] = tb[block->die_node(i)];
    double block_peak = 0.0;
    for (double v : bc) block_peak = std::max(block_peak, v);
    const double grid_peak = grid.peak_die_temp(tg_nodes);
    t.add_row({bench, format_double(kelvin_to_celsius(block_peak), 4),
               format_double(kelvin_to_celsius(grid_peak), 4),
               format_double(block_peak - grid_peak, 3),
               format_double(rmse(bc, tg), 3),
               format_double(max_abs_diff(bc, tg), 3)});
  }
  std::printf("== block-vs-grid steady-state validation (TECs off) ==\n%s",
              t.render().c_str());
  std::printf(
      "\nThe runtime stack's block model tracks the independent grid\n"
      "discretization within a few kelvin per component, with matching "
      "peaks.\n");
  return 0;
}
