// Shared helpers for the per-table/per-figure bench binaries.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/reactive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/splash2.h"
#include "sim/chip_simulator.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

namespace tecfan::bench {

/// The five chip policies of Sec. V-A with their sweep bounds (TECfan's
/// sweep emulates its higher-level fan loop, which only slows the fan while
/// the threshold holds with at most marginal throttling — see
/// sim/experiment.h).
struct PolicyEntry {
  std::string label;
  sim::PolicyFactory make;
  double max_mean_dvfs;
};

inline std::vector<PolicyEntry> chip_policies() {
  const double kAny = 1e9;
  return {
      {"Fan-only", [] { return std::make_unique<core::FanOnlyPolicy>(); },
       kAny},
      {"Fan+TEC", [] { return std::make_unique<core::FanTecPolicy>(); },
       kAny},
      {"Fan+DVFS", [] { return std::make_unique<core::FanDvfsPolicy>(); },
       kAny},
      {"DVFS+TEC", [] { return std::make_unique<core::DvfsTecPolicy>(); },
       kAny},
      {"TECfan", [] { return std::make_unique<core::TecFanPolicy>(); }, 0.5},
  };
}

/// The 16-thread benchmarks shown in Figs. 5 and 6.
inline std::vector<std::string> fig56_benchmarks() {
  return {"cholesky", "fmm", "volrend", "lu"};
}

struct ChipBench {
  sim::ChipEnginePtr engine = sim::make_default_chip_engine();
  sim::ChipSimulator simulator{engine};

  const sim::ChipModels& models() const { return engine->models(); }

  perf::WorkloadPtr workload(const std::string& name, int threads) {
    return engine->workload(name, threads);
  }
};

inline std::string fmt(double v, int precision = 3) {
  return format_double(v, precision);
}

inline double to_c(double kelvin) { return kelvin_to_celsius(kelvin); }

}  // namespace tecfan::bench
