// Micro-benchmarks (google-benchmark) for the serving path: protocol
// parse/canonicalize, LRU cache lookup, a cached request through the full
// Server::handle front-end, and the telemetry primitives (histogram
// record, percentile extraction, `metrics` verb dump) so the cost of
// instrumenting every request stays visibly cheap. loadgen
// (tools/loadgen.cpp) measures the same path end-to-end over TCP with
// concurrency; this pins down the per-component costs.
#include <benchmark/benchmark.h>

#include <string>

#include "service/request.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "util/metrics.h"

namespace {

using namespace tecfan;

const char* kLine = "equilibrium workload=cholesky threads=16 fan=2 tec=on";

void BM_ParseRequest(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = service::parse_request(kLine);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseRequest);

void BM_CanonicalKey(benchmark::State& state) {
  const auto parsed = service::parse_request(kLine);
  for (auto _ : state) {
    std::string key = service::canonical_key(parsed.request);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_CanonicalKey);

void BM_CacheHit(benchmark::State& state) {
  service::ResultCache cache(1024);
  const auto parsed = service::parse_request(kLine);
  const std::string key = service::canonical_key(parsed.request);
  cache.put(key, "ok peak_t_k=367.64 peak_t_c=94.49 fan_w=2.53");
  for (auto _ : state) {
    auto hit = cache.get(key);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_CacheHit);

void BM_ServerCachedRequest(benchmark::State& state) {
  // One server for the whole benchmark: the first handle() solves the
  // equilibrium, every timed iteration is the cached serving path
  // (canonicalize + cache lookup + response parse).
  static service::Server* server = [] {
    service::ServerOptions options;
    options.workers = 1;
    return new service::Server(options);
  }();
  const auto parsed = service::parse_request(kLine);
  service::Response warm = server->handle(parsed.request);
  if (warm.status != service::Response::Status::kOk) {
    state.SkipWithError("warmup request failed");
    return;
  }
  for (auto _ : state) {
    service::Response r = server->handle(parsed.request);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ServerCachedRequest);

void BM_ServerCachedLine(benchmark::State& state) {
  // The string-in/string-out path the daemon runs per request line.
  static service::Server* server = [] {
    service::ServerOptions options;
    options.workers = 1;
    return new service::Server(options);
  }();
  bool quit = false;
  std::string warm = server->handle_line(kLine, &quit);
  for (auto _ : state) {
    std::string reply = server->handle_line(kLine, &quit);
    benchmark::DoNotOptimize(reply);
  }
}
BENCHMARK(BM_ServerCachedLine);

void BM_HistogramRecord(benchmark::State& state) {
  // The per-span cost the serving path pays for each stage measurement.
  LatencyHistogram hist;
  double us = 0.1;
  for (auto _ : state) {
    hist.record_us(us);
    us = us < 1e6 ? us * 1.7 : 0.1;  // sweep the bucket range
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  LatencyHistogram hist;
  for (int i = 0; i < 100000; ++i)
    hist.record_us(0.3 * static_cast<double>(i % 5000));
  const auto snap = hist.snapshot();
  for (auto _ : state) {
    double p99 = snap.percentile(99.0);
    benchmark::DoNotOptimize(p99);
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_MetricsVerb(benchmark::State& state) {
  // Full `metrics` dump over the line protocol (registry snapshot,
  // percentile extraction for every stage, bucket serialization).
  static service::Server* server = [] {
    service::ServerOptions options;
    options.workers = 1;
    return new service::Server(options);
  }();
  bool quit = false;
  const auto parsed = service::parse_request(kLine);
  server->handle(parsed.request);  // populate the histograms
  server->handle_line(kLine, &quit);
  for (auto _ : state) {
    std::string reply = server->handle_line("metrics", &quit);
    benchmark::DoNotOptimize(reply);
  }
}
BENCHMARK(BM_MetricsVerb);

}  // namespace

BENCHMARK_MAIN();
