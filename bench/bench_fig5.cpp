// Figure 5: cooling performance of the five policies under the Sec. IV-C
// fan-sweep protocol.
//  (a) peak temperature per policy and benchmark (T_th from Table I);
//  (b) temperature-violation percentage (per component-sample).
// Expected shape: DVFS+TEC and Fan+DVFS violate most (one DVFS step moves
// temperature much more than one TEC toggle); TECfan stays under 0.5%.
#include "common.h"

int main() {
  using namespace tecfan;
  using namespace tecfan::bench;
  ChipBench bench;

  TextTable a, b;
  std::vector<std::string> header = {"policy"};
  for (const auto& w : fig56_benchmarks()) header.push_back(w);
  a.set_header(header);
  b.set_header(header);

  std::vector<std::vector<std::string>> peak_rows, viol_rows;
  for (const auto& entry : chip_policies()) {
    std::vector<std::string> prow = {entry.label};
    std::vector<std::string> vrow = {entry.label};
    for (const auto& name : fig56_benchmarks()) {
      auto wl = bench.workload(name, 16);
      sim::RunResult base = sim::measure_base_scenario(bench.simulator, *wl);
      sim::SweepOptions opts;
      opts.threshold_k = base.peak_temp_k;
      opts.max_mean_dvfs = entry.max_mean_dvfs;
      sim::SweepResult sw = sim::run_with_fan_sweep(bench.engine,
                                                    entry.make, *wl, opts);
      prow.push_back(fmt(to_c(sw.chosen.peak_temp_k), 4));
      vrow.push_back(fmt(100.0 * sw.chosen.violation_frac, 3));
    }
    a.add_row(prow);
    b.add_row(vrow);
  }
  std::printf("== Figure 5(a): peak temperature (C) at the chosen fan level ==\n%s",
              a.render().c_str());
  std::printf("\n== Figure 5(b): violation rate (%% of component-samples) ==\n%s",
              b.render().c_str());
  return 0;
}
