// Section III-E: hardware cost of the on-chip temperature estimator.
// The paper sizes M x K = 18 x 3 = 54 eight-bit fixed-point multipliers for
// a one-core-per-cycle systolic band-matrix evaluation, quoting ~0.03 W for
// the multiplier power and < 1.7% area+power overhead on the target CMP.
// This bench evaluates the same model and validates the systolic array's
// functional behaviour and cycle count against the software matvec.
#include <cstdio>

#include "core/hw_cost.h"
#include "linalg/banded.h"
#include "linalg/systolic.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace tecfan;

  core::HwCostInputs in;  // paper defaults: M=18, K=3, 8-bit, SCC-size chip
  const core::HwCostReport rep = core::estimate_hw_cost(in);

  TextTable t;
  t.set_header({"quantity", "paper", "this model"});
  t.add_row({"multipliers (M x K)", "54", std::to_string(rep.multipliers)});
  t.add_row({"area per 8-bit multiplier (mm^2)", "0.057 x (8/16)^2",
             format_double(rep.multiplier_area_mm2, 4)});
  t.add_row({"total estimator area (mm^2)", "-",
             format_double(rep.total_area_mm2, 4)});
  t.add_row({"area overhead", "< 1.7%",
             format_double(100.0 * rep.area_overhead_frac, 3) + "%"});
  t.add_row({"multiplier power (W)", "~0.03 W/mult-array scale",
             format_double(rep.power_w, 4)});
  t.add_row({"power overhead", "< 1.7%",
             format_double(100.0 * rep.power_overhead_frac, 3) + "%"});
  std::printf("== Sec. III-E hardware cost ==\n%s\n", t.render().c_str());

  // Functional validation of the systolic band-matvec and its cycle count.
  Rng rng(7);
  TextTable s;
  s.set_header({"n", "band (kl,ku)", "PEs", "cycles", "mults",
                "max |err| vs matvec"});
  for (std::size_t n : {18ul, 36ul, 72ul, 288ul}) {
    linalg::BandMatrix a(n, 2, 2);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = (r >= 2 ? r - 2 : 0); c <= std::min(n - 1, r + 2);
           ++c)
        a.at(r, c) = (r == c) ? 4.0 + rng.uniform() : -rng.uniform();
    linalg::Vector x(n);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    linalg::Vector y_ref(n);
    a.matvec(x, y_ref);
    const auto run = linalg::systolic_band_matvec(a, x);
    s.add_row({std::to_string(n), "(2,2)", std::to_string(run.pe_count),
               std::to_string(run.cycles), std::to_string(run.multiply_ops),
               format_double(max_abs_diff(run.y, y_ref), 3)});
  }
  std::printf("== systolic band-matvec validation ==\n%s", s.render().c_str());
  return 0;
}
