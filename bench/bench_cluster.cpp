// Cluster serving benchmark: direct tecfand vs tecrouter over fleets of
// 1 / 2 / 4 in-process backends, on the cached and miss paths, plus a
// failover run that kills a backend mid-stream and counts client-visible
// errors (must be zero). Every scenario drives the fleet through real
// loopback TCP with closed-loop line-protocol clients, so the router
// column pays its true forwarding cost. The router scenarios run the
// epoll data plane (event loop, backend pipelining, batched writes); a
// router_1_threads scenario keeps the legacy thread-per-session plane on
// the books so the rewrite's gain stays measurable release over release.
// Also asserts routed replies are bit-identical to direct serving over
// TCP. Writes BENCH_cluster.json (--out to override); scripts/bench.sh
// runs this from a Release build and enforces a routed/direct floor.
//
// The miss corpus is the loadgen --keys request grid (equilibrium + run +
// sweep kinds, >= 1k requests per scenario for a meaningful p99); the
// backends run the full 4x4-tile model those grid lines expect, with a
// result cache much smaller than the working set so repeated grid keys
// stay LRU-evicted misses.
//
// Numbers are recorded honestly for the machine they ran on: on a single
// core the fleet shares one CPU, so routed throughput measures router
// overhead, not horizontal scaling — the `cores` field says which story
// the file tells.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/backend_client.h"
#include "cluster/router.h"
#include "service/framing.h"
#include "service/request.h"
#include "service/request_grid.h"
#include "service/server.h"

namespace {

using namespace tecfan;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

service::ServerOptions backend_options() {
  service::ServerOptions o;
  o.tiles_x = 4;  // 16 cores: the loadgen grid's threads=8/16 lines are
  o.tiles_y = 4;  // valid on this floorplan
  o.workers = 2;
  o.queue_capacity = 64;
  // Far below the grid's distinct-key count, so a key recurring in the
  // miss pass has been LRU-evicted by the time it comes back (its repeat
  // distance is dozens of requests even on a per-shard slice of the
  // stream) and still pays the compute; the 32-key cached working set
  // fits with room to spare.
  o.cache_capacity = 48;
  o.max_sim_time_s = 0.05;
  return o;
}

/// The benchmark working set, drawn from the same deterministic grid
/// loadgen's --keys flag walks (BENCH_serving and BENCH_cluster measure
/// the same corpus).
struct Corpus {
  std::vector<std::string> cached;  // 32 equilibrium keys, reused hot
  std::vector<std::string> miss;    // one grid pass, >= 1k requests
  std::size_t miss_distinct = 0;    // distinct canonical keys in `miss`
};

Corpus make_corpus(int miss_requests) {
  // Walk the grid past `miss_requests` keys because the corpus keeps only
  // the lines the Table I workload set can serve: the grid's threads=8
  // equilibrium keys have no SPLASH-2 anchor case and would come back as
  // protocol errors, which is loadgen's business to report, not a miss
  // benchmark's.
  Corpus c;
  std::set<std::string> keys;
  for (const auto& r : service::request_grid(2 * miss_requests)) {
    if (r.line.find("threads=8") != std::string::npos) continue;
    if (c.miss.size() == static_cast<std::size_t>(miss_requests)) break;
    c.miss.push_back(r.line);
    keys.insert(
        service::canonical_key(service::parse_request(r.line).request));
    if (c.cached.size() < 32 && r.kind == service::GridKind::kEquilibrium)
      c.cached.push_back(r.line);
  }
  c.miss_distinct = keys.size();
  return c;
}

struct PathNumbers {
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
};

double percentile(std::vector<double>& us, double p) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(us.size() - 1) + 0.5);
  return us[std::min(idx, us.size() - 1)];
}

/// Drive `lines` through the port with `threads` closed-loop clients;
/// each client cycles its slice until `duration_s` elapses (duration_s
/// <= 0: exactly one pass, for miss-path runs where a repeat would be a
/// hit).
PathNumbers drive(std::uint16_t port, const std::vector<std::string>& lines,
                  int threads, double duration_s) {
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> errs(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> workers;
  const double t0 = now_seconds();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // One persistent raw connection per client (loadgen's shape): the
      // bench measures the serving path, not client pool bookkeeping.
      const int fd = service::connect_loopback(port);
      auto& my_errs = errs[static_cast<std::size_t>(t)];
      if (fd < 0) {
        ++my_errs;
        return;
      }
      service::LineReader reader(fd);
      auto& samples = lat[static_cast<std::size_t>(t)];
      std::size_t i = static_cast<std::size_t>(t);
      for (;;) {
        if (duration_s > 0) {
          if (now_seconds() - t0 >= duration_s) break;
        } else if (i >= lines.size()) {
          break;  // one pass over this thread's slice
        }
        const std::string& line = lines[i % lines.size()];
        i += static_cast<std::size_t>(threads);
        const double s = now_seconds();
        std::optional<std::string> reply;
        if (service::send_all(fd, line + "\n"))
          reply = reader.read_line(std::chrono::steady_clock::now() +
                                   std::chrono::seconds(60));
        samples.push_back(1e6 * (now_seconds() - s));
        if (!reply || reply->rfind("ok", 0) != 0) ++my_errs;
      }
      ::close(fd);
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = now_seconds() - t0;

  PathNumbers out;
  std::vector<double> all;
  for (auto& v : lat) {
    out.requests += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  for (const std::uint64_t e : errs) out.errors += e;
  out.rps = elapsed > 0 ? static_cast<double>(out.requests) / elapsed : 0.0;
  out.p50_us = percentile(all, 50.0);
  out.p99_us = percentile(all, 99.0);
  return out;
}

/// An in-process fleet member with its accept loop running.
struct Backend {
  Backend() : server(std::make_unique<service::Server>(backend_options())) {
    port = server->bind_listen(0);
    thread = std::thread([this] { server->serve(); });
  }
  ~Backend() { kill(); }
  void kill() {
    if (server) server->stop();
    if (thread.joinable()) thread.join();
    server.reset();
  }
  std::unique_ptr<service::Server> server;
  std::uint16_t port = 0;
  std::thread thread;
};

struct Scenario {
  std::string name;
  std::size_t backends = 0;  // 0: direct, no router
  std::string data_plane;    // "n/a" (direct), "epoll", or "threads"
  PathNumbers cached;
  PathNumbers miss;
};

Scenario run_scenario(std::size_t n_backends, cluster::DataPlane plane,
                      int client_threads, double duration_s,
                      int cached_passes, const Corpus& corpus) {
  Scenario out;
  out.backends = n_backends;
  const bool threads_plane = plane == cluster::DataPlane::kThreads;
  out.data_plane =
      n_backends == 0 ? "n/a" : (threads_plane ? "threads" : "epoll");
  out.name = n_backends == 0
                 ? "direct"
                 : "router_" + std::to_string(n_backends) +
                       (threads_plane ? "_threads" : "");

  std::vector<std::unique_ptr<Backend>> fleet;
  const std::size_t fleet_size = std::max<std::size_t>(n_backends, 1);
  for (std::size_t b = 0; b < fleet_size; ++b)
    fleet.push_back(std::make_unique<Backend>());

  std::unique_ptr<cluster::Router> router;
  std::thread router_thread;
  std::uint16_t port = fleet[0]->port;
  if (n_backends > 0) {
    cluster::RouterOptions opts;
    for (const auto& b : fleet) opts.backend_ports.push_back(b->port);
    opts.data_plane = plane;
    router = std::make_unique<cluster::Router>(opts);
    port = router->bind_listen(0);
    router_thread = std::thread([&router] { router->serve(); });
  }

  // Miss path first (one grid pass: the cache is always far behind the
  // working set), then warm the cached set once and time the hit loop.
  out.miss = drive(port, corpus.miss, client_threads, /*duration_s=*/0.0);
  (void)drive(port, corpus.cached, 1, /*duration_s=*/0.0);  // warm-up
  // Best of `cached_passes` intervals: the host is shared, and a noisy
  // neighbor mid-interval shows up as a 20% dip that says nothing about
  // the serving path. Peak throughput over a few intervals is the stable
  // comparison; the pass count is recorded in the JSON config.
  for (int pass = 0; pass < cached_passes; ++pass) {
    const PathNumbers p =
        drive(port, corpus.cached, client_threads, duration_s);
    if (p.rps > out.cached.rps) out.cached = p;
  }

  if (router) {
    router->stop();
    router_thread.join();
  }
  return out;
}

struct FailoverNumbers {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t failovers = 0;
  std::uint64_t backends_up_after = 0;
};

/// Two-backend fleet; backend 0 is killed mid-stream. Clients must see
/// zero errors: the router fails its keys (the whole in-flight pipeline
/// FIFO included) over to the survivor.
FailoverNumbers run_failover(int client_threads, double duration_s,
                             const std::vector<std::string>& cached_lines) {
  FailoverNumbers out;
  std::vector<std::unique_ptr<Backend>> fleet;
  fleet.push_back(std::make_unique<Backend>());
  fleet.push_back(std::make_unique<Backend>());
  cluster::RouterOptions opts;
  opts.backend_ports = {fleet[0]->port, fleet[1]->port};
  opts.health.interval_s = 0.05;
  cluster::Router router(opts);
  const std::uint16_t port = router.bind_listen(0);
  std::thread serving([&router] { router.serve(); });

  (void)drive(port, cached_lines, 1, 0.0);  // warm both shards

  std::thread killer([&fleet, duration_s] {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::max(0.05, duration_s / 3.0)));
    fleet[0]->kill();
  });
  const PathNumbers path = drive(port, cached_lines, client_threads,
                                 duration_s);
  killer.join();
  out.requests = path.requests;
  out.errors = path.errors;
  out.failovers = router.stats().failovers;
  out.backends_up_after = router.health().up_count();
  router.stop();
  serving.join();
  return out;
}

struct TraceNumbers {
  std::uint64_t trace_every = 0;
  std::uint64_t requests = 0;
  std::uint64_t router_sampled = 0;  // head decisions at the router
  std::uint64_t server_adopted = 0;  // contexts the fleet adopted from it
  std::uint64_t server_sampled = 0;  // fleet head decisions (0 here: the
                                     // router owns sampling when routing)
};

/// One short routed pass with sampling on, so the JSON records how many
/// traces each tier carried. Kept separate from the measured scenarios,
/// which run tracing compiled-in-but-unsampled — that unsampled overhead
/// is what scripts/bench.sh gates against the committed numbers.
TraceNumbers run_traced(std::uint64_t trace_every,
                        const std::vector<std::string>& lines) {
  TraceNumbers out;
  out.trace_every = trace_every;
  std::vector<std::unique_ptr<Backend>> fleet;
  fleet.push_back(std::make_unique<Backend>());
  fleet.push_back(std::make_unique<Backend>());
  cluster::RouterOptions opts;
  opts.backend_ports = {fleet[0]->port, fleet[1]->port};
  opts.trace_every = trace_every;
  cluster::Router router(opts);
  const std::uint16_t port = router.bind_listen(0);
  std::thread serving([&router] { router.serve(); });
  const PathNumbers path = drive(port, lines, 4, /*duration_s=*/0.0);
  out.requests = path.requests;
  out.router_sampled = router.tracer().sampled_traces();
  for (const auto& b : fleet) {
    out.server_adopted += b->server->tracer().adopted_traces();
    out.server_sampled += b->server->tracer().sampled_traces();
  }
  router.stop();
  serving.join();
  return out;
}

/// Routed replies must be byte-for-byte what a direct server answers —
/// checked through real TCP so the epoll plane (pipelined forwards,
/// batched writes) is what produces them.
bool check_bit_identical(const std::vector<std::string>& lines) {
  Backend b0, b1;
  cluster::RouterOptions opts;
  opts.backend_ports = {b0.port, b1.port};
  cluster::Router router(opts);
  const std::uint16_t port = router.bind_listen(0);
  std::thread serving([&router] { router.serve(); });
  service::Server direct(backend_options());
  bool identical = true;
  {
    cluster::BackendClient conn(port);
    for (int pass = 0; pass < 2; ++pass) {  // miss pass, then hit pass
      for (const auto& line : lines) {
        const auto routed = conn.round_trip(
            line, std::chrono::steady_clock::now() + std::chrono::seconds(60));
        bool quit = false;
        const std::string local = direct.handle_line(line, &quit);
        if (!routed || *routed != local) {
          identical = false;
          std::fprintf(stderr, "bench_cluster: reply mismatch for '%s'\n",
                       line.c_str());
        }
      }
    }
  }
  router.stop();
  serving.join();
  return identical;
}

void write_path(std::ofstream& json, const char* name,
                const PathNumbers& p, bool last) {
  json << "    \"" << name << "\": {\"rps\": " << p.rps
       << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
       << ", \"requests\": " << p.requests << ", \"errors\": " << p.errors
       << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_cluster.json";
  double duration_s = 1.5;
  int client_threads = 16;
  int miss_requests = 1024;
  int cached_passes = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--duration-s" && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (arg == "--client-threads" && i + 1 < argc) {
      client_threads = std::atoi(argv[++i]);
    } else if (arg == "--cached-passes" && i + 1 < argc) {
      cached_passes = std::atoi(argv[++i]);
    } else if (arg == "--miss-requests" && i + 1 < argc) {
      miss_requests = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--duration-s X]"
                   " [--client-threads N] [--miss-requests N]"
                   " [--cached-passes N]\n",
                   argv[0]);
      return 2;
    }
  }
  service::ignore_sigpipe();

  const Corpus corpus = make_corpus(miss_requests);

  std::fprintf(stderr, "bench_cluster: bit-identical check...\n");
  const bool identical = check_bit_identical(corpus.cached);

  // direct, the epoll router over 1/2/4 backends, and the legacy threads
  // plane over 1 backend (the before/after for the data-plane rewrite).
  struct Case {
    std::size_t backends;
    cluster::DataPlane plane;
  };
  const Case cases[] = {
      {0, cluster::DataPlane::kEpoll},  {1, cluster::DataPlane::kEpoll},
      {1, cluster::DataPlane::kThreads}, {2, cluster::DataPlane::kEpoll},
      {4, cluster::DataPlane::kEpoll},
  };
  std::vector<Scenario> scenarios;
  for (const Case& c : cases) {
    scenarios.push_back(run_scenario(c.backends, c.plane, client_threads,
                                     duration_s, cached_passes, corpus));
    std::fprintf(stderr,
                 "bench_cluster: %-16s cached %8.0f rps, miss %7.0f rps\n",
                 scenarios.back().name.c_str(), scenarios.back().cached.rps,
                 scenarios.back().miss.rps);
  }

  std::fprintf(stderr, "bench_cluster: failover...\n");
  const FailoverNumbers failover =
      run_failover(client_threads, duration_s, corpus.cached);

  std::fprintf(stderr, "bench_cluster: traced pass...\n");
  const TraceNumbers traced = run_traced(/*trace_every=*/8, corpus.miss);

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "bench_cluster: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  json.precision(6);
  json << "{\n"
       << "  \"machine\": {\"cores\": "
       << std::thread::hardware_concurrency() << "},\n"
       << "  \"config\": {\"duration_s\": " << duration_s
       << ", \"client_threads\": " << client_threads
       << ", \"cached_passes\": " << cached_passes
       << ", \"cached_keys\": " << corpus.cached.size()
       << ", \"miss_requests\": " << corpus.miss.size()
       << ", \"miss_distinct_keys\": " << corpus.miss_distinct << "},\n"
       // The committed numbers this rewrite started from (same host
       // class): thread-per-session plane, blocking per-line forwards,
       // no TCP_NODELAY anywhere.
       << "  \"prior\": {\"data_plane\": \"threads, pre-TCP_NODELAY\", "
       << "\"direct_cached_rps\": 74752.3, "
       << "\"router_1_cached_rps\": 36027.0},\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"scenarios\": {\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    json << "  \"" << s.name << "\": {\n"
         << "    \"backends\": " << s.backends << ",\n"
         << "    \"data_plane\": \"" << s.data_plane << "\",\n";
    write_path(json, "cached", s.cached, false);
    write_path(json, "miss", s.miss, true);
    json << "  }" << (i + 1 < scenarios.size() ? ",\n" : "\n");
  }
  json << "  },\n"
       << "  \"failover\": {\"requests\": " << failover.requests
       << ", \"client_visible_errors\": " << failover.errors
       << ", \"router_failovers\": " << failover.failovers
       << ", \"backends_up_after\": " << failover.backends_up_after
       << "},\n"
       << "  \"tracing\": {\"trace_every\": " << traced.trace_every
       << ", \"requests\": " << traced.requests
       << ", \"traces_sampled_router\": " << traced.router_sampled
       << ", \"traces_sampled_server\": "
       << traced.server_sampled + traced.server_adopted
       << ", \"server_adopted\": " << traced.server_adopted
       << "}\n"
       << "}\n";
  json.close();
  std::fprintf(stderr, "bench_cluster: wrote %s\n", out_path.c_str());
  if (!identical || failover.errors != 0) {
    std::fprintf(stderr,
                 "bench_cluster: FAILED (identical=%d, failover errors=%llu)\n",
                 identical ? 1 : 0,
                 static_cast<unsigned long long>(failover.errors));
    return 1;
  }
  return 0;
}
