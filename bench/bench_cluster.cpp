// Cluster serving benchmark: direct tecfand vs tecrouter over fleets of
// 1 / 2 / 4 in-process backends, on the cached and miss paths, plus a
// failover run that kills a backend mid-stream and counts client-visible
// errors (must be zero). Every scenario drives the fleet through real
// loopback TCP with the same pooled line-protocol client, so the router
// column pays its true forwarding cost. Also asserts routed replies are
// bit-identical to direct serving. Writes BENCH_cluster.json (--out to
// override); scripts/bench.sh runs this from a Release build.
//
// Numbers are recorded honestly for the machine they ran on: on a single
// core the fleet shares one CPU, so routed throughput measures router
// overhead, not horizontal scaling — the `cores` field says which story
// the file tells.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_client.h"
#include "cluster/router.h"
#include "service/framing.h"
#include "service/request.h"
#include "service/server.h"

namespace {

using namespace tecfan;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

service::ServerOptions backend_options() {
  service::ServerOptions o;
  o.tiles_x = 2;
  o.tiles_y = 2;
  o.workers = 2;
  o.queue_capacity = 32;
  o.cache_capacity = 512;
  o.max_sim_time_s = 0.05;
  return o;
}

/// All distinct compute lines the bench draws from (128 combinations).
/// The backends run the small 2x2-tile model (4 cores), so only the
/// 4-thread Table I workloads are valid there.
std::vector<std::string> request_corpus() {
  const char* workloads[] = {"water", "cholesky", "lu", "fmm"};
  std::vector<std::string> lines;
  for (int dvfs = 0; dvfs < 4; ++dvfs)
    for (int fan = 0; fan < 8; ++fan)
      for (const char* wl : workloads)
        lines.push_back("equilibrium workload=" + std::string(wl) +
                        " threads=4 fan=" + std::to_string(fan) +
                        " dvfs=" + std::to_string(dvfs));
  return lines;
}

struct PathNumbers {
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
};

double percentile(std::vector<double>& us, double p) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(us.size() - 1) + 0.5);
  return us[std::min(idx, us.size() - 1)];
}

/// Drive `lines` through the port with `threads` pooled clients; each
/// client cycles its slice until `duration_s` elapses (duration_s <= 0:
/// exactly one pass, for miss-path runs where a repeat would be a hit).
PathNumbers drive(std::uint16_t port, const std::vector<std::string>& lines,
                  int threads, double duration_s) {
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> errs(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> workers;
  const double t0 = now_seconds();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      cluster::BackendClient client(port);
      auto& samples = lat[static_cast<std::size_t>(t)];
      const auto deadline_for = [] {
        return std::chrono::steady_clock::now() + std::chrono::seconds(60);
      };
      std::size_t i = static_cast<std::size_t>(t);
      for (;;) {
        if (duration_s > 0) {
          if (now_seconds() - t0 >= duration_s) break;
        } else if (i >= lines.size()) {
          break;  // one pass over this thread's slice
        }
        const std::string& line = lines[i % lines.size()];
        i += static_cast<std::size_t>(threads);
        const double s = now_seconds();
        const auto reply = client.round_trip(line, deadline_for());
        samples.push_back(1e6 * (now_seconds() - s));
        if (!reply || reply->rfind("ok", 0) != 0)
          ++errs[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = now_seconds() - t0;

  PathNumbers out;
  std::vector<double> all;
  for (auto& v : lat) {
    out.requests += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  for (const std::uint64_t e : errs) out.errors += e;
  out.rps = elapsed > 0 ? static_cast<double>(out.requests) / elapsed : 0.0;
  out.p50_us = percentile(all, 50.0);
  out.p99_us = percentile(all, 99.0);
  return out;
}

/// An in-process fleet member with its accept loop running.
struct Backend {
  Backend() : server(std::make_unique<service::Server>(backend_options())) {
    port = server->bind_listen(0);
    thread = std::thread([this] { server->serve(); });
  }
  ~Backend() { kill(); }
  void kill() {
    if (server) server->stop();
    if (thread.joinable()) thread.join();
    server.reset();
  }
  std::unique_ptr<service::Server> server;
  std::uint16_t port = 0;
  std::thread thread;
};

struct Scenario {
  std::string name;
  std::size_t backends = 0;  // 0: direct, no router
  PathNumbers cached;
  PathNumbers miss;
};

Scenario run_scenario(std::size_t n_backends, int client_threads,
                      double duration_s,
                      const std::vector<std::string>& cached_lines,
                      const std::vector<std::string>& miss_lines) {
  Scenario out;
  out.backends = n_backends;
  out.name = n_backends == 0 ? "direct"
                             : "router_" + std::to_string(n_backends);

  std::vector<std::unique_ptr<Backend>> fleet;
  const std::size_t fleet_size = std::max<std::size_t>(n_backends, 1);
  for (std::size_t b = 0; b < fleet_size; ++b)
    fleet.push_back(std::make_unique<Backend>());

  std::unique_ptr<cluster::Router> router;
  std::thread router_thread;
  std::uint16_t port = fleet[0]->port;
  if (n_backends > 0) {
    cluster::RouterOptions opts;
    for (const auto& b : fleet) opts.backend_ports.push_back(b->port);
    router = std::make_unique<cluster::Router>(opts);
    port = router->bind_listen(0);
    router_thread = std::thread([&router] { router->serve(); });
  }

  // Miss path first (single pass over unique keys: every request is a
  // cold compute), then warm the cached set once and time the hit loop.
  out.miss = drive(port, miss_lines, client_threads, /*duration_s=*/0.0);
  (void)drive(port, cached_lines, 1, /*duration_s=*/0.0);  // warm-up
  out.cached = drive(port, cached_lines, client_threads, duration_s);

  if (router) {
    router->stop();
    router_thread.join();
  }
  return out;
}

struct FailoverNumbers {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t failovers = 0;
  std::uint64_t backends_up_after = 0;
};

/// Two-backend fleet; backend 0 is killed mid-stream. Clients must see
/// zero errors: the router fails its keys over to the survivor.
FailoverNumbers run_failover(int client_threads, double duration_s,
                             const std::vector<std::string>& cached_lines) {
  FailoverNumbers out;
  std::vector<std::unique_ptr<Backend>> fleet;
  fleet.push_back(std::make_unique<Backend>());
  fleet.push_back(std::make_unique<Backend>());
  cluster::RouterOptions opts;
  opts.backend_ports = {fleet[0]->port, fleet[1]->port};
  opts.health.interval_s = 0.05;
  cluster::Router router(opts);
  const std::uint16_t port = router.bind_listen(0);
  std::thread serving([&router] { router.serve(); });

  (void)drive(port, cached_lines, 1, 0.0);  // warm both shards

  std::thread killer([&fleet, duration_s] {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::max(0.05, duration_s / 3.0)));
    fleet[0]->kill();
  });
  const PathNumbers path = drive(port, cached_lines, client_threads,
                                 duration_s);
  killer.join();
  out.requests = path.requests;
  out.errors = path.errors;
  out.failovers = router.stats().failovers;
  out.backends_up_after = router.health().up_count();
  router.stop();
  serving.join();
  return out;
}

/// Routed replies must be byte-for-byte what a direct server answers.
bool check_bit_identical(const std::vector<std::string>& lines) {
  Backend b0, b1;
  cluster::RouterOptions opts;
  opts.backend_ports = {b0.port, b1.port};
  cluster::Router router(opts);
  service::Server direct(backend_options());
  bool identical = true;
  for (int pass = 0; pass < 2; ++pass) {  // miss pass, then hit pass
    for (const auto& line : lines) {
      const std::string routed = router.handle_line(line);
      bool quit = false;
      const std::string local = direct.handle_line(line, &quit);
      if (routed != local) {
        identical = false;
        std::fprintf(stderr, "bench_cluster: reply mismatch for '%s'\n",
                     line.c_str());
      }
    }
  }
  return identical;
}

void write_path(std::ofstream& json, const char* name,
                const PathNumbers& p, bool last) {
  json << "    \"" << name << "\": {\"rps\": " << p.rps
       << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
       << ", \"requests\": " << p.requests << ", \"errors\": " << p.errors
       << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_cluster.json";
  double duration_s = 1.5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--duration-s" && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--duration-s X]\n",
                   argv[0]);
      return 2;
    }
  }
  service::ignore_sigpipe();

  const auto corpus = request_corpus();
  const std::vector<std::string> cached_lines(corpus.begin(),
                                              corpus.begin() + 32);
  const std::vector<std::string> miss_lines(corpus.begin() + 32,
                                            corpus.begin() + 96);
  const int client_threads = 2;

  std::fprintf(stderr, "bench_cluster: bit-identical check...\n");
  const bool identical = check_bit_identical(cached_lines);

  std::vector<Scenario> scenarios;
  for (const std::size_t backends : {std::size_t{0}, std::size_t{1},
                                     std::size_t{2}, std::size_t{4}}) {
    std::fprintf(stderr, "bench_cluster: scenario %s...\n",
                 backends == 0
                     ? "direct"
                     : ("router_" + std::to_string(backends)).c_str());
    scenarios.push_back(run_scenario(backends, client_threads, duration_s,
                                     cached_lines, miss_lines));
  }

  std::fprintf(stderr, "bench_cluster: failover...\n");
  const FailoverNumbers failover =
      run_failover(client_threads, duration_s, cached_lines);

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "bench_cluster: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  json.precision(6);
  json << "{\n"
       << "  \"machine\": {\"cores\": "
       << std::thread::hardware_concurrency() << "},\n"
       << "  \"config\": {\"duration_s\": " << duration_s
       << ", \"client_threads\": " << client_threads
       << ", \"cached_keys\": " << cached_lines.size()
       << ", \"miss_requests\": " << miss_lines.size() << "},\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"scenarios\": {\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    json << "  \"" << s.name << "\": {\n"
         << "    \"backends\": " << s.backends << ",\n";
    write_path(json, "cached", s.cached, false);
    write_path(json, "miss", s.miss, true);
    json << "  }" << (i + 1 < scenarios.size() ? ",\n" : "\n");
  }
  json << "  },\n"
       << "  \"failover\": {\"requests\": " << failover.requests
       << ", \"client_visible_errors\": " << failover.errors
       << ", \"router_failovers\": " << failover.failovers
       << ", \"backends_up_after\": " << failover.backends_up_after
       << "}\n"
       << "}\n";
  json.close();
  std::fprintf(stderr, "bench_cluster: wrote %s\n", out_path.c_str());
  if (!identical || failover.errors != 0) {
    std::fprintf(stderr,
                 "bench_cluster: FAILED (identical=%d, failover errors=%llu)\n",
                 identical ? 1 : 0,
                 static_cast<unsigned long long>(failover.errors));
    return 1;
  }
  return 0;
}
