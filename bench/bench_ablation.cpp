// Ablations on the TECfan design choices called out in DESIGN.md:
//   1. knob ablation — TECfan with TECs disabled / DVFS disabled, vs full;
//   2. control-period sensitivity (the paper picks 2 ms);
//   3. TEC drive current sweep (the paper fixes 6 A, citing >8 A as unsafe);
//   4. TEC hysteresis margin of the Fan+TEC baseline rule.
// All on cholesky/16t at a fixed fan level so the effects are isolated.
#include <memory>

#include "common.h"
#include "thermal/tec_device.h"

namespace {

using namespace tecfan;
using namespace tecfan::bench;

// A TECfan variant with one knob disabled, for the ablation.
class RestrictedTecFan final : public core::Policy {
 public:
  RestrictedTecFan(bool allow_tec, bool allow_dvfs)
      : allow_tec_(allow_tec), allow_dvfs_(allow_dvfs) {}
  std::string_view name() const override { return "TECfan-ablated"; }
  void reset() override { inner_.reset(); }
  core::KnobState decide(core::PlanningModel& model,
                         const core::KnobState& current) override {
    core::KnobState next = inner_.decide(model, current);
    if (!allow_tec_)
      for (auto& b : next.tec_on) b = 0;
    if (!allow_dvfs_)
      for (auto& d : next.dvfs) d = 0;
    return next;
  }

 private:
  core::TecFanPolicy inner_;
  bool allow_tec_;
  bool allow_dvfs_;
};

void run_row(ChipBench& bench, const perf::Workload& wl, double tth,
             core::Policy& p, int fan_level, const std::string& label,
             const sim::RunResult& base, TextTable& t) {
  sim::RunConfig cfg;
  cfg.threshold_k = tth;
  cfg.fan_level = fan_level;
  sim::RunResult r = bench.simulator.run(p, wl, cfg);
  t.add_row({label, fmt(r.exec_time_s / base.exec_time_s, 4),
             fmt(r.energy_j / base.energy_j, 4),
             fmt(r.edp() / base.edp(), 4), fmt(to_c(r.peak_temp_k), 4),
             fmt(100.0 * r.violation_frac, 3)});
}

}  // namespace

int main() {
  ChipBench bench;
  auto wl = bench.workload("cholesky", 16);
  sim::RunResult base = sim::measure_base_scenario(bench.simulator, *wl);
  const double tth = base.peak_temp_k;
  const int fan = 2;

  // 1. Knob ablation.
  {
    TextTable t;
    t.set_header({"variant (fan level 2)", "delay", "energy", "EDP",
                  "peak C", "viol %"});
    core::TecFanPolicy full;
    RestrictedTecFan no_tec(/*allow_tec=*/false, /*allow_dvfs=*/true);
    RestrictedTecFan no_dvfs(/*allow_tec=*/true, /*allow_dvfs=*/false);
    run_row(bench, *wl, tth, full, fan, "TECfan (both knobs)", base, t);
    run_row(bench, *wl, tth, no_tec, fan, "DVFS only (TECs forced off)",
            base, t);
    run_row(bench, *wl, tth, no_dvfs, fan, "TEC only (DVFS pinned top)",
            base, t);
    std::printf("== Ablation 1: knob contribution ==\n%s\n",
                t.render().c_str());
  }

  // 2. Control-period sensitivity.
  {
    TextTable t;
    t.set_header({"control period", "delay", "energy", "EDP", "peak C",
                  "viol %"});
    for (double period_ms : {1.0, 2.0, 4.0, 8.0}) {
      sim::ChipSimulator simulator(
          sim::make_chip_engine(bench.models(), period_ms * 1e-3, 4));
      core::TecFanPolicy p;
      sim::RunConfig cfg;
      cfg.threshold_k = tth;
      cfg.fan_level = fan;
      sim::RunResult r = simulator.run(p, *wl, cfg);
      t.add_row({fmt(period_ms, 3) + " ms",
                 fmt(r.exec_time_s / base.exec_time_s, 4),
                 fmt(r.energy_j / base.energy_j, 4),
                 fmt(r.edp() / base.edp(), 4), fmt(to_c(r.peak_temp_k), 4),
                 fmt(100.0 * r.violation_frac, 3)});
    }
    std::printf("== Ablation 2: control period (paper: 2 ms) ==\n%s\n",
                t.render().c_str());
  }

  // 3. TEC drive current (paper: 6 A fixed; > 8 A flagged unsafe by [10]).
  {
    TextTable t;
    t.set_header({"TEC current", "Fan+TEC peak C @L2", "TEC W", "viol %"});
    for (double amps : {2.0, 4.0, 6.0, 8.0}) {
      sim::ChipModels models = bench.models();
      thermal::TecParameters tec;  // defaults
      tec.drive_current_a = amps;
      thermal::PackageParameters pkg;
      models.thermal = std::make_shared<const thermal::ChipThermalModel>(
          thermal::Floorplan::scc(), pkg, tec);
      const sim::ChipEnginePtr custom = sim::make_chip_engine(models);
      sim::ChipSimulator simulator(custom);
      auto wl2 = custom->workload("cholesky", 16);
      core::FanTecPolicy p;
      sim::RunConfig cfg;
      cfg.threshold_k = tth;
      cfg.fan_level = 1;
      sim::RunResult r = simulator.run(p, *wl2, cfg);
      t.add_row({fmt(amps, 2) + " A", fmt(to_c(r.peak_temp_k), 4),
                 fmt(r.avg_power.tec_w, 3),
                 fmt(100.0 * r.violation_frac, 3)});
    }
    std::printf("== Ablation 3: TEC drive current (paper fixes 6 A) ==\n%s\n",
                t.render().c_str());
  }

  // 4. Fan+TEC hysteresis margin (our deviation from the paper's verbatim
  // rule; margin 0 is the paper's rule, which bang-bangs).
  {
    TextTable t;
    t.set_header({"off-margin K", "peak C @L1", "TEC W", "viol %"});
    for (double margin : {0.0, 2.0, 4.0, 6.0, 8.0}) {
      core::FanTecPolicy p(margin);
      sim::RunConfig cfg;
      cfg.threshold_k = tth;
      cfg.fan_level = 1;
      sim::RunResult r = bench.simulator.run(p, *wl, cfg);
      t.add_row({fmt(margin, 2), fmt(to_c(r.peak_temp_k), 4),
                 fmt(r.avg_power.tec_w, 3),
                 fmt(100.0 * r.violation_frac, 3)});
    }
    std::printf(
        "== Ablation 4: Fan+TEC turn-off hysteresis (0 = paper's verbatim "
        "rule) ==\n%s\n",
        t.render().c_str());
  }

  // 5. Per-core vs chip-wide DVFS (the paper notes TECfan does not rely on
  // per-core DVFS and integrates with chip-level DVFS seamlessly).
  {
    TextTable t;
    t.set_header({"DVFS granularity (fan level 2)", "delay", "energy",
                  "EDP", "peak C", "viol %"});
    core::TecFanPolicy per_core;
    core::PolicyOptions opt;
    opt.chip_wide_dvfs = true;
    core::TecFanPolicy chip_wide(opt);
    run_row(bench, *wl, tth, per_core, fan, "per-core DVFS", base, t);
    run_row(bench, *wl, tth, chip_wide, fan, "chip-wide DVFS", base, t);
    std::printf("== Ablation 5: DVFS granularity ==\n%s", t.render().c_str());
  }
  return 0;
}
