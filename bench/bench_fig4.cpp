// Figure 4: the case for integrating TEC with fan.
//  (a) Fan-only peak temperature at the 1st (fastest) vs 2nd fan speed level
//      across the eight Table I cases — the 2nd level alone violates.
//  (b) Fan+TEC peak temperature at the 2nd level — TECs recover nearly the
//      1st-level cooling.
//  (c) Cooling power: fan at level 1 vs fan at level 2 plus the TEC power —
//      the integrated option is far cheaper (cubic fan law).
#include "common.h"

int main() {
  using namespace tecfan;
  using namespace tecfan::bench;
  ChipBench bench;

  TextTable t;
  t.set_header({"workload", "T_th C", "(a) FanOnly L1", "(a) FanOnly L2",
                "(b) Fan+TEC L2", "(c) fan W L1", "(c) fan W L2",
                "(c) TEC W", "(c) total W L2+TEC"});

  for (const auto& c : perf::table1_cases()) {
    auto wl = bench.workload(c.benchmark, c.threads);
    // Base scenario = Fan-only at the fastest level; defines T_th.
    sim::RunResult base = sim::measure_base_scenario(bench.simulator, *wl);
    const double tth = base.peak_temp_k;

    auto run_at = [&](core::Policy& p, int level) {
      sim::RunConfig cfg;
      cfg.threshold_k = tth;
      cfg.fan_level = level;
      return bench.simulator.run(p, *wl, cfg);
    };
    core::FanOnlyPolicy fan_only;
    core::FanTecPolicy fan_tec;
    // Paper's "fan level 1" = our index 0 (fastest), "level 2" = index 1.
    sim::RunResult only_l2 = run_at(fan_only, 1);
    sim::RunResult tec_l2 = run_at(fan_tec, 1);

    const double fan_w_l1 = bench.models().fan.power_w(0);
    const double fan_w_l2 = bench.models().fan.power_w(1);
    t.add_row({std::string(wl->name()), fmt(to_c(tth), 4),
               fmt(to_c(base.peak_temp_k), 4),
               fmt(to_c(only_l2.peak_temp_k), 4),
               fmt(to_c(tec_l2.peak_temp_k), 4), fmt(fan_w_l1, 3),
               fmt(fan_w_l2, 3), fmt(tec_l2.avg_power.tec_w, 3),
               fmt(fan_w_l2 + tec_l2.avg_power.tec_w, 3)});
  }
  std::printf("== Figure 4: Fan-only vs Fan+TEC (temperatures in C) ==\n%s",
              t.render().c_str());
  std::printf(
      "\nExpected shape: Fan-only at level 2 exceeds T_th by a few kelvin;\n"
      "Fan+TEC at level 2 restores roughly level-1 cooling at a fraction of\n"
      "the cooling power (%.1f W fan level 1 vs ~%.1f W fan level 2 + TEC).\n",
      bench.models().fan.power_w(0), bench.models().fan.power_w(1) + 2.0);
  return 0;
}
