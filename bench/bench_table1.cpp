// Table I: base-scenario results (all cores at the peak DVFS level, fan at
// the highest speed, all TECs off) for the eight SPLASH-2 cases the paper
// reports. Paper columns are printed next to the measured values.
#include "common.h"

int main() {
  using namespace tecfan;
  using namespace tecfan::bench;
  ChipBench bench;

  std::printf("== Table I: testing results in the base scenario ==\n");
  TextTable t;
  t.set_header({"workload", "threads", "inst", "time ms (paper)",
                "time ms (meas)", "P W (paper)", "P W (meas)",
                "T C (paper)", "T C (meas)"});
  for (const auto& c : perf::table1_cases()) {
    auto wl = bench.workload(c.benchmark, c.threads);
    sim::RunResult base = sim::measure_base_scenario(bench.simulator, *wl);
    t.add_row({c.benchmark, std::to_string(c.threads),
               fmt(c.instructions / 1e6, 4) + "M", fmt(c.time_ms, 4),
               fmt(base.exec_time_s * 1e3, 4), fmt(c.power_w, 4),
               fmt(base.avg_power.chip_w(), 4), fmt(c.peak_temp_c, 4),
               fmt(to_c(base.peak_temp_k), 4)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
