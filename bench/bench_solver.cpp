// Dense vs RCM-permuted-banded backend comparison for the shared engines:
// engine construction (base factorization + warm-column pre-fill), the
// service's cache-miss compute (throwaway simulator + leakage fixed point),
// predict_batch planning throughput, and transient plant stepping. Writes
// BENCH_solver.json (--out to override); scripts/bench.sh runs this from a
// Release build together with the loadgen miss-path run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/chip_planning_model.h"
#include "sim/chip_engine.h"
#include "sim/chip_simulator.h"
#include "thermal/solvers.h"

namespace {

using namespace tecfan;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Median wall time of `reps` calls to fn, in seconds.
template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_seconds();
    fn();
    times.push_back(now_seconds() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

const char* backend_name(linalg::SolveBackend b) {
  return b == linalg::SolveBackend::kDense ? "dense" : "banded";
}

core::KnobState miss_knobs(const thermal::ChipThermalModel& model, bool tec) {
  core::KnobState knobs = core::KnobState::initial(
      model.floorplan().core_count(), model.tec_count(), /*fan_level=*/2);
  for (int& d : knobs.dvfs) d = 1;
  for (auto& on : knobs.tec_on) on = tec ? 1 : 0;
  return knobs;
}

struct BackendNumbers {
  double construct_ms = 0.0;
  double predict_cold_ms = 0.0;
  double miss_tec_off_ms = 0.0;
  double miss_tec_on_ms = 0.0;
  double batch_candidates_per_s = 0.0;
  double transient_step_us = 0.0;
  std::size_t engine_bytes = 0;
};

BackendNumbers measure(linalg::SolveBackend backend,
                       const sim::ChipModels& models) {
  BackendNumbers out;
  const double dt = 2e-3 / 4;

  out.construct_ms = 1e3 * median_seconds(5, [&] {
    const thermal::ThermalEngine engine(models.thermal, dt, backend);
    if (engine.memory_bytes() == 0) std::abort();
  });

  sim::ChipEnginePtr engine =
      sim::make_chip_engine(models, 2e-3, 4, backend);
  out.engine_bytes = engine->memory_bytes();
  auto wl = engine->workload("cholesky", 16);

  // The serving cache-miss path: a throwaway per-request simulator plus the
  // temperature-leakage fixed point (Server::do_equilibrium).
  const auto& thermal_model = *models.thermal;
  for (const bool tec : {false, true}) {
    const core::KnobState knobs = miss_knobs(thermal_model, tec);
    const double ms = 1e3 * median_seconds(9, [&] {
      sim::ChipSimulator simulator(engine);
      const linalg::Vector temps = simulator.equilibrium(*wl, knobs);
      if (temps.empty()) std::abort();
    });
    (tec ? out.miss_tec_on_ms : out.miss_tec_off_ms) = ms;
  }

  core::ChipPlanningModel::Config cfg;
  cfg.fan = models.fan;
  cfg.dvfs = models.dvfs;
  core::ChipPlanningModel::Observation obs;
  obs.comp_temps_k.assign(thermal_model.component_count(), 350.0);
  obs.comp_dyn_power_w.assign(thermal_model.component_count(), 0.35);
  obs.core_ips.assign(16, 1.3e9);
  obs.applied = core::KnobState::initial(16, thermal_model.tec_count());

  // Cold-miss predict: the first predict() against a cooling state nobody
  // has solved yet (empty per-planner memo), i.e. the marginal cost a
  // worker pays per un-memoized candidate. Planner construction and the
  // observe() bootstrap are per-request setup shared by both backends and
  // sit outside the timed region. The candidate engages every 8th TEC —
  // the same stride-pattern family the predict_batch sweep fans out over.
  {
    core::KnobState cand = obs.applied;
    cand.fan_level = 2;
    for (int& d : cand.dvfs) d = 2;
    for (std::size_t dev = 0; dev < cand.tec_on.size(); dev += 8)
      cand.tec_on[dev] = 1;
    core::KnobState warmup = cand;
    warmup.fan_level = 3;  // distinct cooling state: warms caches, not the memo
    std::vector<double> times;
    for (int rep = 0; rep < 25; ++rep) {
      core::ChipPlanningModel planner(engine->thermal(), cfg);
      planner.observe(obs);
      if (!(planner.predict(warmup).max_temp_k() > 0.0)) std::abort();
      const double t0 = now_seconds();
      const core::Prediction pred = planner.predict(cand);
      times.push_back(now_seconds() - t0);
      if (!(pred.max_temp_k() > 0.0)) std::abort();
    }
    std::sort(times.begin(), times.end());
    out.predict_cold_ms = 1e3 * times[times.size() / 2];
  }

  // predict_batch planning throughput over a mixed candidate sweep (the
  // TECfan policy's per-interval fan-out).
  {
    core::ChipPlanningModel planner(engine->thermal(), cfg);
    planner.observe(obs);

    std::vector<core::KnobState> candidates;
    for (int fan = 0; fan < 4; ++fan)
      for (int dvfs = 0; dvfs < 4; ++dvfs)
        for (std::size_t t = 0; t < 8; ++t) {
          core::KnobState k = obs.applied;
          k.fan_level = fan;
          for (int& d : k.dvfs) d = dvfs;
          for (std::size_t dev = t; dev < k.tec_on.size(); dev += 8)
            k.tec_on[dev] = 1;
          candidates.push_back(std::move(k));
        }
    const double s = median_seconds(5, [&] {
      auto preds = planner.predict_batch(candidates);
      if (preds.size() != candidates.size()) std::abort();
    });
    out.batch_candidates_per_s = static_cast<double>(candidates.size()) / s;
  }

  // Transient plant stepping (the inner loop of ChipSimulator::run).
  {
    thermal::TransientSolver plant(engine->thermal());
    const core::KnobState knobs = miss_knobs(thermal_model, true);
    thermal::CoolingState cooling = thermal_model.make_cooling_state(
        models.fan.airflow_cfm(knobs.fan_level));
    cooling.tec_on = knobs.tec_on;
    linalg::Vector power(thermal_model.component_count(), 0.4);
    linalg::Vector temps(thermal_model.node_count(), 320.0);
    constexpr int kSteps = 200;
    const double s = median_seconds(5, [&] {
      for (int i = 0; i < kSteps; ++i)
        temps = plant.step(temps, power, cooling);
    });
    out.transient_step_us = 1e6 * s / kSteps;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const sim::ChipModels models = sim::make_default_chip_models();
  const std::size_t n = models.thermal->node_count();

  // Equivalence spot check: the committed numbers should never come from
  // backends that disagree.
  double max_dt_k = 0.0;
  {
    sim::ChipEnginePtr dense =
        sim::make_chip_engine(models, 2e-3, 4, linalg::SolveBackend::kDense);
    sim::ChipEnginePtr banded =
        sim::make_chip_engine(models, 2e-3, 4, linalg::SolveBackend::kBanded);
    auto wl = dense->workload("cholesky", 16);
    for (const bool tec : {false, true}) {
      const core::KnobState knobs = miss_knobs(*models.thermal, tec);
      sim::ChipSimulator a(dense);
      sim::ChipSimulator b(banded);
      const linalg::Vector ta = a.equilibrium(*wl, knobs);
      const linalg::Vector tb = b.equilibrium(*wl, knobs);
      for (std::size_t i = 0; i < ta.size(); ++i)
        max_dt_k = std::max(max_dt_k, std::abs(ta[i] - tb[i]));
    }
  }

  BackendNumbers nums[2];
  const linalg::SolveBackend backends[2] = {linalg::SolveBackend::kDense,
                                            linalg::SolveBackend::kBanded};
  for (int i = 0; i < 2; ++i) nums[i] = measure(backends[i], models);

  const std::size_t bandwidth =
      sim::make_chip_engine(models, 2e-3, 4, linalg::SolveBackend::kBanded)
          ->thermal()
          ->bandwidth();

  std::printf("== bench_solver: %zu-node chip network, RCM bandwidth %zu ==\n",
              n, bandwidth);
  std::printf("backend equivalence: max |dT| = %.3g K\n", max_dt_k);
  std::printf("%-28s %12s %12s %8s\n", "metric", "dense", "banded", "ratio");
  const auto row = [&](const char* name, double d, double b,
                       bool higher_is_better) {
    std::printf("%-28s %12.4f %12.4f %7.2fx\n", name, d, b,
                higher_is_better ? b / d : d / b);
  };
  row("engine construct (ms)", nums[0].construct_ms, nums[1].construct_ms,
      false);
  row("cold-miss predict (ms)", nums[0].predict_cold_ms,
      nums[1].predict_cold_ms, false);
  row("serving miss eq off (ms)", nums[0].miss_tec_off_ms,
      nums[1].miss_tec_off_ms, false);
  row("serving miss eq on (ms)", nums[0].miss_tec_on_ms,
      nums[1].miss_tec_on_ms, false);
  row("predict_batch (cand/s)", nums[0].batch_candidates_per_s,
      nums[1].batch_candidates_per_s, true);
  row("transient step (us)", nums[0].transient_step_us,
      nums[1].transient_step_us, false);
  std::printf("engine bytes: dense %.2f MiB, banded %.2f MiB\n",
              static_cast<double>(nums[0].engine_bytes) / (1024.0 * 1024.0),
              static_cast<double>(nums[1].engine_bytes) / (1024.0 * 1024.0));

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "bench_solver: cannot write %s\n", out_path.c_str());
    return 1;
  }
  json.precision(6);
  json << "{\n"
       << "  \"bench\": \"solver\",\n"
       << "  \"nodes\": " << n << ",\n"
       << "  \"rcm_half_bandwidth\": " << bandwidth << ",\n"
       << "  \"equivalence_max_dt_k\": " << max_dt_k << ",\n";
  for (int i = 0; i < 2; ++i) {
    const char* b = backend_name(backends[i]);
    json << "  \"" << b << "\": {\n"
         << "    \"engine_construct_ms\": " << nums[i].construct_ms << ",\n"
         << "    \"cold_miss_predict_ms\": " << nums[i].predict_cold_ms
         << ",\n"
         << "    \"serving_miss_equilibrium_tec_off_ms\": "
         << nums[i].miss_tec_off_ms << ",\n"
         << "    \"serving_miss_equilibrium_tec_on_ms\": "
         << nums[i].miss_tec_on_ms << ",\n"
         << "    \"predict_batch_candidates_per_s\": "
         << nums[i].batch_candidates_per_s << ",\n"
         << "    \"transient_step_us\": " << nums[i].transient_step_us << ",\n"
         << "    \"engine_bytes\": " << nums[i].engine_bytes << "\n"
         << "  },\n";
  }
  json << "  \"speedup\": {\n"
       << "    \"engine_construct\": "
       << nums[0].construct_ms / nums[1].construct_ms << ",\n"
       << "    \"cold_miss_predict\": "
       << nums[0].predict_cold_ms / nums[1].predict_cold_ms << ",\n"
       << "    \"serving_miss_equilibrium_tec_off\": "
       << nums[0].miss_tec_off_ms / nums[1].miss_tec_off_ms << ",\n"
       << "    \"serving_miss_equilibrium_tec_on\": "
       << nums[0].miss_tec_on_ms / nums[1].miss_tec_on_ms << ",\n"
       << "    \"predict_batch\": "
       << nums[1].batch_candidates_per_s / nums[0].batch_candidates_per_s
       << ",\n"
       << "    \"transient_step\": "
       << nums[0].transient_step_us / nums[1].transient_step_us << "\n"
       << "  }\n"
       << "}\n";
  std::fprintf(stderr, "bench_solver: wrote %s\n", out_path.c_str());
  return 0;
}
