#include <cmath>

// Figure 6: execution performance of the five policies, normalized to the
// base scenario — (a) delay, (b) average power, (c) energy, (d) EDP.
// Expected shape (paper): Fan+TEC saves ~9% power/energy at zero delay;
// Fan+DVFS saves the most power but pays ~60% delay and the worst EDP;
// DVFS+TEC sits between; TECfan keeps delay within a few percent and the
// best (lowest) EDP.
#include "common.h"

int main() {
  using namespace tecfan;
  using namespace tecfan::bench;
  ChipBench bench;

  const char* metric_names[4] = {"(a) delay", "(b) power", "(c) energy",
                                 "(d) EDP"};
  std::vector<TextTable> tables(4);
  std::vector<std::string> header = {"policy"};
  for (const auto& w : fig56_benchmarks()) header.push_back(w);
  header.push_back("geomean");
  for (auto& t : tables) t.set_header(header);

  for (const auto& entry : chip_policies()) {
    std::vector<std::vector<std::string>> rows(
        4, std::vector<std::string>{entry.label});
    double geo[4] = {1.0, 1.0, 1.0, 1.0};
    int count = 0;
    for (const auto& name : fig56_benchmarks()) {
      auto wl = bench.workload(name, 16);
      sim::RunResult base = sim::measure_base_scenario(bench.simulator, *wl);
      sim::SweepOptions opts;
      opts.threshold_k = base.peak_temp_k;
      opts.max_mean_dvfs = entry.max_mean_dvfs;
      sim::SweepResult sw = sim::run_with_fan_sweep(bench.engine,
                                                    entry.make, *wl, opts);
      const sim::RunResult& r = sw.chosen;
      const double vals[4] = {
          r.exec_time_s / base.exec_time_s,
          r.avg_total_power_w() / base.avg_total_power_w(),
          r.energy_j / base.energy_j, r.edp() / base.edp()};
      for (int m = 0; m < 4; ++m) {
        rows[m].push_back(fmt(vals[m], 4));
        geo[m] *= vals[m];
      }
      ++count;
    }
    for (int m = 0; m < 4; ++m) {
      rows[m].push_back(fmt(std::pow(geo[m], 1.0 / count), 4));
      tables[static_cast<std::size_t>(m)].add_row(rows[m]);
    }
  }
  for (int m = 0; m < 4; ++m)
    std::printf("== Figure 6%s (normalized to base scenario) ==\n%s\n",
                metric_names[m], tables[static_cast<std::size_t>(m)]
                                     .render()
                                     .c_str());
  return 0;
}
