// Figure 7: TECfan vs OFTEC vs Oracle vs Oracle-P on the 4-core server
// setup (Sec. IV-B / V-E): Core i7-3770K-shaped cores, Wikipedia trace
// scaled by 1.5x (avg utilization 48.6%), 10-minute runs, all metrics
// normalized to OFTEC.
// Expected shape (paper): TECfan saves ~29% energy vs OFTEC at no delay;
// Oracle saves more but throttles aggressively; Oracle-P (Oracle with
// TECfan's performance posture) lands approximately on TECfan — TECfan is
// near-optimal at equal performance.
#include <cstdio>
#include <memory>

#include "core/exhaustive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/wikipedia_trace.h"
#include "sim/server_system.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace tecfan;
  perf::WikipediaTrace trace;
  sim::ServerConfig cfg;
  sim::ServerSimulator simulator(cfg);
  std::printf(
      "4-core server, Wikipedia trace x%.1f, mean demand %.1f%%, "
      "T_th %.0f C, 10-minute runs\n\n",
      trace.scale(), 100.0 * trace.mean_demand_40min(),
      kelvin_to_celsius(cfg.threshold_k));

  core::PolicyOptions popt;
  popt.manage_fan = true;
  popt.fan_period_intervals = cfg.fan_period_intervals;
  core::ExhaustiveOptions xopt;
  xopt.base = popt;

  core::OftecPolicy oftec(xopt);
  const sim::RunResult r_oftec = simulator.run(oftec, trace);

  core::TecFanPolicy tecfan(popt);
  const sim::RunResult r_tecfan = simulator.run(tecfan, trace);
  auto reference = std::make_shared<std::vector<double>>(
      simulator.last_capacity_trace());

  core::OraclePolicy oracle(xopt);
  const sim::RunResult r_oracle = simulator.run(oracle, trace);

  core::OraclePPolicy oracle_p(xopt, reference);
  const sim::RunResult r_oracle_p = simulator.run(oracle_p, trace);

  TextTable t;
  t.set_header({"policy", "delay", "power", "energy", "EDP", "peak T (C)",
                "viol (%)", "final fan"});
  auto add = [&](const sim::RunResult& r) {
    t.add_row({r.policy, format_double(r.exec_time_s / r_oftec.exec_time_s, 4),
               format_double(r.avg_total_power_w() /
                                 r_oftec.avg_total_power_w(), 4),
               format_double(r.energy_j / r_oftec.energy_j, 4),
               format_double(r.edp() / r_oftec.edp(), 4),
               format_double(kelvin_to_celsius(r.peak_temp_k), 4),
               format_double(100.0 * r.violation_frac, 3),
               std::to_string(r.fan_level)});
  };
  add(r_oftec);
  add(r_tecfan);
  add(r_oracle);
  add(r_oracle_p);
  std::printf("== Figure 7 (normalized to OFTEC) ==\n%s", t.render().c_str());
  return 0;
}
