// Section V-A: decision-time complexity of TECfan vs the exhaustive
// baselines. The paper derives O(NL + N^2 M) for TECfan against O(2^(NL))
// for OFTEC and O(M^N 2^(NL)) for Oracle. This bench (1) tabulates the
// analytic candidate counts over core counts, and (2) measures actual
// decisions per second on the 4-core server model and the 16-core chip
// model.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "core/exhaustive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/wikipedia_trace.h"
#include "sim/server_system.h"

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace tecfan;
  using namespace tecfan::bench;

  // (1) Analytic search-space sizes (L TECs/core, M DVFS levels).
  std::printf("== Sec. V-A: candidate counts per decision ==\n");
  TextTable t;
  t.set_header({"N cores", "L/core", "M", "TECfan O(NL+N^2*M)",
                "OFTEC O(2^NL)", "Oracle O(M^N*2^NL)"});
  for (int n : {2, 4, 8, 16}) {
    const int l = 9, m = 6;
    const double tecfan_c = n * l + double(n) * n * m;
    const double oftec_c = std::pow(2.0, n * l);
    const double oracle_c = std::pow(m, n) * oftec_c;
    t.add_row({std::to_string(n), std::to_string(l), std::to_string(m),
               fmt(tecfan_c, 6), fmt(oftec_c, 3), fmt(oracle_c, 3)});
  }
  std::printf("%s\n", t.render().c_str());

  // (2) Measured decision cost on the 4-core server model.
  {
    perf::WikipediaTrace trace;
    sim::ServerConfig cfg;
    cfg.duration_s = 30.0;  // short run: we time decisions, not the trace
    sim::ServerSimulator simulator(cfg);
    core::PolicyOptions popt;
    popt.manage_fan = true;
    popt.fan_period_intervals = cfg.fan_period_intervals;
    core::ExhaustiveOptions xopt;
    xopt.base = popt;

    TextTable m;
    m.set_header({"policy (4-core server)", "wall s / 30 s sim",
                  "us per decision"});
    auto time_policy = [&](core::Policy& p, const char* label) {
      const double t0 = now_seconds();
      simulator.run(p, trace);
      const double dt = now_seconds() - t0;
      const double decisions = cfg.duration_s / cfg.control_period_s;
      m.add_row({label, fmt(dt, 4), fmt(dt / decisions * 1e6, 5)});
    };
    core::TecFanPolicy tecfan(popt);
    core::OftecPolicy oftec(xopt);
    core::OraclePolicy oracle(xopt);
    time_policy(tecfan, "TECfan");
    time_policy(oftec, "OFTEC (exhaustive)");
    time_policy(oracle, "Oracle (exhaustive)");
    std::printf("%s\n", m.render().c_str());
  }

  // (3) Measured TECfan decision cost on the full 16-core chip (the setup
  // where the exhaustive baselines are computationally impossible:
  // M^N 2^NL ~ 6^16 * 2^144).
  {
    ChipBench bench;
    auto wl = bench.workload("cholesky", 16);
    sim::RunResult base = sim::measure_base_scenario(bench.simulator, *wl);
    core::TecFanPolicy tecfan;
    sim::RunConfig cfg;
    cfg.threshold_k = base.peak_temp_k;
    cfg.fan_level = 2;
    const double t0 = now_seconds();
    sim::RunResult r = bench.simulator.run(tecfan, *wl, cfg);
    const double dt = now_seconds() - t0;
    const double decisions = r.exec_time_s / bench.simulator.control_period_s();
    std::printf("== TECfan on the 16-core chip (N=16, L=9, M=6) ==\n");
    std::printf("wall %.2f s for %.0f decisions -> %.1f us/decision "
                "(plant simulation included)\n",
                dt, decisions, dt / decisions * 1e6);
    std::printf("exhaustive Oracle would need M^N * 2^(NL) = %.2e candidates "
                "per decision.\n",
                std::pow(6.0, 16) * std::pow(2.0, 144));
  }
  return 0;
}
