// Micro-benchmarks (google-benchmark) for the numerical substrate: the
// costs that determine whether TECfan's estimator is viable online.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/chip_planning_model.h"
#include "core/fast_planning_model.h"
#include "core/tecfan_policy.h"
#include "linalg/banded.h"
#include "linalg/cholesky.h"
#include "linalg/iterative.h"
#include "linalg/lu.h"
#include "linalg/systolic.h"
#include "linalg/woodbury.h"
#include "thermal/core_estimator.h"
#include "sim/chip_engine.h"
#include "sim/chip_simulator.h"
#include "thermal/solvers.h"
#include "util/rng.h"

namespace {

using namespace tecfan;

const sim::ChipEnginePtr& engine() {
  static const sim::ChipEnginePtr e = sim::make_default_chip_engine();
  return e;
}

const sim::ChipModels& models() { return engine()->models(); }

linalg::Vector uniform_power(double watts_per_component) {
  return linalg::Vector(models().thermal->component_count(),
                        watts_per_component);
}

void BM_DenseLuFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  linalg::DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = -rng.uniform();
    a(r, r) = static_cast<double>(n) + 1.0;
  }
  for (auto _ : state) {
    linalg::LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.size());
  }
}
BENCHMARK(BM_DenseLuFactor)->Arg(64)->Arg(256)->Arg(608);

void BM_SteadySolveBase(benchmark::State& state) {
  thermal::SteadyStateSolver solver(engine()->thermal());
  const auto cooling = models().thermal->make_cooling_state(60.0);
  const linalg::Vector p = uniform_power(0.4);
  for (auto _ : state) {
    auto t = solver.solve(p, cooling);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_SteadySolveBase);

void BM_SteadySolveWithTecs(benchmark::State& state) {
  thermal::SteadyStateSolver solver(engine()->thermal());
  auto cooling = models().thermal->make_cooling_state(60.0);
  const auto n_on = static_cast<std::size_t>(state.range(0));
  for (std::size_t t = 0; t < n_on; ++t) cooling.tec_on[t] = 1;
  const linalg::Vector p = uniform_power(0.4);
  // Warm the Woodbury column cache (as in steady-state operation).
  benchmark::DoNotOptimize(solver.solve(p, cooling).data());
  for (auto _ : state) {
    auto t = solver.solve(p, cooling);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_SteadySolveWithTecs)->Arg(8)->Arg(32)->Arg(144);

void BM_TransientStep(benchmark::State& state) {
  thermal::TransientSolver solver(engine()->thermal());
  const auto cooling = models().thermal->make_cooling_state(60.0);
  const linalg::Vector p = uniform_power(0.4);
  linalg::Vector temps(models().thermal->node_count(), 330.0);
  for (auto _ : state) {
    temps = solver.step(temps, p, cooling);
    benchmark::DoNotOptimize(temps.data());
  }
}
BENCHMARK(BM_TransientStep);

void BM_SimulatorConstruct(benchmark::State& state) {
  // The engine/workspace split's payoff: a per-thread simulator over a
  // shared engine is microseconds, vs the ~ms-scale base factorizations
  // the engine paid once (outside the timed loop).
  const sim::ChipEnginePtr& shared = engine();
  for (auto _ : state) {
    sim::ChipSimulator simulator(shared);
    benchmark::DoNotOptimize(simulator.control_period_s());
  }
}
BENCHMARK(BM_SimulatorConstruct);

void BM_WoodburyVsRefactor(benchmark::State& state) {
  // Toggle one TEC: Woodbury update + solve vs full refactor.
  const bool use_woodbury = state.range(0) != 0;
  const auto& model = *models().thermal;
  const linalg::Vector q =
      model.assemble_rhs(uniform_power(0.4), model.make_cooling_state(60.0));
  auto op = std::make_shared<const linalg::FactoredOperator>(
      model.base_conductance().to_dense());
  linalg::UpdateWorkspace updater(op);
  std::size_t which = 0;
  for (auto _ : state) {
    auto cooling = model.make_cooling_state(60.0);
    cooling.tec_on[which % model.tec_count()] = 1;
    ++which;
    if (use_woodbury) {
      updater.set_updates(model.diagonal_updates(cooling));
      benchmark::DoNotOptimize(updater.solve(q).data());
    } else {
      linalg::DenseMatrix a = model.base_conductance().to_dense();
      for (const auto& [node, delta] : model.diagonal_updates(cooling))
        a(node, node) += delta;
      linalg::LuFactorization lu(std::move(a));
      benchmark::DoNotOptimize(lu.solve(q).data());
    }
  }
}
BENCHMARK(BM_WoodburyVsRefactor)->Arg(1)->Arg(0);

void BM_PlannerPredict(benchmark::State& state) {
  core::ChipPlanningModel::Config cfg;
  cfg.fan = models().fan;
  cfg.dvfs = models().dvfs;
  core::ChipPlanningModel planner(engine()->thermal(), cfg);
  const auto& model = *models().thermal;
  core::ChipPlanningModel::Observation obs;
  obs.comp_temps_k.assign(model.component_count(), 350.0);
  obs.comp_dyn_power_w.assign(model.component_count(), 0.35);
  obs.core_ips.assign(16, 1.3e9);
  obs.applied = core::KnobState::initial(16, model.tec_count());
  planner.observe(obs);
  core::KnobState knobs = obs.applied;
  std::size_t i = 0;
  for (auto _ : state) {
    knobs.tec_on[i % model.tec_count()] ^= 1;
    ++i;
    auto p = planner.predict(knobs);
    benchmark::DoNotOptimize(p.ips);
  }
}
BENCHMARK(BM_PlannerPredict);

void BM_FastPlannerPredict(benchmark::State& state) {
  // Incremental per-core candidate evaluation (Sec. III-E strategy) vs the
  // global BM_PlannerPredict above.
  core::ChipPlanningModel::Config cfg;
  cfg.fan = models().fan;
  cfg.dvfs = models().dvfs;
  core::FastChipPlanningModel planner(engine()->thermal(), cfg);
  const auto& model = *models().thermal;
  core::ChipPlanningModel::Observation obs;
  obs.comp_temps_k.assign(model.component_count(), 350.0);
  obs.comp_dyn_power_w.assign(model.component_count(), 0.35);
  obs.core_ips.assign(16, 1.3e9);
  obs.applied = core::KnobState::initial(16, model.tec_count());
  planner.observe(obs);
  core::KnobState knobs = obs.applied;
  std::size_t i = 0;
  for (auto _ : state) {
    knobs = obs.applied;
    knobs.tec_on[i % model.tec_count()] = 1;
    ++i;
    auto p = planner.predict(knobs);
    benchmark::DoNotOptimize(p.ips);
  }
}
BENCHMARK(BM_FastPlannerPredict);

void BM_CoreEstimatorSteady(benchmark::State& state) {
  // The Sec. III-E per-core path: a 36-node banded solve vs the global
  // planner predict() above.
  thermal::CoreEstimator est(models().thermal, /*core=*/5);
  std::vector<double> comp_power(thermal::kComponentsPerTile, 0.4);
  std::vector<std::uint8_t> tec_on(9, 0);
  tec_on[2] = 1;
  linalg::Vector boundary(models().thermal->node_count(), 345.0);
  for (auto _ : state) {
    auto t = est.steady(comp_power, tec_on, boundary);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_CoreEstimatorSteady);

void BM_BandLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  linalg::BandMatrix a(n, 3, 3);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = (r >= 3 ? r - 3 : 0); c <= std::min(n - 1, r + 3);
         ++c)
      a.at(r, c) = (r == c) ? 8.0 : -rng.uniform();
  linalg::Vector b(n, 1.0);
  linalg::BandLu lu(a);
  for (auto _ : state) {
    auto x = lu.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_BandLuSolve)->Arg(36)->Arg(288);

void BM_SystolicMatvec(benchmark::State& state) {
  const std::size_t n = 18;
  Rng rng(5);
  linalg::BandMatrix a(n, 1, 1);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = (r >= 1 ? r - 1 : 0); c <= std::min(n - 1, r + 1);
         ++c)
      a.at(r, c) = rng.uniform();
  linalg::Vector x(n, 1.0);
  for (auto _ : state) {
    auto run = linalg::systolic_band_matvec(a, x);
    benchmark::DoNotOptimize(run.y.data());
  }
}
BENCHMARK(BM_SystolicMatvec);

void BM_IterativeCg(benchmark::State& state) {
  const auto& g = models().thermal->base_conductance();
  linalg::Vector q = models().thermal->assemble_rhs(
      uniform_power(0.4), models().thermal->make_cooling_state(0.0));
  for (auto _ : state) {
    auto res = linalg::conjugate_gradient(g, q);
    benchmark::DoNotOptimize(res.x.data());
  }
}
BENCHMARK(BM_IterativeCg);

}  // namespace

BENCHMARK_MAIN();
