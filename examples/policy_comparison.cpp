// Compare all runtime policies on one benchmark, following the paper's
// Sec. IV-C protocol: the base scenario defines the temperature threshold,
// every policy is swept over fan levels, and the chosen (slowest passing)
// run is reported — the per-benchmark slice of Figs. 5 and 6.
//
//   $ ./examples/policy_comparison [benchmark] [threads]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/reactive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/splash2.h"
#include "sim/chip_simulator.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace tecfan;
  const std::string benchmark = argc > 1 ? argv[1] : "cholesky";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 16;

  // One shared engine; the simulator is a cheap workspace over it.
  const sim::ChipEnginePtr engine = sim::make_default_chip_engine();
  sim::ChipSimulator simulator(engine);
  const auto workload = engine->workload(benchmark, threads);

  const sim::RunResult base = sim::measure_base_scenario(simulator, *workload);
  std::printf("base: %.1f ms, %.1f W chip, peak %.2f C (threshold)\n\n",
              base.exec_time_s * 1e3, base.avg_power.chip_w(),
              kelvin_to_celsius(base.peak_temp_k));

  struct Entry {
    std::string label;
    sim::PolicyFactory make;
    double max_mean_dvfs;
  };
  const double kAny = 1e9;
  // TECfan's sweep bound mirrors its higher-level fan loop, which only slows
  // the fan while steady-state hot spots stay absent without throttling.
  const std::vector<Entry> entries = {
      {"Fan-only", [] { return std::make_unique<core::FanOnlyPolicy>(); },
       kAny},
      {"Fan+TEC", [] { return std::make_unique<core::FanTecPolicy>(); },
       kAny},
      {"Fan+DVFS", [] { return std::make_unique<core::FanDvfsPolicy>(); },
       kAny},
      {"DVFS+TEC", [] { return std::make_unique<core::DvfsTecPolicy>(); },
       kAny},
      {"TECfan", [] { return std::make_unique<core::TecFanPolicy>(); }, 0.5},
  };

  TextTable t;
  t.set_header({"policy", "fan", "delay", "power", "energy", "EDP",
                "peakT(C)", "viol(%)"});
  for (const auto& e : entries) {
    sim::SweepOptions opts;
    opts.threshold_k = base.peak_temp_k;
    opts.max_mean_dvfs = e.max_mean_dvfs;
    sim::SweepResult sw =
        sim::run_with_fan_sweep(simulator.engine_ptr(), e.make, *workload, opts);
    const sim::RunResult& r = sw.chosen;
    t.add_row({e.label, std::to_string(r.fan_level),
               format_double(r.exec_time_s / base.exec_time_s, 4),
               format_double(r.avg_total_power_w() /
                                 base.avg_total_power_w(), 4),
               format_double(r.energy_j / base.energy_j, 4),
               format_double(r.edp() / base.edp(), 4),
               format_double(kelvin_to_celsius(r.peak_temp_k), 4),
               format_double(100.0 * r.violation_frac, 3)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\n(delay/power/energy/EDP normalized to the base scenario)\n");
  return 0;
}
