// Server scenario walkthrough (the Sec. V-E setting): a 4-core Core
// i7-class machine serving a diurnal Wikipedia-like request trace, managed
// by TECfan with its higher-level fan loop active, compared against the
// OFTEC cooling-only optimizer. Prints a timeline of what TECfan does with
// each knob as load moves.
//
//   $ ./examples/datacenter_trace [duration_seconds]
#include <cstdio>
#include <memory>

#include "core/exhaustive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/wikipedia_trace.h"
#include "sim/server_system.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace tecfan;
  const double duration = argc > 1 ? std::atof(argv[1]) : 600.0;

  perf::WikipediaTrace trace;
  sim::ServerConfig cfg;
  cfg.duration_s = duration;
  cfg.record_trace = true;
  sim::ServerSimulator simulator(cfg);

  std::printf("4-core server, %.0f s of the Wikipedia trace (mean demand "
              "%.1f%%), T_th = %.0f C\n\n",
              duration, 100.0 * trace.mean_demand_40min(),
              kelvin_to_celsius(cfg.threshold_k));

  core::PolicyOptions popt;
  popt.manage_fan = true;
  popt.fan_period_intervals = cfg.fan_period_intervals;
  core::TecFanPolicy tecfan(popt);
  const sim::RunResult r = simulator.run(tecfan, trace);

  std::printf("== TECfan knob timeline (every 30 s) ==\n");
  TextTable t;
  t.set_header({"t (s)", "demand-ish (IPS G)", "peak T (C)", "fan lvl",
                "TECs on", "mean DVFS", "power (W)"});
  const std::size_t stride =
      static_cast<std::size_t>(30.0 / cfg.control_period_s);
  for (std::size_t i = 0; i < r.trace.size(); i += stride) {
    const auto& rec = r.trace[i];
    t.add_row({format_double(rec.time_s, 4),
               format_double(rec.ips / 1e9, 3),
               format_double(kelvin_to_celsius(rec.peak_temp_k), 4),
               std::to_string(rec.fan_level), std::to_string(rec.tecs_on),
               format_double(rec.mean_dvfs, 3),
               format_double(rec.power.total_w(), 4)});
  }
  std::printf("%s\n", t.render().c_str());

  core::ExhaustiveOptions xopt;
  xopt.base = popt;
  core::OftecPolicy oftec(xopt);
  const sim::RunResult ro = simulator.run(oftec, trace);

  TextTable s;
  s.set_header({"policy", "energy (kJ)", "avg power (W)", "delay (s)",
                "peak T (C)", "viol (%)"});
  for (const auto* rr : {&r, &ro})
    s.add_row({rr->policy, format_double(rr->energy_j / 1e3, 4),
               format_double(rr->avg_total_power_w(), 4),
               format_double(rr->exec_time_s, 4),
               format_double(kelvin_to_celsius(rr->peak_temp_k), 4),
               format_double(100.0 * rr->violation_frac, 3)});
  std::printf("== summary ==\n%s", s.render().c_str());
  std::printf("\nTECfan trades a little frequency at medium load for a much "
              "smaller cooling+compute energy bill than the cooling-only "
              "optimizer.\n");
  return 0;
}
