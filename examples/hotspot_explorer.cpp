// Interactive-style thermal exploration: renders ASCII heat maps of the
// steady-state die temperature under different workloads, fan levels and
// TEC configurations — a visual demonstration of the local-vs-global
// cooling trade-off the paper builds on.
//
//   $ ./examples/hotspot_explorer [benchmark] [threads]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "perf/splash2.h"
#include "sim/chip_simulator.h"
#include "thermal/solvers.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace tecfan;

// Sample die temperatures onto a uniform grid for rendering.
std::vector<double> sample_grid(const thermal::ChipThermalModel& model,
                                const linalg::Vector& temps, int cols,
                                int rows) {
  const auto& fp = model.floorplan();
  std::vector<double> grid(static_cast<std::size_t>(cols * rows), 0.0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = (c + 0.5) / cols * fp.chip_width();
      const double y = (r + 0.5) / rows * fp.chip_height();
      // Find the component containing (x, y).
      for (std::size_t i = 0; i < fp.component_count(); ++i) {
        const auto& rect = fp.component(i).rect;
        if (x >= rect.x && x < rect.x1() && y >= rect.y && y < rect.y1()) {
          grid[static_cast<std::size_t>(r * cols + c)] =
              temps[model.die_node(i)];
          break;
        }
      }
    }
  }
  return grid;
}

void show(const char* title, const thermal::ChipThermalModel& model,
          const linalg::Vector& temps, double lo_c, double hi_c) {
  double peak = 0.0;
  for (std::size_t c = 0; c < model.component_count(); ++c)
    peak = std::max(peak, temps[model.die_node(c)]);
  std::printf("-- %s (peak %.2f C; ramp %.0f..%.0f C) --\n", title,
              kelvin_to_celsius(peak), lo_c, hi_c);
  const auto grid = sample_grid(model, temps, 40, 28);
  std::vector<double> grid_c(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    grid_c[i] = kelvin_to_celsius(grid[i]);
  std::printf("%s\n", render_heatmap(grid_c, 40, lo_c, hi_c).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string benchmark = argc > 1 ? argv[1] : "cholesky";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 16;

  // One shared engine; the simulator is a cheap workspace over it.
  const sim::ChipEnginePtr engine = sim::make_default_chip_engine();
  const auto& model = *engine->models().thermal;
  sim::ChipSimulator simulator(engine);
  auto wl = engine->workload(benchmark, threads);

  const auto base_knobs =
      core::KnobState::initial(model.floorplan().core_count(),
                               model.tec_count(), 0);
  const linalg::Vector t_base = simulator.equilibrium(*wl, base_knobs);
  const double lo = 50.0, hi = 95.0;
  show("fan level 1 (fastest), TECs off", model, t_base, lo, hi);

  auto slow = base_knobs;
  slow.fan_level = 3;
  const linalg::Vector t_slow = simulator.equilibrium(*wl, slow);
  show("fan level 4, TECs off", model, t_slow, lo, hi);

  // Turn on every TEC over a component hotter than the base peak - 3 K.
  auto cooled = slow;
  for (std::size_t c = 0; c < model.component_count(); ++c) {
    if (t_slow[model.die_node(c)] >
        *std::max_element(t_base.begin(), t_base.end()) - 3.0) {
      for (std::size_t dev : model.tecs_over(c)) cooled.tec_on[dev] = 1;
    }
  }
  const linalg::Vector t_cooled = simulator.equilibrium(*wl, cooled);
  char title[96];
  std::snprintf(title, sizeof title,
                "fan level 4, %zu TECs on over the hot region",
                cooled.tecs_active());
  show(title, model, t_cooled, lo, hi);

  std::printf(
      "The TEC array flattens the logic-cluster hot spots without touching\n"
      "the global cooling budget - the local/global split TECfan exploits.\n");
  return 0;
}
