// Quickstart: build the default 16-core system, reproduce one Table I base
// scenario, and run the TECfan policy on it.
//
//   $ ./examples/quickstart [benchmark] [threads]
//
// defaults to cholesky/16. Prints the base-scenario measurements (compare
// with Table I of the paper), then the TECfan run at the fan level chosen by
// the Sec. IV-C sweep.
#include <cstdio>
#include <memory>
#include <string>

#include "core/tecfan_policy.h"
#include "perf/splash2.h"
#include "sim/chip_simulator.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace tecfan;
  const std::string benchmark = argc > 1 ? argv[1] : "cholesky";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 16;

  // The engine is the expensive, immutable half (models + factorizations);
  // the simulator is a cheap per-thread workspace over it.
  const sim::ChipEnginePtr engine = sim::make_default_chip_engine();
  sim::ChipSimulator simulator(engine);
  const auto workload = engine->workload(benchmark, threads);
  const auto& spec = perf::table1_case(benchmark, threads);

  std::printf("== base scenario (fan level 1, top DVFS, TECs off) ==\n");
  sim::RunResult base = sim::measure_base_scenario(simulator, *workload);

  TextTable t;
  t.set_header({"metric", "paper", "measured"});
  t.add_row({"time (ms)", format_double(spec.time_ms, 4),
             format_double(base.exec_time_s * 1e3, 4)});
  t.add_row({"chip power (W)", format_double(spec.power_w, 4),
             format_double(base.avg_power.chip_w(), 4)});
  t.add_row({"peak T (C)", format_double(spec.peak_temp_c, 4),
             format_double(kelvin_to_celsius(base.peak_temp_k), 4)});
  std::printf("%s\n", t.render().c_str());

  std::printf("== TECfan (threshold = base peak, fan swept per Sec. IV-C) ==\n");
  sim::SweepOptions sweep_opts;
  sweep_opts.threshold_k = base.peak_temp_k;
  sim::SweepResult sweep = sim::run_with_fan_sweep(
      simulator.engine_ptr(),
      [] { return std::make_unique<core::TecFanPolicy>(); }, *workload,
      sweep_opts);
  const sim::RunResult& r = sweep.chosen;

  TextTable u;
  u.set_header({"metric", "base", "TECfan"});
  u.add_row({"fan level (0=fastest)", "0", std::to_string(r.fan_level)});
  u.add_row({"time (ms)", format_double(base.exec_time_s * 1e3, 4),
             format_double(r.exec_time_s * 1e3, 4)});
  u.add_row({"total power (W)", format_double(base.avg_total_power_w(), 4),
             format_double(r.avg_total_power_w(), 4)});
  u.add_row({"energy (J)", format_double(base.energy_j, 4),
             format_double(r.energy_j, 4)});
  u.add_row({"EDP (J s)", format_double(base.edp(), 4),
             format_double(r.edp(), 4)});
  u.add_row({"peak T (C)", format_double(kelvin_to_celsius(base.peak_temp_k), 4),
             format_double(kelvin_to_celsius(r.peak_temp_k), 4)});
  u.add_row({"violations (%)", "0",
             format_double(100.0 * r.violation_frac, 3)});
  std::printf("%s", u.render().c_str());
  return 0;
}
