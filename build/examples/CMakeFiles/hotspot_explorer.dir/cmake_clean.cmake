file(REMOVE_RECURSE
  "CMakeFiles/hotspot_explorer.dir/hotspot_explorer.cpp.o"
  "CMakeFiles/hotspot_explorer.dir/hotspot_explorer.cpp.o.d"
  "hotspot_explorer"
  "hotspot_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
