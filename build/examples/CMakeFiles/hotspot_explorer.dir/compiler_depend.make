# Empty compiler generated dependencies file for hotspot_explorer.
# This may be replaced when dependencies are built.
