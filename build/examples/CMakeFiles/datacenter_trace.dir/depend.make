# Empty dependencies file for datacenter_trace.
# This may be replaced when dependencies are built.
