file(REMOVE_RECURSE
  "CMakeFiles/datacenter_trace.dir/datacenter_trace.cpp.o"
  "CMakeFiles/datacenter_trace.dir/datacenter_trace.cpp.o.d"
  "datacenter_trace"
  "datacenter_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
