file(REMOVE_RECURSE
  "CMakeFiles/fast_model_test.dir/fast_model_test.cpp.o"
  "CMakeFiles/fast_model_test.dir/fast_model_test.cpp.o.d"
  "fast_model_test"
  "fast_model_test.pdb"
  "fast_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
