# Empty dependencies file for fast_model_test.
# This may be replaced when dependencies are built.
