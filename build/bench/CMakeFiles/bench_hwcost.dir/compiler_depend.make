# Empty compiler generated dependencies file for bench_hwcost.
# This may be replaced when dependencies are built.
