
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4.cpp" "bench/CMakeFiles/bench_fig4.dir/bench_fig4.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4.dir/bench_fig4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tecfan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tecfan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/tecfan_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tecfan_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tecfan_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tecfan_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tecfan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
