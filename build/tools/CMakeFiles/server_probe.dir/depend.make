# Empty dependencies file for server_probe.
# This may be replaced when dependencies are built.
