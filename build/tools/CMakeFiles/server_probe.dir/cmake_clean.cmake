file(REMOVE_RECURSE
  "CMakeFiles/server_probe.dir/server_probe.cpp.o"
  "CMakeFiles/server_probe.dir/server_probe.cpp.o.d"
  "server_probe"
  "server_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
