# Empty compiler generated dependencies file for tecfan_cli.
# This may be replaced when dependencies are built.
