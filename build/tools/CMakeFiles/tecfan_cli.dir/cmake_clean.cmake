file(REMOVE_RECURSE
  "CMakeFiles/tecfan_cli.dir/tecfan_cli.cpp.o"
  "CMakeFiles/tecfan_cli.dir/tecfan_cli.cpp.o.d"
  "tecfan_cli"
  "tecfan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tecfan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
