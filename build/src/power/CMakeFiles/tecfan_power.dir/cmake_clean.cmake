file(REMOVE_RECURSE
  "CMakeFiles/tecfan_power.dir/dvfs.cpp.o"
  "CMakeFiles/tecfan_power.dir/dvfs.cpp.o.d"
  "CMakeFiles/tecfan_power.dir/dynamic.cpp.o"
  "CMakeFiles/tecfan_power.dir/dynamic.cpp.o.d"
  "CMakeFiles/tecfan_power.dir/fan.cpp.o"
  "CMakeFiles/tecfan_power.dir/fan.cpp.o.d"
  "CMakeFiles/tecfan_power.dir/leakage.cpp.o"
  "CMakeFiles/tecfan_power.dir/leakage.cpp.o.d"
  "libtecfan_power.a"
  "libtecfan_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tecfan_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
