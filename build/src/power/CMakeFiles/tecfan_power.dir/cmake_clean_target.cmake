file(REMOVE_RECURSE
  "libtecfan_power.a"
)
