# Empty compiler generated dependencies file for tecfan_power.
# This may be replaced when dependencies are built.
