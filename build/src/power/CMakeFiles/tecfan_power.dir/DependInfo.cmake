
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/dvfs.cpp" "src/power/CMakeFiles/tecfan_power.dir/dvfs.cpp.o" "gcc" "src/power/CMakeFiles/tecfan_power.dir/dvfs.cpp.o.d"
  "/root/repo/src/power/dynamic.cpp" "src/power/CMakeFiles/tecfan_power.dir/dynamic.cpp.o" "gcc" "src/power/CMakeFiles/tecfan_power.dir/dynamic.cpp.o.d"
  "/root/repo/src/power/fan.cpp" "src/power/CMakeFiles/tecfan_power.dir/fan.cpp.o" "gcc" "src/power/CMakeFiles/tecfan_power.dir/fan.cpp.o.d"
  "/root/repo/src/power/leakage.cpp" "src/power/CMakeFiles/tecfan_power.dir/leakage.cpp.o" "gcc" "src/power/CMakeFiles/tecfan_power.dir/leakage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/thermal/CMakeFiles/tecfan_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tecfan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tecfan_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
