file(REMOVE_RECURSE
  "CMakeFiles/tecfan_core.dir/chip_planning_model.cpp.o"
  "CMakeFiles/tecfan_core.dir/chip_planning_model.cpp.o.d"
  "CMakeFiles/tecfan_core.dir/dynamic_fan_policy.cpp.o"
  "CMakeFiles/tecfan_core.dir/dynamic_fan_policy.cpp.o.d"
  "CMakeFiles/tecfan_core.dir/exhaustive_policies.cpp.o"
  "CMakeFiles/tecfan_core.dir/exhaustive_policies.cpp.o.d"
  "CMakeFiles/tecfan_core.dir/fast_planning_model.cpp.o"
  "CMakeFiles/tecfan_core.dir/fast_planning_model.cpp.o.d"
  "CMakeFiles/tecfan_core.dir/hw_cost.cpp.o"
  "CMakeFiles/tecfan_core.dir/hw_cost.cpp.o.d"
  "CMakeFiles/tecfan_core.dir/planning.cpp.o"
  "CMakeFiles/tecfan_core.dir/planning.cpp.o.d"
  "CMakeFiles/tecfan_core.dir/reactive_policies.cpp.o"
  "CMakeFiles/tecfan_core.dir/reactive_policies.cpp.o.d"
  "CMakeFiles/tecfan_core.dir/tecfan_policy.cpp.o"
  "CMakeFiles/tecfan_core.dir/tecfan_policy.cpp.o.d"
  "libtecfan_core.a"
  "libtecfan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tecfan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
