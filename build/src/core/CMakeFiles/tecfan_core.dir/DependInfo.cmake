
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chip_planning_model.cpp" "src/core/CMakeFiles/tecfan_core.dir/chip_planning_model.cpp.o" "gcc" "src/core/CMakeFiles/tecfan_core.dir/chip_planning_model.cpp.o.d"
  "/root/repo/src/core/dynamic_fan_policy.cpp" "src/core/CMakeFiles/tecfan_core.dir/dynamic_fan_policy.cpp.o" "gcc" "src/core/CMakeFiles/tecfan_core.dir/dynamic_fan_policy.cpp.o.d"
  "/root/repo/src/core/exhaustive_policies.cpp" "src/core/CMakeFiles/tecfan_core.dir/exhaustive_policies.cpp.o" "gcc" "src/core/CMakeFiles/tecfan_core.dir/exhaustive_policies.cpp.o.d"
  "/root/repo/src/core/fast_planning_model.cpp" "src/core/CMakeFiles/tecfan_core.dir/fast_planning_model.cpp.o" "gcc" "src/core/CMakeFiles/tecfan_core.dir/fast_planning_model.cpp.o.d"
  "/root/repo/src/core/hw_cost.cpp" "src/core/CMakeFiles/tecfan_core.dir/hw_cost.cpp.o" "gcc" "src/core/CMakeFiles/tecfan_core.dir/hw_cost.cpp.o.d"
  "/root/repo/src/core/planning.cpp" "src/core/CMakeFiles/tecfan_core.dir/planning.cpp.o" "gcc" "src/core/CMakeFiles/tecfan_core.dir/planning.cpp.o.d"
  "/root/repo/src/core/reactive_policies.cpp" "src/core/CMakeFiles/tecfan_core.dir/reactive_policies.cpp.o" "gcc" "src/core/CMakeFiles/tecfan_core.dir/reactive_policies.cpp.o.d"
  "/root/repo/src/core/tecfan_policy.cpp" "src/core/CMakeFiles/tecfan_core.dir/tecfan_policy.cpp.o" "gcc" "src/core/CMakeFiles/tecfan_core.dir/tecfan_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/tecfan_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tecfan_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tecfan_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tecfan_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tecfan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
