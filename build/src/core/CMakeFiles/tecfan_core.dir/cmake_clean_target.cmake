file(REMOVE_RECURSE
  "libtecfan_core.a"
)
