# Empty dependencies file for tecfan_core.
# This may be replaced when dependencies are built.
