file(REMOVE_RECURSE
  "CMakeFiles/tecfan_sim.dir/chip_simulator.cpp.o"
  "CMakeFiles/tecfan_sim.dir/chip_simulator.cpp.o.d"
  "CMakeFiles/tecfan_sim.dir/defaults.cpp.o"
  "CMakeFiles/tecfan_sim.dir/defaults.cpp.o.d"
  "CMakeFiles/tecfan_sim.dir/experiment.cpp.o"
  "CMakeFiles/tecfan_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/tecfan_sim.dir/server_system.cpp.o"
  "CMakeFiles/tecfan_sim.dir/server_system.cpp.o.d"
  "CMakeFiles/tecfan_sim.dir/trace_io.cpp.o"
  "CMakeFiles/tecfan_sim.dir/trace_io.cpp.o.d"
  "libtecfan_sim.a"
  "libtecfan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tecfan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
