file(REMOVE_RECURSE
  "libtecfan_sim.a"
)
