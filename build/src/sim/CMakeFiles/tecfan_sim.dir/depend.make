# Empty dependencies file for tecfan_sim.
# This may be replaced when dependencies are built.
