# Empty dependencies file for tecfan_linalg.
# This may be replaced when dependencies are built.
