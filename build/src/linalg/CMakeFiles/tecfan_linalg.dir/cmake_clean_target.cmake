file(REMOVE_RECURSE
  "libtecfan_linalg.a"
)
