file(REMOVE_RECURSE
  "CMakeFiles/tecfan_linalg.dir/banded.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/banded.cpp.o.d"
  "CMakeFiles/tecfan_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/tecfan_linalg.dir/iterative.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/iterative.cpp.o.d"
  "CMakeFiles/tecfan_linalg.dir/lu.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/tecfan_linalg.dir/matrix.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/tecfan_linalg.dir/ordering.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/ordering.cpp.o.d"
  "CMakeFiles/tecfan_linalg.dir/sparse.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/sparse.cpp.o.d"
  "CMakeFiles/tecfan_linalg.dir/systolic.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/systolic.cpp.o.d"
  "CMakeFiles/tecfan_linalg.dir/woodbury.cpp.o"
  "CMakeFiles/tecfan_linalg.dir/woodbury.cpp.o.d"
  "libtecfan_linalg.a"
  "libtecfan_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tecfan_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
