file(REMOVE_RECURSE
  "libtecfan_util.a"
)
