# Empty dependencies file for tecfan_util.
# This may be replaced when dependencies are built.
