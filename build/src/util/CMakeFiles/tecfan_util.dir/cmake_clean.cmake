file(REMOVE_RECURSE
  "CMakeFiles/tecfan_util.dir/csv.cpp.o"
  "CMakeFiles/tecfan_util.dir/csv.cpp.o.d"
  "CMakeFiles/tecfan_util.dir/logging.cpp.o"
  "CMakeFiles/tecfan_util.dir/logging.cpp.o.d"
  "CMakeFiles/tecfan_util.dir/parallel.cpp.o"
  "CMakeFiles/tecfan_util.dir/parallel.cpp.o.d"
  "CMakeFiles/tecfan_util.dir/rng.cpp.o"
  "CMakeFiles/tecfan_util.dir/rng.cpp.o.d"
  "CMakeFiles/tecfan_util.dir/stats.cpp.o"
  "CMakeFiles/tecfan_util.dir/stats.cpp.o.d"
  "CMakeFiles/tecfan_util.dir/table.cpp.o"
  "CMakeFiles/tecfan_util.dir/table.cpp.o.d"
  "libtecfan_util.a"
  "libtecfan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tecfan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
