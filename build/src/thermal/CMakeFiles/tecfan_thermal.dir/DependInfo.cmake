
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/core_estimator.cpp" "src/thermal/CMakeFiles/tecfan_thermal.dir/core_estimator.cpp.o" "gcc" "src/thermal/CMakeFiles/tecfan_thermal.dir/core_estimator.cpp.o.d"
  "/root/repo/src/thermal/floorplan.cpp" "src/thermal/CMakeFiles/tecfan_thermal.dir/floorplan.cpp.o" "gcc" "src/thermal/CMakeFiles/tecfan_thermal.dir/floorplan.cpp.o.d"
  "/root/repo/src/thermal/grid_model.cpp" "src/thermal/CMakeFiles/tecfan_thermal.dir/grid_model.cpp.o" "gcc" "src/thermal/CMakeFiles/tecfan_thermal.dir/grid_model.cpp.o.d"
  "/root/repo/src/thermal/network.cpp" "src/thermal/CMakeFiles/tecfan_thermal.dir/network.cpp.o" "gcc" "src/thermal/CMakeFiles/tecfan_thermal.dir/network.cpp.o.d"
  "/root/repo/src/thermal/package.cpp" "src/thermal/CMakeFiles/tecfan_thermal.dir/package.cpp.o" "gcc" "src/thermal/CMakeFiles/tecfan_thermal.dir/package.cpp.o.d"
  "/root/repo/src/thermal/solvers.cpp" "src/thermal/CMakeFiles/tecfan_thermal.dir/solvers.cpp.o" "gcc" "src/thermal/CMakeFiles/tecfan_thermal.dir/solvers.cpp.o.d"
  "/root/repo/src/thermal/tec_device.cpp" "src/thermal/CMakeFiles/tecfan_thermal.dir/tec_device.cpp.o" "gcc" "src/thermal/CMakeFiles/tecfan_thermal.dir/tec_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/tecfan_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tecfan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
