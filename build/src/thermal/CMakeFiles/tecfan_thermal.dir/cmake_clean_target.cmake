file(REMOVE_RECURSE
  "libtecfan_thermal.a"
)
