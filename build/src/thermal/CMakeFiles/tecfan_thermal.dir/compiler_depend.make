# Empty compiler generated dependencies file for tecfan_thermal.
# This may be replaced when dependencies are built.
