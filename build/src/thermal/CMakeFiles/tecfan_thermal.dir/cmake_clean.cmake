file(REMOVE_RECURSE
  "CMakeFiles/tecfan_thermal.dir/core_estimator.cpp.o"
  "CMakeFiles/tecfan_thermal.dir/core_estimator.cpp.o.d"
  "CMakeFiles/tecfan_thermal.dir/floorplan.cpp.o"
  "CMakeFiles/tecfan_thermal.dir/floorplan.cpp.o.d"
  "CMakeFiles/tecfan_thermal.dir/grid_model.cpp.o"
  "CMakeFiles/tecfan_thermal.dir/grid_model.cpp.o.d"
  "CMakeFiles/tecfan_thermal.dir/network.cpp.o"
  "CMakeFiles/tecfan_thermal.dir/network.cpp.o.d"
  "CMakeFiles/tecfan_thermal.dir/package.cpp.o"
  "CMakeFiles/tecfan_thermal.dir/package.cpp.o.d"
  "CMakeFiles/tecfan_thermal.dir/solvers.cpp.o"
  "CMakeFiles/tecfan_thermal.dir/solvers.cpp.o.d"
  "CMakeFiles/tecfan_thermal.dir/tec_device.cpp.o"
  "CMakeFiles/tecfan_thermal.dir/tec_device.cpp.o.d"
  "libtecfan_thermal.a"
  "libtecfan_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tecfan_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
