# Empty dependencies file for tecfan_perf.
# This may be replaced when dependencies are built.
