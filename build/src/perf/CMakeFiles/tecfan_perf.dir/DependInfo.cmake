
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/server_model.cpp" "src/perf/CMakeFiles/tecfan_perf.dir/server_model.cpp.o" "gcc" "src/perf/CMakeFiles/tecfan_perf.dir/server_model.cpp.o.d"
  "/root/repo/src/perf/splash2.cpp" "src/perf/CMakeFiles/tecfan_perf.dir/splash2.cpp.o" "gcc" "src/perf/CMakeFiles/tecfan_perf.dir/splash2.cpp.o.d"
  "/root/repo/src/perf/wikipedia_trace.cpp" "src/perf/CMakeFiles/tecfan_perf.dir/wikipedia_trace.cpp.o" "gcc" "src/perf/CMakeFiles/tecfan_perf.dir/wikipedia_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/tecfan_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tecfan_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tecfan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tecfan_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
