file(REMOVE_RECURSE
  "libtecfan_perf.a"
)
