file(REMOVE_RECURSE
  "CMakeFiles/tecfan_perf.dir/server_model.cpp.o"
  "CMakeFiles/tecfan_perf.dir/server_model.cpp.o.d"
  "CMakeFiles/tecfan_perf.dir/splash2.cpp.o"
  "CMakeFiles/tecfan_perf.dir/splash2.cpp.o.d"
  "CMakeFiles/tecfan_perf.dir/wikipedia_trace.cpp.o"
  "CMakeFiles/tecfan_perf.dir/wikipedia_trace.cpp.o.d"
  "libtecfan_perf.a"
  "libtecfan_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tecfan_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
