#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the shared-engine,
# service-layer, and cluster tests again under ThreadSanitizer. The TSan leg
# is what pins the engine/workspace split (SharedOperator and SharedEngine
# drive one immutable engine from several threads, so any mutation hiding
# behind the const facade is reported as a data race) and the cluster smoke
# leg (ClusterSmoke runs a 2-backend in-process fleet behind the router:
# routed hit/miss correctness, hedging, and failover on backend death;
# EventLoop/RouterPipeline/DataPlaneEquivalence drive the epoll data plane
# from concurrent pipelined clients, backend death mid-pipeline included).
# The Chaos suite also runs under TSan: seeded fault-injection storms
# (refusals, blackholes, mid-line disconnects, short writes, corrupted and
# truncated replies, latency spikes with hedging, fully sampled traced
# storms) through a proxied router+fleet, asserting the six storm
# invariants from src/testing/chaos_fleet.h under the race detector.
#
# The ASan+UBSan leg re-runs the control/planning/serving suites (the
# batch-evaluation path moves candidate scratch across worker threads, the
# classic place for lifetime bugs that a plain build never trips).
#
#   scripts/tier1.sh              # all stages
#   SKIP_TSAN=1 scripts/tier1.sh  # skip the TSan leg
#   SKIP_ASAN=1 scripts/tier1.sh  # skip the ASan+UBSan leg
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

scripts/lint.sh

cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B build-tsan -S . -DTECFAN_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j"$JOBS" \
    --target linalg_test sim_test service_test util_test cluster_test \
    chaos_test
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure \
    -R 'SharedOperator|SharedEngine|SharedControlEngine|Protocol|ResultCache|TaskQueue|WorkerPool|Server|BackendEquivalence|Metrics|ShardMap|BackendClient|HealthMonitor|ClusterSmoke|EventLoop|RouterPipeline|DataPlaneEquivalence|LineReader|WriteQueue|FaultInjector|Chaos|Trace'
fi

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  cmake -B build-asan -S . -DTECFAN_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j"$JOBS" \
    --target core_test sim_test service_test policy_equivalence_test \
    util_test
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j"$JOBS" \
    -R 'ControlEngine|ChipPlanningModel|PolicyEquivalence|TecFan|Oracle|Oftec|Reactive|DynamicFan|Protocol|Server|Sweep|LineReader|WriteQueue|FaultInjector|Trace|Metrics'
fi
