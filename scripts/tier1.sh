#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the service-layer
# tests again under ThreadSanitizer to catch races in the tecfand
# queue/pool/cache serving path.
#
#   scripts/tier1.sh            # both stages
#   SKIP_TSAN=1 scripts/tier1.sh  # plain build+ctest only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B build-tsan -S . -DTECFAN_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j"$JOBS" --target service_test
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -R 'Protocol|ResultCache|TaskQueue|WorkerPool|Server'
fi
