#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the shared-engine,
# service-layer, and cluster tests again under ThreadSanitizer. The TSan leg
# is what pins the engine/workspace split (SharedOperator and SharedEngine
# drive one immutable engine from several threads, so any mutation hiding
# behind the const facade is reported as a data race) and the cluster smoke
# leg (ClusterSmoke runs a 2-backend in-process fleet behind the router:
# routed hit/miss correctness, hedging, and failover on backend death).
#
#   scripts/tier1.sh              # all stages
#   SKIP_TSAN=1 scripts/tier1.sh  # plain build+ctest only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

scripts/lint.sh

cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B build-tsan -S . -DTECFAN_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j"$JOBS" \
    --target linalg_test sim_test service_test util_test cluster_test
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure \
    -R 'SharedOperator|SharedEngine|Protocol|ResultCache|TaskQueue|WorkerPool|Server|BackendEquivalence|Metrics|ShardMap|BackendClient|HealthMonitor|ClusterSmoke'
fi
