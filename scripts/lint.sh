#!/usr/bin/env bash
# Static analysis gate: clang-tidy over the library sources with the checks
# in .clang-tidy (bugprone-*, performance-*, misc-const-correctness — the
# last one guards the engine/workspace const discipline). Skips gracefully
# when clang-tidy is not installed so tier-1 stays runnable in minimal
# containers.
#
#   scripts/lint.sh             # lint src/
#   scripts/lint.sh path a.cpp  # lint specific files
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint: clang-tidy not found; skipping static analysis" >&2
  exit 0
fi

# clang-tidy needs a compilation database; generate one if absent.
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

FILES=("$@")
if [[ ${#FILES[@]} -eq 0 ]]; then
  mapfile -t FILES < <(find src -name '*.cpp' | sort)
fi

clang-tidy -p build --quiet "${FILES[@]}"
