#!/usr/bin/env bash
# Refresh the committed benchmark numbers from a Release build.
#
#   BENCH_solver.json  — dense vs RCM-permuted-banded backend comparison
#                        (engine construction, cold-miss predict, serving
#                        miss equilibrium, predict_batch, transient step)
#   BENCH_policy.json  — control-layer throughput over the shared
#                        ControlEngine: per-policy decisions/s on the
#                        4-core server model and the full 32768-candidate
#                        sweep evaluated scalar vs batch vs parallel-batch
#                        (all three must pick the same winner bit-exactly).
#   BENCH_serving.json — tecfand miss-path run: the request working set is
#                        much larger than the result cache and warm-up is
#                        off, so nearly every request pays the cache-miss
#                        compute the banded backend accelerates. The key
#                        grid now mixes run/sweep requests in with the
#                        equilibrium ones (reported per kind under
#                        "kind_split"), the run embeds the server-side
#                        per-stage latency histograms (`metrics` verb), and
#                        it fails if the server-reported hit p99 disagrees
#                        with the client-observed one (--check-p99).
#   BENCH_cluster.json — direct tecfand vs tecrouter over 1/2/4 in-process
#                        backends (cached + miss paths over loopback TCP),
#                        a bit-identical routed-vs-direct reply check, and
#                        a failover run killing a backend mid-stream
#                        (client-visible errors must be zero). The file
#                        records the core count: on one core the router
#                        column measures forwarding overhead, not
#                        horizontal scaling.
#
#   scripts/bench.sh                 # all benchmarks, 3 s loadgen run
#   DURATION_S=10 scripts/bench.sh   # longer serving interval
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$JOBS" --target bench_solver bench_policy bench_cluster loadgen

./build-release/bench/bench_solver --out BENCH_solver.json

./build-release/bench/bench_policy --out BENCH_policy.json

./build-release/tools/loadgen \
  --keys 1024 --cache 128 --no-warmup \
  --duration-s "${DURATION_S:-3}" \
  --check-p99 \
  --out BENCH_serving.json

./build-release/bench/bench_cluster \
  --duration-s "${CLUSTER_DURATION_S:-1.5}" \
  --out BENCH_cluster.json
