#!/usr/bin/env bash
# Refresh the committed benchmark numbers from a Release build.
#
#   BENCH_solver.json  — dense vs RCM-permuted-banded backend comparison
#                        (engine construction, cold-miss predict, serving
#                        miss equilibrium, predict_batch, transient step)
#   BENCH_policy.json  — control-layer throughput over the shared
#                        ControlEngine: per-policy decisions/s on the
#                        4-core server model and the full 32768-candidate
#                        sweep evaluated scalar vs batch vs parallel-batch
#                        (all three must pick the same winner bit-exactly).
#   BENCH_serving.json — tecfand miss-path run: the request working set is
#                        much larger than the result cache and warm-up is
#                        off, so nearly every request pays the cache-miss
#                        compute the banded backend accelerates. The key
#                        grid now mixes run/sweep requests in with the
#                        equilibrium ones (reported per kind under
#                        "kind_split"), the run embeds the server-side
#                        per-stage latency histograms (`metrics` verb), and
#                        it fails if the server-reported hit p99 disagrees
#                        with the client-observed one (--check-p99).
#   BENCH_cluster.json — direct tecfand vs tecrouter over 1/2/4 in-process
#                        backends (cached + miss paths over loopback TCP;
#                        the router runs the epoll data plane, with a
#                        router_1_threads scenario keeping the legacy
#                        thread-per-session plane on the books), a
#                        bit-identical routed-vs-direct reply check over
#                        TCP, and a failover run killing a backend
#                        mid-stream (client-visible errors must be zero).
#                        The miss corpus is the same >=1k-request loadgen
#                        key grid BENCH_serving walks. The file records
#                        the core count: on one core the router column
#                        measures forwarding overhead, not horizontal
#                        scaling.
#
# After the cluster run this script asserts the routed/direct cached
# throughput ratio against ROUTED_RATIO_FLOOR (default 0.6): a forwarding
# overhead regression fails the bench run loudly instead of silently
# shipping a slower committed number.
#
# It then runs a chaos storm (tools/chaos): seeded fault-injection phases
# — refusals, blackholes, mid-line disconnects, short writes, slow-loris,
# corrupted/truncated/unsolicited replies, latency spikes with hedging,
# and a mixed storm — against a proxied router+fleet, asserting the six
# storm invariants after every storm (src/testing/chaos_fleet.h). Any
# violation fails the bench run and prints the storm seed to replay.
#
# The serving run doubles as the tracing-overhead A/B: tracing is compiled
# in but unsampled, so its throughput against the committed
# BENCH_serving.json is the cost of the always-on trace branches. The
# delta is recorded as trace_overhead_pct and gated at
# TRACE_OVERHEAD_PCT_MAX (default 2%). BENCH_cluster.json additionally
# records sampled-trace counts per tier from a short fully-sampled routed
# pass ("tracing" section).
#
#   scripts/bench.sh                 # all benchmarks, 3 s loadgen run
#   DURATION_S=10 scripts/bench.sh   # longer serving interval
#   ROUTED_RATIO_FLOOR=0.7 scripts/bench.sh   # stricter router floor
#   CHAOS_SECONDS=60 scripts/bench.sh         # longer chaos storm budget
#   CHAOS_SECONDS=0.1 CHAOS_SEED=7 scripts/bench.sh  # quick seeded storm
#   TRACE_OVERHEAD_PCT_MAX=5 scripts/bench.sh  # looser tracing-overhead gate
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
ROUTED_RATIO_FLOOR="${ROUTED_RATIO_FLOOR:-0.6}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$JOBS" \
  --target bench_solver bench_policy bench_cluster loadgen chaos

./build-release/bench/bench_solver --out BENCH_solver.json

./build-release/bench/bench_policy --out BENCH_policy.json

./build-release/tools/loadgen \
  --keys 1024 --cache 128 --no-warmup \
  --duration-s "${DURATION_S:-3}" \
  --check-p99 \
  --out BENCH_serving.json

# Tracing overhead gate: the run above has tracing compiled in but
# unsampled (--trace-every defaults to 0), so its throughput against the
# committed BENCH_serving.json measures exactly what the unsampled path
# costs — one branch per stage. The regression is recorded in the JSON as
# trace_overhead_pct and must stay within TRACE_OVERHEAD_PCT_MAX (negative
# values mean this run was faster than the committed one). Skipped when no
# committed baseline exists (first run in a fresh clone).
python3 - "${TRACE_OVERHEAD_PCT_MAX:-2}" <<'EOF'
import json, subprocess, sys

limit = float(sys.argv[1])
with open("BENCH_serving.json") as f:
    bench = json.load(f)
try:
    prior = json.loads(subprocess.check_output(
        ["git", "show", "HEAD:BENCH_serving.json"],
        stderr=subprocess.DEVNULL, text=True))
    baseline = float(prior["throughput_rps"])
except Exception:
    baseline = 0.0
if baseline > 0:
    overhead = (baseline - bench["throughput_rps"]) / baseline * 100.0
    bench["trace_overhead_pct"] = round(overhead, 3)
    with open("BENCH_serving.json", "w") as f:
        json.dump(bench, f, indent=2)
        f.write("\n")
    print(f"bench.sh: unsampled-tracing throughput {bench['throughput_rps']:.0f} rps "
          f"vs committed {baseline:.0f} rps: overhead {overhead:+.2f}%"
          f" (limit {limit}%)")
    if overhead > limit:
        sys.exit(f"bench.sh: FAIL — unsampled tracing costs {overhead:.2f}% "
                 f"throughput, over the TRACE_OVERHEAD_PCT_MAX of {limit}%")
else:
    print("bench.sh: no committed BENCH_serving.json baseline; "
          "skipping the trace-overhead gate")
EOF

./build-release/bench/bench_cluster \
  --duration-s "${CLUSTER_DURATION_S:-1.5}" \
  --out BENCH_cluster.json

# The router is only worth shipping while forwarding stays cheap: fail the
# run if the epoll plane's cached throughput falls below the floor as a
# fraction of direct serving on the same host.
python3 - "$ROUTED_RATIO_FLOOR" <<'EOF'
import json, sys

floor = float(sys.argv[1])
with open("BENCH_cluster.json") as f:
    bench = json.load(f)
scenarios = bench["scenarios"]
direct = scenarios["direct"]["cached"]["rps"]
routed = scenarios["router_1"]["cached"]["rps"]
ratio = routed / direct if direct > 0 else 0.0
print(f"bench.sh: routed/direct cached ratio {ratio:.3f} "
      f"({routed:.0f}/{direct:.0f} rps), floor {floor}")
if ratio < floor:
    sys.exit(f"bench.sh: FAIL — routed cached throughput is {ratio:.3f} of "
             f"direct, below the ROUTED_RATIO_FLOOR of {floor}")
EOF

# Chaos storm: the release-built router+fleet must hold the five storm
# invariants under every fault class. A violating storm prints its seed;
# replay with  tools/chaos --seed <base-seed> --phase <name>.
./build-release/tools/chaos \
  --chaos-seconds "${CHAOS_SECONDS:-20}" \
  --seed "${CHAOS_SEED:-1}"
