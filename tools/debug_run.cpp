#include <cstdio>
#include <string>
#include "core/tecfan_policy.h"
#include "core/reactive_policies.h"
#include "perf/splash2.h"
#include "sim/chip_simulator.h"
#include "sim/experiment.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace tecfan;
  const std::string bench = argc > 1 ? argv[1] : "cholesky";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 16;
  const int fan = argc > 3 ? std::atoi(argv[3]) : 1;
  const std::string pol = argc > 4 ? argv[4] : "tecfan";

  const sim::ChipEnginePtr engine = sim::make_default_chip_engine();
  const sim::ChipModels& models = engine->models();
  sim::ChipSimulator simulator(engine);
  auto wl = perf::make_splash_workload(bench, threads, models.thermal->floorplan(),
                                       models.dynamic, models.leak_quad);
  sim::RunResult base = sim::measure_base_scenario(simulator, *wl);
  std::printf("base peak %.2f C power %.1f W time %.1f ms\n",
              kelvin_to_celsius(base.peak_temp_k), base.avg_power.chip_w(),
              base.exec_time_s*1e3);

  core::PolicyPtr p;
  if (pol == "tecfan") p = std::make_unique<core::TecFanPolicy>();
  else if (pol == "fantec") p = std::make_unique<core::FanTecPolicy>();
  else if (pol == "fandvfs") p = std::make_unique<core::FanDvfsPolicy>();
  else p = std::make_unique<core::FanOnlyPolicy>();

  sim::RunConfig rc;
  rc.threshold_k = base.peak_temp_k;
  rc.fan_level = fan;
  rc.record_trace = true;
  sim::RunResult r = simulator.run(*p, *wl, rc);
  std::printf("%s fan=%d: time %.1f ms viol %.1f%% peak %.2f C power %.1f W (tec %.2f) energy %.3f J\n",
              r.policy.c_str(), fan, r.exec_time_s*1e3, 100*r.violation_frac,
              kelvin_to_celsius(r.peak_temp_k), r.avg_total_power_w(), r.avg_power.tec_w, r.energy_j);
  for (size_t i = 0; i < r.trace.size(); i += 1) {
    const auto& rec = r.trace[i];
    std::printf("  t=%5.1fms peak=%.2fC tecs=%zu dvfs=%.2f ips=%.2fG viol=%d\n",
                rec.time_s*1e3, kelvin_to_celsius(rec.peak_temp_k), rec.tecs_on,
                rec.mean_dvfs, rec.ips/1e9, rec.violation ? 1 : 0);
  }
  return 0;
}
