// tecfan_cli — run any (policy, workload, fan configuration) from the
// command line and emit results as a table or CSV (trace or summary).
//
//   tecfan_cli --policy tecfan --workload cholesky --threads 16
//   tecfan_cli --policy fan+dvfs --workload lu --fan 7 --csv trace
//   tecfan_cli --policy tecfan --workload radix --sweep --csv summary
//   tecfan_cli --list
//
// Policies: fan-only, fan+tec, fan+dvfs, dvfs+tec, dynamic-fan, tecfan,
// tecfan-chipwide (core::make_named_policy is the registry).
// Workloads: the Table I benchmarks plus the extended set (barnes, ocean,
// radix). Without --fan, the Sec. IV-C sweep picks the level; with --fan N
// the run is pinned to that level.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/policy_factory.h"
#include "perf/splash2.h"
#include "sim/chip_simulator.h"
#include "sim/experiment.h"
#include "sim/trace_io.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace tecfan;

struct Args {
  std::string policy = "tecfan";
  std::string workload = "cholesky";
  int threads = 16;
  int fan = -1;  // -1: sweep
  std::string csv;  // "", "trace", "summary"
  bool list = false;
  bool help = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: tecfan_cli [--policy P] [--workload W] [--threads N]\n"
      "                  [--fan L] [--csv trace|summary] [--list]\n"
      "  P: fan-only fan+tec fan+dvfs dvfs+tec dynamic-fan tecfan\n"
      "     tecfan-chipwide\n"
      "  W: cholesky fmm volrend water lu barnes ocean radix\n");
}

bool parse(int argc, char** argv, Args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](int& i) -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (a == "--policy") {
      const char* v = next(i);
      if (!v) return false;
      out.policy = v;
    } else if (a == "--workload") {
      const char* v = next(i);
      if (!v) return false;
      out.workload = v;
    } else if (a == "--threads") {
      const char* v = next(i);
      if (!v) return false;
      out.threads = std::atoi(v);
    } else if (a == "--fan") {
      const char* v = next(i);
      if (!v) return false;
      out.fan = std::atoi(v);
    } else if (a == "--sweep") {
      out.fan = -1;
    } else if (a == "--csv") {
      const char* v = next(i);
      if (!v) return false;
      out.csv = v;
    } else if (a == "--list") {
      out.list = true;
    } else if (a == "--help" || a == "-h") {
      out.help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args) || args.help) {
    usage();
    return args.help ? 0 : 2;
  }
  if (args.list) {
    std::printf("Table I cases:\n");
    for (const auto& c : perf::table1_cases())
      std::printf("  %-10s %2d threads  (%.1f ms, %.1f W, %.2f C)\n",
                  c.benchmark.c_str(), c.threads, c.time_ms, c.power_w,
                  c.peak_temp_c);
    std::printf("Extended (estimated) cases:\n");
    for (const auto& c : perf::extended_cases())
      std::printf("  %-10s %2d threads  (estimated anchors)\n",
                  c.benchmark.c_str(), c.threads);
    return 0;
  }

  const sim::ChipEnginePtr engine = sim::make_default_chip_engine();
  const sim::ChipModels& models = engine->models();
  sim::ChipSimulator simulator(engine);
  perf::WorkloadPtr workload;
  try {
    workload = engine->workload(args.workload, args.threads);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  // Policies share the scenario's ControlEngine, same as the tecfand
  // service; the CLI is just a single-request client of the same machinery.
  auto factory = [&] {
    return core::make_named_policy(args.policy, engine->control());
  };
  if (!factory()) {
    std::fprintf(stderr, "error: unknown policy '%s'\n",
                 args.policy.c_str());
    usage();
    return 2;
  }

  const sim::RunResult base =
      sim::measure_base_scenario(simulator, *workload);
  sim::RunResult run;
  if (args.fan >= 0) {
    if (args.fan >= models.fan.level_count()) {
      std::fprintf(stderr, "error: fan level out of range (0..%d)\n",
                   models.fan.level_count() - 1);
      return 2;
    }
    sim::RunConfig cfg;
    cfg.threshold_k = base.peak_temp_k;
    cfg.fan_level = args.fan;
    cfg.max_sim_time_s = 2.0;
    auto policy = factory();
    run = simulator.run(*policy, *workload, cfg);
  } else {
    sim::SweepOptions opts;
    opts.threshold_k = base.peak_temp_k;
    opts.record_trace = true;
    if (args.policy.rfind("tecfan", 0) == 0) opts.max_mean_dvfs = 0.5;
    run = sim::run_with_fan_sweep(engine, factory, *workload, opts).chosen;
  }

  if (args.csv == "trace") {
    sim::write_trace_csv(std::cout, run);
    return 0;
  }
  if (args.csv == "summary") {
    sim::write_summary_csv(std::cout, {base, run});
    return 0;
  }

  TextTable t;
  t.set_header({"metric", "base", run.policy});
  t.add_row({"fan level", "0", std::to_string(run.fan_level)});
  t.add_row({"time (ms)", format_double(base.exec_time_s * 1e3, 4),
             format_double(run.exec_time_s * 1e3, 4)});
  t.add_row({"power (W)", format_double(base.avg_total_power_w(), 4),
             format_double(run.avg_total_power_w(), 4)});
  t.add_row({"energy (J)", format_double(base.energy_j, 4),
             format_double(run.energy_j, 4)});
  t.add_row({"EDP (J s)", format_double(base.edp(), 4),
             format_double(run.edp(), 4)});
  t.add_row({"peak T (C)",
             format_double(kelvin_to_celsius(base.peak_temp_k), 4),
             format_double(kelvin_to_celsius(run.peak_temp_k), 4)});
  t.add_row({"violations (%)", "0",
             format_double(100.0 * run.violation_frac, 3)});
  t.add_row({"avg DVFS level", "0", format_double(run.avg_dvfs, 3)});
  std::printf("%s", t.render().c_str());
  return 0;
}
