// chaosproxy — a fault-injecting TCP proxy for one tecfand backend.
//
// Sits between a tecrouter and one backend and perturbs the wire per the
// chaos fault model (see src/testing/chaos_proxy.h and DESIGN.md, "Fault
// model"): accept-then-close, blackholes, mid-stream disconnects, short
// writes, reply-line corruption/truncation, slow-loris dribble, latency.
// All decisions are deterministic per --seed.
//
//   tecfand --port 7411 &
//   chaosproxy --target-port 7411 --listen-port 7511 --seed 42
//              --corrupt-p 0.05 --reply-delay-p 0.2 --reply-delay-us 2000
//                                         # (one command line)
//   tecrouter --port 7400 --backends 7511      # router sees the chaos
//
// Runs until SIGINT/SIGTERM; prints the bound port on startup and the
// injection counters on shutdown.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/framing.h"
#include "testing/chaos_proxy.h"

namespace {

using namespace tecfan;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: chaosproxy --target-port N [--listen-port N] [--seed N]\n"
      "                  [--refuse-p X] [--blackhole-p X]\n"
      "                  [--short-write-cap N] [--request-delay-p X]\n"
      "                  [--request-delay-us N] [--request-disconnect-p X]\n"
      "                  [--corrupt-p X] [--truncate-p X]\n"
      "                  [--unsolicited-p X] [--slowloris-p X]\n"
      "                  [--slowloris-delay-us N] [--reply-delay-p X]\n"
      "                  [--reply-delay-us N] [--reply-disconnect-p X]\n"
      "  --target-port N   backend to front (required)\n"
      "  --listen-port N   proxy port (0 = ephemeral, printed on stdout)\n"
      "  --seed N          decision-stream seed (replays are exact)\n"
      "  connection faults: refuse (accept-then-close), blackhole\n"
      "  request leg:  short writes, delays, mid-stream disconnects\n"
      "  reply leg:    per-line corrupt/truncate/unsolicited garbage,\n"
      "                slow-loris dribble, delays, disconnects\n");
}

bool parse(int argc, char** argv, testing::ChaosProxyOptions& o, bool& help) {
  auto flag = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    auto need = [&]() -> bool { return (v = flag(i)) != nullptr; };
    if (a == "--help" || a == "-h") {
      help = true;
    } else if (a == "--target-port" && need()) {
      o.target_port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (a == "--listen-port" && need()) {
      o.listen_port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (a == "--seed" && need()) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--refuse-p" && need()) {
      o.refuse_p = std::atof(v);
    } else if (a == "--blackhole-p" && need()) {
      o.blackhole_p = std::atof(v);
    } else if (a == "--short-write-cap" && need()) {
      o.short_write_cap = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--request-delay-p" && need()) {
      o.request_delay_p = std::atof(v);
    } else if (a == "--request-delay-us" && need()) {
      o.request_delay_us = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--request-disconnect-p" && need()) {
      o.request_disconnect_p = std::atof(v);
    } else if (a == "--corrupt-p" && need()) {
      o.corrupt_p = std::atof(v);
    } else if (a == "--truncate-p" && need()) {
      o.truncate_p = std::atof(v);
    } else if (a == "--unsolicited-p" && need()) {
      o.unsolicited_p = std::atof(v);
    } else if (a == "--slowloris-p" && need()) {
      o.slowloris_p = std::atof(v);
    } else if (a == "--slowloris-delay-us" && need()) {
      o.slowloris_delay_us = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--reply-delay-p" && need()) {
      o.reply_delay_p = std::atof(v);
    } else if (a == "--reply-delay-us" && need()) {
      o.reply_delay_us = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--reply-disconnect-p" && need()) {
      o.reply_disconnect_p = std::atof(v);
    } else {
      std::fprintf(stderr, "bad argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  testing::ChaosProxyOptions options;
  bool help = false;
  if (!parse(argc, argv, options, help) || help) {
    usage();
    return help ? 0 : 2;
  }
  if (options.target_port == 0) {
    std::fprintf(stderr, "error: --target-port is required\n");
    usage();
    return 2;
  }
  service::ignore_sigpipe();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  testing::ChaosProxy proxy(options);
  std::printf("%u\n", proxy.port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "chaosproxy: 127.0.0.1:%u -> 127.0.0.1:%u (seed %llu)\n",
               proxy.port(), options.target_port,
               static_cast<unsigned long long>(options.seed));

  while (!g_stop) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  }
  proxy.stop();
  const auto s = proxy.stats();
  std::fprintf(stderr,
               "chaosproxy: %llu conns — refused %llu, blackholed %llu, "
               "req-disc %llu, reply-disc %llu, corrupt %llu, trunc %llu, "
               "unsolicited %llu, slowloris %llu, delays %llu, "
               "lines %llu\n",
               static_cast<unsigned long long>(s.connections),
               static_cast<unsigned long long>(s.refused),
               static_cast<unsigned long long>(s.blackholed),
               static_cast<unsigned long long>(s.request_disconnects),
               static_cast<unsigned long long>(s.reply_disconnects),
               static_cast<unsigned long long>(s.corrupted),
               static_cast<unsigned long long>(s.truncated),
               static_cast<unsigned long long>(s.unsolicited),
               static_cast<unsigned long long>(s.slowloris_lines),
               static_cast<unsigned long long>(s.delays),
               static_cast<unsigned long long>(s.lines_forwarded));
  return 0;
}
