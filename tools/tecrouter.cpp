// tecrouter — sharding + replication front-end over a tecfand fleet.
//
// Speaks the tecfand line protocol to clients on a loopback TCP port and
// fans compute requests out to N backends by consistent-hashed canonical
// key (see src/cluster/). Start the fleet first, then the router:
//
//   tecfand --port 7411 &  tecfand --port 7412 &
//   tecrouter --port 7400 --backends 7411,7412
//   loadgen --port 7400            # clients can't tell it's a fleet
//
//   tecrouter --port 0 --backends 7411,7412 --hedge-ms 0
//                                  # ephemeral port, auto p99 hedging
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "service/framing.h"
#include "util/metrics.h"

namespace {

using namespace tecfan;

struct Args {
  int port = -1;
  std::vector<std::uint16_t> backends;
  std::size_t vnodes = cluster::ShardMap::kDefaultVirtualNodes;
  std::size_t pool = 8;
  double deadline_ms = 0.0;
  double hedge_ms = -1.0;
  double health_interval_s = 0.1;
  double metrics_interval_s = 0.0;  // 0 = no periodic logging
  std::uint64_t trace_every = 0;    // 0 = tracing off
  cluster::DataPlane data_plane = cluster::DataPlane::kEpoll;
  bool help = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: tecrouter --port N --backends P1,P2,... [--vnodes N]\n"
      "                 [--pool N] [--deadline-ms X] [--hedge-ms X]\n"
      "                 [--health-interval S] [--data-plane P]\n"
      "                 [--metrics-interval S] [--trace-every N]\n"
      "  --port N           client-facing loopback port (0 = ephemeral)\n"
      "  --backends P1,P2   comma-separated tecfand ports (the fleet)\n"
      "  --vnodes N         virtual nodes per backend on the hash ring (64)\n"
      "  --pool N           pooled connections per backend (8)\n"
      "  --deadline-ms X    per-forward deadline when the client sends none\n"
      "                     (0 = none; timeouts fail over to the replica)\n"
      "  --hedge-ms X       hedged retry delay: -1 off (default), 0 = derive\n"
      "                     from observed e2e p99, >0 fixed delay in ms\n"
      "  --health-interval S  backend ping period in seconds (0.1)\n"
      "  --data-plane P     forwarding engine: epoll (default, event loop\n"
      "                     with backend pipelining) or threads (legacy\n"
      "                     thread-per-session oracle)\n"
      "  --metrics-interval S  log a metrics summary (counters, per-stage\n"
      "                     percentiles, runtime gauges) to stderr every\n"
      "                     S seconds (0 = off)\n"
      "  --trace-every N    sample every Nth compute request for cross-tier\n"
      "                     tracing (0 = off); dump reassembled traces with\n"
      "                     the `trace` protocol verb or tools/tracecat\n");
}

/// One stderr line per dump, rendered from a single registry snapshot so
/// every number in it describes the same instant (counters never run
/// ahead of the histograms they explain). Counters and runtime gauges
/// first, then every non-empty stage histogram.
void log_metrics(const cluster::Router& router) {
  const auto snapshot = router.metrics_snapshot();
  std::string line = "tecrouter metrics:";
  for (const auto& [name, value] : snapshot.counters) {
    if (value == 0) continue;
    line += ' ' + name + '=' + std::to_string(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value == 0.0) continue;
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %s=%.0f", name.c_str(), value);
    line += buf;
  }
  bool any = false;
  for (const auto& [name, snap] : snapshot.histograms) {
    if (snap.count == 0) continue;
    any = true;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " %s(n=%llu p50=%.1fus p99=%.1fus max=%.1fus)", name.c_str(),
                  static_cast<unsigned long long>(snap.count),
                  snap.percentile(50.0), snap.percentile(99.0), snap.max_us);
    line += buf;
  }
  if (!any && snapshot.counters.empty()) line += " (no samples yet)";
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
}

bool parse_ports(const std::string& list, std::vector<std::uint16_t>& out) {
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string tok =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (tok.empty() ||
        tok.find_first_not_of("0123456789") != std::string::npos) {
      return false;  // reject host:port specs instead of atoi-truncating
    }
    const int p = std::atoi(tok.c_str());
    if (p <= 0 || p > 65535) return false;
    out.push_back(static_cast<std::uint16_t>(p));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out.empty();
}

bool parse(int argc, char** argv, Args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](int& i) -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      const char* v = next(i);
      if (!v) return false;
      out.port = std::atoi(v);
    } else if (a == "--backends") {
      const char* v = next(i);
      if (!v || !parse_ports(v, out.backends)) return false;
    } else if (a == "--vnodes") {
      const char* v = next(i);
      if (!v) return false;
      out.vnodes = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--pool") {
      const char* v = next(i);
      if (!v) return false;
      out.pool = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--deadline-ms") {
      const char* v = next(i);
      if (!v) return false;
      out.deadline_ms = std::atof(v);
    } else if (a == "--hedge-ms") {
      const char* v = next(i);
      if (!v) return false;
      out.hedge_ms = std::atof(v);
    } else if (a == "--health-interval") {
      const char* v = next(i);
      if (!v) return false;
      out.health_interval_s = std::atof(v);
    } else if (a == "--metrics-interval") {
      const char* v = next(i);
      if (!v) return false;
      out.metrics_interval_s = std::atof(v);
    } else if (a == "--trace-every") {
      const char* v = next(i);
      if (!v) return false;
      out.trace_every = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--data-plane") {
      const char* v = next(i);
      if (!v) return false;
      if (std::string(v) == "epoll") {
        out.data_plane = cluster::DataPlane::kEpoll;
      } else if (std::string(v) == "threads") {
        out.data_plane = cluster::DataPlane::kThreads;
      } else {
        std::fprintf(stderr, "unknown --data-plane: %s\n", v);
        return false;
      }
    } else if (a == "--help" || a == "-h") {
      out.help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args) || args.help) {
    usage();
    return args.help ? 0 : 2;
  }
  if (args.port < 0 || args.backends.empty()) {
    std::fprintf(stderr, "error: --port and --backends are required\n");
    usage();
    return 2;
  }
  if (args.vnodes == 0 || args.pool == 0 || args.health_interval_s <= 0) {
    std::fprintf(stderr,
                 "error: --vnodes/--pool/--health-interval must be > 0\n");
    return 2;
  }

  // A backend vanishing mid-response must surface as an error return on
  // that one forward, never as a router-killing SIGPIPE.
  tecfan::service::ignore_sigpipe();

  cluster::RouterOptions options;
  options.backend_ports = args.backends;
  options.virtual_nodes = args.vnodes;
  options.pool_size = args.pool;
  options.backend_deadline_ms = args.deadline_ms;
  options.hedge_ms = args.hedge_ms;
  options.health.interval_s = args.health_interval_s;
  options.data_plane = args.data_plane;
  options.trace_every = args.trace_every;
  cluster::Router router(options);

  // Periodic telemetry to stderr, same sampling-thread shape as tecfand's
  // --metrics-interval: a 50ms poll so shutdown never waits a full period.
  std::atomic<bool> stop_metrics{false};
  std::thread metrics_logger;
  if (args.metrics_interval_s > 0) {
    metrics_logger = std::thread([&router, &stop_metrics,
                                  interval = args.metrics_interval_s] {
      const auto step = std::chrono::duration<double>(interval);
      auto next = std::chrono::steady_clock::now() + step;
      while (!stop_metrics.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (std::chrono::steady_clock::now() < next) continue;
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(step);
        log_metrics(router);
      }
    });
  }

  const std::uint16_t port =
      router.bind_listen(static_cast<std::uint16_t>(args.port));
  std::string fleet;
  for (const std::uint16_t p : args.backends) {
    if (!fleet.empty()) fleet += ',';
    fleet += std::to_string(p);
  }
  std::fprintf(stderr,
               "tecrouter: listening on 127.0.0.1:%u, fleet [%s] "
               "(%zu vnodes/backend, hedge %s, %s data plane)\n",
               port, fleet.c_str(), args.vnodes,
               args.hedge_ms < 0    ? "off"
               : args.hedge_ms == 0 ? "auto-p99"
                                    : "fixed",
               args.data_plane == cluster::DataPlane::kEpoll ? "epoll"
                                                             : "threads");
  std::fflush(stderr);
  router.serve();
  stop_metrics.store(true);
  if (metrics_logger.joinable()) metrics_logger.join();
  return 0;
}
