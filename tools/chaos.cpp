// chaos — randomized fault-injection storms against a router + fleet.
//
// Spins up an in-process ChaosFleet (router + backends, each behind a
// ChaosProxy) per fault class and drives pipelined client storms through
// it, checking the five chaos invariants after every storm (protocol
// cleanliness, reply order, counter conservation, no stuck requests +
// gauges at zero, bounded memory — see src/testing/chaos_fleet.h). The
// bench harness runs this with a time budget; every storm's seed is
// derived from --seed, and a violation prints the storm seed so the run
// can be replayed exactly:
//
//   chaos --chaos-seconds 30 --seed 7
//   chaos --chaos-seconds 5 --backends 3 --clients 8
//
// Exit status 0 = every storm passed, 1 = at least one violation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/framing.h"
#include "testing/chaos_fleet.h"

namespace {

using namespace tecfan;
using Clock = std::chrono::steady_clock;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Phase {
  const char* name;
  /// Destructive classes may exhaust the failover chain; error replies
  /// are then legitimate (but must stay protocol-clean).
  bool allow_errors;
  void (*configure)(testing::ChaosFleetOptions&);
};

const Phase kPhases[] = {
    // The router keeps ONE persistent pipe per backend, so pure
    // connection-level faults would only ever hit the first dial and the
    // health probes; a little mid-stream churn forces re-dials that the
    // refusals/blackholes can then land on.
    {"refuse", true,
     [](testing::ChaosFleetOptions& o) {
       o.proxy.refuse_p = 0.3;
       o.proxy.request_disconnect_p = 0.02;
     }},
    {"blackhole", true,
     [](testing::ChaosFleetOptions& o) {
       o.proxy.blackhole_p = 0.25;
       o.proxy.request_disconnect_p = 0.02;
     }},
    {"midline-disconnect", true,
     [](testing::ChaosFleetOptions& o) {
       o.proxy.request_disconnect_p = 0.03;
       o.proxy.reply_disconnect_p = 0.03;
     }},
    {"short-write", false,
     [](testing::ChaosFleetOptions& o) { o.proxy.short_write_cap = 3; }},
    {"slowloris", false,
     [](testing::ChaosFleetOptions& o) {
       o.proxy.slowloris_p = 0.2;
       o.proxy.slowloris_delay_us = 50;
     }},
    {"corrupt", true,
     [](testing::ChaosFleetOptions& o) { o.proxy.corrupt_p = 0.05; }},
    {"truncate", true,
     [](testing::ChaosFleetOptions& o) { o.proxy.truncate_p = 0.03; }},
    {"unsolicited", true,
     [](testing::ChaosFleetOptions& o) { o.proxy.unsolicited_p = 0.05; }},
    {"latency-hedge", false,
     [](testing::ChaosFleetOptions& o) {
       o.proxy.reply_delay_p = 0.3;
       o.proxy.reply_delay_us = 5000;
       o.router.hedge_ms = 2.0;
     }},
    {"mixed", true,
     [](testing::ChaosFleetOptions& o) {
       o.proxy.refuse_p = 0.05;
       o.proxy.blackhole_p = 0.05;
       o.proxy.request_disconnect_p = 0.01;
       o.proxy.reply_disconnect_p = 0.01;
       o.proxy.short_write_cap = 7;
       o.proxy.corrupt_p = 0.02;
       o.proxy.truncate_p = 0.01;
       o.proxy.unsolicited_p = 0.02;
       o.proxy.reply_delay_p = 0.1;
       o.proxy.reply_delay_us = 1000;
       o.router.hedge_ms = 5.0;
     }},
};

struct Args {
  double chaos_seconds = 20.0;
  std::string phase;  // empty = all phases
  std::uint64_t seed = 1;
  std::size_t backends = 2;
  std::size_t clients = 4;
  std::size_t requests_per_client = 40;
  bool help = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: chaos [--chaos-seconds X] [--seed N] [--backends N]\n"
      "             [--clients N] [--requests N]\n"
      "  --chaos-seconds X  total wall-clock budget, split across the %zu\n"
      "                     fault-class phases (default 20)\n"
      "  --seed N           base seed; every storm seed derives from it\n"
      "  --backends N       fleet size (default 2)\n"
      "  --clients N        concurrent pipelined clients per storm (4)\n"
      "  --requests N       requests per client per storm (40)\n"
      "  --phase NAME       run only this fault-class phase\n",
      sizeof(kPhases) / sizeof(kPhases[0]));
}

bool parse(int argc, char** argv, Args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      out.help = true;
    } else if (a == "--chaos-seconds" && (v = next())) {
      out.chaos_seconds = std::atof(v);
    } else if (a == "--seed" && (v = next())) {
      out.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--backends" && (v = next())) {
      out.backends = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--clients" && (v = next())) {
      out.clients = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--requests" && (v = next())) {
      out.requests_per_client = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--phase" && (v = next())) {
      out.phase = v;
    } else {
      std::fprintf(stderr, "bad argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args) || args.help) {
    usage();
    return args.help ? 0 : 2;
  }
  service::ignore_sigpipe();

  constexpr std::size_t kPhaseCount = sizeof(kPhases) / sizeof(kPhases[0]);
  const double slice_s = args.chaos_seconds / static_cast<double>(kPhaseCount);
  std::size_t storms = 0, failures = 0;
  const auto t0 = Clock::now();

  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase& phase = kPhases[p];
    if (!args.phase.empty() && args.phase != phase.name) continue;
    testing::ChaosFleetOptions fo;
    fo.backends = args.backends;
    fo.with_proxies = true;
    fo.proxy.seed = splitmix64(args.seed ^ (p + 1));
    phase.configure(fo);
    testing::ChaosFleet fleet(fo);

    const auto slice_end =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(slice_s));
    std::size_t phase_storms = 0, phase_failures = 0;
    std::size_t phase_requests = 0, phase_errors = 0;
    do {  // at least one storm per phase, whatever the budget
      testing::StormOptions so;
      so.seed = splitmix64(args.seed ^ ((p + 1) * 1000 + phase_storms));
      so.clients = args.clients;
      so.requests_per_client = args.requests_per_client;
      so.allow_errors = phase.allow_errors;
      const auto report = testing::run_storm(fleet, so);
      ++storms;
      ++phase_storms;
      phase_requests += report.requests;
      phase_errors += report.errors;
      if (!report.passed()) {
        ++failures;
        ++phase_failures;
        std::fprintf(stderr, "[%s] %s\n", phase.name,
                     report.describe().c_str());
      }
    } while (Clock::now() < slice_end);
    const auto rs = fleet.router().stats();
    std::fprintf(stderr,
                 "[%s] %zu storms, %zu requests (%zu errors), "
                 "failovers=%llu hedges=%llu pipe_stalls=%llu — %s\n",
                 phase.name, phase_storms, phase_requests, phase_errors,
                 static_cast<unsigned long long>(rs.failovers),
                 static_cast<unsigned long long>(rs.hedges),
                 static_cast<unsigned long long>(rs.pipe_stalls),
                 phase_failures == 0 ? "PASS" : "FAIL");
  }

  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::fprintf(stderr,
               "chaos: %zu storms over %zu phases in %.1fs, %zu failed "
               "(seed %llu)\n",
               storms, kPhaseCount, elapsed, failures,
               static_cast<unsigned long long>(args.seed));
  return failures == 0 ? 0 : 1;
}
