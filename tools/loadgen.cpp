// loadgen — closed-loop load generator for tecfand, the serving-path
// benchmark.
//
// Opens C connections to a local tecfand (or spawns an in-process server
// when --port is not given), drives each connection closed-loop over a
// repeated-key request working set, and reports throughput, p50/p99
// latency, and the daemon's cache hit rate. Results go to stdout and, in
// minimal JSON, to BENCH_serving.json (--out to override).
//
//   loadgen                              # in-process server, 4 conns, 3 s
//   loadgen --port 7411 --connections 8 --duration-s 10
//   loadgen --keys 32 --no-warmup       # larger working set, cold cache
//
// Fleet mode (--router) spawns N in-process tecfand backends plus a
// tecrouter front-end and drives the router, so sharded serving can be
// compared against direct serving with the same flags:
//
//   loadgen --router --backends 4        # 4-shard fleet behind a router
//   loadgen --router --backends 2 --hedge-ms 0   # with auto-p99 hedging
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "service/framing.h"
#include "service/request.h"
#include "service/request_grid.h"
#include "service/server.h"
#include "util/stats.h"

namespace {

using namespace tecfan;
using Clock = std::chrono::steady_clock;

struct Args {
  int port = -1;  // -1: spawn in-process
  int connections = 4;
  double duration_s = 3.0;
  int keys = 8;
  double sim_cap_s = 0.05;  // in-process ServerOptions.max_sim_time_s
  std::size_t workers = service::default_worker_count();
  std::size_t queue = 64;
  std::size_t cache = 4096;
  bool router = false;  // fleet mode: backends + tecrouter in-process
  int backends = 2;
  double hedge_ms = -1.0;
  std::uint64_t trace_every = 0;  // in-process tiers sample every Nth
  cluster::DataPlane data_plane = cluster::DataPlane::kEpoll;
  bool warmup = true;
  bool check_p99 = false;
  std::string out = "BENCH_serving.json";
  bool help = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: loadgen [--port N] [--connections C] [--duration-s S]\n"
      "               [--keys K] [--sim-cap-s S] [--workers N] [--queue N]\n"
      "               [--cache N] [--router] [--backends N] [--hedge-ms X]\n"
      "               [--trace-every N] [--no-warmup] [--check-p99]\n"
      "               [--out FILE]\n"
      "  --port N         target an external tecfand or tecrouter\n"
      "                   (default: in-process)\n"
      "  --connections C  closed-loop client connections (default 4)\n"
      "  --duration-s S   measured interval (default 3)\n"
      "  --keys K         distinct requests in the working set (8).\n"
      "                   Mostly equilibrium points; every 16th key is a\n"
      "                   `run` and every 64th a `sweep`, so large sets\n"
      "                   exercise all three compute kinds\n"
      "  --sim-cap-s S    in-process simulated-time cap per run/sweep\n"
      "                   level (0.05); keeps run/sweep keys serveable\n"
      "                   at benchmark rates\n"
      "  --workers N      in-process worker pool size, total across the\n"
      "                   fleet in --router mode (default: hardware\n"
      "                   threads, clamped to [2,16])\n"
      "  --queue N        in-process pending-request bound (64)\n"
      "  --cache N        in-process result cache capacity per backend\n"
      "                   (4096)\n"
      "  --router         fleet mode: spawn --backends in-process tecfand\n"
      "                   servers plus a tecrouter and drive the router\n"
      "  --backends N     fleet size for --router (default 2)\n"
      "  --hedge-ms X     router hedged retry: -1 off, 0 auto-p99, >0 fixed\n"
      "  --data-plane P   router forwarding engine: epoll (default) or\n"
      "                   threads (legacy thread-per-session oracle)\n"
      "  --trace-every N  sample every Nth compute request for cross-tier\n"
      "                   tracing in the in-process tiers (0 = off);\n"
      "                   sampled-trace counts land in the JSON report\n"
      "  --no-warmup      skip the cache-priming pass\n"
      "  --check-p99      exit non-zero when the server-side e2e hit p99\n"
      "                   disagrees with the client-side hit p99\n"
      "  --out FILE       JSON report path (BENCH_serving.json)\n");
}

bool parse(int argc, char** argv, Args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](int& i) -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      const char* v = next(i);
      if (!v) return false;
      out.port = std::atoi(v);
    } else if (a == "--connections") {
      const char* v = next(i);
      if (!v) return false;
      out.connections = std::atoi(v);
    } else if (a == "--duration-s") {
      const char* v = next(i);
      if (!v) return false;
      out.duration_s = std::atof(v);
    } else if (a == "--keys") {
      const char* v = next(i);
      if (!v) return false;
      out.keys = std::atoi(v);
    } else if (a == "--sim-cap-s") {
      const char* v = next(i);
      if (!v) return false;
      out.sim_cap_s = std::atof(v);
    } else if (a == "--workers") {
      const char* v = next(i);
      if (!v) return false;
      out.workers = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--queue") {
      const char* v = next(i);
      if (!v) return false;
      out.queue = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--cache") {
      const char* v = next(i);
      if (!v) return false;
      out.cache = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--router") {
      out.router = true;
    } else if (a == "--backends") {
      const char* v = next(i);
      if (!v) return false;
      out.backends = std::atoi(v);
    } else if (a == "--hedge-ms") {
      const char* v = next(i);
      if (!v) return false;
      out.hedge_ms = std::atof(v);
    } else if (a == "--trace-every") {
      const char* v = next(i);
      if (!v) return false;
      out.trace_every = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--data-plane") {
      const char* v = next(i);
      if (!v) return false;
      if (std::string(v) == "epoll") {
        out.data_plane = cluster::DataPlane::kEpoll;
      } else if (std::string(v) == "threads") {
        out.data_plane = cluster::DataPlane::kThreads;
      } else {
        std::fprintf(stderr, "unknown --data-plane: %s\n", v);
        return false;
      }
    } else if (a == "--no-warmup") {
      out.warmup = false;
    } else if (a == "--check-p99") {
      out.check_p99 = true;
    } else if (a == "--out") {
      const char* v = next(i);
      if (!v) return false;
      out.out = v;
    } else if (a == "--help" || a == "-h") {
      out.help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  if (out.router && out.port >= 0) {
    std::fprintf(stderr, "error: --router spawns its own fleet; drop --port\n");
    return false;
  }
  return out.connections > 0 && out.duration_s > 0 && out.keys > 0 &&
         out.sim_cap_s > 0 && out.workers > 0 && out.queue > 0 &&
         out.cache > 0 && out.backends > 0;
}

/// Resident set size of this process (which, with the in-process server, is
/// the whole serving stack) from /proc/self/statm; 0 if unreadable.
std::size_t process_rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  std::size_t vm_pages = 0, rss_pages = 0;
  statm >> vm_pages >> rss_pages;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return rss_pages * static_cast<std::size_t>(page);
}

/// Blocking line-protocol client over a loopback TCP connection
/// (service/framing.h does the socket work: MSG_NOSIGNAL sends, buffered
/// line reads).
class Client {
 public:
  bool connect_to(std::uint16_t port) {
    fd_ = service::connect_loopback(port);
    reader_.reset(fd_);
    return fd_ >= 0;
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Send one request line, wait for the response line; empty on error.
  std::string round_trip(const std::string& line) {
    std::string msg = line;
    msg += '\n';
    if (!service::send_all(fd_, msg)) return {};
    return reader_.read_line().value_or(std::string{});
  }

 private:
  int fd_ = -1;
  service::LineReader reader_;
};

/// JSON/report names for the shared request grid's compute kinds (indexes
/// match service::GridKind; the grid itself lives in
/// src/service/request_grid.* so bench_cluster drives the same corpus).
const char* const kKindNames[] = {"equilibrium", "run", "sweep"};

double get_field(const service::Response& r, const char* key) {
  if (auto v = r.field(key)) return std::atof(v->c_str());
  return 0.0;
}

/// The serving-path stage histograms the server exports via `metrics`,
/// in pipeline order (see Server::metrics()), plus the cluster stages a
/// tecrouter exports (zero-count and skipped when targeting a tecfand).
const char* const kStages[] = {"parse",        "cache_probe", "queue_wait",
                               "compute",      "serialize",   "route",
                               "backend_wait", "e2e_hit",     "e2e_miss"};

/// One stage's summary pulled out of a `metrics` response.
struct StageSummary {
  double count = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  std::string buckets;  // "upper_us:count,..." (may be empty)
};

StageSummary stage_summary(const service::Response& metrics,
                           const std::string& stage) {
  StageSummary s;
  s.count = get_field(metrics, (stage + "_count").c_str());
  s.p50_us = get_field(metrics, (stage + "_p50_us").c_str());
  s.p90_us = get_field(metrics, (stage + "_p90_us").c_str());
  s.p99_us = get_field(metrics, (stage + "_p99_us").c_str());
  s.p999_us = get_field(metrics, (stage + "_p999_us").c_str());
  s.mean_us = get_field(metrics, (stage + "_mean_us").c_str());
  s.max_us = get_field(metrics, (stage + "_max_us").c_str());
  if (auto b = metrics.field(stage + "_buckets")) s.buckets = *b;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args) || args.help) {
    usage();
    return args.help ? 0 : 2;
  }

  service::ignore_sigpipe();

  // Spawn the in-process serving stack unless pointed at an external
  // daemon: one tecfand (default), or --backends tecfand shards plus a
  // tecrouter front-end (--router). The fleet splits the worker budget so
  // direct and routed runs compare at equal total worker count.
  std::vector<std::unique_ptr<service::Server>> fleet;
  std::vector<std::thread> fleet_threads;
  std::unique_ptr<cluster::Router> router;
  std::thread router_thread;
  std::uint16_t port = 0;
  if (args.port >= 0) {
    port = static_cast<std::uint16_t>(args.port);
  } else {
    const std::size_t n = args.router
                              ? static_cast<std::size_t>(args.backends)
                              : 1;
    const std::size_t workers_each =
        std::max<std::size_t>(1, args.workers / n);
    std::vector<std::uint16_t> backend_ports;
    for (std::size_t b = 0; b < n; ++b) {
      service::ServerOptions options;
      options.workers = workers_each;
      options.queue_capacity = args.queue;
      options.cache_capacity = args.cache;
      options.max_sim_time_s = args.sim_cap_s;
      options.instance_name = "shard" + std::to_string(b);
      // Behind an in-process router the router heads sampling, so only a
      // direct in-process server samples at the entry point itself.
      if (!args.router) options.trace_every = args.trace_every;
      fleet.push_back(std::make_unique<service::Server>(options));
      backend_ports.push_back(fleet.back()->bind_listen(0));
      fleet_threads.emplace_back(
          [srv = fleet.back().get()] { srv->serve(); });
    }
    if (args.router) {
      cluster::RouterOptions options;
      options.backend_ports = backend_ports;
      options.hedge_ms = args.hedge_ms;
      options.data_plane = args.data_plane;
      options.trace_every = args.trace_every;
      router = std::make_unique<cluster::Router>(options);
      port = router->bind_listen(0);
      router_thread = std::thread([&router] { router->serve(); });
      std::fprintf(stderr,
                   "loadgen: in-process tecrouter (%s data plane) on port "
                   "%u over %zu backends (%zu workers each)\n",
                   args.data_plane == cluster::DataPlane::kEpoll ? "epoll"
                                                                 : "threads",
                   port, n, workers_each);
    } else {
      port = backend_ports.front();
      std::fprintf(stderr,
                   "loadgen: in-process tecfand on port %u (%zu workers)\n",
                   port, args.workers);
    }
  }

  const std::vector<service::GridRequest> requests =
      service::request_grid(args.keys);

  // Warmup: prime every key once so the measured interval exercises the
  // serving path, not the simulator.
  if (args.warmup) {
    Client warm;
    if (!warm.connect_to(port)) {
      std::fprintf(stderr, "loadgen: cannot connect to port %u\n", port);
      return 1;
    }
    const auto t0 = Clock::now();
    for (const auto& r : requests) {
      const std::string reply = warm.round_trip(r.line);
      const service::Response resp = service::parse_response(reply);
      if (resp.status != service::Response::Status::kOk) {
        std::fprintf(stderr, "loadgen: warmup request failed: %s\n",
                     reply.c_str());
        return 1;
      }
    }
    std::fprintf(stderr, "loadgen: warmed %zu keys in %.2f s\n",
                 requests.size(),
                 std::chrono::duration<double>(Clock::now() - t0).count());
  }

  // Measured closed-loop interval. Replies are classified client-side:
  // `ok cached=1 ...` round trips are cache hits, plain `ok` are misses,
  // so the client-side percentiles can be cross-checked against the
  // server's hit/miss-split e2e histograms.
  struct PerConn {
    std::vector<double> all;   // every completed (non-busy) round trip
    std::vector<double> hit;   // ok, served from the result cache
    std::vector<double> miss;  // ok, computed
    std::vector<double> by_kind[3];  // split by request kind
    std::uint64_t busy = 0;
  };
  std::atomic<bool> stop{false};
  std::vector<PerConn> per_conn(static_cast<std::size_t>(args.connections));
  std::vector<std::thread> clients;
  const auto start = Clock::now();
  for (int c = 0; c < args.connections; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (!client.connect_to(port)) return;
      PerConn& mine = per_conn[static_cast<std::size_t>(c)];
      std::size_t i = static_cast<std::size_t>(c);  // stagger the rotation
      while (!stop.load(std::memory_order_relaxed)) {
        const service::GridRequest& req = requests[i++ % requests.size()];
        const auto t0 = Clock::now();
        const std::string reply = client.round_trip(req.line);
        const auto t1 = Clock::now();
        if (reply.empty()) break;
        if (reply == "busy") {
          ++mine.busy;
          continue;
        }
        const double us =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        mine.all.push_back(us);
        mine.by_kind[static_cast<int>(req.kind)].push_back(us);
        if (reply.rfind("ok cached=1", 0) == 0) {
          mine.hit.push_back(us);
        } else if (reply.rfind("ok", 0) == 0) {
          mine.miss.push_back(us);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(args.duration_s));
  stop.store(true);
  for (auto& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all, hits, misses;
  std::vector<double> by_kind[3];
  std::size_t keys_by_kind[3] = {0, 0, 0};
  for (const auto& r : requests) ++keys_by_kind[static_cast<int>(r.kind)];
  std::uint64_t busy_total = 0;
  for (const auto& conn : per_conn) {
    all.insert(all.end(), conn.all.begin(), conn.all.end());
    hits.insert(hits.end(), conn.hit.begin(), conn.hit.end());
    misses.insert(misses.end(), conn.miss.begin(), conn.miss.end());
    for (int k = 0; k < 3; ++k)
      by_kind[k].insert(by_kind[k].end(), conn.by_kind[k].begin(),
                        conn.by_kind[k].end());
    busy_total += conn.busy;
  }
  if (all.empty()) {
    std::fprintf(stderr, "loadgen: no requests completed\n");
    return 1;
  }

  // Server-side cache/memory statistics and the per-stage latency
  // histograms accumulated during the run. In router mode the protocol
  // `stats` verb answers with fleet topology, so the cache/memory numbers
  // are aggregated straight from the in-process backend shards instead.
  double hit_rate = 0.0, cache_hits = 0.0, cache_misses = 0.0;
  double workers = 0.0, engine_bytes = 0.0, workspace_bytes = 0.0;
  double router_failovers = 0.0, router_hedges = 0.0;
  // Per-tier sampled-trace counts: head decisions at the tier that made
  // them, plus adopted contexts at the server tier (a backend behind a
  // sampling router participates without heading).
  std::uint64_t traces_router = 0, traces_server = 0;
  service::Response server_metrics;
  bool have_metrics = false;
  {
    Client statc;
    if (statc.connect_to(port)) {
      const service::Response stats =
          service::parse_response(statc.round_trip("stats"));
      hit_rate = get_field(stats, "cache_hit_rate");
      cache_hits = get_field(stats, "cache_hits");
      cache_misses = get_field(stats, "cache_misses");
      workers = get_field(stats, "workers");
      engine_bytes = get_field(stats, "engine_bytes");
      workspace_bytes = get_field(stats, "workspace_bytes");
      router_failovers = get_field(stats, "failovers");
      router_hedges = get_field(stats, "hedges");
      // External target: the tier that answered owns the count (a
      // tecrouter reports its own head decisions, a tecfand its own).
      traces_server = static_cast<std::uint64_t>(
          get_field(stats, "traces_sampled"));
      server_metrics = service::parse_response(statc.round_trip("metrics"));
      have_metrics =
          server_metrics.status == service::Response::Status::kOk;
      statc.round_trip("quit");
    }
  }
  if (router) {
    cache_hits = cache_misses = 0.0;
    workers = engine_bytes = workspace_bytes = 0.0;
    traces_router = router->tracer().sampled_traces();
    traces_server = 0;
    for (const auto& srv : fleet) {
      const service::Server::Stats s = srv->stats();
      cache_hits += static_cast<double>(s.cache.hits);
      cache_misses += static_cast<double>(s.cache.misses);
      workers += static_cast<double>(s.pool.workers);
      engine_bytes += static_cast<double>(s.engine_bytes);
      workspace_bytes =
          std::max(workspace_bytes, static_cast<double>(s.workspace_bytes));
      traces_server += srv->tracer().sampled_traces() +
                       srv->tracer().adopted_traces();
    }
    hit_rate = cache_hits + cache_misses > 0
                   ? cache_hits / (cache_hits + cache_misses)
                   : 0.0;
  }
  const std::size_t rss_bytes = process_rss_bytes();

  const double throughput = static_cast<double>(all.size()) / elapsed;
  const double p50 = percentile(all, 50.0);
  const double p99 = percentile(all, 99.0);
  const double mean_us = mean(all);
  const double client_hit_p50 = hits.empty() ? 0.0 : percentile(hits, 50.0);
  const double client_hit_p99 = hits.empty() ? 0.0 : percentile(hits, 99.0);
  const double client_miss_p50 =
      misses.empty() ? 0.0 : percentile(misses, 50.0);
  const double client_miss_p99 =
      misses.empty() ? 0.0 : percentile(misses, 99.0);

  // Cross-check: the server's e2e_hit span is a strict subset of the
  // client's hit round trip, so its p99 must not exceed the client-side
  // hit p99 plus slack for histogram bucket resolution (~19% per bucket)
  // and scheduling jitter. A violation means the spans are mislabelled or
  // a stage is unaccounted for.
  const StageSummary server_hit =
      have_metrics ? stage_summary(server_metrics, "e2e_hit") : StageSummary{};
  const bool crosscheck_applicable = have_metrics && !hits.empty() &&
                                     server_hit.count > 0;
  const double crosscheck_bound_us = client_hit_p99 * 1.25 + 10.0;
  const bool crosscheck_pass =
      crosscheck_applicable && server_hit.p99_us > 0.0 &&
      server_hit.p99_us <= crosscheck_bound_us;

  std::printf("== serving-path benchmark (loadgen) ==\n");
  std::printf("mode              %s\n",
              router ? "router" : (args.port >= 0 ? "external" : "direct"));
  if (router) {
    const cluster::Router::Stats rs = router->stats();
    std::printf("fleet             %zu backends (%zu up), %llu failovers, "
                "%llu hedges\n",
                rs.backends, rs.backends_up,
                static_cast<unsigned long long>(rs.failovers),
                static_cast<unsigned long long>(rs.hedges));
  }
  std::printf("connections       %d\n", args.connections);
  std::printf("distinct keys     %d\n", args.keys);
  std::printf("duration          %.2f s\n", elapsed);
  std::printf("requests          %zu\n", all.size());
  std::printf("busy rejections   %llu\n",
              static_cast<unsigned long long>(busy_total));
  std::printf("throughput        %.0f req/s\n", throughput);
  std::printf("latency mean      %.1f us\n", mean_us);
  std::printf("latency p50       %.1f us\n", p50);
  std::printf("latency p99       %.1f us\n", p99);
  if (!hits.empty())
    std::printf("hit p50/p99       %.1f / %.1f us (%zu round trips)\n",
                client_hit_p50, client_hit_p99, hits.size());
  if (!misses.empty())
    std::printf("miss p50/p99      %.1f / %.1f us (%zu round trips)\n",
                client_miss_p50, client_miss_p99, misses.size());
  for (int k = 0; k < 3; ++k) {
    if (by_kind[k].empty()) continue;
    std::printf("%-11s p50/p99 %.1f / %.1f us (%zu round trips, %zu keys)\n",
                kKindNames[k], percentile(by_kind[k], 50.0),
                percentile(by_kind[k], 99.0), by_kind[k].size(),
                keys_by_kind[k]);
  }
  std::printf("cache hit rate    %.1f %%\n", 100.0 * hit_rate);
  std::printf("workers           %.0f\n", workers);
  if (args.trace_every > 0)
    std::printf("traces sampled    router %llu, server %llu (every %llu)\n",
                static_cast<unsigned long long>(traces_router),
                static_cast<unsigned long long>(traces_server),
                static_cast<unsigned long long>(args.trace_every));
  if (have_metrics) {
    std::printf("server stages     (count / p50 / p99 / max us)\n");
    for (const char* stage : kStages) {
      const StageSummary s = stage_summary(server_metrics, stage);
      if (s.count == 0) continue;
      std::printf("  %-12s    %.0f / %.1f / %.1f / %.1f\n", stage, s.count,
                  s.p50_us, s.p99_us, s.max_us);
    }
  }
  if (crosscheck_applicable)
    std::printf("p99 cross-check   server e2e_hit %.1f us vs client hit "
                "%.1f us (bound %.1f us) [%s]\n",
                server_hit.p99_us, client_hit_p99, crosscheck_bound_us,
                crosscheck_pass ? "ok" : "FAIL");
  std::printf("engine memory     %.2f MiB (shared, one copy)\n",
              engine_bytes / (1024.0 * 1024.0));
  std::printf("workspace memory  %.1f KiB (per worker, max observed)\n",
              workspace_bytes / 1024.0);
  if (rss_bytes > 0)
    std::printf("process RSS       %.1f MiB%s\n",
                static_cast<double>(rss_bytes) / (1024.0 * 1024.0),
                args.port < 0 ? " (loadgen + in-process server)" : "");

  std::ofstream json(args.out);
  if (json) {
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"serving\",\n"
         << "  \"mode\": \""
         << (router ? "router" : (args.port >= 0 ? "external" : "direct"))
         << "\",\n"
         << "  \"backends\": " << (router ? args.backends : 1) << ",\n"
         << "  \"data_plane\": \""
         << (router ? (args.data_plane == cluster::DataPlane::kEpoll
                           ? "epoll"
                           : "threads")
                    : "n/a")
         << "\",\n"
         << "  \"router_failovers\": " << router_failovers << ",\n"
         << "  \"router_hedges\": " << router_hedges << ",\n"
         << "  \"trace_every\": " << args.trace_every << ",\n"
         << "  \"traces_sampled_router\": " << traces_router << ",\n"
         << "  \"traces_sampled_server\": " << traces_server << ",\n"
         << "  \"connections\": " << args.connections << ",\n"
         << "  \"distinct_keys\": " << args.keys << ",\n"
         << "  \"duration_s\": " << elapsed << ",\n"
         << "  \"requests\": " << all.size() << ",\n"
         << "  \"busy_rejections\": " << busy_total << ",\n"
         << "  \"throughput_rps\": " << throughput << ",\n"
         << "  \"latency_mean_us\": " << mean_us << ",\n"
         << "  \"latency_p50_us\": " << p50 << ",\n"
         << "  \"latency_p99_us\": " << p99 << ",\n"
         << "  \"client_hits\": " << hits.size() << ",\n"
         << "  \"client_misses\": " << misses.size() << ",\n"
         << "  \"latency_hit_p50_us\": " << client_hit_p50 << ",\n"
         << "  \"latency_hit_p99_us\": " << client_hit_p99 << ",\n"
         << "  \"latency_miss_p50_us\": " << client_miss_p50 << ",\n"
         << "  \"latency_miss_p99_us\": " << client_miss_p99 << ",\n"
         << "  \"kind_split\": {\n";
    for (int k = 0; k < 3; ++k) {
      const auto& v = by_kind[k];
      json << "    \"" << kKindNames[k] << "\": {\n"
           << "      \"keys\": " << keys_by_kind[k] << ",\n"
           << "      \"requests\": " << v.size() << ",\n"
           << "      \"p50_us\": " << (v.empty() ? 0.0 : percentile(v, 50.0))
           << ",\n"
           << "      \"p99_us\": " << (v.empty() ? 0.0 : percentile(v, 99.0))
           << "\n    }" << (k + 1 < 3 ? ",\n" : "\n");
    }
    json << "  },\n"
         << "  \"cache_hits\": " << cache_hits << ",\n"
         << "  \"cache_misses\": " << cache_misses << ",\n"
         << "  \"cache_hit_rate\": " << hit_rate << ",\n"
         << "  \"workers\": " << workers << ",\n"
         << "  \"engine_bytes\": " << engine_bytes << ",\n"
         << "  \"workspace_bytes\": " << workspace_bytes << ",\n"
         << "  \"process_rss_bytes\": " << rss_bytes << ",\n";
    json << "  \"p99_crosscheck\": {\n"
         << "    \"applicable\": " << (crosscheck_applicable ? "true" : "false")
         << ",\n"
         << "    \"server_e2e_hit_p99_us\": " << server_hit.p99_us << ",\n"
         << "    \"client_hit_p99_us\": " << client_hit_p99 << ",\n"
         << "    \"bound_us\": " << crosscheck_bound_us << ",\n"
         << "    \"pass\": " << (crosscheck_pass ? "true" : "false") << "\n"
         << "  },\n";
    json << "  \"server_metrics\": {";
    bool first = true;
    for (const char* stage : kStages) {
      const StageSummary s =
          have_metrics ? stage_summary(server_metrics, stage) : StageSummary{};
      json << (first ? "\n" : ",\n");
      first = false;
      json << "    \"" << stage << "\": {\n"
           << "      \"count\": " << s.count << ",\n"
           << "      \"p50_us\": " << s.p50_us << ",\n"
           << "      \"p90_us\": " << s.p90_us << ",\n"
           << "      \"p99_us\": " << s.p99_us << ",\n"
           << "      \"p999_us\": " << s.p999_us << ",\n"
           << "      \"mean_us\": " << s.mean_us << ",\n"
           << "      \"max_us\": " << s.max_us << ",\n"
           << "      \"buckets\": \"" << s.buckets << "\"\n"
           << "    }";
    }
    json << "\n  }\n"
         << "}\n";
    std::fprintf(stderr, "loadgen: wrote %s\n", args.out.c_str());
  }

  if (router) {
    router->stop();
    if (router_thread.joinable()) router_thread.join();
  }
  for (auto& srv : fleet) srv->stop();
  for (auto& t : fleet_threads)
    if (t.joinable()) t.join();
  if (args.check_p99 && !crosscheck_pass) {
    std::fprintf(stderr,
                 crosscheck_applicable
                     ? "loadgen: p99 cross-check FAILED\n"
                     : "loadgen: p99 cross-check has no data (no cache-hit "
                       "round trips or no server metrics)\n");
    return 1;
  }
  return 0;
}
