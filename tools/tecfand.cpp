// tecfand — the thermal-planning daemon.
//
// Serves the line protocol of service/request.h over stdin/stdout (pipe
// mode, the default when stdin is not a TTY or --pipe is given) or a local
// TCP socket (--port N; N=0 picks an ephemeral port, printed on startup).
//
//   tecfand --pipe                      # stdin/stdout session
//   tecfand --port 7411                 # loopback TCP daemon
//   tecfand --port 0 --workers 4        # ephemeral port, bigger pool
//
// Example session:
//
//   $ ./build/tools/tecfand --pipe
//   equilibrium workload=cholesky threads=16 fan=2
//   ok peak_t_k=... peak_t_c=... fan_w=...
//   stats
//   ok uptime_s=... cache_hits=... ...
//   quit
//   ok bye=1
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "service/framing.h"
#include "service/server.h"
#include "util/metrics.h"

namespace {

struct Args {
  bool pipe = false;
  int port = -1;  // -1: not set
  std::size_t workers = tecfan::service::default_worker_count();
  std::size_t queue = 64;
  std::size_t cache = 4096;
  double deadline_ms = 0.0;
  double metrics_interval_s = 0.0;  // 0 = no periodic logging
  std::uint64_t trace_every = 0;    // 0 = tracing off
  std::string name;  // replica name reported by `stats`
  bool help = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: tecfand [--pipe | --port N] [--workers N] [--queue N]\n"
               "               [--cache N] [--deadline-ms X] [--name S]\n"
               "               [--metrics-interval S] [--trace-every N]\n"
               "  --pipe          serve stdin/stdout (default)\n"
               "  --port N        serve loopback TCP on port N (0 = ephemeral)\n"
               "  --workers N     worker pool size (default: hardware threads,\n"
               "                  clamped to [2,16])\n"
               "  --queue N       pending-request bound before `busy` (64)\n"
               "  --cache N       result cache capacity in entries (4096)\n"
               "  --deadline-ms X default per-request deadline (0 = none)\n"
               "  --name S        replica name reported by the stats verb\n"
               "                  (fleet members behind tecrouter)\n"
               "  --metrics-interval S\n"
               "                  log per-stage latency percentiles to stderr\n"
               "                  every S seconds (0 = off)\n"
               "  --trace-every N sample every Nth compute request for\n"
               "                  cross-tier tracing (0 = off); dump with\n"
               "                  the `trace` protocol verb\n");
}

/// One stderr line summarizing every non-empty stage histogram. Rendered
/// from a single registry snapshot so the counters within one dump are
/// mutually consistent (same guarantee the `metrics` verb gives).
void log_metrics(const tecfan::service::Server& server) {
  const auto snapshot = server.metrics_snapshot();
  std::string line = "tecfand metrics:";
  bool any = false;
  for (const auto& [name, snap] : snapshot.histograms) {
    if (snap.count == 0) continue;
    any = true;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " %s(n=%llu p50=%.1fus p99=%.1fus max=%.1fus)", name.c_str(),
                  static_cast<unsigned long long>(snap.count),
                  snap.percentile(50.0), snap.percentile(99.0), snap.max_us);
    line += buf;
  }
  if (!any) line += " (no samples yet)";
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
}

bool parse(int argc, char** argv, Args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](int& i) -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--pipe") {
      out.pipe = true;
    } else if (a == "--port") {
      const char* v = next(i);
      if (!v) return false;
      out.port = std::atoi(v);
    } else if (a == "--workers") {
      const char* v = next(i);
      if (!v) return false;
      out.workers = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--queue") {
      const char* v = next(i);
      if (!v) return false;
      out.queue = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--cache") {
      const char* v = next(i);
      if (!v) return false;
      out.cache = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--deadline-ms") {
      const char* v = next(i);
      if (!v) return false;
      out.deadline_ms = std::atof(v);
    } else if (a == "--metrics-interval") {
      const char* v = next(i);
      if (!v) return false;
      out.metrics_interval_s = std::atof(v);
    } else if (a == "--trace-every") {
      const char* v = next(i);
      if (!v) return false;
      out.trace_every = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--name") {
      const char* v = next(i);
      if (!v) return false;
      out.name = v;
    } else if (a == "--help" || a == "-h") {
      out.help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args) || args.help) {
    usage();
    return args.help ? 0 : 2;
  }
  if (args.pipe && args.port >= 0) {
    std::fprintf(stderr, "error: --pipe and --port are exclusive\n");
    return 2;
  }
  if (args.workers == 0 || args.queue == 0 || args.cache == 0) {
    std::fprintf(stderr, "error: --workers/--queue/--cache must be > 0\n");
    return 2;
  }

  // A client that disconnects mid-response must cost one session, not the
  // daemon: library sends use MSG_NOSIGNAL, and this covers stray paths.
  tecfan::service::ignore_sigpipe();

  tecfan::service::ServerOptions options;
  options.workers = args.workers;
  options.queue_capacity = args.queue;
  options.cache_capacity = args.cache;
  options.default_deadline_ms = args.deadline_ms;
  options.instance_name = args.name;
  options.trace_every = args.trace_every;
  tecfan::service::Server server(options);

  // Periodic telemetry: a sampling thread that logs per-stage percentiles
  // to stderr, independent of (and in the same format as) the `metrics`
  // protocol verb.
  std::atomic<bool> stop_metrics{false};
  std::thread metrics_logger;
  if (args.metrics_interval_s > 0) {
    metrics_logger = std::thread([&server, &stop_metrics,
                                  interval = args.metrics_interval_s] {
      const auto step = std::chrono::duration<double>(interval);
      auto next = std::chrono::steady_clock::now() + step;
      while (!stop_metrics.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (std::chrono::steady_clock::now() < next) continue;
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(step);
        log_metrics(server);
      }
    });
  }
  const auto stop_logger = [&stop_metrics, &metrics_logger] {
    stop_metrics.store(true);
    if (metrics_logger.joinable()) metrics_logger.join();
  };

  if (args.port >= 0) {
    const std::uint16_t port =
        server.bind_listen(static_cast<std::uint16_t>(args.port));
    std::fprintf(stderr, "tecfand: listening on 127.0.0.1:%u (%zu workers)\n",
                 port, args.workers);
    std::fflush(stderr);
    server.serve();
    stop_logger();
    return 0;
  }

  server.serve_pipe(std::cin, std::cout);
  stop_logger();
  return 0;
}
