#include <cstdio>
#include <memory>
#include "core/exhaustive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/wikipedia_trace.h"
#include "sim/server_system.h"
#include "util/units.h"

using namespace tecfan;

static void report(const char* tag, const sim::RunResult& r, const sim::RunResult* ref) {
  double p=r.avg_total_power_w(), e=r.energy_j, d=r.exec_time_s, edp=r.edp();
  if (ref) {
    std::printf("%-9s delay %.3f power %.3f energy %.3f edp %.3f | peak %.2fC viol %.2f%% fan %d\n",
      tag, d/ref->exec_time_s, p/ref->avg_total_power_w(), e/ref->energy_j, edp/ref->edp(),
      kelvin_to_celsius(r.peak_temp_k), 100*r.violation_frac, r.fan_level);
  } else {
    std::printf("%-9s delay %.1fs power %.2fW energy %.0fJ | peak %.2fC viol %.2f%% fan %d dvfs %.2f tec? \n",
      tag, d, p, e, kelvin_to_celsius(r.peak_temp_k), 100*r.violation_frac, r.fan_level, 0.0);
  }
}

int main() {
  perf::WikipediaTrace trace;
  std::printf("trace mean demand (40min) = %.4f\n", trace.mean_demand_40min());
  sim::ServerConfig cfg;
  cfg.record_trace = false;
  sim::ServerSimulator simulator(cfg);

  core::PolicyOptions popt; popt.manage_fan = true; popt.fan_period_intervals = cfg.fan_period_intervals;
  core::ExhaustiveOptions xopt; xopt.base = popt;

  core::OftecPolicy oftec(xopt);
  sim::RunResult r_oftec = simulator.run(oftec, trace);
  report("OFTEC", r_oftec, nullptr);

  core::TecFanPolicy tecfan(popt);
  sim::RunResult r_tecfan = simulator.run(tecfan, trace);
  auto ref_ips = std::make_shared<std::vector<double>>(simulator.last_capacity_trace());
  report("TECfan", r_tecfan, &r_oftec);

  core::OraclePolicy oracle(xopt);
  sim::RunResult r_oracle = simulator.run(oracle, trace);
  report("Oracle", r_oracle, &r_oftec);

  core::OraclePPolicy oraclep(xopt, ref_ips);
  sim::RunResult r_oraclep = simulator.run(oraclep, trace);
  report("Oracle-P", r_oraclep, &r_oftec);
  report("OFTEC/n", r_oftec, &r_oftec);
  return 0;
}
