#include <cstdio>
#include "perf/splash2.h"
#include "sim/chip_simulator.h"
#include "sim/experiment.h"
#include "util/units.h"

int main() {
  using namespace tecfan;
  const sim::ChipEnginePtr engine = sim::make_default_chip_engine();
  const sim::ChipModels& models = engine->models();
  sim::ChipSimulator simulator(engine);
  std::printf("%-10s %3s | %7s %7s | %6s %6s | %6s %6s\n",
              "bench", "thr", "t_paper", "t_meas", "P_pap", "P_meas", "T_pap", "T_meas");
  for (const auto& c : perf::table1_cases()) {
    auto wl = std::make_shared<perf::SyntheticSplash>(c, models.thermal->floorplan(),
                                                      models.dynamic, models.leak_quad);
    sim::RunResult base = sim::measure_base_scenario(simulator, *wl);
    std::printf("%-10s %3d | %7.2f %7.2f | %6.1f %6.1f | %6.2f %6.2f\n",
                c.benchmark.c_str(), c.threads, c.time_ms, base.exec_time_s*1e3,
                c.power_w, base.avg_power.chip_w(),
                c.peak_temp_c, kelvin_to_celsius(base.peak_temp_k));
  }
  return 0;
}
