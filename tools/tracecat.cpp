// tracecat — dump sampled traces from a running tecfand or tecrouter.
//
// Connects to the daemon's loopback port, issues the `trace` protocol
// verb, and prints each completed trace as one JSON object per line
// (JSONL), ready for jq or a file. Pointed at a tecrouter, the objects
// are the reassembled cross-tier trees: the router's route/backend_wait
// spans plus the winning backend's queue_wait/compute/serialize spans,
// all under one trace id.
//
//   tecrouter --port 7400 --backends 7411,7412 --trace-every 100 &
//   tools/tracecat --port 7400 | jq .
//   tools/tracecat --port 7400 --limit 4 --follow 2   # poll every 2 s
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include <unistd.h>

#include "service/framing.h"
#include "service/request.h"

namespace {

using namespace tecfan;

struct Args {
  int port = -1;
  int limit = 16;
  double follow_s = 0.0;  // 0: one shot
  bool help = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: tracecat --port N [--limit N] [--follow S]\n"
               "  --port N    tecfand or tecrouter loopback port\n"
               "  --limit N   max traces per dump (16)\n"
               "  --follow S  keep polling every S seconds (0 = one shot);\n"
               "              repeated dumps may repeat traces still in the\n"
               "              ring — dedup on trace_id downstream\n");
}

bool parse(int argc, char** argv, Args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](int& i) -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      const char* v = next(i);
      if (!v) return false;
      out.port = std::atoi(v);
    } else if (a == "--limit") {
      const char* v = next(i);
      if (!v) return false;
      out.limit = std::atoi(v);
    } else if (a == "--follow") {
      const char* v = next(i);
      if (!v) return false;
      out.follow_s = std::atof(v);
    } else if (a == "--help" || a == "-h") {
      out.help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return out.port > 0 && out.port <= 65535 && out.limit > 0 &&
         out.follow_s >= 0;
}

/// One `trace` round trip; prints each returned trace as a JSON line.
/// Returns the number of traces printed, or -1 on a protocol error.
int dump_once(int fd, service::LineReader& reader, int limit) {
  const std::string verb = "trace limit=" + std::to_string(limit) + "\n";
  if (!service::send_all(fd, verb)) return -1;
  const auto line = reader.read_line();
  if (!line) return -1;
  const service::Response r = service::parse_response(*line);
  if (r.status != service::Response::Status::kOk) {
    std::fprintf(stderr, "tracecat: %s\n", line->c_str());
    return -1;
  }
  int count = 0;
  if (auto n = r.field("traces")) count = std::atoi(n->c_str());
  for (int i = 0; i < count; ++i) {
    const auto t = r.field("t" + std::to_string(i));
    if (!t) break;
    std::printf("%s\n", t->c_str());
  }
  std::fflush(stdout);
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args) || args.help) {
    usage();
    return args.help ? 0 : 2;
  }
  service::ignore_sigpipe();

  const int fd =
      service::connect_loopback(static_cast<std::uint16_t>(args.port));
  if (fd < 0) {
    std::fprintf(stderr, "tracecat: cannot connect to 127.0.0.1:%d\n",
                 args.port);
    return 1;
  }
  service::LineReader reader(fd);

  int rc = 0;
  for (;;) {
    const int n = dump_once(fd, reader, args.limit);
    if (n < 0) {
      rc = 1;
      break;
    }
    if (args.follow_s <= 0) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(args.follow_s));
  }
  ::close(fd);
  return rc;
}
