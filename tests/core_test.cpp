#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "core/action_set.h"
#include "core/actions.h"
#include "core/chip_planning_model.h"
#include "core/control_engine.h"
#include "core/exhaustive_policies.h"
#include "core/hw_cost.h"
#include "core/planning.h"
#include "core/reactive_policies.h"
#include "core/tecfan_policy.h"
#include "sim/defaults.h"
#include "thermal/solvers.h"
#include "util/error.h"
#include "util/rng.h"

namespace tecfan::core {
namespace {

// A transparent analytic planning model: one spot per core, one TEC per
// spot. Spot temperature = base + heat(dvfs) + fan_penalty - tec_relief;
// power and IPS are simple separable functions. This pins down policy
// *logic* independent of the thermal simulator.
class FakePlanningModel final : public PlanningModel {
 public:
  static constexpr int kCores = 4;
  static constexpr int kDvfsLevels = 4;
  static constexpr int kFanLevels = 4;

  linalg::Vector base_temp{370.0, 360.0, 355.0, 350.0};
  double tec_relief = 4.0;       // K per active TEC
  double dvfs_step_relief = 3.0;  // K per DVFS step down
  double fan_step_penalty = 2.0;  // K per fan level slower
  double threshold = 365.0;
  double tec_power = 0.3;
  double core_power_top = 10.0;
  double fixed_power = 5.0;
  double core_ips_top = 1e9;
  // Per-core served-work cap (server-style demand saturation); raising DVFS
  // past this point buys no throughput.
  double core_ips_cap = 1e18;

  FakePlanningModel() {
    tec_map_.resize(kCores);
    for (std::size_t s = 0; s < kCores; ++s) tec_map_[s] = {s};
    sensed_ = base_temp;
  }

  int core_count() const override { return kCores; }
  std::size_t tec_count() const override { return kCores; }
  int dvfs_level_count() const override { return kDvfsLevels; }
  int fan_level_count() const override { return kFanLevels; }
  std::size_t spot_count() const override { return kCores; }
  int core_of_spot(std::size_t s) const override {
    return static_cast<int>(s);
  }
  const std::vector<std::size_t>& tecs_over(std::size_t s) const override {
    return tec_map_[s];
  }
  const linalg::Vector& sensed_temps() const override { return sensed_; }
  double threshold_k() const override { return threshold; }

  Prediction predict(const KnobState& k) override {
    ++predict_calls;
    Prediction p;
    p.spot_temps_k.resize(kCores);
    double power = fixed_power + 0.5 * (kFanLevels - 1 - k.fan_level);
    double ips = 0.0;
    for (int n = 0; n < kCores; ++n) {
      const auto ni = static_cast<std::size_t>(n);
      const double freq = 1.0 - 0.15 * k.dvfs[ni];
      p.spot_temps_k[ni] = base_temp[ni] - dvfs_step_relief * k.dvfs[ni] -
                           (k.tec_on[ni] ? tec_relief : 0.0) +
                           fan_step_penalty * k.fan_level;
      power += core_power_top * freq * freq * freq;
      if (k.tec_on[ni]) power += tec_power;
      ips += std::min(core_ips_top * freq, core_ips_cap);
    }
    p.power.dynamic_w = power;
    p.ips = ips;
    p.capacity_ips = ips;
    return p;
  }

  Prediction predict_steady(const KnobState& k) override {
    return predict(k);
  }

  void set_sensed(linalg::Vector t) { sensed_ = std::move(t); }

  int predict_calls = 0;

 private:
  std::vector<std::vector<std::size_t>> tec_map_;
  linalg::Vector sensed_;
};

KnobState initial_knobs(const FakePlanningModel& m, int fan = 0) {
  return KnobState::initial(m.core_count(), m.tec_count(), fan);
}

// ------------------------------------------------------------ KnobState
TEST(KnobState, InitialAndHelpers) {
  KnobState k = KnobState::initial(4, 9, 2);
  EXPECT_EQ(k.dvfs.size(), 4u);
  EXPECT_EQ(k.tec_on.size(), 9u);
  EXPECT_EQ(k.fan_level, 2);
  EXPECT_EQ(k.tecs_active(), 0u);
  EXPECT_DOUBLE_EQ(k.mean_dvfs(), 0.0);
  k.tec_on[1] = k.tec_on[5] = 1;
  k.dvfs = {0, 1, 2, 1};
  EXPECT_EQ(k.tecs_active(), 2u);
  EXPECT_DOUBLE_EQ(k.mean_dvfs(), 1.0);
}

TEST(Prediction, EpiAndMaxTemp) {
  Prediction p;
  p.spot_temps_k = {350.0, 360.0, 340.0};
  p.power.dynamic_w = 90.0;
  p.power.fan_w = 10.0;
  p.ips = 50.0;
  EXPECT_DOUBLE_EQ(p.max_temp_k(), 360.0);
  EXPECT_DOUBLE_EQ(p.epi(), 2.0);
  p.ips = 0.0;
  EXPECT_TRUE(std::isinf(p.epi()));
}

// ------------------------------------------------------------- reactive
TEST(FanOnly, NeverTouchesKnobs) {
  FakePlanningModel m;
  FanOnlyPolicy p;
  KnobState k = initial_knobs(m, 1);
  k.tec_on[2] = 1;
  const KnobState out = p.decide(m, k);
  EXPECT_EQ(out, k);
}

TEST(FanTec, TurnsOnOverHotSpotOnly) {
  FakePlanningModel m;
  m.set_sensed({370.0, 360.0, 355.0, 350.0});  // spot 0 hot (> 365)
  FanTecPolicy p;
  const KnobState out = p.decide(m, initial_knobs(m));
  EXPECT_EQ(out.tec_on[0], 1);
  EXPECT_EQ(out.tec_on[1], 0);
  EXPECT_EQ(out.tec_on[2], 0);
}

TEST(FanTec, HysteresisKeepsDeviceOnNearThreshold) {
  FakePlanningModel m;
  FanTecPolicy p(/*off_margin_k=*/5.0);
  KnobState k = initial_knobs(m);
  k.tec_on[1] = 1;
  // Spot 1 at threshold - 2 (inside the margin): stays on.
  m.set_sensed({340.0, 363.0, 340.0, 340.0});
  EXPECT_EQ(p.decide(m, k).tec_on[1], 1);
  // Spot 1 well below threshold - 5: turns off.
  m.set_sensed({340.0, 355.0, 340.0, 340.0});
  EXPECT_EQ(p.decide(m, k).tec_on[1], 0);
}

TEST(FanDvfs, ThrottlesHotCoreRaisesCoolCore) {
  FakePlanningModel m;
  m.set_sensed({370.0, 340.0, 340.0, 340.0});
  FanDvfsPolicy p(/*up_margin_k=*/2.0);
  KnobState k = initial_knobs(m);
  k.dvfs = {1, 2, 0, 0};
  const KnobState out = p.decide(m, k);
  EXPECT_EQ(out.dvfs[0], 2);  // hot: step down
  EXPECT_EQ(out.dvfs[1], 1);  // cool: step up
  EXPECT_EQ(out.dvfs[2], 0);  // already at top
}

TEST(FanDvfs, GuardBandBlocksRaise) {
  FakePlanningModel m;
  m.set_sensed({364.0, 340.0, 340.0, 340.0});  // within 2 K of 365
  FanDvfsPolicy p(/*up_margin_k=*/2.0);
  KnobState k = initial_knobs(m);
  k.dvfs = {1, 0, 0, 0};
  EXPECT_EQ(p.decide(m, k).dvfs[0], 1);  // neither hot nor cool: hold
}

TEST(FanDvfs, SaturatesAtSlowestLevel) {
  FakePlanningModel m;
  m.set_sensed({400.0, 400.0, 400.0, 400.0});
  FanDvfsPolicy p;
  KnobState k = initial_knobs(m);
  k.dvfs = {3, 3, 3, 3};
  const KnobState out = p.decide(m, k);
  for (int d : out.dvfs) EXPECT_EQ(d, 3);
}

TEST(DvfsTec, AppliesBothRulesIndependently) {
  FakePlanningModel m;
  m.set_sensed({370.0, 340.0, 340.0, 340.0});
  DvfsTecPolicy p;
  KnobState k = initial_knobs(m);
  const KnobState out = p.decide(m, k);
  EXPECT_EQ(out.tec_on[0], 1);  // TEC rule fires
  EXPECT_EQ(out.dvfs[0], 1);    // DVFS rule fires too (uncoordinated)
}

// --------------------------------------------------------------- TECfan
TEST(TecFan, CoolSystemAtTopStaysPut) {
  FakePlanningModel m;
  m.base_temp = {350.0, 350.0, 350.0, 350.0};
  TecFanPolicy p;
  const KnobState out = p.decide(m, initial_knobs(m));
  for (int d : out.dvfs) EXPECT_EQ(d, 0);
  EXPECT_EQ(out.tecs_active(), 0u);
}

TEST(TecFan, HotIterationPrefersTecOverDvfs) {
  FakePlanningModel m;
  m.base_temp = {368.0, 350.0, 350.0, 350.0};  // 3 K over; one TEC fixes it
  TecFanPolicy p(PolicyOptions{.constraint_margin_k = 0.0});
  const KnobState out = p.decide(m, initial_knobs(m));
  EXPECT_EQ(out.tec_on[0], 1);
  for (int d : out.dvfs) EXPECT_EQ(d, 0);  // no throttling needed
}

TEST(TecFan, HotIterationFallsBackToDvfsWhenTecsExhausted) {
  FakePlanningModel m;
  m.base_temp = {375.0, 350.0, 350.0, 350.0};  // 10 K over; TEC gives 4 K
  TecFanPolicy p(PolicyOptions{.constraint_margin_k = 0.0});
  const KnobState out = p.decide(m, initial_knobs(m));
  EXPECT_EQ(out.tec_on[0], 1);
  EXPECT_GT(out.dvfs[0], 0);  // hottest core throttled
  // Resulting prediction satisfies the constraint.
  EXPECT_LE(m.predict(out).max_temp_k(), m.threshold + 1e-9);
}

TEST(TecFan, CoolIterationRaisesThrottledCores) {
  FakePlanningModel m;
  m.base_temp = {340.0, 340.0, 340.0, 340.0};
  TecFanPolicy p;
  KnobState k = initial_knobs(m);
  k.dvfs = {2, 1, 0, 3};
  const KnobState out = p.decide(m, k);
  for (int d : out.dvfs) EXPECT_EQ(d, 0);  // plenty of headroom: all raised
}

TEST(TecFan, CoolIterationStopsBeforeViolation) {
  FakePlanningModel m;
  // Core 0 at 361 when at top; raising from level 1 (358 + 3 = 361 < 365)
  // is fine, but the fan penalty is 0 here; craft so only one step fits.
  m.base_temp = {364.0, 340.0, 340.0, 340.0};
  m.dvfs_step_relief = 2.0;  // top level puts spot 0 at 364 < 365
  TecFanPolicy p(PolicyOptions{.constraint_margin_k = 0.0});
  KnobState k = initial_knobs(m);
  k.dvfs = {3, 0, 0, 0};
  const KnobState out = p.decide(m, k);
  EXPECT_EQ(out.dvfs[0], 0);  // could raise fully without violating
  m.base_temp = {368.0, 340.0, 340.0, 340.0};  // now top level violates
  const KnobState out2 = p.decide(m, k);
  EXPECT_GT(out2.dvfs[0], 0);
  EXPECT_LE(m.predict(out2).max_temp_k(), m.threshold + 1e-9);
}

TEST(TecFan, CoolIterationTurnsOffTecOnceCoresAtTop) {
  FakePlanningModel m;
  m.base_temp = {340.0, 340.0, 340.0, 340.0};
  TecFanPolicy p;
  KnobState k = initial_knobs(m);
  k.tec_on = {1, 1, 1, 1};
  const KnobState out = p.decide(m, k);
  EXPECT_LT(out.tecs_active(), 4u);  // saves TEC energy when safe
}

TEST(TecFan, RaiseSkippedWhenNoThroughputGain) {
  // Server-style saturation: every core serves all demand even at the
  // lowest level, so raising buys no throughput and TECfan keeps the
  // energy-efficient throttled posture (Sec. V-E behaviour).
  FakePlanningModel m;
  m.base_temp = {340.0, 340.0, 340.0, 340.0};
  m.core_ips_cap = 0.5e9;  // below even the slowest level's 0.55e9
  TecFanPolicy p;
  KnobState k = initial_knobs(m);
  k.dvfs = {3, 3, 3, 3};
  const KnobState out = p.decide(m, k);
  for (int d : out.dvfs) EXPECT_EQ(d, 3);
}

TEST(TecFan, FanLoopSpeedsUpWhenHotSlowsWhenCool) {
  FakePlanningModel m;
  PolicyOptions opt;
  opt.manage_fan = true;
  opt.fan_period_intervals = 1;
  opt.fan_margin_k = 0.5;
  opt.constraint_margin_k = 0.0;
  // Hot at fan 2: steady max = 368 + 2*2 = 372 > 365 -> speed up.
  m.base_temp = {368.0, 340.0, 340.0, 340.0};
  m.tec_relief = 0.0;  // isolate the fan decision
  TecFanPolicy p(opt);
  KnobState k = initial_knobs(m, /*fan=*/2);
  const KnobState hot_out = p.decide(m, k);
  EXPECT_LT(hot_out.fan_level, 2);
  // Cool everywhere: slows down as far as the margin allows.
  m.base_temp = {330.0, 330.0, 330.0, 330.0};
  TecFanPolicy p2(opt);
  const KnobState cool_out = p2.decide(m, initial_knobs(m, 0));
  EXPECT_EQ(cool_out.fan_level, m.fan_level_count() - 1);
}

TEST(TecFan, PredictionCountWithinComplexityBound) {
  FakePlanningModel m;
  m.base_temp = {375.0, 368.0, 366.0, 350.0};
  TecFanPolicy p;
  p.decide(m, initial_knobs(m));
  // O(NL + N^2 M): N=4, L=1, M=4 -> 4 + 64 plus bounded constants.
  EXPECT_LE(m.predict_calls, 4 * 1 + 4 * 4 * 4 + 16);
}

TEST(TecFan, ChipWideDvfsMovesCoresTogether) {
  // Sec. III-E: TECfan integrates with chip-level DVFS seamlessly — in
  // that mode every DVFS move applies to all cores at once.
  FakePlanningModel m;
  m.base_temp = {380.0, 378.0, 379.0, 377.0};  // deep violation everywhere
  m.tec_relief = 0.5;                          // TECs can't fix it
  PolicyOptions opt;
  opt.constraint_margin_k = 0.0;
  opt.chip_wide_dvfs = true;
  TecFanPolicy p(opt);
  const KnobState out = p.decide(m, initial_knobs(m));
  for (std::size_t n = 1; n < out.dvfs.size(); ++n)
    EXPECT_EQ(out.dvfs[n], out.dvfs[0]);
  EXPECT_GT(out.dvfs[0], 0);
  // And the cool iteration raises them back together.
  m.base_temp = {340.0, 340.0, 340.0, 340.0};
  TecFanPolicy p2(opt);
  KnobState throttled = initial_knobs(m);
  throttled.dvfs = {2, 2, 2, 2};
  const KnobState raised = p2.decide(m, throttled);
  for (std::size_t n = 1; n < raised.dvfs.size(); ++n)
    EXPECT_EQ(raised.dvfs[n], raised.dvfs[0]);
  EXPECT_EQ(raised.dvfs[0], 0);
}

TEST(TecFan, ResetClearsIntervalCounter) {
  FakePlanningModel m;
  PolicyOptions opt;
  opt.manage_fan = true;
  opt.fan_period_intervals = 100;  // only the first interval adjusts fan
  m.base_temp = {330.0, 330.0, 330.0, 330.0};
  TecFanPolicy p(opt);
  const KnobState a = p.decide(m, initial_knobs(m, 0));
  EXPECT_GT(a.fan_level, 0);  // first interval: fan adjusted
  p.reset();
  const KnobState b = p.decide(m, initial_knobs(m, 0));
  EXPECT_GT(b.fan_level, 0);  // counter reset: adjusts again
}

// ------------------------------------------------------------ exhaustive
TEST(Oracle, FindsConstraintSatisfyingMinimumEpi) {
  FakePlanningModel m;
  m.base_temp = {368.0, 350.0, 350.0, 350.0};
  ExhaustiveOptions opt;
  opt.base.constraint_margin_k = 0.0;
  OraclePolicy oracle(opt);
  const KnobState out = oracle.decide(m, initial_knobs(m));
  const Prediction p = m.predict(out);
  EXPECT_LE(p.max_temp_k(), m.threshold + 1e-9);
  // Exhaustive over dvfs^N x 2^N.
  EXPECT_EQ(oracle.last_candidate_count(),
            static_cast<std::size_t>(std::pow(4, 4) * 16));
}

TEST(Oracle, NeverWorseThanTecFan) {
  // On the same model and knobs, Oracle's chosen EPI must be <= TECfan's
  // (both subject to the same constraint).
  for (double hot : {350.0, 362.0, 368.0, 372.0}) {
    FakePlanningModel m;
    m.base_temp = {hot, 355.0, 350.0, 345.0};
    ExhaustiveOptions xopt;
    xopt.base.constraint_margin_k = 0.0;
    OraclePolicy oracle(xopt);
    TecFanPolicy tecfan(PolicyOptions{.constraint_margin_k = 0.0});
    const KnobState ko = oracle.decide(m, initial_knobs(m));
    const KnobState kt = tecfan.decide(m, initial_knobs(m));
    const Prediction po = m.predict(ko);
    const Prediction pt = m.predict(kt);
    if (po.max_temp_k() <= m.threshold && pt.max_temp_k() <= m.threshold) {
      EXPECT_LE(po.epi(), pt.epi() + 1e-9) << "hot=" << hot;
    }
  }
}

TEST(Oracle, PicksCoolestWhenInfeasible) {
  FakePlanningModel m;
  m.base_temp = {420.0, 420.0, 420.0, 420.0};  // nothing satisfies 365 K
  OraclePolicy oracle;
  const KnobState out = oracle.decide(m, initial_knobs(m));
  // Coolest possible: all TECs on, all cores at the slowest level.
  EXPECT_EQ(out.tecs_active(), 4u);
  for (int d : out.dvfs) EXPECT_EQ(d, 3);
}

TEST(Oracle, GuardsAgainstHugeSearchSpaces) {
  FakePlanningModel m;
  ExhaustiveOptions opt;
  opt.max_candidates = 10;  // 4^4 * 2^4 = 4096 > 10
  OraclePolicy oracle(opt);
  EXPECT_THROW(oracle.decide(m, initial_knobs(m)), precondition_error);
}

TEST(OracleP, RespectsCapacityFloor) {
  FakePlanningModel m;
  m.base_temp = {340.0, 340.0, 340.0, 340.0};  // thermally unconstrained
  // Without a floor, Oracle throttles everything to minimize EPI (cubic
  // power vs linear ips).
  ExhaustiveOptions xopt;
  OraclePolicy plain(xopt);
  const KnobState unconstrained = plain.decide(m, initial_knobs(m));
  EXPECT_GT(unconstrained.mean_dvfs(), 0.0);
  // With a full-speed capacity floor, it must keep every core at the top.
  auto floor = std::make_shared<std::vector<double>>(
      std::vector<double>{4e9});  // 4 cores x 1e9 at top
  OraclePPolicy constrained(xopt, floor);
  const KnobState out = constrained.decide(m, initial_knobs(m));
  for (int d : out.dvfs) EXPECT_EQ(d, 0);
}

TEST(OracleP, RequiresReference) {
  EXPECT_THROW(OraclePPolicy(ExhaustiveOptions{}, nullptr),
               precondition_error);
}

TEST(Oftec, NeverTouchesDvfs) {
  FakePlanningModel m;
  m.base_temp = {375.0, 350.0, 350.0, 350.0};
  OftecPolicy oftec;
  KnobState k = initial_knobs(m);
  k.dvfs = {2, 2, 2, 2};  // even if handed throttled state...
  const KnobState out = oftec.decide(m, k);
  for (int d : out.dvfs) EXPECT_EQ(d, 0);  // ...OFTEC pins the top level
}

TEST(Oftec, MinimizesCoolingPowerSubjectToConstraint) {
  FakePlanningModel m;
  m.base_temp = {368.0, 350.0, 350.0, 350.0};
  ExhaustiveOptions opt;
  opt.base.constraint_margin_k = 0.0;
  OftecPolicy oftec(opt);
  const KnobState out = oftec.decide(m, initial_knobs(m));
  const Prediction p = m.predict(out);
  EXPECT_LE(p.max_temp_k(), m.threshold + 1e-9);
  // One TEC suffices; more would cost extra cooling power.
  EXPECT_EQ(out.tecs_active(), 1u);
  EXPECT_EQ(out.tec_on[0], 1);
}

// ------------------------------------------------ randomized properties
class RandomScenarios : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  FakePlanningModel random_model() {
    Rng rng(GetParam());
    FakePlanningModel m;
    for (auto& t : m.base_temp) t = rng.uniform(345.0, 378.0);
    m.tec_relief = rng.uniform(2.0, 6.0);
    m.dvfs_step_relief = rng.uniform(1.5, 4.0);
    m.tec_power = rng.uniform(0.05, 0.6);
    m.fixed_power = rng.uniform(2.0, 8.0);
    return m;
  }
};

TEST_P(RandomScenarios, TecFanSatisfiesConstraintWheneverFeasible) {
  FakePlanningModel m = random_model();
  PolicyOptions opt;
  opt.constraint_margin_k = 0.0;
  TecFanPolicy p(opt);
  const KnobState out = p.decide(m, initial_knobs(m));
  // Feasibility check: the coolest possible configuration.
  KnobState coolest = initial_knobs(m);
  for (auto& b : coolest.tec_on) b = 1;
  for (auto& d : coolest.dvfs) d = m.dvfs_level_count() - 1;
  if (m.predict(coolest).max_temp_k() <= m.threshold) {
    EXPECT_LE(m.predict(out).max_temp_k(), m.threshold + 1e-9)
        << "seed " << GetParam();
  }
}

TEST_P(RandomScenarios, OracleNeverWorseThanAnyHeuristic) {
  FakePlanningModel m = random_model();
  ExhaustiveOptions xopt;
  xopt.base.constraint_margin_k = 0.0;
  OraclePolicy oracle(xopt);
  PolicyOptions popt;
  popt.constraint_margin_k = 0.0;
  TecFanPolicy tecfan(popt);
  FanTecPolicy fantec;
  const Prediction po = m.predict(oracle.decide(m, initial_knobs(m)));
  for (Policy* h : {static_cast<Policy*>(&tecfan),
                    static_cast<Policy*>(&fantec)}) {
    const Prediction ph = m.predict(h->decide(m, initial_knobs(m)));
    if (po.max_temp_k() <= m.threshold && ph.max_temp_k() <= m.threshold) {
      EXPECT_LE(po.epi(), ph.epi() + 1e-9)
          << "seed " << GetParam() << " vs " << h->name();
    }
  }
}

TEST_P(RandomScenarios, TecFanIdempotentOnItsOwnOutput) {
  // Deciding again from TECfan's chosen configuration with unchanged
  // sensing must not oscillate wildly: the follow-up decision stays within
  // one DVFS step per core.
  FakePlanningModel m = random_model();
  TecFanPolicy p;
  const KnobState once = p.decide(m, initial_knobs(m));
  const KnobState twice = p.decide(m, once);
  for (std::size_t n = 0; n < once.dvfs.size(); ++n)
    EXPECT_LE(std::abs(once.dvfs[n] - twice.dvfs[n]), 1)
        << "seed " << GetParam();
}

TEST_P(RandomScenarios, OftecCoolingNeverAboveAllOnConfiguration) {
  FakePlanningModel m = random_model();
  ExhaustiveOptions xopt;
  xopt.base.constraint_margin_k = 0.0;
  OftecPolicy oftec(xopt);
  const KnobState out = oftec.decide(m, initial_knobs(m));
  KnobState all_on = initial_knobs(m);
  for (auto& b : all_on.tec_on) b = 1;
  const Prediction p_out = m.predict(out);
  const Prediction p_all = m.predict(all_on);
  if (p_out.max_temp_k() <= m.threshold &&
      p_all.max_temp_k() <= m.threshold) {
    EXPECT_LE(p_out.power.cooling_w() + p_out.power.leakage_w,
              p_all.power.cooling_w() + p_all.power.leakage_w + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenarios,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------------------- planning
// One 2x2 model bundle + thermal engine shared by the planner tests; each
// planner is a cheap workspace over the engine's factorization.
const sim::ChipModels& planning_models() {
  static const sim::ChipModels m = sim::make_chip_models(2, 2);
  return m;
}

const std::shared_ptr<const thermal::ThermalEngine>& planning_engine() {
  static const auto e = thermal::make_thermal_engine(planning_models().thermal);
  return e;
}

TEST(ChipPlanningModel, ObserveThenPredictRoundTrip) {
  const sim::ChipModels& models = planning_models();
  ChipPlanningModel::Config cfg;
  cfg.fan = models.fan;
  cfg.dvfs = models.dvfs;
  cfg.leakage = models.leak_linear;
  ChipPlanningModel planner(planning_engine(), cfg);
  EXPECT_THROW(planner.predict(KnobState::initial(4, 36)),
               precondition_error);

  ChipPlanningModel::Observation obs;
  const std::size_t n = models.thermal->component_count();
  obs.comp_temps_k.assign(n, 350.0);
  obs.comp_dyn_power_w.assign(n, 0.3);
  obs.core_ips.assign(4, 1.2e9);
  obs.applied = KnobState::initial(4, 36, 1);
  planner.observe(obs);

  const Prediction p = planner.predict(obs.applied);
  EXPECT_EQ(p.spot_temps_k.size(), n);
  EXPECT_NEAR(p.ips, 4 * 1.2e9, 1);
  EXPECT_NEAR(p.power.dynamic_w, 0.3 * n, 1e-9);
  EXPECT_GT(p.power.leakage_w, 0.0);
  EXPECT_NEAR(p.power.fan_w, models.fan.power_w(1), 1e-12);
}

TEST(ChipPlanningModel, Eq7ScalingAppliedPerCore) {
  const sim::ChipModels& models = planning_models();
  ChipPlanningModel::Config cfg;
  cfg.fan = models.fan;
  cfg.dvfs = models.dvfs;
  ChipPlanningModel planner(planning_engine(), cfg);
  ChipPlanningModel::Observation obs;
  const std::size_t n = models.thermal->component_count();
  obs.comp_temps_k.assign(n, 350.0);
  obs.comp_dyn_power_w.assign(n, 0.4);
  obs.core_ips.assign(4, 1.0e9);
  obs.applied = KnobState::initial(4, 36);
  planner.observe(obs);

  KnobState throttled = obs.applied;
  throttled.dvfs[0] = 2;
  const Prediction p0 = planner.predict(obs.applied);
  const Prediction p1 = planner.predict(throttled);
  // One of four cores scaled by dyn_scale(0, 2).
  const double scale = models.dvfs.dyn_scale(0, 2);
  EXPECT_NEAR(p1.power.dynamic_w,
              p0.power.dynamic_w * (3.0 + scale) / 4.0, 1e-9);
  // Eq. (11): IPS of that core scales with frequency.
  EXPECT_NEAR(p1.ips, 3e9 + 1e9 * models.dvfs.freq_scale(0, 2), 1);
}

TEST(ChipPlanningModel, PredictionRespondsToKnobs) {
  const sim::ChipModels& models = planning_models();
  ChipPlanningModel::Config cfg;
  cfg.fan = models.fan;
  cfg.dvfs = models.dvfs;
  cfg.control_period_s = 1.0;  // long interval: prediction ~ steady state
  ChipPlanningModel planner(planning_engine(), cfg);
  ChipPlanningModel::Observation obs;
  const std::size_t n = models.thermal->component_count();
  obs.comp_temps_k.assign(n, 355.0);
  obs.comp_dyn_power_w.assign(n, 0.45);
  obs.core_ips.assign(4, 1.0e9);
  obs.applied = KnobState::initial(4, 36, 3);
  planner.observe(obs);

  const Prediction base = planner.predict(obs.applied);
  KnobState faster_fan = obs.applied;
  faster_fan.fan_level = 0;
  EXPECT_LT(planner.predict(faster_fan).max_temp_k(), base.max_temp_k());
  KnobState throttled = obs.applied;
  for (auto& d : throttled.dvfs) d = 5;
  EXPECT_LT(planner.predict(throttled).max_temp_k(), base.max_temp_k());
  KnobState tec_on = obs.applied;
  for (auto& b : tec_on.tec_on) b = 1;
  EXPECT_LT(planner.predict(tec_on).max_temp_k(), base.max_temp_k());
}

TEST(ChipPlanningModel, PredictBatchMatchesSequentialPredict) {
  const sim::ChipModels& models = planning_models();
  ChipPlanningModel::Config cfg;
  cfg.fan = models.fan;
  cfg.dvfs = models.dvfs;
  ChipPlanningModel planner(planning_engine(), cfg);
  ChipPlanningModel::Observation obs;
  const std::size_t n = models.thermal->component_count();
  obs.comp_temps_k.assign(n, 352.0);
  obs.comp_dyn_power_w.assign(n, 0.35);
  obs.core_ips.assign(4, 1.1e9);
  obs.applied = KnobState::initial(4, 36, 1);
  planner.observe(obs);

  std::vector<KnobState> candidates;
  for (int fan = 0; fan < 4; ++fan) {
    KnobState k = KnobState::initial(4, 36, fan);
    k.dvfs[static_cast<std::size_t>(fan) % 4] = fan;
    k.tec_on[static_cast<std::size_t>(fan)] = fan % 2;
    candidates.push_back(k);
  }
  // Batch evaluation fans out over worker threads (each with its own
  // solver workspace) but must agree bit-for-bit with predict().
  const std::vector<Prediction> batch = planner.predict_batch(candidates);
  ASSERT_EQ(batch.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Prediction one = planner.predict(candidates[i]);
    EXPECT_EQ(batch[i].ips, one.ips);
    EXPECT_EQ(batch[i].power.dynamic_w, one.power.dynamic_w);
    EXPECT_EQ(batch[i].power.leakage_w, one.power.leakage_w);
    ASSERT_EQ(batch[i].spot_temps_k.size(), one.spot_temps_k.size());
    for (std::size_t sp = 0; sp < one.spot_temps_k.size(); ++sp)
      EXPECT_EQ(batch[i].spot_temps_k[sp], one.spot_temps_k[sp]);
  }
}

// -------------------------------------------------------- control engine

/// The recursion the pre-engine exhaustive baselines used, verbatim shape:
/// fan outermost, DVFS with core 0 slowest-varying, TEC mask innermost.
std::vector<KnobState> legacy_enumeration(const ControlDims& dims,
                                          const ActionSpec& spec,
                                          KnobState tmpl) {
  std::vector<KnobState> out;
  const std::uint64_t tec_combos = std::uint64_t{1} << dims.tecs;
  std::function<void(std::size_t)> dvfs_rec = [&](std::size_t core) {
    if (core == static_cast<std::size_t>(dims.cores) || !spec.include_dvfs) {
      for (std::uint64_t mask = 0; mask < tec_combos; ++mask) {
        for (std::size_t t = 0; t < dims.tecs; ++t)
          tmpl.tec_on[t] = (mask >> t) & 1u ? 1 : 0;
        out.push_back(tmpl);
      }
      return;
    }
    for (int lvl = 0; lvl < dims.dvfs_levels; ++lvl) {
      tmpl.dvfs[core] = lvl;
      dvfs_rec(core + 1);
    }
  };
  const int fan_span = spec.include_fan ? dims.fan_levels : 1;
  for (int lvl = 0; lvl < fan_span; ++lvl) {
    if (spec.include_fan) tmpl.fan_level = lvl;
    dvfs_rec(0);
  }
  return out;
}

TEST(ControlEngine, OrderMatchesLegacyRecursion) {
  const ControlDims dims{2, 3, 3, 4};
  const ControlEngine engine(dims);
  // Template with non-default uncovered knobs so we can see what an
  // enumeration is NOT allowed to touch.
  KnobState tmpl = KnobState::initial(2, 3, /*fan_level=*/2);
  tmpl.dvfs = {1, 2};
  tmpl.tec_on = {1, 0, 1};

  for (const bool with_dvfs : {true, false}) {
    for (const bool with_fan : {true, false}) {
      const ActionSpec spec{with_dvfs, with_fan};
      const auto set = engine.actions(spec);
      const std::vector<KnobState> expected =
          legacy_enumeration(dims, spec, tmpl);
      ASSERT_EQ(set->size(), expected.size())
          << "dvfs=" << with_dvfs << " fan=" << with_fan;
      EXPECT_EQ(engine.action_count(spec), expected.size());
      KnobState got = tmpl;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        got = tmpl;  // re-seed so untouched dimensions come from the template
        set->materialize(i, got);
        ASSERT_EQ(got, expected[i])
            << "candidate " << i << " dvfs=" << with_dvfs
            << " fan=" << with_fan;
      }
    }
  }
}

TEST(ControlEngine, ActionCountSaturatesOnChipScale) {
  // The 16-core chip: 2^36 TEC masks * 6^16 DVFS rows overflows any
  // integer; the count must saturate like the legacy guard did instead of
  // wrapping around to something small enough to pass a bound check.
  const ControlEngine engine(ControlDims{16, 36, 6, 4});
  const std::size_t full = engine.action_count(ActionSpec{true, true});
  EXPECT_EQ(full, static_cast<std::size_t>(-1));
  EXPECT_THROW(engine.actions(ActionSpec{true, true}), precondition_error);
  // TEC-only is 2^36: representable but far above the enumerable cap.
  EXPECT_EQ(engine.action_count(ActionSpec{false, false}),
            std::size_t{1} << 36);
  EXPECT_THROW(engine.actions(ActionSpec{false, false}), precondition_error);
}

TEST(ControlEngine, ActionsAreMemoizedPerSpec) {
  const ControlEngine engine(ControlDims{2, 2, 2, 2});
  const auto a = engine.actions(ActionSpec{true, false});
  const auto b = engine.actions(ActionSpec{true, false});
  EXPECT_EQ(a.get(), b.get());
  const auto c = engine.actions(ActionSpec{true, true});
  EXPECT_NE(a.get(), c.get());
  EXPECT_GE(engine.memory_bytes(), a->memory_bytes() + c->memory_bytes());
}

TEST(ControlEngine, TablesMatchSourceModels) {
  const sim::ChipModels& models = planning_models();
  const ControlDims dims{4, 36, models.dvfs.level_count(),
                         models.fan.level_count()};
  const ControlEnginePtr engine =
      make_control_engine(dims, models.dvfs, models.fan);
  ASSERT_TRUE(engine->has_tables());
  for (int from = 0; from < dims.dvfs_levels; ++from)
    for (int to = 0; to < dims.dvfs_levels; ++to) {
      EXPECT_EQ(engine->dyn_scale(from, to), models.dvfs.dyn_scale(from, to));
      EXPECT_EQ(engine->freq_scale(from, to),
                models.dvfs.freq_scale(from, to));
    }
  for (int lvl = 0; lvl < dims.fan_levels; ++lvl) {
    EXPECT_EQ(engine->fan_power_w(lvl), models.fan.power_w(lvl));
    EXPECT_EQ(engine->fan_airflow_cfm(lvl), models.fan.airflow_cfm(lvl));
  }
  EXPECT_FALSE(ControlEngine(dims).has_tables());
}

TEST(ControlEngine, EnsureReusesMatchingEngineOnly) {
  const sim::ChipModels& models = planning_models();
  ChipPlanningModel::Config cfg;
  cfg.fan = models.fan;
  cfg.dvfs = models.dvfs;
  ChipPlanningModel planner(planning_engine(), cfg);

  const ControlEnginePtr matching = make_control_engine(planner);
  ASSERT_TRUE(matching->matches(planner));
  EXPECT_EQ(ensure_control_engine(matching, planner).get(), matching.get());

  // A bare policy (no engine) gets a lazily-built dims-only engine...
  const ControlEnginePtr built = ensure_control_engine(nullptr, planner);
  ASSERT_NE(built, nullptr);
  EXPECT_TRUE(built->matches(planner));
  // ...and a mismatched engine (wrong knob space) is replaced, not reused.
  const ControlEnginePtr wrong =
      std::make_shared<const ControlEngine>(ControlDims{2, 2, 2, 2});
  const ControlEnginePtr fixed = ensure_control_engine(wrong, planner);
  EXPECT_NE(fixed.get(), wrong.get());
  EXPECT_TRUE(fixed->matches(planner));
}

TEST(ChipPlanningModel, EvaluateBatchMatchesSerialPredict) {
  const sim::ChipModels& models = planning_models();
  ChipPlanningModel::Config cfg;
  cfg.fan = models.fan;
  cfg.dvfs = models.dvfs;
  ChipPlanningModel planner(planning_engine(), cfg);
  ChipPlanningModel::Observation obs;
  const std::size_t n = models.thermal->component_count();
  obs.comp_temps_k.assign(n, 351.0);
  obs.comp_dyn_power_w.assign(n, 0.32);
  obs.core_ips.assign(4, 1.15e9);
  obs.applied = KnobState::initial(4, 36, 1);
  planner.observe(obs);

  // A reduced action space (first 4 TECs, fan) keeps the candidate count
  // testable; materialize only touches the dimensions the set covers.
  const ActionSet set(ControlDims{4, 4, models.dvfs.level_count(),
                                  models.fan.level_count()},
                      ActionSpec{false, true});
  std::vector<Prediction> batch;
  planner.evaluate_batch(set.all(), obs.applied, batch);
  ASSERT_EQ(batch.size(), set.size());

  KnobState knobs = obs.applied;
  for (std::size_t i = 0; i < set.size(); ++i) {
    set.materialize(i, knobs);
    const Prediction one = planner.predict(knobs);
    EXPECT_EQ(batch[i].ips, one.ips);
    EXPECT_EQ(batch[i].power.dynamic_w, one.power.dynamic_w);
    EXPECT_EQ(batch[i].power.leakage_w, one.power.leakage_w);
    EXPECT_EQ(batch[i].power.fan_w, one.power.fan_w);
    ASSERT_EQ(batch[i].spot_temps_k.size(), one.spot_temps_k.size());
    for (std::size_t sp = 0; sp < one.spot_temps_k.size(); ++sp)
      EXPECT_EQ(batch[i].spot_temps_k[sp], one.spot_temps_k[sp]);
  }
}

// --------------------------------------------------------------- hw cost
TEST(HwCost, PaperConfiguration) {
  const HwCostReport rep = estimate_hw_cost(HwCostInputs{});
  EXPECT_EQ(rep.multipliers, 54u);
  EXPECT_LT(rep.area_overhead_frac, 0.017);
  EXPECT_LT(rep.power_overhead_frac, 0.017);
  EXPECT_GT(rep.power_w, 0.0);
}

TEST(HwCost, ScalesWithDimensions) {
  HwCostInputs in;
  const HwCostReport base = estimate_hw_cost(in);
  in.thermal_neighbours = 6;
  const HwCostReport big = estimate_hw_cost(in);
  EXPECT_NEAR(big.total_area_mm2, 2 * base.total_area_mm2, 1e-12);
  in.operand_bits = 16;
  const HwCostReport wide = estimate_hw_cost(in);
  EXPECT_NEAR(wide.multiplier_area_mm2, 4 * big.multiplier_area_mm2, 1e-12);
  HwCostInputs bad;
  bad.die_area_mm2 = 0.0;
  EXPECT_THROW(estimate_hw_cost(bad), precondition_error);
}

}  // namespace
}  // namespace tecfan::core
