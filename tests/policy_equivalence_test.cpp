// PolicyEquivalence: the engine/workspace control layer must reproduce the
// pre-refactor policies' decisions bit-exactly.
//
// The `legacy` namespace below is a verbatim copy of the policy
// implementations as they existed before the ControlEngine refactor (own
// interval counters, per-candidate recursion in the exhaustives, scalar
// predict loops). Each test drives the legacy and the current policy
// through identical scenarios — full chip simulations on the Table I
// workloads, scripted server-model intervals for the exhaustive baselines —
// and requires the recorded action sequences to match exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/exhaustive_policies.h"
#include "core/policy_factory.h"
#include "core/reactive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/splash2.h"
#include "sim/chip_engine.h"
#include "sim/chip_simulator.h"
#include "sim/experiment.h"
#include "sim/server_system.h"

namespace tecfan {
namespace {

using core::KnobState;
using core::PlanningModel;
using core::PolicyOptions;
using core::Prediction;

// ===================================================================
// Verbatim pre-refactor implementations (do not modernize).
// ===================================================================
namespace legacy {

struct BestTracker {
  KnobState knobs;
  double epi = std::numeric_limits<double>::infinity();
  bool valid = false;

  void consider(const KnobState& k, const Prediction& p, double tth) {
    if (p.max_temp_k() > tth) return;
    if (!valid || p.epi() < epi) {
      knobs = k;
      epi = p.epi();
      valid = true;
    }
  }
};

class TecFanPolicy final : public core::Policy {
 public:
  explicit TecFanPolicy(PolicyOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "TECfan"; }
  void reset() override {
    interval_ = 0;
    predictions_ = 0;
  }
  KnobState decide(PlanningModel& model, const KnobState& current) override {
    predictions_ = 0;
    KnobState cand = current;
    if (options_.manage_fan &&
        interval_ % options_.fan_period_intervals == 0)
      cand.fan_level = fan_decision(model, cand);
    ++interval_;
    return lower_level(model, std::move(cand));
  }

  std::size_t last_prediction_count() const { return predictions_; }

 private:
  Prediction predict(PlanningModel& model, const KnobState& k) {
    ++predictions_;
    return model.predict(k);
  }

  KnobState lower_level(PlanningModel& model, KnobState cand) {
    const double tth = model.threshold_k() - options_.constraint_margin_k;
    const int cores = model.core_count();
    const int slowest = model.dvfs_level_count() - 1;
    BestTracker best;

    Prediction pred = predict(model, cand);
    best.consider(cand, pred, tth);

    const int max_iters = static_cast<int>(model.tec_count()) +
                          cores * model.dvfs_level_count() + 4;

    if (pred.max_temp_k() > tth) {
      for (int it = 0; it < max_iters && pred.max_temp_k() > tth; ++it) {
        std::size_t chosen_tec = model.tec_count();
        double hottest = tth;
        for (std::size_t s = 0; s < model.spot_count(); ++s) {
          const double t = pred.spot_temps_k[s];
          if (t <= hottest) continue;
          for (std::size_t dev : model.tecs_over(s)) {
            if (!cand.tec_on[dev]) {
              hottest = t;
              chosen_tec = dev;
              break;
            }
          }
        }
        if (chosen_tec < model.tec_count()) {
          cand.tec_on[chosen_tec] = 1;
          pred = predict(model, cand);
          best.consider(cand, pred, tth);
          continue;
        }
        KnobState chosen;
        Prediction chosen_pred;
        double best_epi = std::numeric_limits<double>::infinity();
        bool found = false;
        if (options_.chip_wide_dvfs) {
          KnobState trial = cand;
          bool moved = false;
          for (auto& d : trial.dvfs)
            if (d < slowest) {
              ++d;
              moved = true;
            }
          if (moved) {
            chosen_pred = predict(model, trial);
            chosen = std::move(trial);
            found = true;
          }
        } else {
          for (int n = 0; n < cores; ++n) {
            const auto ni = static_cast<std::size_t>(n);
            if (cand.dvfs[ni] >= slowest) continue;
            KnobState trial = cand;
            ++trial.dvfs[ni];
            Prediction p = predict(model, trial);
            if (!found || p.epi() < best_epi) {
              best_epi = p.epi();
              chosen = std::move(trial);
              chosen_pred = std::move(p);
              found = true;
            }
          }
        }
        if (!found) break;
        cand = std::move(chosen);
        pred = std::move(chosen_pred);
        best.consider(cand, pred, tth);
      }
      return best.valid ? best.knobs : cand;
    }

    for (int it = 0; it < max_iters; ++it) {
      KnobState chosen;
      Prediction chosen_pred;
      bool found = false;
      double best_epi = std::numeric_limits<double>::infinity();
      if (options_.chip_wide_dvfs) {
        KnobState trial = cand;
        bool moved = false;
        for (auto& d : trial.dvfs)
          if (d > 0) {
            --d;
            moved = true;
          }
        if (moved) {
          Prediction p = predict(model, trial);
          if (p.ips > pred.ips * (1.0 + 1e-9)) {
            chosen = std::move(trial);
            chosen_pred = std::move(p);
            found = true;
          }
        }
      } else {
        for (int n = 0; n < cores; ++n) {
          const auto ni = static_cast<std::size_t>(n);
          if (cand.dvfs[ni] <= 0) continue;
          KnobState trial = cand;
          --trial.dvfs[ni];
          Prediction p = predict(model, trial);
          if (p.ips <= pred.ips * (1.0 + 1e-9)) continue;
          if (!found || p.epi() < best_epi) {
            best_epi = p.epi();
            chosen = std::move(trial);
            chosen_pred = std::move(p);
            found = true;
          }
        }
      }
      if (!found) {
        std::size_t chosen_tec = model.tec_count();
        double coolest = std::numeric_limits<double>::infinity();
        for (std::size_t s = 0; s < model.spot_count(); ++s) {
          const double t = pred.spot_temps_k[s];
          if (t >= coolest) continue;
          for (std::size_t dev : model.tecs_over(s)) {
            if (cand.tec_on[dev]) {
              coolest = t;
              chosen_tec = dev;
              break;
            }
          }
        }
        if (chosen_tec == model.tec_count()) break;
        chosen = cand;
        chosen.tec_on[chosen_tec] = 0;
        chosen_pred = predict(model, chosen);
        found = true;
      }
      if (chosen_pred.max_temp_k() > tth) break;
      cand = std::move(chosen);
      pred = std::move(chosen_pred);
    }
    return cand;
  }

  int fan_decision(PlanningModel& model, const KnobState& current) {
    const double tth = model.threshold_k();
    const int slowest = model.fan_level_count() - 1;
    KnobState trial = current;
    Prediction at_current = model.predict_steady(trial);
    if (at_current.max_temp_k() > tth) {
      int lvl = current.fan_level;
      while (lvl > 0) {
        --lvl;
        trial.fan_level = lvl;
        if (model.predict_steady(trial).max_temp_k() <= tth) break;
      }
      return lvl;
    }
    int lvl = current.fan_level;
    while (lvl < slowest) {
      trial.fan_level = lvl + 1;
      if (model.predict_steady(trial).max_temp_k() >
          tth - options_.fan_margin_k)
        break;
      ++lvl;
    }
    return lvl;
  }

  PolicyOptions options_;
  int interval_ = 0;
  std::size_t predictions_ = 0;
};

void enumerate_tec_dvfs(const PlanningModel& model, KnobState knobs,
                        bool include_dvfs,
                        const std::function<void(const KnobState&)>& visit) {
  const std::size_t n_tec = model.tec_count();
  const auto cores = static_cast<std::size_t>(model.core_count());
  const int levels = model.dvfs_level_count();
  const std::uint64_t tec_combos = 1ull << n_tec;

  std::function<void(std::size_t)> dvfs_rec = [&](std::size_t core) {
    if (core == cores || !include_dvfs) {
      for (std::uint64_t mask = 0; mask < tec_combos; ++mask) {
        for (std::size_t t = 0; t < n_tec; ++t)
          knobs.tec_on[t] = (mask >> t) & 1u ? 1 : 0;
        visit(knobs);
      }
      return;
    }
    for (int lvl = 0; lvl < levels; ++lvl) {
      knobs.dvfs[core] = lvl;
      dvfs_rec(core + 1);
    }
  };
  dvfs_rec(0);
}

class OraclePolicy : public core::Policy {
 public:
  explicit OraclePolicy(core::ExhaustiveOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "Oracle"; }
  void reset() override {
    interval_ = 0;
    candidates_ = 0;
  }
  KnobState decide(PlanningModel& model, const KnobState& current) override {
    const bool fan_turn =
        options_.base.manage_fan &&
        interval_ % options_.base.fan_period_intervals == 0;

    const double tth =
        model.threshold_k() - options_.base.constraint_margin_k;
    const double floor = ips_floor(interval_);
    ++interval_;
    candidates_ = 0;

    KnobState best = current;
    double best_epi = std::numeric_limits<double>::infinity();
    bool best_valid = false;
    KnobState coolest = current;
    double coolest_t = std::numeric_limits<double>::infinity();

    auto visit = [&](const KnobState& k) {
      ++candidates_;
      const Prediction p = model.predict(k);
      const double t = p.max_temp_k();
      if (t < coolest_t) {
        coolest_t = t;
        coolest = k;
      }
      if (t > tth) return;
      if (p.capacity_ips + 1e-9 < floor) return;
      if (!best_valid || p.epi() < best_epi) {
        best_epi = p.epi();
        best = k;
        best_valid = true;
      }
    };

    KnobState tmpl = current;
    if (fan_turn) {
      for (int lvl = 0; lvl < model.fan_level_count(); ++lvl) {
        tmpl.fan_level = lvl;
        enumerate_tec_dvfs(model, tmpl, /*include_dvfs=*/true, visit);
      }
    } else {
      enumerate_tec_dvfs(model, tmpl, /*include_dvfs=*/true, visit);
    }
    return best_valid ? best : coolest;
  }

  std::size_t last_candidate_count() const { return candidates_; }

 protected:
  virtual double ips_floor(int) const { return 0.0; }

  core::ExhaustiveOptions options_;

 private:
  int interval_ = 0;
  std::size_t candidates_ = 0;
};

class OftecPolicy final : public core::Policy {
 public:
  explicit OftecPolicy(core::ExhaustiveOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "OFTEC"; }
  void reset() override { interval_ = 0; }
  KnobState decide(PlanningModel& model, const KnobState& current) override {
    const bool fan_turn =
        options_.base.manage_fan &&
        interval_ % options_.base.fan_period_intervals == 0;
    ++interval_;

    const double tth =
        model.threshold_k() - options_.base.constraint_margin_k;
    KnobState best = current;
    for (auto& d : best.dvfs) d = 0;
    double best_cooling = std::numeric_limits<double>::infinity();
    bool best_valid = false;
    KnobState coolest = best;
    double coolest_t = std::numeric_limits<double>::infinity();

    auto visit = [&](const KnobState& k) {
      const Prediction p = model.predict(k);
      const double t = p.max_temp_k();
      if (t < coolest_t) {
        coolest_t = t;
        coolest = k;
      }
      if (t > tth) return;
      const double cooling = p.power.cooling_w() + p.power.leakage_w;
      if (!best_valid || cooling < best_cooling) {
        best_cooling = cooling;
        best = k;
        best_valid = true;
      }
    };

    KnobState tmpl = best;
    if (fan_turn) {
      for (int lvl = 0; lvl < model.fan_level_count(); ++lvl) {
        tmpl.fan_level = lvl;
        enumerate_tec_dvfs(model, tmpl, /*include_dvfs=*/false, visit);
      }
    } else {
      enumerate_tec_dvfs(model, tmpl, /*include_dvfs=*/false, visit);
    }
    return best_valid ? best : coolest;
  }

 private:
  core::ExhaustiveOptions options_;
  int interval_ = 0;
};

}  // namespace legacy

// ===================================================================
// Harness
// ===================================================================

/// Wraps a policy and records every decision it makes.
class RecordingPolicy final : public core::Policy {
 public:
  explicit RecordingPolicy(core::PolicyPtr inner)
      : inner_(std::move(inner)) {}

  std::string_view name() const override { return inner_->name(); }
  void reset() override { inner_->reset(); }
  KnobState decide(PlanningModel& model, const KnobState& current) override {
    KnobState k = inner_->decide(model, current);
    decisions.push_back(k);
    return k;
  }

  std::vector<KnobState> decisions;

 private:
  core::PolicyPtr inner_;
};

const sim::ChipEnginePtr& chip_engine() {
  static const sim::ChipEnginePtr e = sim::make_default_chip_engine();
  return e;
}

/// Run `policy` on the default chip for a short horizon and return the
/// per-interval action sequence.
std::vector<KnobState> chip_decisions(core::PolicyPtr policy,
                                      const std::string& bench, int threads,
                                      bool manage_fan) {
  auto wl = chip_engine()->workload(bench, threads);
  sim::ChipSimulator simulator(chip_engine());
  const sim::RunResult base =
      sim::measure_base_scenario(simulator, *wl, /*max_sim_time_s=*/0.05);

  RecordingPolicy rec(std::move(policy));
  sim::RunConfig cfg;
  cfg.threshold_k = base.peak_temp_k;
  cfg.fan_level = manage_fan ? 4 : 2;
  cfg.policy_manages_fan = manage_fan;
  cfg.max_sim_time_s = 0.02;  // 10 control intervals
  cfg.record_trace = false;
  simulator.run(rec, *wl, cfg);
  return rec.decisions;
}

void expect_same_decisions(const std::vector<KnobState>& legacy_seq,
                           const std::vector<KnobState>& current_seq) {
  ASSERT_FALSE(legacy_seq.empty());
  ASSERT_EQ(legacy_seq.size(), current_seq.size());
  for (std::size_t i = 0; i < legacy_seq.size(); ++i) {
    EXPECT_EQ(legacy_seq[i], current_seq[i]) << "interval " << i;
  }
}

// ===================================================================
// TECfan on the Table I workloads
// ===================================================================

class PolicyEquivalence : public ::testing::TestWithParam<perf::Table1Case> {
};

TEST_P(PolicyEquivalence, TecFanMatchesLegacyOnChip) {
  const perf::Table1Case& c = GetParam();
  expect_same_decisions(
      chip_decisions(std::make_unique<legacy::TecFanPolicy>(), c.benchmark,
                     c.threads, /*manage_fan=*/false),
      chip_decisions(
          std::make_unique<core::TecFanPolicy>(chip_engine()->control()),
          c.benchmark, c.threads, /*manage_fan=*/false));
}

INSTANTIATE_TEST_SUITE_P(
    Table1, PolicyEquivalence, ::testing::ValuesIn(perf::table1_cases()),
    [](const ::testing::TestParamInfo<perf::Table1Case>& info) {
      return info.param.benchmark + "_" + std::to_string(info.param.threads);
    });

TEST(PolicyEquivalenceExtra, TecFanWithFanCadenceMatchesLegacy) {
  PolicyOptions opt;
  opt.manage_fan = true;
  opt.fan_period_intervals = 4;
  expect_same_decisions(
      chip_decisions(std::make_unique<legacy::TecFanPolicy>(opt), "cholesky",
                     16, /*manage_fan=*/true),
      chip_decisions(std::make_unique<core::TecFanPolicy>(
                         chip_engine()->control(), opt),
                     "cholesky", 16, /*manage_fan=*/true));
}

TEST(PolicyEquivalenceExtra, ChipWideTecFanMatchesLegacy) {
  PolicyOptions opt;
  opt.chip_wide_dvfs = true;
  expect_same_decisions(
      chip_decisions(std::make_unique<legacy::TecFanPolicy>(opt), "lu", 16,
                     /*manage_fan=*/false),
      chip_decisions(std::make_unique<core::TecFanPolicy>(
                         chip_engine()->control(), opt),
                     "lu", 16, /*manage_fan=*/false));
}

// ===================================================================
// Exhaustive baselines on the 4-core server model (scripted intervals)
// ===================================================================

/// Drive `model` through a deterministic scripted interval sequence,
/// calling both policies on identical observations and asserting equal
/// decisions throughout. Returns the number of intervals compared.
int compare_on_server(core::Policy& legacy_policy, core::Policy& current_policy,
                      bool expect_nonconstant = true) {
  sim::ServerConfig cfg;
  auto thermal = std::make_shared<const sim::ServerThermalModel>(cfg.thermal);
  sim::ServerPlanningModel model(thermal, cfg);

  const int kIntervals = 10;
  KnobState cur_legacy = KnobState::initial(4, 4, /*fan_level=*/5);
  KnobState cur_current = cur_legacy;
  bool saw_change = false;
  for (int i = 0; i < kIntervals; ++i) {
    sim::ServerPlanningModel::Observation obs;
    obs.core_temps_k.resize(4);
    obs.demand.resize(4);
    for (int n = 0; n < 4; ++n) {
      // Sawtooth around the threshold so hot and cool paths both trigger.
      obs.core_temps_k[static_cast<std::size_t>(n)] =
          cfg.threshold_k - 6.0 + 1.5 * ((i + n) % 8);
      obs.demand[static_cast<std::size_t>(n)] = 0.25 + 0.15 * ((i + n) % 5);
    }
    obs.applied = cur_legacy;
    model.observe(obs);

    const KnobState d_legacy = legacy_policy.decide(model, cur_legacy);
    const KnobState d_current = current_policy.decide(model, cur_current);
    EXPECT_EQ(d_legacy, d_current) << "interval " << i;
    if (!(d_legacy == cur_legacy)) saw_change = true;
    cur_legacy = d_legacy;
    cur_current = d_current;
  }
  if (expect_nonconstant) {
    EXPECT_TRUE(saw_change) << "scenario never exercised the policy";
  }
  return kIntervals;
}

TEST(PolicyEquivalenceExtra, OracleMatchesLegacyOnServerModel) {
  core::ExhaustiveOptions opt;
  opt.base.manage_fan = true;
  opt.base.fan_period_intervals = 3;
  legacy::OraclePolicy legacy_policy(opt);
  core::OraclePolicy current_policy(opt);
  compare_on_server(legacy_policy, current_policy);
  // The batch scan must also visit exactly the candidates the recursion did.
  EXPECT_EQ(legacy_policy.last_candidate_count(),
            current_policy.last_candidate_count());
  EXPECT_GT(current_policy.last_candidate_count(), 0u);
}

TEST(PolicyEquivalenceExtra, OftecMatchesLegacyOnServerModel) {
  core::ExhaustiveOptions opt;
  opt.base.manage_fan = true;
  opt.base.fan_period_intervals = 2;
  legacy::OftecPolicy legacy_policy(opt);
  core::OftecPolicy current_policy(opt);
  compare_on_server(legacy_policy, current_policy);
}

TEST(PolicyEquivalenceExtra, OracleGuardMessageUnchanged) {
  // The 16-core chip's search space must still be rejected up front with
  // the pre-refactor diagnostics (policies check before enumerating).
  sim::ChipSimulator simulator(chip_engine());
  auto wl = chip_engine()->workload("cholesky", 16);
  sim::RunConfig cfg;
  cfg.threshold_k = 400.0;
  cfg.max_sim_time_s = 0.004;
  core::OraclePolicy oracle{chip_engine()->control()};
  try {
    simulator.run(oracle, *wl, cfg);
    FAIL() << "Oracle on the 16-core chip must throw";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "Oracle search space exceeds the configured bound"),
              std::string::npos)
        << e.what();
  }
  core::OftecPolicy oftec{chip_engine()->control()};
  try {
    simulator.run(oftec, *wl, cfg);
    FAIL() << "OFTEC on the 16-core chip must throw";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "OFTEC search space exceeds the configured bound"),
              std::string::npos)
        << e.what();
  }
}

// ===================================================================
// Parallel fan sweep == serial fan sweep
// ===================================================================

TEST(PolicyEquivalenceExtra, ParallelSweepMatchesSerialSweep) {
  const sim::ChipEnginePtr engine = sim::make_chip_engine(2, 2);
  auto wl = engine->workload("cholesky", 4);
  sim::ChipSimulator simulator(engine);
  const sim::RunResult base =
      sim::measure_base_scenario(simulator, *wl, /*max_sim_time_s=*/0.1);

  auto factory = [&] {
    return core::make_named_policy("fan+dvfs", engine->control());
  };
  sim::SweepOptions serial_opts;
  serial_opts.threshold_k = base.peak_temp_k;
  serial_opts.max_sim_time_s = 0.1;
  serial_opts.parallel = false;
  sim::SweepOptions par_opts = serial_opts;
  par_opts.parallel = true;

  const sim::SweepResult serial =
      sim::run_with_fan_sweep(engine, factory, *wl, serial_opts);
  const sim::SweepResult parallel =
      sim::run_with_fan_sweep(engine, factory, *wl, par_opts);

  ASSERT_EQ(serial.per_level.size(), parallel.per_level.size());
  for (std::size_t i = 0; i < serial.per_level.size(); ++i) {
    const sim::RunResult& a = serial.per_level[i];
    const sim::RunResult& b = parallel.per_level[i];
    EXPECT_EQ(a.fan_level, b.fan_level);
    EXPECT_EQ(a.exec_time_s, b.exec_time_s);
    EXPECT_EQ(a.energy_j, b.energy_j);
    EXPECT_EQ(a.peak_temp_k, b.peak_temp_k);
    EXPECT_EQ(a.mean_peak_temp_k, b.mean_peak_temp_k);
    EXPECT_EQ(a.violation_frac, b.violation_frac);
    EXPECT_EQ(a.avg_dvfs, b.avg_dvfs);
  }
  EXPECT_EQ(serial.chosen.fan_level, parallel.chosen.fan_level);
  EXPECT_EQ(serial.chosen.energy_j, parallel.chosen.energy_j);
}

}  // namespace
}  // namespace tecfan
